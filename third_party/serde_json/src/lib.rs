//! Offline stand-in for `serde_json` (see `third_party/README.md`).
//!
//! Provides the subset this workspace uses: [`to_value`], [`to_string`],
//! [`to_string_pretty`], and a recursive-descent [`from_str`] returning
//! [`Value`]. Since the serde stand-in's data model *is* the JSON value
//! tree, conversion is a single `to_value` call.

pub use serde::{Map, Value};

use serde::Serialize;
use std::fmt;

/// Error type for parse failures (serialization here cannot fail).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json_string())
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json_string_pretty())
}

/// Parse JSON text into a [`Value`]. Non-generic: annotate call sites
/// with `: serde_json::Value` where the real crate would infer through
/// `Deserialize`.
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected '{}' at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our own output.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_text() {
        let src = r#"{"name":"fig6","pts":[1,2.5,-3e2],"ok":true,"gap":null,"s":"a\"b\n"}"#;
        let v = from_str(src).unwrap();
        assert_eq!(v["name"].as_str(), Some("fig6"));
        assert_eq!(v["pts"][2].as_f64(), Some(-300.0));
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert!(v["gap"].is_null());
        assert_eq!(v["s"].as_str(), Some("a\"b\n"));
        // Printing and reparsing is stable.
        let printed = to_string(&v).unwrap();
        assert_eq!(from_str(&printed).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn pretty_printer_indents() {
        let v = from_str(r#"{"a":[1,2]}"#).unwrap();
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }
}
