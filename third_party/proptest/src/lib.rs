//! Offline stand-in for `proptest` (see `third_party/README.md`).
//!
//! The workspace's property tests draw arguments exclusively from
//! numeric range strategies (`0u64..100`, `1usize..=8`, `0.1f64..2.0`)
//! and assert with `prop_assert!`. This stand-in runs each property
//! `cases` times with a deterministic splitmix-style sampler, so test
//! runs are reproducible and need no shrinking machinery: a failing
//! sample prints its case index, which fully determines the inputs.

#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic 64-bit mixer (splitmix64 finalizer) so each
/// (case, argument) pair gets an independent, reproducible draw.
pub fn mix(case: u64, arg_index: u64) -> u64 {
    let mut z = case
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(arg_index.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(0x94d0_49bb_1331_11eb);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A source of values for one property argument.
pub trait Strategy {
    type Value;
    fn sample_with(&self, seed: u64) -> Self::Value;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample_with(&self, seed: u64) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    self.start + ((seed as u128 % span) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample_with(&self, seed: u64) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    lo + ((seed as u128 % span) as $t)
                }
            }
        )*
    };
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample_with(&self, seed: u64) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // 53 mantissa bits of uniformity is plenty here.
                    let unit = (seed >> 11) as f64 / (1u64 << 53) as f64;
                    self.start + (self.end - self.start) * unit as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample_with(&self, seed: u64) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let unit = (seed >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                    lo + (hi - lo) * unit as $t
                }
            }
        )*
    };
}

impl_float_range!(f32, f64);

/// Run each property `cases` times, mixing the case index into every
/// argument draw. `$(#[$meta])*` carries the user-written `#[test]`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases as u64 {
                    let mut arg_index = 0u64;
                    $(
                        let $arg = $crate::Strategy::sample_with(
                            &($strat),
                            $crate::mix(case, arg_index),
                        );
                        arg_index += 1;
                    )*
                    let _ = arg_index;
                    let run = || -> Result<(), String> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    if let Err(msg) = run() {
                        panic!(
                            "proptest case {case} failed: {msg}\n  args: {}",
                            stringify!($($arg in $strat),*)
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

/// Assert inside a property; failure reports the condition and message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)*)
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: {} == {} ({a:?} vs {b:?})",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
}

pub mod prelude {
    pub use crate::{mix, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn int_ranges_stay_in_bounds(a in 3u64..17, b in 1usize..=8) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((1..=8).contains(&b));
        }

        #[test]
        fn float_ranges_stay_in_bounds(x in 0.1f64..2.0) {
            prop_assert!((0.1..2.0).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = 5u64..100;
        assert_eq!(s.sample_with(mix(7, 0)), s.sample_with(mix(7, 0)));
        // Different cases give different draws (for this seed pair).
        assert_ne!(mix(1, 0), mix(2, 0));
    }
}
