//! Offline stand-in for `serde` (see `third_party/README.md`).
//!
//! The real serde serializes through a visitor-based data model; this
//! workspace only ever serializes to JSON, so the stand-in collapses the
//! model to one step: [`Serialize`] renders a value into a [`Value`]
//! tree, which `serde_json` then prints. The `derive` feature forwards
//! to the `serde_derive` stand-in, which generates `Serialize` impls
//! with the same external behavior as the real derive (struct → object,
//! newtype → inner, tuple struct → array, unit enum variant → string).

mod value;

pub use value::{Map, Value};

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// Serialize into a JSON value tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

macro_rules! impl_serialize_num {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        })*
    };
}

impl_serialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(1.5f64.to_value(), Value::Number(1.5));
        assert_eq!(7usize.to_value(), Value::Number(7.0));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::String("hi".into()));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(
            vec![1u32, 2].to_value(),
            Value::Array(vec![Value::Number(1.0), Value::Number(2.0)])
        );
        assert_eq!([3usize; 2].to_value(), vec![3usize, 3].to_value());
    }
}
