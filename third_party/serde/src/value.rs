//! The JSON value tree shared by `serde` and `serde_json`.

use std::fmt;
use std::ops::Index;

/// An insertion-ordered string-keyed map (matches the field order of the
/// struct being serialized, like real serde_json's struct output).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert, replacing any existing entry with the same key in place.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON value. Numbers are `f64` (every number this workspace
/// serializes fits exactly: counters stay far below 2^53).
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Compact JSON text.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty JSON text (two-space indent, like serde_json).
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    use fmt::Write;
    if !n.is_finite() {
        // serde_json emits null for non-finite floats.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

macro_rules! impl_from_num {
    ($($t:ty),*) => {
        $(impl From<$t> for Value {
            fn from(n: $t) -> Self {
                Value::Number(n as f64)
            }
        })*
    };
}

impl_from_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_matches_json() {
        let mut m = Map::new();
        m.insert("a".into(), Value::from(1u32));
        m.insert("b".into(), Value::from("x\"y"));
        m.insert("c".into(), Value::Array(vec![Value::Null, Value::from(0.5)]));
        let v = Value::Object(m);
        assert_eq!(v.to_json_string(), r#"{"a":1,"b":"x\"y","c":[null,0.5]}"#);
    }

    #[test]
    fn integers_print_without_fraction() {
        let mut s = String::new();
        write_number(&mut s, 198.0);
        assert_eq!(s, "198");
        let mut s = String::new();
        write_number(&mut s, 0.125);
        assert_eq!(s, "0.125");
        let mut s = String::new();
        write_number(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("k".into(), Value::from(1u32));
        m.insert("j".into(), Value::from(2u32));
        let old = m.insert("k".into(), Value::from(3u32));
        assert_eq!(old, Some(Value::Number(1.0)));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["k", "j"]);
    }

    #[test]
    fn indexing_missing_yields_null() {
        let v = Value::Object(Map::new());
        assert!(v["nope"].is_null());
        assert!(v["nope"][3].is_null());
    }
}
