//! Offline stand-in for `criterion` (see `third_party/README.md`).
//!
//! Keeps the bench bins compiling and producing useful one-line timings
//! without the statistics engine: each benchmark runs `sample_size`
//! timed iterations after a short warm-up and reports mean time per
//! iteration (plus throughput when set).

pub use std::hint::black_box;

use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, throughput: None }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, None, f);
        self
    }
}

pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: one untimed pass.
    let mut warm = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut warm);

    let mut b = Bencher { iters: sample_size as u64, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;

    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:.3} Melem/s", n as f64 / per_iter / 1.0e6)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:.3} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("{name:<48} {}{rate}", format_time(per_iter));
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:>10.4} s ")
    } else if seconds >= 1.0e-3 {
        format!("{:>10.4} ms", seconds * 1.0e3)
    } else if seconds >= 1.0e-6 {
        format!("{:>10.4} µs", seconds * 1.0e6)
    } else {
        format!("{:>10.4} ns", seconds * 1.0e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)*
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // One warm-up pass + sample_size timed iterations.
        assert_eq!(runs, 1 + 3);
    }
}
