//! Offline stand-in for `crossbeam` (see `third_party/README.md`).
//!
//! Backed by `std::thread::scope` (thread lifetimes) and `std::sync::mpsc`
//! (channels). API differences from the real crate that matter here:
//!
//! - `Scope::spawn` passes `()` to the closure instead of a nested
//!   `&Scope`; every call site in this workspace writes `|_|` and never
//!   re-spawns from inside a child, so this is invisible.
//! - `scope` returns `Ok` or propagates the child panic on join (the
//!   real crate returns `Err` with the payload; callers `.unwrap()`
//!   immediately, so behavior on panic is equivalent: the panic
//!   surfaces on the spawning thread).

pub mod channel {
    use std::sync::mpsc;

    /// Multi-producer sender (the real crossbeam sender is also `Clone`).
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self { inner: self.inner.clone() }
        }
    }

    pub struct SendError<T>(pub T);

    // Like the real crate: Debug without requiring `T: Debug`, so
    // `.expect()` works on channels of opaque payloads.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.inner.try_recv().map_err(|_| RecvError)
        }

        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

use std::marker::PhantomData;

pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    _marker: PhantomData<&'scope ()>,
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives `()` where the real
    /// crate passes a nested `&Scope`; all call sites here use `|_|`.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle { inner: self.inner.spawn(move || f(())), _marker: PhantomData }
    }
}

/// Run `f` with a scope in which borrowed-data threads can be spawned;
/// all spawned threads are joined before this returns.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let mut sums = vec![0u64; 2];
        super::scope(|s| {
            let (left, right) = sums.split_at_mut(1);
            let h0 = s.spawn(|_| left[0] = data[..2].iter().sum());
            let h1 = s.spawn(|_| right[0] = data[2..].iter().sum());
            h0.join().unwrap();
            h1.join().unwrap();
        })
        .unwrap();
        assert_eq!(sums, [3, 7]);
    }

    #[test]
    fn channel_fan_in() {
        let (tx, rx) = super::channel::unbounded();
        super::scope(|s| {
            for w in 0..4u32 {
                let tx = tx.clone();
                s.spawn(move |_| tx.send(w).unwrap());
            }
        })
        .unwrap();
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, [0, 1, 2, 3]);
    }
}
