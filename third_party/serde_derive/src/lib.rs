//! Offline stand-in for `serde_derive` (see `third_party/README.md`).
//!
//! Implements `#[derive(Serialize)]` by hand-parsing the item's token
//! stream (no `syn`/`quote`). Supported shapes — exactly what this
//! workspace derives on:
//!
//! - structs with named fields  → JSON object in field order
//! - newtype structs            → the inner value
//! - other tuple structs        → JSON array
//! - enums with unit variants   → the variant name as a JSON string
//!   (explicit discriminants like `X = 0` are allowed and ignored)
//!
//! Generics and data-carrying enum variants are rejected with a
//! compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(out) => out.parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn generate(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes_and_visibility(&tokens, &mut i);

    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected struct or enum, found {other:?}")),
    };
    i += 1;

    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("derive(Serialize) stand-in does not support generics on {name}"));
    }

    match kind {
        "struct" => match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_fields(g.stream())?;
                Ok(struct_impl(&name, &fields))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = tuple_field_count(g.stream());
                Ok(tuple_impl(&name, n))
            }
            other => Err(format!("unsupported struct body for {name}: {other:?}")),
        },
        _ => match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = unit_variants(g.stream(), &name)?;
                Ok(enum_impl(&name, &variants))
            }
            other => Err(format!("unsupported enum body for {name}: {other:?}")),
        },
    }
}

fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            // #[...] or #![...]
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
                    *i += 1;
                }
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // pub(crate) etc.
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Split a brace-group token stream into top-level comma-separated
/// chunks. Delimiter groups are single tokens, but angle-bracket
/// generics are bare puncts, so track `<`/`>` depth to avoid splitting
/// inside `BTreeMap<String, f64>`.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                chunks.last_mut().unwrap().push(t);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
                chunks.last_mut().unwrap().push(t);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new())
            }
            _ => chunks.last_mut().unwrap().push(t),
        }
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for chunk in split_top_level(stream) {
        let mut i = 0;
        skip_attributes_and_visibility(&chunk, &mut i);
        match chunk.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            other => return Err(format!("expected field name, found {other:?}")),
        }
    }
    Ok(fields)
}

fn tuple_field_count(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn unit_variants(stream: TokenStream, name: &str) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level(stream) {
        let mut i = 0;
        skip_attributes_and_visibility(&chunk, &mut i);
        let variant = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name in {name}, found {other:?}")),
        };
        i += 1;
        match chunk.get(i) {
            // `= discriminant` — allowed (the rest of the chunk is the expr).
            None | Some(TokenTree::Punct(_)) => {}
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "derive(Serialize) stand-in supports only unit variants; \
                     {name}::{variant} carries data"
                ))
            }
            other => return Err(format!("unexpected token after {name}::{variant}: {other:?}")),
        }
        variants.push(variant);
    }
    Ok(variants)
}

fn struct_impl(name: &str, fields: &[String]) -> String {
    let mut body = String::from("let mut m = ::serde::Map::new();\n");
    for f in fields {
        body.push_str(&format!(
            "m.insert(String::from({f:?}), ::serde::Serialize::to_value(&self.{f}));\n"
        ));
    }
    body.push_str("::serde::Value::Object(m)");
    impl_block(name, &body)
}

fn tuple_impl(name: &str, n: usize) -> String {
    let body = if n == 1 {
        "::serde::Serialize::to_value(&self.0)".to_string()
    } else {
        let items: Vec<String> =
            (0..n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
        format!("::serde::Value::Array(vec![{}])", items.join(", "))
    };
    impl_block(name, &body)
}

fn enum_impl(name: &str, variants: &[String]) -> String {
    let mut body = String::from("match self {\n");
    for v in variants {
        body.push_str(&format!("{name}::{v} => ::serde::Value::String(String::from({v:?})),\n"));
    }
    body.push('}');
    impl_block(name, &body)
}

fn impl_block(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}
