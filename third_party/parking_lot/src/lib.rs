//! Offline stand-in for `parking_lot` (see `third_party/README.md`).
//!
//! Wraps the std primitives and strips lock poisoning, which is the
//! parking_lot behavior the workspace relies on: `lock()` returns a
//! guard directly, never a `Result`.

use std::sync;

#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_not_result() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }
}
