#!/usr/bin/env sh
# Full pre-merge verification: release build, tests, formatting, lints.
# Run from the repository root: sh scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> verify OK"
