#!/usr/bin/env sh
# Full pre-merge verification: release build, tests, formatting, lints.
# Run from the repository root: sh scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# The worker-count determinism guarantee is the contract qdd-serve's
# bitwise-identical-answers invariant rests on; run its tests explicitly
# (release: the fused/solve sweeps are slow unoptimized) so a failure is
# called out by name even though the suite above also covers them.
echo "==> determinism + fused-operator property tests (release)"
cargo test --release -q -p qdd-core --test fused_outer_determinism
cargo test --release -q -p qdd-dirac --test fused_full_property

# Chaos smoke: seeded fault injection must recover (retries > 0, converged)
# and the zero-rate run must be bitwise identical to a fault-free world —
# both asserted inside the binary.
echo "==> chaos smoke benchmark (release)"
cargo run -p qdd-bench --release --bin chaos -- --smoke

# Shards smoke: the supervised shard pool must keep serving with 1 of 3
# shards under 100% message loss (zero dropped requests, breaker opens
# within threshold, failover rescues every request), reproduce bitwise
# under the same fault seed, and match the single-world path bitwise when
# fault-free — all asserted inside the binary; statuses, trace ids,
# breaker transitions, shed/failover counts and the solution digests are
# pinned by the gate.
echo "==> shards smoke benchmark (release)"
QDD_FAULT_SEED=7 cargo run -p qdd-bench --release --bin shards -- --smoke

# Overlap smoke: the Fig. 4 staged schedule must be bitwise identical to
# the bulk exchange (asserted inside the binary) and reports measured
# exposed communication for both schedules.
echo "==> overlap smoke benchmark (release)"
cargo run -p qdd-bench --release --bin overlap -- --smoke

# Outer-overlap smoke: the staged outer matvec must be bitwise identical
# to the bulk exchange across worker counts, a peer hiccup must land in
# the peer-skip fault class (not timeouts), and the Eq. 7 model sweep
# must cut exposed comm >= 10x inside the hiding boundary — all asserted
# inside the binary; the model series and both correctness verdicts are
# pinned by the gate.
echo "==> outer-overlap smoke benchmark (release)"
cargo run -p qdd-bench --release --bin outer_overlap -- --smoke

# Serve smoke: bitwise cold-vs-served agreement plus the telemetry
# acceptance asserts (complete per-request timelines, model join).
echo "==> serve smoke benchmark (release)"
cargo run -p qdd-bench --release --bin serve -- --smoke

# Telemetry guard: instrumented solves must be bitwise identical to bare
# ones (overhead is gated in full runs, reported in smoke).
echo "==> telemetry overhead guard (release, smoke)"
cargo run -p qdd-bench --release --bin telemetry -- --smoke

# Outer smoke: fused-vs-scalar matvec across storage precisions; the
# fused operator is cross-checked site-for-site against the scalar loop
# and the streamed bytes/site per storage are pinned by the gate.
echo "==> outer smoke benchmark (release)"
cargo run -p qdd-bench --release --bin outer -- --smoke

# Memory-wall smoke: the f16 storage sweep must be bitwise identical
# across workers/tiles and cut streamed bytes/site >= 1.8x vs f64 (both
# asserted inside the binary); bytes/site, join iterations, and the plan
# fingerprint are pinned by the gate.
echo "==> memwall smoke benchmark (release)"
cargo run -p qdd-bench --release --bin memwall -- --smoke

# Autotune smoke: the model search must beat the hand-set default on
# every backend and produce a bitwise-reproducible plan (both asserted
# inside the binary; the plan fingerprints are pinned by the gate).
echo "==> autotune smoke benchmark (release)"
cargo run -p qdd-bench --release --bin autotune -- --smoke

# Bench gate: the deterministic fields of the fresh smoke reports above
# (iterations, fault counters, trace ids, timeline shapes) must match the
# committed baselines in results/baselines/. On drift it points at
# results/FLIGHT_chaos.jsonl for the post-mortem.
echo "==> bench gate vs committed baselines"
python3 scripts/bench_gate.py

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> verify OK"
