#!/usr/bin/env python3
"""Bench gate: diff fresh smoke benchmark reports against committed baselines.

The smoke benchmarks are seeded and the solver stack is bitwise
deterministic, so everything that is *not* wall-clock — iteration counts,
fault-injection counters, request trace ids, timeline stage sequences —
must reproduce exactly run over run. This gate pins those fields against
baselines committed under ``results/baselines/`` and ignores timing,
throughput, and anything else scheduling-dependent (batch composition,
cache hit split, measured phase seconds).

Usage:
    python3 scripts/bench_gate.py            # compare all gated reports
    python3 scripts/bench_gate.py serve      # compare one report
    python3 scripts/bench_gate.py --update   # rewrite baselines from fresh runs

Run the smoke benchmarks first so ``results/BENCH_*.json`` is fresh:
    cargo run -p qdd-bench --release --bin {chaos,serve,telemetry} -- --smoke

Exits nonzero on any drift and points at the flight-recorder artifact
(``results/FLIGHT_chaos.jsonl``) for the post-mortem.
"""

import json
import pathlib
import shutil
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"
BASELINES = RESULTS / "baselines"

REL_TOL_DEFAULT = 1e-6


def timeline_shape(point):
    """Deterministic projection of a serialized RequestTimeline: the
    request's trace id, terminal status, and stage-name sequence (stage
    timestamps are wall clock and excluded)."""
    return {
        "trace": point["trace"],
        "status": point["status"],
        "stages": [s[0] for s in point["stages"]],
    }


# name -> {series label -> spec}; spec keys:
#   exact:  fields compared with ==
#   rel:    {field: tolerance} compared with relative error
#   derive: projection applied to the whole point before exact comparison
# "metas" follows the same shape for the report's meta map. Params are
# always compared exactly: they are the benchmark configuration.
GATES = {
    "autotune": {
        # The tuned plan is pure model output: every tunable, the plan
        # fingerprint, and the predicted seconds must reproduce bitwise
        # across hosts. The measured predict->measure->correct series
        # (model_join, calibrated_knc) is wall clock and not gated.
        "series": {
            "tuned_vs_default": {
                "exact": [
                    "backend",
                    "block",
                    "precision",
                    "prefetch",
                    "i_schwarz",
                    "i_domain",
                    "outer_iterations",
                    "fingerprint",
                    "evaluated",
                    "ranked",
                ],
                "rel": {
                    "predicted_total_s": 1e-9,
                    "default_predicted_total_s": 1e-9,
                    "speedup_over_default": 1e-9,
                },
            }
        },
        "metas": {"exact": ["plans_bitwise_identical"]},
    },
    "chaos": {
        "series": {
            "convergence_vs_fault_rate": {
                "exact": [
                    "rate",
                    "converged",
                    "iterations",
                    "restarts",
                    "rollbacks",
                    "retries",
                    "timeouts",
                    "corruptions",
                    "delays",
                    "hiccups",
                    "peer_skips",
                    "zero_fills",
                    "comm_faulted",
                    "flight_fault_events",
                ],
                "rel": {"relative_residual": REL_TOL_DEFAULT, "true_residual": REL_TOL_DEFAULT},
            }
        },
        "metas": {"exact": ["all_converged"]},
    },
    "memwall": {
        # The storage sweep's layout facts (streamed bytes/site per
        # storage precision, tile labels, worker grid) are size_of
        # arithmetic and must reproduce bitwise; so must the join solve's
        # iteration count and the autotuned plan fingerprint. Wall-clock
        # fields (seconds, GB/s, speedups, model.err ratios) are not
        # gated.
        "series": {
            "f64": {"exact": ["storage", "tile", "l2_bytes", "workers", "bytes_per_site"]},
            "f32": {"exact": ["storage", "tile", "l2_bytes", "workers", "bytes_per_site"]},
            "f16": {"exact": ["storage", "tile", "l2_bytes", "workers", "bytes_per_site"]},
            "onchip_model": {
                "exact": ["workers"],
                "rel": {"model_gflops": 1e-9, "model_speedup": 1e-9},
            },
        },
        "metas": {
            "exact": [
                "bitwise_identical",
                "bytes_per_site_f64",
                "bytes_per_site_f32",
                "bytes_per_site_f16",
                "join_iterations",
                "plan_fingerprint",
                "plan_choice",
            ],
        },
    },
    "outer": {
        # Kernel labels, worker grid, and streamed bytes/site are exact;
        # timing and speedups are host wall-clock and not gated.
        "series": {
            "f64": {"exact": ["kernel", "workers", "bytes_per_site"]},
            "f32": {"exact": ["kernel", "workers", "bytes_per_site"]},
            "f16": {"exact": ["kernel", "workers", "bytes_per_site"]},
        },
    },
    "outer_overlap": {
        # The measured worker sweep is wall clock and only its structure
        # is pinned (site partition, domain counts). The Eq. 7 series is
        # pure overlap-model output and must reproduce bitwise, as must
        # the two correctness verdicts: bitwise identity across
        # schedules/workers and the peer-skip/timeout distinction.
        "series": {
            "hiding_vs_domains_per_core": {
                "exact": ["workers", "domains_per_core", "interior_sites", "boundary_sites"],
            },
            "eq7_hiding_boundary": {
                "exact": ["cores", "domains_per_core", "hidden"],
                "rel": {
                    "window_s": 1e-9,
                    "wire_s": 1e-9,
                    "model_staged_exposed_s": 1e-9,
                    "model_bulk_exposed_s": 1e-9,
                },
            },
        },
        "metas": {
            "exact": [
                "bitwise_identical",
                "peer_skips_distinct",
                "model_hiding_10x",
                "eq7_boundary_crossed",
            ],
        },
    },
    "serve": {
        "series": {
            "served_latency_ms": {"exact": ["request", "iterations"]},
            "request_timelines": {"derive": timeline_shape},
        },
        "metas": {"exact": ["bitwise_identical"]},
    },
    "shards": {
        # The sharded pool's scheduling is round-synchronous and its
        # fault plans are seeded, so everything but wall clock is pinned:
        # per-request status/iterations/attempts/trace ids, the breaker's
        # transition script (shard, edge, round), shed/failover counts in
        # the load sweep, and the FNV digest of every solution's bits.
        # p50/p99 latency fields are wall clock and not gated.
        "series": {
            "fault_free": {
                "exact": ["request", "trace", "config", "status", "iterations", "attempts"],
            },
            "degraded": {
                "exact": ["request", "trace", "config", "status", "iterations", "attempts"],
            },
            "breaker_transitions": {"exact": ["shard", "from", "to", "round"]},
            "load_sweep": {
                "exact": ["load", "shed", "converged", "degraded", "failovers", "breaker_trips"],
            },
        },
        "metas": {
            "exact": [
                "bitwise_identical",
                "rerun_bitwise",
                "zero_dropped",
                "fault_free_digest",
                "degraded_digest",
                "breaker_open_round",
                "failovers",
            ],
        },
    },
    "telemetry": {
        "series": {"trial_wall_ms": {"exact": ["trial", "iterations"]}},
        "metas": {"exact": ["bitwise_identical"]},
    },
}


def rel_err(a, b):
    denom = max(abs(a), abs(b), 1e-300)
    return abs(a - b) / denom


def series_points(report, label):
    for s in report.get("series", []):
        if s.get("label") == label:
            return s.get("points", [])
    return None


def compare_values(path, fresh, base, failures):
    if fresh != base:
        failures.append(f"{path}: fresh {fresh!r} != baseline {base!r}")


def compare_report(name, fresh, base, gate):
    failures = []
    if fresh.get("params") != base.get("params"):
        failures.append(
            f"params: fresh {fresh.get('params')!r} != baseline {base.get('params')!r} "
            "(config drift — regenerate baselines deliberately with --update)"
        )
        return failures
    for label, spec in gate.get("series", {}).items():
        fp = series_points(fresh, label)
        bp = series_points(base, label)
        if fp is None or bp is None:
            failures.append(f"series {label!r}: missing from {'fresh' if fp is None else 'baseline'}")
            continue
        if len(fp) != len(bp):
            failures.append(f"series {label!r}: {len(fp)} fresh points vs {len(bp)} baseline")
            continue
        for i, (f, b) in enumerate(zip(fp, bp)):
            where = f"{label}[{i}]"
            if "derive" in spec:
                compare_values(where, spec["derive"](f), spec["derive"](b), failures)
                continue
            for field in spec.get("exact", []):
                compare_values(f"{where}.{field}", f.get(field), b.get(field), failures)
            for field, tol in spec.get("rel", {}).items():
                e = rel_err(f.get(field, 0.0), b.get(field, 0.0))
                if e > tol:
                    failures.append(
                        f"{where}.{field}: fresh {f.get(field)} vs baseline {b.get(field)} "
                        f"(rel err {e:.2e} > {tol:.0e})"
                    )
    for field in gate.get("metas", {}).get("exact", []):
        compare_values(
            f"metadata.{field}",
            fresh.get("metadata", {}).get(field),
            base.get("metadata", {}).get(field),
            failures,
        )
    return failures


def main(argv):
    update = "--update" in argv
    names = [a for a in argv if not a.startswith("--")] or sorted(GATES)
    unknown = [n for n in names if n not in GATES]
    if unknown:
        print(f"bench_gate: unknown report(s) {unknown}; gated: {sorted(GATES)}")
        return 2

    bad = 0
    for name in names:
        fresh_path = RESULTS / f"BENCH_{name}.json"
        base_path = BASELINES / f"BENCH_{name}.json"
        if not fresh_path.exists():
            print(f"bench_gate: {fresh_path.relative_to(ROOT)} missing — run the smoke benchmark first")
            bad += 1
            continue
        if update:
            BASELINES.mkdir(parents=True, exist_ok=True)
            shutil.copyfile(fresh_path, base_path)
            print(f"bench_gate: baseline updated: {base_path.relative_to(ROOT)}")
            continue
        if not base_path.exists():
            print(f"bench_gate: no baseline {base_path.relative_to(ROOT)} — seed it with --update")
            bad += 1
            continue
        fresh = json.loads(fresh_path.read_text())
        base = json.loads(base_path.read_text())
        failures = compare_report(name, fresh, base, GATES[name])
        if failures:
            bad += 1
            print(f"bench_gate: {name}: {len(failures)} deterministic field(s) drifted:")
            for f in failures:
                print(f"  {f}")
        else:
            print(f"bench_gate: {name}: OK")
    if bad and not update:
        flight = RESULTS / "FLIGHT_chaos.jsonl"
        if flight.exists():
            print(f"bench_gate: flight-recorder dump for post-mortem: {flight.relative_to(ROOT)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
