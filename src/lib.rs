//! # lattice-qcd-dd
//!
//! A from-scratch Rust reproduction of *"Lattice QCD with Domain
//! Decomposition on Intel Xeon Phi Co-Processors"* (Heybrock et al.,
//! SC 2014): a domain-decomposition (multiplicative Schwarz)
//! preconditioned flexible GMRES-DR solver for the Wilson-Clover operator,
//! together with every substrate the paper depends on — the operator and
//! field machinery, site-fused SIMD kernels, the non-DD baseline solvers,
//! a simulated multi-node runtime with exact traffic accounting, and an
//! analytic KNC performance model that regenerates the paper's tables and
//! figures.
//!
//! Start with [`prelude`] and the `examples/` directory; DESIGN.md maps
//! every paper experiment to the module and binary that reproduces it.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | `qdd-util` | complex arithmetic, software f16, small dense complex linear algebra, stats ledgers |
//! | `qdd-lattice` | 4-D geometry: sites, checkerboards, Schwarz domains, xy-tiles, partitionings |
//! | `qdd-field` | spinor/gauge/clover fields, halo buffers, fused SOA storage |
//! | `qdd-dirac` | gamma algebra, Wilson-Clover operator, Schur complement, fused SIMD kernels |
//! | `qdd-core` | MR, Schwarz, FGMRES-DR, BiCGstab, Richardson, CGNR; worker pool |
//! | `qdd-comm` | SPMD rank runtime, halo exchange, distributed solvers |
//! | `qdd-faults` | deterministic seeded fault injection: loss, corruption, stragglers, hiccups |
//! | `qdd-machine` | trait-based machine backends (KNC 7110P, KNL 7250 flat/cache); chip/kernel/network/overlap models; Table II/III, Figs. 5-7 generators |
//! | `qdd-autotune` | deterministic model-driven parameter search (block × precision × prefetch × `Is`/`Id`) with predict → measure → correct calibration |
//! | `qdd-serve` | batched multi-RHS solve service: admission control, setup cache, tuned-parameter cache, degradation ladder |

pub use qdd_autotune as autotune;
pub use qdd_comm as comm;
pub use qdd_core as core_solver;
pub use qdd_dirac as dirac;
pub use qdd_faults as faults;
pub use qdd_field as field;
pub use qdd_lattice as lattice;
pub use qdd_machine as machine;
pub use qdd_serve as serve;
pub use qdd_trace as trace;
pub use qdd_util as util;

/// The most common imports for applications.
pub mod prelude {
    pub use qdd_core::bicgstab::{bicgstab, BiCgStabConfig};
    pub use qdd_core::cg::{cgnr, CgConfig};
    pub use qdd_core::dd_solver::{DdSolver, DdSolverConfig, Precision};
    pub use qdd_core::fgmres_dr::{fgmres_dr, FgmresConfig, SolveOutcome};
    pub use qdd_core::gcr::{gcr, GcrConfig};
    pub use qdd_core::mr::MrConfig;
    pub use qdd_core::richardson::{richardson_bicgstab, RichardsonConfig};
    pub use qdd_core::schwarz::{SchwarzConfig, SchwarzPreconditioner};
    pub use qdd_core::system::{LocalSystem, SystemOps};
    pub use qdd_dirac::clover::{average_plaquette, build_clover_field};
    pub use qdd_dirac::gamma::GammaBasis;
    pub use qdd_dirac::wilson::{BoundaryPhases, WilsonClover};
    pub use qdd_field::fields::{CloverField, GaugeField, SpinorField};
    pub use qdd_field::spinor::Spinor;
    pub use qdd_lattice::{Coord, Dims, Dir, Parity, RankGrid};
    pub use qdd_util::complex::{Complex, C32, C64};
    pub use qdd_util::rng::Rng64;
    pub use qdd_util::stats::{Component, SolveStats};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_smoke_test() {
        let dims = Dims::new(4, 4, 4, 4);
        let mut rng = Rng64::new(1);
        let gauge = GaugeField::<f64>::random(dims, &mut rng, 0.3);
        let basis = GammaBasis::degrand_rossi();
        let clover = build_clover_field(&gauge, 1.0, &basis);
        let op = WilsonClover::new(gauge, clover, 0.3, BoundaryPhases::antiperiodic_t());
        let b = SpinorField::<f64>::random(dims, &mut rng);
        let mut stats = SolveStats::new();
        let (x, out) = bicgstab(
            &LocalSystem::new(&op),
            &b,
            &BiCgStabConfig { tolerance: 1e-8, max_iterations: 2000 },
            &mut stats,
        );
        assert!(out.converged);
        assert!(x.norm() > 0.0);
    }
}
