//! `qdd` — command-line driver for the lattice-qcd-dd library.
//!
//! ```text
//! qdd solve [--dims X,Y,Z,T] [--block X,Y,Z,T] [--mass M] [--spread S]
//!           [--ischwarz N] [--idomain N] [--basis M] [--deflate K]
//!           [--tol T] [--solver dd|bicgstab|cgnr|richardson] [--workers N]
//!           [--scalar-outer] [--seed N] [--half] [--no-overlap] [--trace PATH]
//! qdd hmc   [--dims X,Y,Z,T] [--beta B] [--trajectories N] [--steps N]
//!           [--length L] [--seed N]
//! qdd serve [--dims X,Y,Z,T] [--block X,Y,Z,T] [--requests N] [--configs K]
//!           [--tol T] [--deadline-ms D] [--workers N] [--max-batch B]
//!           [--queue N] [--cache N] [--seed N] [--half] [--trace PATH]
//!           [--flight-dump PATH] [--timelines] [--autotune]
//!           [--backend knc|knl-flat|knl-cache]
//!           [--shards N] [--retry-budget N] [--sick-shard I]
//!           [--ranks X,Y,Z,T] [--fault-seed N]
//! qdd chaos [--dims X,Y,Z,T] [--block X,Y,Z,T] [--ranks X,Y,Z,T]
//!           [--loss P] [--corrupt P] [--delay P] [--hiccup P]
//!           [--fault-seed N] [--restarts N] [--mass M] [--spread S]
//!           [--tol T] [--seed N] [--no-overlap] [--flight-dump PATH]
//! qdd tune  [--backend knc|knl-flat|knl-cache|all] [--nodes N]
//!           [--dims X,Y,Z,T] [--layout X,Y,Z,T] [--cores N]
//!           [--basis M] [--deflate K] [--base-outer N] [--top N]
//!           [--seed N] [--calibrate PATH] [--json PATH]
//! qdd model table2|table3|fig5|fig6|fig7|bound
//! qdd info
//! ```
//!
//! Everything is deterministic for a fixed `--seed`; `qdd chaos` is
//! additionally deterministic in its fault schedule for a fixed
//! `--fault-seed` (default: the `QDD_FAULT_SEED` environment variable).

use lattice_qcd_dd::prelude::*;
use lattice_qcd_dd::serve::{
    serve_with_flight, ConfigKey, ServeStatus, ServiceConfig, SolveRequest, SubmitError,
    SyntheticSource, Ticket,
};
use lattice_qcd_dd::trace::{breakdown_table, write_trace_files, FlightRecorder, TraceSink};
use qdd_hmc::{Hmc, HmcConfig, LeapfrogConfig};
use std::collections::HashMap;
use std::process::ExitCode;

fn parse_dims(s: &str) -> Result<Dims, String> {
    let parts: Vec<usize> = s
        .split(',')
        .map(|p| p.trim().parse::<usize>().map_err(|e| format!("bad dims '{s}': {e}")))
        .collect::<Result<_, _>>()?;
    if parts.len() != 4 {
        return Err(format!("dims must have 4 components, got '{s}'"));
    }
    Ok(Dims::new(parts[0], parts[1], parts[2], parts[3]))
}

struct Args {
    flags: HashMap<String, String>,
    bools: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut bools = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    flags.insert(name.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    bools.push(name.to_string());
                    i += 1;
                }
            } else {
                return Err(format!("unexpected argument '{a}'"));
            }
        }
        Ok(Args { flags, bools })
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse::<T>().map_err(|e| format!("--{name}: {e}")),
        }
    }

    fn dims(&self, name: &str, default: Dims) -> Result<Dims, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => parse_dims(v),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.bools.iter().any(|b| b == name)
    }
}

fn cmd_solve(args: &Args) -> Result<(), String> {
    let dims = args.dims("dims", Dims::new(8, 8, 8, 8))?;
    let block = args.dims("block", Dims::new(4, 4, 4, 4))?;
    let mass: f64 = args.get("mass", 0.1)?;
    let spread: f64 = args.get("spread", 0.45)?;
    let seed: u64 = args.get("seed", 1)?;
    let tol: f64 = args.get("tol", 1e-9)?;
    let solver_kind: String = args.get("solver", "dd".to_string())?;
    let workers: usize = args.get("workers", 1)?;

    if solver_kind == "dd" && !dims.divisible_by(&block) {
        return Err(format!("block {block} does not tile lattice {dims}"));
    }
    if solver_kind == "dd" && block.0.iter().any(|b| b % 2 != 0) {
        return Err(format!("block extents must be even, got {block}"));
    }
    println!("building synthetic configuration on {dims} (spread {spread}, seed {seed}) ...");
    let mut rng = Rng64::new(seed);
    let gauge = GaugeField::<f64>::random(dims, &mut rng, spread);
    let basis = GammaBasis::degrand_rossi();
    let clover = build_clover_field(&gauge, 1.5, &basis);
    let op = WilsonClover::new(gauge, clover, mass, BoundaryPhases::antiperiodic_t());
    let b = SpinorField::<f64>::random(dims, &mut rng);
    let mut stats = SolveStats::new();
    let trace_path = args.flags.get("trace").cloned();
    if trace_path.is_some() {
        stats.attach_sink(TraceSink::enabled());
    }

    let outcome = match solver_kind.as_str() {
        "dd" => {
            let cfg = DdSolverConfig {
                fgmres: FgmresConfig {
                    max_basis: args.get("basis", 10)?,
                    deflate: args.get("deflate", 4)?,
                    tolerance: tol,
                    max_iterations: args.get("max-iterations", 500)?,
                },
                schwarz: SchwarzConfig {
                    block,
                    i_schwarz: args.get("ischwarz", 5)?,
                    mr: MrConfig {
                        iterations: args.get("idomain", 4)?,
                        tolerance: 0.0,
                        f16_vectors: args.has("f16-spinors"),
                    },
                    additive: args.has("additive"),
                    // One switch for both schedules: the Schwarz sweep's
                    // Fig. 4 overlap and the staged outer matvec.
                    overlap: !args.has("no-overlap"),
                    ..Default::default()
                },
                precision: if args.has("half") {
                    Precision::HalfCompressed
                } else {
                    Precision::Single
                },
                workers,
                fused_outer: !args.has("scalar-outer"),
                ..Default::default()
            };
            let solver = DdSolver::new(op, cfg).ok_or("singular clover block")?;
            let (_, out) = if args.has("mixed") {
                solver.solve_mixed(&b, 1e-4, &mut stats)
            } else {
                solver.solve(&b, &mut stats)
            };
            out
        }
        "bicgstab" => {
            let sys = LocalSystem::new(&op);
            let (_, out) = bicgstab(
                &sys,
                &b,
                &BiCgStabConfig { tolerance: tol, max_iterations: 100_000 },
                &mut stats,
            );
            out
        }
        "cgnr" => {
            let sys = LocalSystem::new(&op);
            let (_, out) =
                cgnr(&sys, &b, &CgConfig { tolerance: tol, max_iterations: 200_000 }, &mut stats);
            out
        }
        "richardson" => {
            let op32: WilsonClover<f32> = op.cast();
            let sys = LocalSystem::new(&op);
            let sys32 = LocalSystem::new(&op32);
            let (_, out) = richardson_bicgstab(
                &sys,
                &sys32,
                &b,
                &RichardsonConfig { tolerance: tol, ..Default::default() },
                &mut stats,
            );
            out
        }
        other => return Err(format!("unknown solver '{other}' (dd|bicgstab|cgnr|richardson)")),
    };

    println!(
        "\n{}: {} iterations, relative residual {:.2e}",
        if outcome.converged { "converged" } else { "NOT converged" },
        outcome.iterations,
        outcome.relative_residual
    );
    println!("{stats}");
    if let Some(path) = &trace_path {
        let streams = [stats.sink().stream()];
        write_trace_files(&streams, path)
            .map_err(|e| format!("could not write trace to {path}: {e}"))?;
        println!("\ntrace written: {path} (chrome://tracing), {path}.jsonl");
        println!("{}", breakdown_table(&streams));
    }
    if outcome.converged {
        Ok(())
    } else {
        Err("solver did not reach the target".into())
    }
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    if args.flags.contains_key("shards") {
        return cmd_serve_sharded(args);
    }
    let dims = args.dims("dims", Dims::new(8, 8, 8, 8))?;
    let block = args.dims("block", Dims::new(4, 4, 4, 4))?;
    let requests: usize = args.get("requests", 8)?;
    let configs: u64 = args.get("configs", 2)?;
    let tol: f64 = args.get("tol", 1e-8)?;
    let deadline_ms: u64 = args.get("deadline-ms", 0)?;
    let seed: u64 = args.get("seed", 1)?;
    if !dims.divisible_by(&block) {
        return Err(format!("block {block} does not tile lattice {dims}"));
    }
    if configs == 0 {
        return Err("--configs must be positive".into());
    }

    let mut svc = ServiceConfig {
        queue_capacity: args.get("queue", 64)?,
        workers: args.get("workers", 1)?,
        max_batch: args.get("max-batch", 8)?,
        cache_capacity: args.get("cache", 4)?,
        ..ServiceConfig::default()
    };
    svc.solver.schwarz.block = block;
    svc.solver.fgmres.tolerance = tol;
    let precision = if args.has("half") { Precision::HalfCompressed } else { Precision::Single };
    svc.solver.precision = precision;
    svc.autotune = args.has("autotune");
    if let Some(b) = args.flags.get("backend") {
        svc.backend = lattice_qcd_dd::machine::BackendKind::parse(b)
            .ok_or_else(|| format!("unknown backend '{b}' (knc|knl-flat|knl-cache)"))?;
    }

    let trace_path = args.flags.get("trace").cloned();
    let sink = if trace_path.is_some() { TraceSink::enabled() } else { TraceSink::disabled() };
    let flight_path = args.flags.get("flight-dump").cloned();
    let flight = if flight_path.is_some() {
        FlightRecorder::with_capacity(256)
    } else {
        FlightRecorder::disabled()
    };
    if let Some(p) = &flight_path {
        if let Some(dir) = std::path::Path::new(p).parent() {
            std::fs::create_dir_all(dir).ok();
        }
        flight.set_auto_dump_path(p);
    }
    let source = SyntheticSource::new(dims);
    println!(
        "serving {requests} requests over {configs} synthetic configuration(s) on {dims} \
         ({} worker(s), batch <= {}, queue {}, cache {}) ...",
        svc.workers, svc.max_batch, svc.queue_capacity, svc.cache_capacity
    );

    let t0 = std::time::Instant::now();
    let ((responses, shed), report) = serve_with_flight(&svc, &source, &sink, &flight, |h| {
        let mut rng = Rng64::new(seed);
        let mut tickets: Vec<Ticket> = Vec::new();
        let mut shed = 0u64;
        for i in 0..requests {
            let b = SpinorField::<f64>::random(dims, &mut rng);
            let mut req = SolveRequest::new(ConfigKey(i as u64 % configs), b);
            req.tolerance = tol;
            req.precision = precision;
            if deadline_ms > 0 {
                req.deadline = Some(std::time::Duration::from_millis(deadline_ms));
            }
            match h.submit(req) {
                Ok(t) => tickets.push(t),
                Err(SubmitError::QueueFull(_)) => shed += 1,
            }
        }
        (tickets.into_iter().map(Ticket::wait).collect::<Vec<_>>(), shed)
    });
    let wall = t0.elapsed();

    let count =
        |pred: fn(&ServeStatus) -> bool| responses.iter().filter(|r| pred(&r.status)).count();
    println!("\n{:>12}  {}", "converged", count(|s| matches!(s, ServeStatus::Converged)));
    println!("{:>12}  {}", "fallback", count(|s| matches!(s, ServeStatus::Fallback)));
    println!("{:>12}  {}", "degraded", count(|s| matches!(s, ServeStatus::Degraded(_))));
    println!("{:>12}  {shed}", "shed");
    let lat = report.latency.summary();
    println!(
        "\ncache: {} hit(s) / {} miss(es) ({:.0}% hit rate)",
        report.cache_hits,
        report.cache_misses,
        100.0 * report.cache_hit_rate
    );
    if svc.autotune {
        println!(
            "tune cache [{}]: {} hit(s) / {} miss(es)",
            svc.backend, report.tune_hits, report.tune_misses
        );
    }
    println!(
        "latency: p50 {:.1} ms, p99 {:.1} ms, max {:.1} ms; queue wait p50 {:.1} ms",
        lat.p50_ms,
        lat.p99_ms,
        lat.max_ms,
        report.queue_wait.quantile_ms(0.5)
    );
    println!(
        "throughput: {:.2} solves/s ({} answered in {:.2} s)",
        report.completed as f64 / wall.as_secs_f64(),
        report.completed,
        wall.as_secs_f64()
    );

    // Model-validation join: measured wall time vs the KNC machine
    // model's price per phase (ratio 1 = the model nailed it).
    if !report.model.is_empty() {
        println!(
            "\n{:>14}  {:>11} {:>11} {:>9}",
            "model join", "measured_s", "predicted_s", "ratio"
        );
        for (key, e) in report.model.entries() {
            println!(
                "{key:>14}  {:>11.3e} {:>11.3e} {:>9.3}",
                e.measured_s,
                e.predicted_s,
                e.ratio()
            );
        }
    }

    if args.has("timelines") {
        println!("\nper-request timelines (ms since admission):");
        for t in &report.timelines {
            let stages: Vec<String> =
                t.stages.iter().map(|(s, ms)| format!("{s}@{ms:.2}")).collect();
            println!("  {} trace {}  {}", t.request, t.trace, stages.join(" -> "));
        }
    }

    if let Some(path) = &trace_path {
        let streams = [sink.stream()];
        write_trace_files(&streams, path)
            .map_err(|e| format!("could not write trace to {path}: {e}"))?;
        println!("\ntrace written: {path} (chrome://tracing), {path}.jsonl");
        println!("{}", breakdown_table(&streams));
    }
    if flight_path.is_some() {
        if let Some(p) = flight.dump("on-demand") {
            println!("flight dump written: {p} ({} event(s))", flight.snapshot().len());
        }
    }
    let failed = responses.iter().filter(|r| !r.status.meets_target()).count();
    if failed == 0 {
        Ok(())
    } else {
        Err(format!("{failed} request(s) did not reach the target"))
    }
}

/// `qdd serve --shards N`: the supervised shard pool. Each shard is one
/// simulated multi-rank world; `--sick-shard I` puts shard `I` under a
/// 100% message-loss plan to demonstrate breaker + failover, and the
/// whole run is deterministic for a fixed `--fault-seed`.
fn cmd_serve_sharded(args: &Args) -> Result<(), String> {
    use lattice_qcd_dd::faults::{FaultRates, ShardFaults};
    use lattice_qcd_dd::serve::{shard_serve_with_flight, PoolTicket, ShardPoolConfig};

    let dims = args.dims("dims", Dims::new(8, 8, 8, 8))?;
    let block = args.dims("block", Dims::new(4, 4, 4, 4))?;
    let ranks = args.dims("ranks", Dims::new(1, 1, 1, 2))?;
    let requests: usize = args.get("requests", 8)?;
    let configs: u64 = args.get("configs", 2)?;
    let tol: f64 = args.get("tol", 1e-8)?;
    let deadline_ms: u64 = args.get("deadline-ms", 0)?;
    let seed: u64 = args.get("seed", 1)?;
    let shards: usize = args.get("shards", 2)?;
    let retry_budget: u32 = args.get("retry-budget", 2)?;
    let fault_seed_default =
        std::env::var("QDD_FAULT_SEED").ok().and_then(|v| v.parse::<u64>().ok()).unwrap_or(1);
    let fault_seed: u64 = args.get("fault-seed", fault_seed_default)?;
    if !dims.divisible_by(&block) {
        return Err(format!("block {block} does not tile lattice {dims}"));
    }
    if !dims.divisible_by(&ranks) {
        return Err(format!("rank grid {ranks} does not tile lattice {dims}"));
    }
    if shards == 0 {
        return Err("--shards must be positive".into());
    }
    if configs == 0 {
        return Err("--configs must be positive".into());
    }

    let mut cfg = ShardPoolConfig {
        shards,
        rank_dims: ranks,
        retry_budget,
        setup_cache_capacity: args.get("cache", 4)?,
        ..ShardPoolConfig::default()
    };
    cfg.solver.schwarz.block = block;
    cfg.solver.fgmres.tolerance = tol;
    let precision = if args.has("half") { Precision::HalfCompressed } else { Precision::Single };
    cfg.solver.precision = precision;

    let mut faults = ShardFaults::none(fault_seed);
    let sick: Option<usize> = match args.flags.get("sick-shard") {
        None => None,
        Some(v) => Some(v.parse::<usize>().map_err(|e| format!("--sick-shard: {e}"))?),
    };
    if let Some(s) = sick {
        if s >= shards {
            return Err(format!("--sick-shard {s} out of range (pool has {shards} shards)"));
        }
        faults = faults.with_shard(s, FaultRates { loss: 1.0, ..FaultRates::default() });
    }

    let sink = TraceSink::disabled();
    let flight_path = args.flags.get("flight-dump").cloned();
    let flight = if flight_path.is_some() {
        FlightRecorder::with_capacity(256)
    } else {
        FlightRecorder::disabled()
    };
    if let Some(p) = &flight_path {
        if let Some(dir) = std::path::Path::new(p).parent() {
            std::fs::create_dir_all(dir).ok();
        }
        flight.set_auto_dump_path(p);
    }
    let source = SyntheticSource::new(dims);
    println!(
        "serving {requests} requests over {configs} synthetic configuration(s) on {dims} \
         ({shards} shard(s) of {ranks} rank(s), retry budget {retry_budget}, fault seed \
         {fault_seed}{}) ...",
        sick.map(|s| format!(", shard {s} sick")).unwrap_or_default()
    );

    let t0 = std::time::Instant::now();
    let (responses, report) =
        shard_serve_with_flight(&cfg, &source, &faults, &sink, &flight, |h| {
            let mut rng = Rng64::new(seed);
            let reqs: Vec<SolveRequest> = (0..requests)
                .map(|i| {
                    let b = SpinorField::<f64>::random(dims, &mut rng);
                    let mut req = SolveRequest::new(ConfigKey(i as u64 % configs), b);
                    req.tolerance = tol;
                    req.precision = precision;
                    if deadline_ms > 0 {
                        req.deadline = Some(std::time::Duration::from_millis(deadline_ms));
                    }
                    req
                })
                .collect();
            h.submit_wave(reqs).into_iter().map(PoolTicket::wait).collect::<Vec<_>>()
        });
    let wall = t0.elapsed();

    let count =
        |pred: fn(&ServeStatus) -> bool| responses.iter().filter(|r| pred(&r.status)).count();
    println!("\n{:>12}  {}", "converged", count(|s| matches!(s, ServeStatus::Converged)));
    println!("{:>12}  {}", "fallback", count(|s| matches!(s, ServeStatus::Fallback)));
    println!("{:>12}  {}", "degraded", count(|s| matches!(s, ServeStatus::Degraded(_))));
    println!("{:>12}  {}", "shed", report.shed);
    println!("{:>12}  {}", "failovers", report.failovers);

    println!(
        "\n{:>6} {:>6} {:>9} {:>6} {:>11} {:>10}",
        "shard", "jobs", "failures", "trips", "breaker", "heartbeat"
    );
    for (i, (jobs, fails)) in report.shard_jobs.iter().zip(&report.shard_failures).enumerate() {
        let state = report
            .metrics
            .gauge(&format!("serve.shard.{i}.state"))
            .map(|g| {
                if g == 0.0 {
                    "closed"
                } else if g == 1.0 {
                    "open"
                } else {
                    "half-open"
                }
            })
            .unwrap_or("?");
        let hb = report.metrics.gauge(&format!("serve.shard.{i}.last_heartbeat")).unwrap_or(0.0);
        println!(
            "{i:>6} {jobs:>6} {fails:>9} {:>6} {state:>11} {hb:>10}",
            report
                .breaker_transitions
                .iter()
                .filter(|(s, t)| *s == i && t.to == lattice_qcd_dd::serve::BreakerState::Open)
                .count()
        );
    }
    if !report.breaker_transitions.is_empty() {
        println!("\nbreaker transitions (round-clocked):");
        for (s, t) in &report.breaker_transitions {
            println!("  shard {s}: {} -> {} at round {}", t.from.label(), t.to.label(), t.round);
        }
    }
    println!(
        "\nsetup cache: {} hit(s) / {} miss(es) / {} eviction(s)",
        report.setup_hits, report.setup_misses, report.setup_evictions
    );
    let lat = report.latency.summary();
    println!(
        "latency: p50 {:.1} ms, p99 {:.1} ms, max {:.1} ms; {} dispatch round(s)",
        lat.p50_ms, lat.p99_ms, lat.max_ms, report.rounds
    );
    println!(
        "throughput: {:.2} solves/s ({} answered in {:.2} s)",
        report.completed as f64 / wall.as_secs_f64(),
        report.completed,
        wall.as_secs_f64()
    );

    if args.has("timelines") {
        println!("\nper-request timelines (ms since admission):");
        for t in &report.timelines {
            let stages: Vec<String> =
                t.stages.iter().map(|(s, ms)| format!("{s}@{ms:.2}")).collect();
            println!("  {} trace {}  {}", t.request, t.trace, stages.join(" -> "));
        }
    }
    if flight_path.is_some() {
        if let Some(p) = flight.dump("on-demand") {
            println!("flight dump written: {p} ({} event(s))", flight.snapshot().len());
        }
    }

    // Shed requests are an explicit service decision, not a failure; a
    // degraded answer with every shard tried is only acceptable when the
    // operator made the whole pool sick on purpose.
    let failed = responses
        .iter()
        .filter(|r| !r.status.meets_target() && r.status != ServeStatus::Shed)
        .count();
    if failed == 0 {
        Ok(())
    } else {
        Err(format!("{failed} request(s) did not reach the target"))
    }
}

fn cmd_chaos(args: &Args) -> Result<(), String> {
    use lattice_qcd_dd::comm::{
        dd_solve_resilient, gather_field, run_spmd, scatter_clover, scatter_field, scatter_gauge,
        CommWorld, DistDdConfig,
    };
    use lattice_qcd_dd::faults::{FaultPlan, FaultRates};

    let dims = args.dims("dims", Dims::new(8, 8, 8, 8))?;
    let block = args.dims("block", Dims::new(4, 4, 4, 4))?;
    let ranks = args.dims("ranks", Dims::new(1, 1, 1, 2))?;
    let mass: f64 = args.get("mass", 0.1)?;
    let spread: f64 = args.get("spread", 0.45)?;
    let seed: u64 = args.get("seed", 1)?;
    let tol: f64 = args.get("tol", 1e-9)?;
    let max_restarts: u32 = args.get("restarts", 2)?;
    let fault_seed_default =
        std::env::var("QDD_FAULT_SEED").ok().and_then(|v| v.parse::<u64>().ok()).unwrap_or(1);
    let fault_seed: u64 = args.get("fault-seed", fault_seed_default)?;
    let rates = FaultRates {
        loss: args.get("loss", 0.01)?,
        corrupt: args.get("corrupt", 0.01)?,
        delay: args.get("delay", 0.01)?,
        hiccup: args.get("hiccup", 0.005)?,
    };

    if !dims.divisible_by(&ranks) {
        return Err(format!("rank grid {ranks} does not tile lattice {dims}"));
    }
    let grid = RankGrid::new(dims, ranks);
    let local = *grid.local();
    if !local.divisible_by(&block) {
        return Err(format!("block {block} does not tile the rank-local lattice {local}"));
    }
    if block.0.iter().any(|b| b % 2 != 0) {
        return Err(format!("block extents must be even, got {block}"));
    }

    println!(
        "chaos solve on {dims} over {} rank(s) {ranks}; faults: loss {:.3} corrupt {:.3} \
         delay {:.3} hiccup {:.3} (fault seed {fault_seed})",
        grid.num_ranks(),
        rates.loss,
        rates.corrupt,
        rates.delay,
        rates.hiccup,
    );
    let mut rng = Rng64::new(seed);
    let gauge = GaugeField::<f64>::random(dims, &mut rng, spread);
    let basis = GammaBasis::degrand_rossi();
    let clover = build_clover_field(&gauge, 1.5, &basis);
    let b = SpinorField::<f64>::random(dims, &mut rng);
    let phases = BoundaryPhases::antiperiodic_t();

    let local_gauge = scatter_gauge(&gauge, &grid);
    let local_clover = scatter_clover(&clover, &grid);
    let b_local = scatter_field(&b, &grid);
    let cfg = DistDdConfig {
        fgmres: FgmresConfig {
            max_basis: args.get("basis", 10)?,
            deflate: args.get("deflate", 4)?,
            tolerance: tol,
            max_iterations: args.get("max-iterations", 300)?,
        },
        schwarz: SchwarzConfig {
            block,
            i_schwarz: args.get("ischwarz", 4)?,
            mr: MrConfig {
                iterations: args.get("idomain", 4)?,
                tolerance: 0.0,
                f16_vectors: false,
            },
            additive: false,
            // Governs the outer matvec's staged schedule too, so chaos
            // runs exercise the same drain paths the solve CLI uses.
            overlap: !args.has("no-overlap"),
            ..Default::default()
        },
        precision: if args.has("half") { Precision::HalfCompressed } else { Precision::Single },
    };

    // Flight recorder: each rank records on its own lane under a trace
    // id derived from the fault seed, so a dump correlates injected
    // faults with the rank/attempt they hit.
    let flight_path = args.flags.get("flight-dump").cloned();
    let flight = if flight_path.is_some() {
        FlightRecorder::with_capacity(256)
    } else {
        FlightRecorder::disabled()
    };
    if let Some(p) = &flight_path {
        if let Some(dir) = std::path::Path::new(p).parent() {
            std::fs::create_dir_all(dir).ok();
        }
        flight.set_auto_dump_path(p);
    }

    let world = CommWorld::with_faults(grid.clone(), FaultPlan::new(fault_seed, rates));
    let flight_ref = &flight;
    let results = run_spmd(&world, |ctx| {
        let r = ctx.rank();
        ctx.attach_flight(flight_ref.lane(r as u32));
        ctx.set_trace_id(lattice_qcd_dd::trace::TraceId::derive(fault_seed, r as u64));
        let op = WilsonClover::new(local_gauge[r].clone(), local_clover[r].clone(), mass, phases);
        let mut stats = SolveStats::new();
        let (x, out, comm) =
            dd_solve_resilient(ctx, &op, &b_local[r], &cfg, max_restarts, &mut stats);
        (x, out, comm)
    });

    let (_, out0, _) = &results[0];
    println!(
        "\n{}: {} iterations, relative residual {:.2e}, {} restart(s), {} rollback(s)",
        if out0.outcome.converged { "converged" } else { "NOT converged" },
        out0.outcome.iterations,
        out0.outcome.relative_residual,
        out0.restarts,
        out0.rollbacks,
    );
    if let Some(b) = out0.outcome.breakdown {
        println!("unrecovered breakdown: {b}");
    }
    if out0.comm_faulted {
        println!("communication faults exhausted retries on at least one rank (degraded faces)");
    }
    println!(
        "\n{:>4}  {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "rank",
        "retries",
        "timeout",
        "corrupt",
        "delays",
        "hiccups",
        "pskips",
        "zerofills",
        "delay_us"
    );
    for (r, (_, _, comm)) in results.iter().enumerate() {
        let f = &comm.faults;
        println!(
            "{r:>4}  {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10.0}",
            f.retries,
            f.timeouts,
            f.corruptions,
            f.delays,
            f.hiccups,
            f.peer_skips,
            f.zero_fills,
            f.delay_us
        );
    }

    // Fault verdict: any injected-fault activity auto-dumps the flight
    // rings — the black box lands next to the run that tripped it.
    let fault_activity = results.iter().any(|(_, _, c)| {
        let f = &c.faults;
        f.retries + f.timeouts + f.corruptions + f.delays + f.hiccups + f.peer_skips > 0
    });
    if fault_activity {
        if let Some(p) = flight.dump("fault-verdict") {
            println!("\nflight dump written: {p} ({} event(s))", flight.snapshot().len());
        }
    }

    // Ground-truth check: the recovered solution must actually solve the
    // fault-free system.
    let locals: Vec<SpinorField<f64>> = results.iter().map(|r| r.0.clone()).collect();
    let x = gather_field(&locals, &grid);
    let op = WilsonClover::new(gauge, clover, mass, phases);
    let mut ax = SpinorField::zeros(dims);
    op.apply(&mut ax, &x);
    ax.sub_assign(&b);
    let true_rel = ax.norm() / b.norm();
    println!("\ntrue residual against the fault-free operator: {true_rel:.2e}");

    if out0.outcome.converged && true_rel <= 10.0 * tol {
        Ok(())
    } else {
        Err("chaos solve did not reach the target".into())
    }
}

fn cmd_tune(args: &Args) -> Result<(), String> {
    use lattice_qcd_dd::autotune::{Autotuner, Calibration, TuneProblem};
    use lattice_qcd_dd::machine::BackendKind;

    // Which backends to search. "all" ranks the same problem on every
    // modeled machine side by side.
    let backend_s: String = args.get("backend", "knc".to_string())?;
    let kinds: Vec<BackendKind> = if backend_s == "all" {
        BackendKind::ALL.to_vec()
    } else {
        vec![BackendKind::parse(&backend_s)
            .ok_or_else(|| format!("unknown backend '{backend_s}' (knc|knl-flat|knl-cache|all)"))?]
    };

    // The problem: either the paper's 48^3x64 strong-scaling workload on
    // --nodes co-processors, or a custom --dims/--layout/--cores shape.
    let problem = if args.flags.contains_key("dims") {
        let dims = args.dims("dims", Dims::new(8, 8, 8, 8))?;
        let layout = args.dims("layout", Dims::new(1, 1, 1, 1))?;
        if !dims.divisible_by(&layout) {
            return Err(format!("layout {layout} does not tile lattice {dims}"));
        }
        let cores: usize = args.get("cores", 0)?;
        TuneProblem {
            dims,
            layout,
            max_basis: args.get("basis", 16)?,
            deflate: args.get("deflate", 4)?,
            base_outer: args.get("base-outer", 100)?,
            cores: if cores == 0 { None } else { Some(cores) },
        }
    } else {
        let nodes: usize = args.get("nodes", 64)?;
        TuneProblem::paper_48(nodes)
            .ok_or_else(|| format!("no rank layout tiles the paper lattice over {nodes} nodes"))?
    };

    // Optional predict -> measure -> correct: calibrate from a bench
    // report that carries a model_join series (BENCH_serve.json,
    // BENCH_telemetry.json, BENCH_autotune.json).
    let calibration = match args.flags.get("calibrate") {
        None => Calibration::identity(),
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("could not read {path}: {e}"))?;
            Calibration::from_bench_json(&text)
                .ok_or_else(|| format!("{path} carries no model_join series"))?
        }
    };

    let top: usize = args.get("top", 5)?;
    println!(
        "tuning {} on ranks {} (local {}){}",
        problem.dims,
        problem.layout,
        problem.local(),
        if calibration.is_identity() { "" } else { " [calibrated]" }
    );

    let mut json_plans = Vec::new();
    for kind in kinds {
        let mut tuner = Autotuner::new(kind).with_calibration(calibration.clone());
        if let Some(seed) = args.flags.get("seed") {
            tuner = tuner.with_seed(seed.parse().map_err(|e| format!("--seed: {e}"))?);
        }
        let plan = tuner.tune(&problem);
        println!(
            "\n{kind}: {} candidate(s) ranked of {} evaluated \
             (rejected: {} load, {} hiding, {} invalid; fingerprint {:016x})",
            plan.ranked.len(),
            plan.evaluated,
            plan.rejected_load,
            plan.rejected_hiding,
            plan.rejected_invalid,
            plan.fingerprint,
        );
        match &plan.default_params {
            Some(d) => println!("  default  {}", d.describe()),
            None => println!("  default  (paper point infeasible on this problem)"),
        }
        for (i, p) in plan.ranked.iter().take(top).enumerate() {
            println!("  #{:<6} {}", i + 1, p.describe());
        }
        if let Some(s) = plan.speedup_over_default() {
            println!("  model-predicted speedup over default: {s:.3}x");
        }
        if plan.ranked.is_empty() {
            println!("  no feasible operating point (constraints reject every candidate)");
        }
        json_plans.push(plan);
    }

    if let Some(path) = args.flags.get("json") {
        let text = serde_json::to_string_pretty(&json_plans)
            .map_err(|e| format!("serialize plans: {e}"))?;
        if let Some(dir) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(dir).ok();
        }
        std::fs::write(path, text).map_err(|e| format!("could not write {path}: {e}"))?;
        println!("\nplans written: {path}");
    }
    Ok(())
}

fn cmd_hmc(args: &Args) -> Result<(), String> {
    let dims = args.dims("dims", Dims::new(4, 4, 4, 8))?;
    let beta: f64 = args.get("beta", 5.9)?;
    let n: usize = args.get("trajectories", 20)?;
    let steps: usize = args.get("steps", 50)?;
    let length: f64 = args.get("length", 0.5)?;
    let seed: u64 = args.get("seed", 1)?;

    println!("quenched HMC on {dims} at beta = {beta} ({n} trajectories) ...");
    let cfg = HmcConfig { beta, leapfrog: LeapfrogConfig { steps, length } };
    let mut hmc = Hmc::cold_start(dims, cfg, seed);
    for i in 0..n {
        let (acc, dh) = hmc.trajectory();
        println!(
            "traj {i:>3}: dH {dh:+9.4}  {}  plaquette {:.4}",
            if acc { "accept" } else { "reject" },
            hmc.stats.plaquette.last().unwrap()
        );
    }
    println!(
        "\nacceptance {:.0}%, <exp(-dH)> = {:.3}, final plaquette {:.4}",
        100.0 * hmc.stats.acceptance(),
        hmc.stats.creutz(),
        hmc.stats.plaquette.last().unwrap()
    );
    Ok(())
}

fn cmd_model(which: &str) -> Result<(), String> {
    // The model generators live in qdd-bench binaries; point there.
    match which {
        "table2" | "table3" | "fig5" | "fig6" | "fig7" | "bound" => {
            println!("run: cargo run -p qdd-bench --release --bin {which}");
            Ok(())
        }
        other => Err(format!("unknown model target '{other}'")),
    }
}

fn cmd_info() {
    println!("lattice-qcd-dd: Rust reproduction of Heybrock et al., SC 2014");
    println!("(domain-decomposition Wilson-Clover solver for KNC clusters)\n");
    let chip = lattice_qcd_dd::machine::chip::ChipSpec::knc_7110p();
    println!(
        "modeled chip: {} cores @ {} GHz, {:.0} Gflop/s sp peak",
        chip.cores,
        chip.freq_ghz,
        chip.peak_sp_gflops()
    );
    let (eff, bound) = lattice_qcd_dd::machine::kernel::wilson_clover_bound(&chip);
    println!(
        "Wilson-Clover compute bound: {:.1}% efficiency, {:.1} Gflop/s/core",
        100.0 * eff,
        bound
    );
    println!(
        "\nsubcommands: solve, serve, hmc, chaos, tune, \
         model <table2|table3|fig5|fig6|fig7|bound>, info"
    );
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(|s| s.as_str()) {
        Some("solve") => Args::parse(&argv[1..]).and_then(|a| cmd_solve(&a)),
        Some("serve") => Args::parse(&argv[1..]).and_then(|a| cmd_serve(&a)),
        Some("hmc") => Args::parse(&argv[1..]).and_then(|a| cmd_hmc(&a)),
        Some("tune") => Args::parse(&argv[1..]).and_then(|a| cmd_tune(&a)),
        Some("chaos") => Args::parse(&argv[1..]).and_then(|a| cmd_chaos(&a)),
        Some("model") => match argv.get(1) {
            Some(w) => cmd_model(w),
            None => Err("model needs a target".into()),
        },
        Some("info") | None => {
            cmd_info();
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
