//! The full lattice-QCD campaign in miniature — both of the paper's use
//! cases in one pipeline (Sec. IV-C):
//!
//! 1. **data generation**: a quenched HMC Markov chain produces a
//!    thermalized gauge ensemble (the inherently serial part whose
//!    strong-scaling limit the DD solver extends);
//! 2. **data analysis**: on each saved configuration, the DD solver
//!    computes a propagator-style solve (the embarrassingly parallel part
//!    whose KNC-minutes cost Fig. 7 optimizes).
//!
//! Run: `cargo run --example ensemble --release`

use lattice_qcd_dd::prelude::*;
use qdd_hmc::{Hmc, HmcConfig, LeapfrogConfig};

fn main() {
    let dims = Dims::new(4, 4, 4, 8);
    let beta = 5.9;

    // --- Phase 1: generate the ensemble -------------------------------
    println!("phase 1: quenched HMC at beta = {beta} on {dims}");
    let cfg = HmcConfig { beta, leapfrog: LeapfrogConfig { steps: 60, length: 0.5 } };
    let mut hmc = Hmc::cold_start(dims, cfg, 12345);
    println!("thermalizing (15 trajectories) ...");
    hmc.run(15);
    println!(
        "  acceptance {:.0}%, <exp(-dH)> = {:.3} (must be ~1), plaquette {:.4}",
        100.0 * hmc.stats.acceptance(),
        hmc.stats.creutz(),
        hmc.stats.plaquette.last().unwrap()
    );

    let n_configs = 3;
    let separation = 4;
    let mut ensemble = Vec::new();
    println!("sampling {n_configs} configurations ({separation} trajectories apart) ...");
    for i in 0..n_configs {
        hmc.run(separation);
        println!("  config {i}: plaquette {:.4}", hmc.stats.plaquette.last().unwrap());
        ensemble.push(hmc.gauge.clone());
    }

    // --- Phase 2: measure on each configuration -----------------------
    println!("\nphase 2: DD solves on each configuration");
    let solver_cfg = DdSolverConfig {
        fgmres: FgmresConfig { max_basis: 10, deflate: 4, tolerance: 1e-9, max_iterations: 300 },
        schwarz: SchwarzConfig {
            block: Dims::new(4, 2, 2, 2),
            i_schwarz: 5,
            mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
            additive: false,
            overlap: true,
            ..Default::default()
        },
        precision: Precision::Single,
        workers: 1,
        fused_outer: true,
        ..Default::default()
    };
    let basis = GammaBasis::degrand_rossi();
    let mut rng = Rng64::new(999);
    let b = SpinorField::<f64>::random(dims, &mut rng);

    let mut results = Vec::new();
    for (i, gauge) in ensemble.into_iter().enumerate() {
        let clover = build_clover_field(&gauge, 1.5, &basis);
        let op = WilsonClover::new(gauge, clover, 0.3, BoundaryPhases::antiperiodic_t());
        let solver = DdSolver::new(op, solver_cfg).expect("invertible clover blocks");
        let mut stats = SolveStats::new();
        let (x, out) = solver.solve(&b, &mut stats);
        assert!(out.converged);
        let norm = x.norm();
        println!(
            "  config {i}: {} outer iterations, residual {:.1e}, |x| = {:.4}",
            out.iterations, out.relative_residual, norm
        );
        results.push(norm);
    }

    // Configurations differ, so the observables fluctuate gauge by gauge —
    // that fluctuation IS the Monte Carlo signal.
    let mean = results.iter().sum::<f64>() / results.len() as f64;
    let var = results.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / results.len() as f64;
    println!("\nobservable |x| over the ensemble: mean {:.4}, stddev {:.4}", mean, var.sqrt());
    println!("pipeline complete: generation (HMC) + analysis (DD solves).");
}
