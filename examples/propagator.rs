//! Data-analysis scenario (paper Sec. IV-C3): compute a point-to-all quark
//! propagator — twelve Dirac solves, one per source spin-color — and
//! contract it into a pion correlator `C(t)`.
//!
//! This is exactly the workload for which the paper optimizes
//! KNC-minutes-per-solve: propagators dominate the analysis phase of a
//! lattice computation. The correlator must decay exponentially in t
//! (a positive effective mass), which is a physics-level validation that
//! the whole solver stack produces a genuine Dirac-operator inverse.
//!
//! Run: `cargo run --example propagator --release`

use lattice_qcd_dd::prelude::*;

fn main() {
    let dims = Dims::new(8, 8, 8, 16);
    let mut rng = Rng64::new(42);

    println!("generating synthetic configuration on {dims} ...");
    let gauge = GaugeField::<f64>::random(dims, &mut rng, 0.35);
    println!("  average plaquette: {:.4}", average_plaquette(&gauge));
    let basis = GammaBasis::degrand_rossi();
    let clover = build_clover_field(&gauge, 1.3, &basis);
    let op = WilsonClover::new(gauge, clover, 0.35, BoundaryPhases::antiperiodic_t());

    let config = DdSolverConfig {
        fgmres: FgmresConfig { max_basis: 10, deflate: 4, tolerance: 1e-9, max_iterations: 300 },
        schwarz: SchwarzConfig {
            block: Dims::new(4, 4, 4, 4),
            i_schwarz: 5,
            mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
            additive: false,
            overlap: true,
            ..Default::default()
        },
        precision: Precision::Single,
        workers: 4,
        fused_outer: true,
        ..Default::default()
    };
    let solver = DdSolver::new(op, config).expect("solver setup");
    let indexer = solver.op().indexer();
    let src_site = indexer.index(&Coord::new(0, 0, 0, 0));

    // Twelve solves: one per (spin, color) of the point source.
    println!("computing point propagator: 12 solves ...");
    let mut propagator: Vec<SpinorField<f64>> = Vec::with_capacity(12);
    let mut total_iters = 0;
    for s in 0..4 {
        for c in 0..3 {
            let mut b = SpinorField::<f64>::zeros(dims);
            b.site_mut(src_site).0[s].0[c] = Complex::ONE;
            let mut stats = SolveStats::new();
            let (x, out) = solver.solve(&b, &mut stats);
            assert!(out.converged, "source ({s},{c}) failed: {}", out.relative_residual);
            total_iters += out.iterations;
            println!(
                "  source (spin {s}, color {c}): {} iterations, residual {:.1e}",
                out.iterations, out.relative_residual
            );
            propagator.push(x);
        }
    }
    println!("average outer iterations per solve: {:.1}", total_iters as f64 / 12.0);

    // Pion correlator: C(t) = sum_{x,t fixed} sum_{s,c,s',c'} |S(x; s c <- s' c')|^2.
    // (gamma5-hermiticity makes the pion contraction a plain square sum.)
    let lt = dims[Dir::T];
    let mut corr = vec![0.0f64; lt];
    for src in &propagator {
        for site in 0..dims.volume() {
            let t = indexer.coord(site)[Dir::T];
            corr[t] += src.site(site).norm_sqr();
        }
    }

    println!("\npion correlator and effective mass:");
    println!("{:>3} {:>14} {:>10}", "t", "C(t)", "m_eff(t)");
    for t in 0..lt / 2 {
        let meff =
            if t + 1 < lt && corr[t + 1] > 0.0 { (corr[t] / corr[t + 1]).ln() } else { f64::NAN };
        println!("{:>3} {:>14.6e} {:>10.4}", t, corr[t], meff);
    }

    // Physics sanity: the correlator decays away from the source.
    assert!(corr[1] > corr[3] && corr[3] > corr[5], "correlator must decay");
    println!("\ncorrelator decays monotonically away from the source: OK");
}
