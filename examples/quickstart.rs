//! Quickstart: assemble a Wilson-Clover operator on a synthetic gauge
//! configuration and solve `A x = b` with the paper's DD solver —
//! FGMRES-DR outer, multiplicative Schwarz preconditioner inner.
//!
//! Run: `cargo run --example quickstart --release`

use lattice_qcd_dd::prelude::*;

fn main() {
    // A 16x8x8x8 lattice with 4^4 Schwarz domains (the paper uses 8x4^3
    // domains on production volumes; everything here is scaled down to
    // laptop size).
    let dims = Dims::new(16, 8, 8, 8);
    let mut rng = Rng64::new(7);

    println!("building synthetic gauge configuration on {dims} ...");
    let gauge = GaugeField::<f64>::random(dims, &mut rng, 0.5);
    println!("  average plaquette: {:.4}", average_plaquette(&gauge));

    let basis = GammaBasis::degrand_rossi();
    let clover = build_clover_field(&gauge, 1.5, &basis);
    let op = WilsonClover::new(gauge, clover, 0.1, BoundaryPhases::antiperiodic_t());

    let config = DdSolverConfig {
        fgmres: FgmresConfig { max_basis: 12, deflate: 4, tolerance: 1e-10, max_iterations: 300 },
        schwarz: SchwarzConfig {
            block: Dims::new(4, 4, 4, 4),
            i_schwarz: 6,
            mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
            additive: false,
            overlap: true,
            ..Default::default()
        },
        precision: Precision::Single,
        workers: 4,        // Schwarz sweeps on 4 worker threads (paper: 60 cores)
        fused_outer: true, // outer matvec on the full-lattice SIMD kernel
        ..Default::default()
    };
    let solver = DdSolver::new(op, config).expect("clover blocks invertible");

    let b = SpinorField::<f64>::random(dims, &mut rng);
    println!("solving A x = b to 1e-10 (outer f64, preconditioner f32) ...");
    let mut stats = SolveStats::new();
    let (x, outcome) = solver.solve(&b, &mut stats);

    println!(
        "\nconverged: {} in {} outer iterations ({} restart cycles)",
        outcome.converged, outcome.iterations, outcome.cycles
    );
    println!("true relative residual: {:.2e}", outcome.relative_residual);
    println!("\n{stats}");
    let fr = stats.flop_fractions();
    println!(
        "\nflop split: A {:.0}%  M {:.0}%  GS {:.0}%  other {:.0}%  (paper: M dominates at 80-90%)",
        100.0 * fr[0],
        100.0 * fr[1],
        100.0 * fr[2],
        100.0 * fr[3]
    );

    // Verify independently.
    let mut ax = SpinorField::zeros(dims);
    solver.op().apply(&mut ax, &x);
    let mut r = b.clone();
    r.sub_assign(&ax);
    println!("independent residual check: {:.2e}", r.norm() / b.norm());
}
