//! Algorithmic comparison of the full solver family on one problem —
//! the content of the paper's Sec. II-C/II-D argument, measured with the
//! real implementations: the DD solver needs far fewer outer iterations
//! and global sums than the Krylov baselines, which is exactly what makes
//! it strong-scale.
//!
//! Run: `cargo run --example solver_comparison --release`

use lattice_qcd_dd::prelude::*;
use std::time::Instant;

fn op(dims: Dims, seed: u64) -> WilsonClover<f64> {
    let mut rng = Rng64::new(seed);
    let gauge = GaugeField::<f64>::random(dims, &mut rng, 0.45);
    let basis = GammaBasis::degrand_rossi();
    let clover = build_clover_field(&gauge, 1.4, &basis);
    WilsonClover::new(gauge, clover, 0.08, BoundaryPhases::antiperiodic_t())
}

fn main() {
    let dims = Dims::new(8, 8, 8, 8);
    let tol = 1e-9;
    let mut rng = Rng64::new(91);
    let b = SpinorField::<f64>::random(dims, &mut rng);

    println!("solver comparison on {dims}, synthetic configuration, target {tol:.0e}\n");
    println!(
        "{:>22} {:>9} {:>9} {:>12} {:>12} {:>10}",
        "solver", "iters", "gsums", "A-apps", "resid", "time [s]"
    );

    let report = |name: &str, iters: usize, stats: &SolveStats, resid: f64, secs: f64| {
        println!(
            "{:>22} {:>9} {:>9} {:>12} {:>12.1e} {:>10.2}",
            name,
            iters,
            stats.global_sums(),
            stats.operator_applications(),
            resid,
            secs
        );
    };

    // DD: FGMRES-DR + multiplicative Schwarz.
    {
        let cfg = DdSolverConfig {
            fgmres: FgmresConfig { max_basis: 12, deflate: 6, tolerance: tol, max_iterations: 400 },
            schwarz: SchwarzConfig {
                block: Dims::new(4, 4, 4, 4),
                i_schwarz: 6,
                mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
                additive: false,
                overlap: true,
                ..Default::default()
            },
            precision: Precision::Single,
            workers: 1,
            fused_outer: true,
            ..Default::default()
        };
        let solver = DdSolver::new(op(dims, 90), cfg).unwrap();
        let mut stats = SolveStats::new();
        let t = Instant::now();
        let (_, out) = solver.solve(&b, &mut stats);
        assert!(out.converged);
        report(
            "DD (FGMRES-DR+SAP)",
            out.iterations,
            &stats,
            out.relative_residual,
            t.elapsed().as_secs_f64(),
        );
    }

    let operator = op(dims, 90);
    let sys = LocalSystem::new(&operator);

    // Lüscher's combination: SAP-preconditioned flexible GCR (Sec. V).
    {
        let pre = SchwarzPreconditioner::new(
            op(dims, 90).cast::<f32>(),
            SchwarzConfig {
                block: Dims::new(4, 4, 4, 4),
                i_schwarz: 6,
                mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
                additive: false,
                overlap: true,
                ..Default::default()
            },
        )
        .unwrap();
        let mut stats = SolveStats::new();
        let mut precond = |r: &SpinorField<f64>, st: &mut SolveStats| -> SpinorField<f64> {
            pre.apply(&r.cast(), st).cast()
        };
        let t = Instant::now();
        let (_, out) = gcr(
            &sys,
            &b,
            &mut precond,
            &GcrConfig { restart: 12, tolerance: tol, max_iterations: 400 },
            &mut stats,
        );
        assert!(out.converged);
        report(
            "GCR+SAP (Luscher)",
            out.iterations,
            &stats,
            out.relative_residual,
            t.elapsed().as_secs_f64(),
        );
    }

    // Unpreconditioned FGMRES-DR.
    {
        let cfg = FgmresConfig { max_basis: 16, deflate: 8, tolerance: tol, max_iterations: 4000 };
        let mut stats = SolveStats::new();
        let mut ident = |r: &SpinorField<f64>, _: &mut SolveStats| r.clone();
        let t = Instant::now();
        let (_, out) = fgmres_dr(&sys, &b, &mut ident, &cfg, &mut stats);
        assert!(out.converged);
        report(
            "GMRES-DR(16,8)",
            out.iterations,
            &stats,
            out.relative_residual,
            t.elapsed().as_secs_f64(),
        );
    }

    // BiCGstab (double).
    {
        let mut stats = SolveStats::new();
        let t = Instant::now();
        let (_, out) = bicgstab(
            &sys,
            &b,
            &BiCgStabConfig { tolerance: tol, max_iterations: 50_000 },
            &mut stats,
        );
        assert!(out.converged);
        report(
            "BiCGstab (f64)",
            out.iterations,
            &stats,
            out.relative_residual,
            t.elapsed().as_secs_f64(),
        );
    }

    // Mixed-precision Richardson/BiCGstab.
    {
        let op32: WilsonClover<f32> = operator.cast();
        let sys32 = LocalSystem::new(&op32);
        let mut stats = SolveStats::new();
        let t = Instant::now();
        let (_, out) = richardson_bicgstab(
            &sys,
            &sys32,
            &b,
            &RichardsonConfig { tolerance: tol, ..Default::default() },
            &mut stats,
        );
        assert!(out.converged);
        report(
            "Richardson mixed",
            out.iterations,
            &stats,
            out.relative_residual,
            t.elapsed().as_secs_f64(),
        );
    }

    // CGNR — the "CG on normal equations" strawman.
    {
        let mut stats = SolveStats::new();
        let t = Instant::now();
        let (_, out) =
            cgnr(&sys, &b, &CgConfig { tolerance: tol, max_iterations: 100_000 }, &mut stats);
        assert!(out.converged);
        report("CGNR", out.iterations, &stats, out.relative_residual, t.elapsed().as_secs_f64());
    }

    println!("\nThe DD row shows the paper's headline pattern: an order of magnitude");
    println!("fewer outer iterations and global sums than any Krylov baseline, at the");
    println!("price of (cache-resident, communication-free) block solves inside M.");
}
