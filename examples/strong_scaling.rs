//! Data-generation scenario (paper Sec. IV-C2): strong-scale one solve
//! over 1, 2, 4, and 8 simulated ranks and watch the communication
//! bookkeeping — the miniature version of the paper's Fig. 6 measurement,
//! run with the *real* distributed solver (threads as ranks, real halo
//! traffic, deterministic collectives).
//!
//! Run: `cargo run --example strong_scaling --release`

use lattice_qcd_dd::comm::{
    dd_solve_distributed, run_spmd, scatter_clover, scatter_field, scatter_gauge, CommWorld,
    DistDdConfig,
};
use lattice_qcd_dd::prelude::*;
use qdd_util::stats::Component;
use std::time::Instant;

fn main() {
    let dims = Dims::new(16, 8, 8, 16);
    let mut rng = Rng64::new(11);
    println!("global lattice {dims}, synthetic configuration ...");
    let gauge = GaugeField::<f64>::random(dims, &mut rng, 0.45);
    let basis = GammaBasis::degrand_rossi();
    let clover = build_clover_field(&gauge, 1.4, &basis);
    let phases = BoundaryPhases::antiperiodic_t();
    let b = SpinorField::<f64>::random(dims, &mut rng);

    let cfg = DistDdConfig {
        fgmres: FgmresConfig { max_basis: 10, deflate: 4, tolerance: 1e-9, max_iterations: 300 },
        schwarz: SchwarzConfig {
            block: Dims::new(4, 4, 4, 4),
            i_schwarz: 5,
            mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
            additive: false,
            overlap: true,
            ..Default::default()
        },
        precision: Precision::Single,
    };

    println!(
        "\n{:>6} {:>10} {:>8} {:>14} {:>14} {:>10}",
        "ranks", "layout", "iters", "M comm MB/rk", "A comm MB/rk", "time [s]"
    );
    for layout in
        [Dims::new(1, 1, 1, 1), Dims::new(1, 1, 1, 2), Dims::new(2, 1, 1, 2), Dims::new(2, 2, 1, 2)]
    {
        let grid = RankGrid::new(dims, layout);
        let lg = scatter_gauge(&gauge, &grid);
        let lc = scatter_clover(&clover, &grid);
        let lb = scatter_field(&b, &grid);
        let world = CommWorld::new(grid.clone());
        let start = Instant::now();
        let results = run_spmd(&world, |ctx| {
            let r = ctx.rank();
            let op = WilsonClover::new(lg[r].clone(), lc[r].clone(), 0.15, phases);
            let mut stats = SolveStats::new();
            let (_, out, _) = dd_solve_distributed(ctx, &op, &lb[r], &cfg, &mut stats);
            assert!(out.converged, "rank {r} did not converge");
            (out.iterations, stats)
        });
        let secs = start.elapsed().as_secs_f64();
        let (iters, stats) = &results[0];
        println!(
            "{:>6} {:>10} {:>8} {:>14.2} {:>14.2} {:>10.2}",
            grid.num_ranks(),
            format!("{layout}"),
            iters,
            stats.comm_bytes(Component::PreconditionerM) / 1e6,
            stats.comm_bytes(Component::OperatorA) / 1e6,
            secs
        );
    }
    println!("\nNotes: iteration counts are rank-count independent (deterministic");
    println!("collectives). Per-rank traffic follows the local surface area, and the");
    println!("M/A traffic ratio ~ ISchwarz/2 shows the DD communication pattern.");
    println!("Wall-clock speedup appears on multi-core hosts (ranks are threads);");
    println!("on a single-core machine the ranks time-slice and the time stays flat.");
}
