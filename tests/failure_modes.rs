//! Failure injection: the solver stack must *report* trouble (singular
//! blocks, iteration caps, breakdown) rather than panic or lie.

use lattice_qcd_dd::prelude::*;

fn operator(dims: Dims, spread: f64, mass: f64, seed: u64) -> WilsonClover<f64> {
    let mut rng = Rng64::new(seed);
    let gauge = GaugeField::<f64>::random(dims, &mut rng, spread);
    let basis = GammaBasis::degrand_rossi();
    let clover = build_clover_field(&gauge, 1.5, &basis);
    WilsonClover::new(gauge, clover, mass, BoundaryPhases::antiperiodic_t())
}

#[test]
fn singular_clover_blocks_are_detected_at_setup() {
    // Free field with m = -4 makes the site diagonal (4 + m) + 0 exactly
    // singular: the even-odd preconditioner cannot be built, and the
    // constructor must say so instead of producing NaNs later.
    let dims = Dims::new(4, 4, 4, 4);
    let gauge = GaugeField::<f64>::identity(dims);
    let basis = GammaBasis::degrand_rossi();
    let clover = build_clover_field(&gauge, 1.0, &basis);
    let op = WilsonClover::new(gauge, clover, -4.0, BoundaryPhases::periodic());
    let cfg = DdSolverConfig {
        fgmres: FgmresConfig::default(),
        schwarz: SchwarzConfig {
            block: Dims::new(2, 2, 2, 2),
            i_schwarz: 2,
            mr: MrConfig { iterations: 2, tolerance: 0.0, f16_vectors: false },
            additive: false,
            overlap: true,
            ..Default::default()
        },
        precision: Precision::Single,
        workers: 1,
        fused_outer: true,
        ..Default::default()
    };
    assert!(DdSolver::new(op, cfg).is_none());
}

#[test]
fn iteration_caps_are_honored_and_reported() {
    let dims = Dims::new(4, 4, 4, 4);
    let op = operator(dims, 0.6, 0.05, 3001);
    let mut rng = Rng64::new(3002);
    let b = SpinorField::<f64>::random(dims, &mut rng);
    let sys = LocalSystem::new(&op);

    // BiCGstab with an absurd cap: must not converge and must say so,
    // with an honest residual.
    let mut stats = SolveStats::new();
    let (x, out) =
        bicgstab(&sys, &b, &BiCgStabConfig { tolerance: 1e-12, max_iterations: 3 }, &mut stats);
    assert!(!out.converged);
    assert_eq!(out.iterations, 3);
    let mut ax = SpinorField::zeros(dims);
    op.apply(&mut ax, &x);
    let mut r = b.clone();
    r.sub_assign(&ax);
    let true_rel = r.norm() / b.norm();
    assert!((true_rel - out.relative_residual).abs() < 1e-10);

    // Same for FGMRES-DR.
    let cfg = FgmresConfig { max_basis: 8, deflate: 2, tolerance: 1e-12, max_iterations: 5 };
    let mut ident = |r: &SpinorField<f64>, _: &mut SolveStats| r.clone();
    let (_, out) = fgmres_dr(&sys, &b, &mut ident, &cfg, &mut stats);
    assert!(!out.converged);
    assert!(out.iterations <= 5);

    // And CGNR.
    let (_, out) = cgnr(&sys, &b, &CgConfig { tolerance: 1e-14, max_iterations: 2 }, &mut stats);
    assert!(!out.converged);
    assert_eq!(out.iterations, 2);
}

#[test]
fn richardson_with_weak_inner_still_reports_truthfully() {
    // An inner solver capped so hard it barely improves anything: the
    // outer refinement must terminate at its own cap and report the true
    // residual.
    let dims = Dims::new(4, 4, 4, 4);
    let op = operator(dims, 0.5, 0.1, 3003);
    let op32: WilsonClover<f32> = op.cast();
    let mut rng = Rng64::new(3004);
    let b = SpinorField::<f64>::random(dims, &mut rng);
    let sys = LocalSystem::new(&op);
    let sys32 = LocalSystem::new(&op32);
    let mut stats = SolveStats::new();
    let cfg = RichardsonConfig {
        tolerance: 1e-12,
        inner_tolerance: 0.9,
        inner_max_iterations: 1,
        max_outer: 3,
    };
    let (x, out) = richardson_bicgstab(&sys, &sys32, &b, &cfg, &mut stats);
    assert!(!out.converged);
    let mut ax = SpinorField::zeros(dims);
    op.apply(&mut ax, &x);
    let mut r = b.clone();
    r.sub_assign(&ax);
    assert!((r.norm() / b.norm() - out.relative_residual).abs() < 1e-9);
}

#[test]
fn herm6_singular_inversion_is_none_not_garbage() {
    use lattice_qcd_dd::field::clover::Herm6;
    let zero = Herm6::<f64>::zero();
    assert!(zero.invert().is_none());
    // A block with one exactly-zero eigenvalue direction.
    let mut h = Herm6::<f64>::scaled_identity(1.0);
    h.diag[3] = 0.0;
    // Still invertible? No: diagonal block with a zero eigenvalue.
    assert!(h.invert().is_none());
}

#[test]
fn mr_handles_exactly_singular_rhs_direction() {
    // rhs = 0 must return u = 0 with zero iterations even when tolerance
    // is unreachable.
    let dims = Dims::new(4, 4, 4, 4);
    let op = operator(dims, 0.5, 0.3, 3005);
    let pre = SchwarzPreconditioner::new(
        op.cast::<f32>(),
        SchwarzConfig {
            block: Dims::new(2, 2, 2, 2),
            i_schwarz: 2,
            mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
            additive: false,
            overlap: true,
            ..Default::default()
        },
    )
    .unwrap();
    let f = SpinorField::<f32>::zeros(dims);
    let mut stats = SolveStats::new();
    let u = pre.apply(&f, &mut stats);
    assert_eq!(u.norm_sqr(), 0.0);
}

#[test]
fn bicgstab_rho_underflow_is_a_flagged_breakdown_not_a_lie() {
    // A right-hand side scaled into the subnormal range makes the very
    // first rho = <r0, r0> underflow below f64::MIN_POSITIVE: BiCGstab
    // must stop, report converged = false, set the breakdown flag, and
    // return an honest residual — not divide by the underflowed rho and
    // emit Inf/NaN iterates.
    use lattice_qcd_dd::core_solver::fgmres_dr::Breakdown;
    let dims = Dims::new(4, 4, 4, 4);
    let op = operator(dims, 0.5, 0.2, 3007);
    let mut rng = Rng64::new(3008);
    let mut b = SpinorField::<f64>::random(dims, &mut rng);
    let scale = 1e-160 / b.norm();
    for s in 0..b.len() {
        *b.site_mut(s) = b.site(s).scale(scale);
    }
    assert!(b.norm_sqr() > 0.0, "rhs must be nonzero for the test to bite");
    assert!(b.norm_sqr() < f64::MIN_POSITIVE, "rhs norm^2 must underflow");
    let sys = LocalSystem::new(&op);
    let mut stats = SolveStats::new();
    let (x, out) =
        bicgstab(&sys, &b, &BiCgStabConfig { tolerance: 1e-12, max_iterations: 100 }, &mut stats);
    assert!(!out.converged);
    assert_eq!(out.breakdown, Some(Breakdown::RhoUnderflow));
    // The iterate is untouched (still the zero initial guess) and finite.
    assert!(x.norm().is_finite());
    assert!(out.relative_residual.is_finite());
}

#[test]
fn bicgstab_nan_from_the_operator_is_flagged_not_propagated() {
    // An operator that starts emitting NaNs mid-solve (a poisoned halo, a
    // corrupted field) must surface as a NonFinite breakdown with
    // converged = false — never as a quiet NaN solution.
    use lattice_qcd_dd::core_solver::fgmres_dr::Breakdown;
    use lattice_qcd_dd::core_solver::system::SystemOps;
    use std::cell::Cell;

    struct PoisonedSystem<'a> {
        inner: LocalSystem<'a, f64>,
        applies: Cell<usize>,
        poison_after: usize,
    }
    impl SystemOps<f64> for PoisonedSystem<'_> {
        fn local_dims(&self) -> Dims {
            self.inner.local_dims()
        }
        fn apply(&self, out: &mut SpinorField<f64>, inp: &SpinorField<f64>, st: &mut SolveStats) {
            self.inner.apply(out, inp, st);
            let n = self.applies.get() + 1;
            self.applies.set(n);
            if n > self.poison_after {
                out.site_mut(0).0[0].0[0] = Complex::new(f64::NAN, 0.0);
            }
        }
        fn apply_adjoint(
            &self,
            out: &mut SpinorField<f64>,
            inp: &SpinorField<f64>,
            st: &mut SolveStats,
        ) {
            self.inner.apply_adjoint(out, inp, st);
        }
        fn apply_flops(&self) -> f64 {
            self.inner.apply_flops()
        }
        fn dot(&self, a: &SpinorField<f64>, b: &SpinorField<f64>, st: &mut SolveStats) -> C64 {
            self.inner.dot(a, b, st)
        }
        fn norm_sqr(&self, a: &SpinorField<f64>, st: &mut SolveStats) -> f64 {
            self.inner.norm_sqr(a, st)
        }
        fn dots_batched(
            &self,
            vs: &[SpinorField<f64>],
            w: &SpinorField<f64>,
            st: &mut SolveStats,
        ) -> Vec<C64> {
            self.inner.dots_batched(vs, w, st)
        }
        fn dot_and_norm(
            &self,
            a: &SpinorField<f64>,
            b: &SpinorField<f64>,
            st: &mut SolveStats,
        ) -> (C64, f64) {
            self.inner.dot_and_norm(a, b, st)
        }
    }

    let dims = Dims::new(4, 4, 4, 4);
    let op = operator(dims, 0.5, 0.2, 3009);
    let mut rng = Rng64::new(3010);
    let b = SpinorField::<f64>::random(dims, &mut rng);
    let sys =
        PoisonedSystem { inner: LocalSystem::new(&op), applies: Cell::new(0), poison_after: 4 };
    let mut stats = SolveStats::new();
    let (_, out) =
        bicgstab(&sys, &b, &BiCgStabConfig { tolerance: 1e-12, max_iterations: 200 }, &mut stats);
    assert!(!out.converged);
    assert_eq!(out.breakdown, Some(Breakdown::NonFinite));

    // FGMRES-DR over the same poisoned system: the residual guard must
    // trip (NonFinite or Diverged, depending on where the NaN lands in
    // the least-squares machinery) instead of iterating on garbage.
    let sys =
        PoisonedSystem { inner: LocalSystem::new(&op), applies: Cell::new(0), poison_after: 4 };
    let cfg = FgmresConfig { max_basis: 8, deflate: 2, tolerance: 1e-12, max_iterations: 50 };
    let mut ident = |r: &SpinorField<f64>, _: &mut SolveStats| r.clone();
    let (_, out) = fgmres_dr(&sys, &b, &mut ident, &cfg, &mut stats);
    assert!(!out.converged);
    assert!(out.breakdown.is_some(), "poisoned FGMRES must flag a breakdown");
}

#[test]
fn zero_volume_protections() {
    // Geometry constructors reject impossible shapes loudly.
    let result = std::panic::catch_unwind(|| {
        qdd_lattice::DomainGrid::new(Dims::new(8, 8, 8, 8), Dims::new(3, 4, 4, 4))
    });
    assert!(result.is_err(), "odd block extent must be rejected");
    let result =
        std::panic::catch_unwind(|| RankGrid::new(Dims::new(8, 8, 8, 8), Dims::new(3, 1, 1, 1)));
    assert!(result.is_err(), "indivisible rank grid must be rejected");
}
