//! Integration tests of the simulated multi-node pipeline: distributed
//! runs must reproduce single-rank ground truth, and the communication
//! ledger must behave like the paper says it does.

use lattice_qcd_dd::comm::{
    dd_solve_distributed, gather_field, run_spmd, scatter_clover, scatter_field, scatter_gauge,
    CommWorld, DistDdConfig, DistSystem,
};
use lattice_qcd_dd::prelude::*;
use lattice_qcd_dd::trace::{chrome_trace, phase_totals, validate_balance, Phase, TraceSink};
use qdd_util::stats::Component;

fn setup(dims: Dims, seed: u64) -> (GaugeField<f64>, CloverField<f64>, SpinorField<f64>) {
    let mut rng = Rng64::new(seed);
    let gauge = GaugeField::<f64>::random(dims, &mut rng, 0.45);
    let basis = GammaBasis::degrand_rossi();
    let clover = build_clover_field(&gauge, 1.4, &basis);
    let b = SpinorField::<f64>::random(dims, &mut rng);
    (gauge, clover, b)
}

fn dist_cfg() -> DistDdConfig {
    DistDdConfig {
        fgmres: FgmresConfig { max_basis: 8, deflate: 4, tolerance: 1e-9, max_iterations: 300 },
        schwarz: SchwarzConfig {
            block: Dims::new(4, 4, 4, 4),
            i_schwarz: 4,
            mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
            additive: false,
            overlap: true,
            ..Default::default()
        },
        precision: Precision::Single,
    }
}

#[test]
fn eight_rank_dd_solve_matches_serial() {
    let dims = Dims::new(8, 8, 8, 16);
    let (gauge, clover, b) = setup(dims, 2001);
    let phases = BoundaryPhases::antiperiodic_t();

    // Serial reference.
    let serial = DdSolver::new(
        WilsonClover::new(gauge.clone(), clover.clone(), 0.2, phases),
        DdSolverConfig {
            fgmres: dist_cfg().fgmres,
            schwarz: dist_cfg().schwarz,
            precision: Precision::Single,
            workers: 1,
            fused_outer: true,
            ..Default::default()
        },
    )
    .unwrap();
    let mut st = SolveStats::new();
    let (x_ref, out_ref) = serial.solve(&b, &mut st);
    assert!(out_ref.converged);

    // 8 ranks: 2x1x2x2.
    let grid = RankGrid::new(dims, Dims::new(2, 1, 2, 2));
    let lg = scatter_gauge(&gauge, &grid);
    let lc = scatter_clover(&clover, &grid);
    let lb = scatter_field(&b, &grid);
    let world = CommWorld::new(grid.clone());
    let cfg = dist_cfg();
    let results = run_spmd(&world, |ctx| {
        let r = ctx.rank();
        let op = WilsonClover::new(lg[r].clone(), lc[r].clone(), 0.2, phases);
        let mut stats = SolveStats::new();
        let (x, out, _) = dd_solve_distributed(ctx, &op, &lb[r], &cfg, &mut stats);
        (x, out.converged, out.iterations)
    });
    for (_, conv, iters) in &results {
        assert!(conv);
        assert_eq!(*iters, results[0].2);
    }
    let x = gather_field(&results.iter().map(|r| r.0.clone()).collect::<Vec<_>>(), &grid);
    let mut d = x.clone();
    d.sub_assign(&x_ref);
    assert!(d.norm() < 1e-7 * x_ref.norm(), "rel diff {}", d.norm() / x_ref.norm());
}

#[test]
fn traffic_scales_with_surface_not_volume() {
    // Two partitionings of the same lattice: splitting more directions
    // moves more bytes per rank only in proportion to the extra surface.
    let dims = Dims::new(16, 16, 8, 8);
    let (gauge, clover, b) = setup(dims, 2002);
    let phases = BoundaryPhases::periodic();
    let cfg = dist_cfg();

    let run = |layout: Dims| {
        let grid = RankGrid::new(dims, layout);
        let lg = scatter_gauge(&gauge, &grid);
        let lc = scatter_clover(&clover, &grid);
        let lb = scatter_field(&b, &grid);
        let world = CommWorld::new(grid.clone());
        let results = run_spmd(&world, |ctx| {
            let r = ctx.rank();
            let op = WilsonClover::new(lg[r].clone(), lc[r].clone(), 0.2, phases);
            let mut stats = SolveStats::new();
            let (_, out, _) = dd_solve_distributed(ctx, &op, &lb[r], &cfg, &mut stats);
            assert!(out.converged);
            (
                out.iterations,
                stats.comm_bytes(Component::PreconditionerM),
                stats.comm_bytes(Component::OperatorA),
            )
        });
        results[0]
    };

    let (it_a, m_a, a_a) = run(Dims::new(2, 1, 1, 1)); // one split dir, face 16*8*8
    let (it_b, m_b, a_b) = run(Dims::new(2, 2, 1, 1)); // two split dirs, faces 8*8*8+16*8*... per rank
    assert_eq!(it_a, it_b, "iteration counts must not depend on the layout");
    // Layout A: per-rank surface = 2 * (16*8*8) = 2048 sites.
    // Layout B: per-rank surface = 2 * (8*8*8) + 2 * (16*8*8 / 2) = 2048.
    // Same surface here, so bytes per iteration must match closely.
    let per_iter_a = (m_a + a_a) / it_a as f64;
    let per_iter_b = (m_b + a_b) / it_b as f64;
    assert!(
        (per_iter_a / per_iter_b - 1.0).abs() < 1e-9,
        "equal-surface layouts must move equal bytes: {per_iter_a} vs {per_iter_b}"
    );
}

#[test]
fn halo_bytes_match_analytic_surface_prediction() {
    // Every byte the runtime counts must be predictable from the local
    // surface area: A applications exchange full f64 halos, each Schwarz
    // preconditioner application exchanges `i_schwarz - 1/2` full f32
    // halos (one masked half-face per half-sweep, last one skipped).
    let dims = Dims::new(8, 8, 8, 8);
    let (gauge, clover, b) = setup(dims, 2004);
    let phases = BoundaryPhases::antiperiodic_t();
    let cfg = dist_cfg();

    let grid = RankGrid::new(dims, Dims::new(2, 1, 1, 2));
    let lg = scatter_gauge(&gauge, &grid);
    let lc = scatter_clover(&clover, &grid);
    let lb = scatter_field(&b, &grid);
    let local = *grid.local();
    let world = CommWorld::new(grid.clone());
    let results = run_spmd(&world, |ctx| {
        let r = ctx.rank();
        let op = WilsonClover::new(lg[r].clone(), lc[r].clone(), 0.2, phases);
        let mut stats = SolveStats::new();
        let (_, out, comm) = dd_solve_distributed(ctx, &op, &lb[r], &cfg, &mut stats);
        assert!(out.converged);
        (out.iterations, stats.operator_applications(), comm)
    });

    // Per-rank split surface: both x and t are split here.
    let split_faces: f64 = [Dir::X, Dir::T].iter().map(|&d| 2.0 * local.face_area(d) as f64).sum();
    let halo_f64 = split_faces * 12.0 * 8.0;
    let halo_f32 = split_faces * 12.0 * 4.0;
    for (iters, a_ops, comm) in &results {
        // One preconditioner application per outer iteration.
        let expect = *a_ops as f64 * halo_f64
            + *iters as f64 * (cfg.schwarz.i_schwarz as f64 - 0.5) * halo_f32;
        assert!(
            (comm.bytes_sent - expect).abs() < 1e-6,
            "bytes {} vs analytic {expect}",
            comm.bytes_sent
        );
        // Per-direction counters tile the total, and unsplit directions
        // stay at zero.
        let by_dir: f64 = comm.bytes_by_dir.iter().flatten().sum();
        assert!((by_dir - comm.bytes_sent).abs() < 1e-6);
        assert_eq!(comm.bytes_by_dir[1], [0.0, 0.0]);
        assert_eq!(comm.bytes_by_dir[2], [0.0, 0.0]);
    }
}

#[test]
fn distributed_solve_produces_balanced_per_rank_traces() {
    // Full observability run: every rank records solver, Schwarz and comm
    // spans into its own sink; the merged streams export to a valid
    // Chrome trace and a per-phase breakdown that includes communication.
    let dims = Dims::new(8, 8, 8, 8);
    let (gauge, clover, b) = setup(dims, 2005);
    let phases = BoundaryPhases::antiperiodic_t();
    let cfg = dist_cfg();

    let grid = RankGrid::new(dims, Dims::new(2, 1, 1, 1));
    let lg = scatter_gauge(&gauge, &grid);
    let lc = scatter_clover(&clover, &grid);
    let lb = scatter_field(&b, &grid);
    let world = CommWorld::new(grid.clone());
    let results = run_spmd(&world, |ctx| {
        let r = ctx.rank();
        let sink = TraceSink::for_rank(r as u32);
        ctx.attach_trace(sink.clone());
        let op = WilsonClover::new(lg[r].clone(), lc[r].clone(), 0.2, phases);
        let mut stats = SolveStats::new();
        stats.attach_sink(sink.clone());
        let (_, out, comm) = dd_solve_distributed(ctx, &op, &lb[r], &cfg, &mut stats);
        assert!(out.converged);
        (sink.stream(), comm)
    });

    let streams: Vec<_> = results.iter().map(|(s, _)| s.clone()).collect();
    for (rank, events) in &streams {
        validate_balance(events).unwrap_or_else(|e| panic!("rank {rank}: unbalanced spans: {e}"));
        for phase in [
            Phase::Solve,
            Phase::ArnoldiStep,
            Phase::Precondition,
            Phase::SchwarzSweep,
            Phase::DomainSolve,
            Phase::HaloPack,
            Phase::HaloSend,
            Phase::HaloRecv,
            Phase::HaloUnpack,
            Phase::GlobalSum,
        ] {
            assert!(events.iter().any(|e| e.phase == phase), "rank {rank}: no {phase:?} event");
        }
    }

    // The Chrome export over all ranks is valid JSON with both pids.
    let chrome = chrome_trace(&streams);
    let v: serde_json::Value = serde_json::from_str(&chrome).expect("chrome trace parses");
    let evs = v["traceEvents"].as_array().expect("traceEvents array");
    assert!(!evs.is_empty());
    for rank in 0..streams.len() {
        assert!(
            evs.iter().any(|e| e["pid"].as_f64() == Some(rank as f64)),
            "no events for pid {rank}"
        );
    }

    // Per-phase time shares: the preconditioner dominates an operator-
    // bound DD solve, and communication phases carry nonzero time.
    let totals = phase_totals(&streams);
    let pre = totals.get(&Phase::Precondition).expect("Precondition total");
    assert!(pre.total_ns > 0);
    for phase in [Phase::HaloSend, Phase::HaloRecv, Phase::GlobalSum] {
        assert!(totals.get(&phase).is_some_and(|t| t.total_ns > 0), "{phase:?} has no time");
    }

    // Both ranks moved the same bytes (symmetric layout).
    assert_eq!(results[0].1.bytes_sent, results[1].1.bytes_sent);
    assert!(results[0].1.bytes_sent > 0.0);
}

#[test]
fn distributed_gmres_without_preconditioner_matches_serial() {
    // The bare outer solver through the DistSystem plumbing.
    let dims = Dims::new(8, 8, 4, 8);
    let (gauge, clover, b) = setup(dims, 2003);
    let phases = BoundaryPhases::antiperiodic_t();
    let cfg = FgmresConfig { max_basis: 12, deflate: 4, tolerance: 1e-8, max_iterations: 500 };

    let op_ref = WilsonClover::new(gauge.clone(), clover.clone(), 0.25, phases);
    let mut st = SolveStats::new();
    let mut ident = |r: &SpinorField<f64>, _: &mut SolveStats| r.clone();
    let (x_ref, out_ref) = fgmres_dr(&LocalSystem::new(&op_ref), &b, &mut ident, &cfg, &mut st);
    assert!(out_ref.converged);

    let grid = RankGrid::new(dims, Dims::new(1, 2, 1, 2));
    let lg = scatter_gauge(&gauge, &grid);
    let lc = scatter_clover(&clover, &grid);
    let lb = scatter_field(&b, &grid);
    let world = CommWorld::new(grid.clone());
    let results = run_spmd(&world, |ctx| {
        let r = ctx.rank();
        let op = WilsonClover::new(lg[r].clone(), lc[r].clone(), 0.25, phases);
        let sys = DistSystem::new(ctx, &op);
        let mut stats = SolveStats::new();
        let mut ident = |r: &SpinorField<f64>, _: &mut SolveStats| r.clone();
        let (x, out) = fgmres_dr(&sys, &lb[r], &mut ident, &cfg, &mut stats);
        assert!(out.converged);
        x
    });
    let x = gather_field(&results, &grid);
    let mut d = x.clone();
    d.sub_assign(&x_ref);
    assert!(d.norm() < 1e-6 * x_ref.norm(), "rel {}", d.norm() / x_ref.norm());
}
