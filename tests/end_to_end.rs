//! Cross-crate end-to-end tests: the full solver pipeline on problems big
//! enough to exercise every subsystem together (geometry, fields, clover
//! construction, Schur blocks, Schwarz sweeps, FGMRES-DR, precision
//! mixing, threading).

use lattice_qcd_dd::prelude::*;

fn operator(dims: Dims, spread: f64, mass: f64, seed: u64) -> WilsonClover<f64> {
    let mut rng = Rng64::new(seed);
    let gauge = GaugeField::<f64>::random(dims, &mut rng, spread);
    let basis = GammaBasis::degrand_rossi();
    let clover = build_clover_field(&gauge, 1.5, &basis);
    WilsonClover::new(gauge, clover, mass, BoundaryPhases::antiperiodic_t())
}

fn dd_config(block: Dims) -> DdSolverConfig {
    DdSolverConfig {
        fgmres: FgmresConfig { max_basis: 10, deflate: 4, tolerance: 1e-10, max_iterations: 400 },
        schwarz: SchwarzConfig {
            block,
            i_schwarz: 5,
            mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
            additive: false,
            overlap: true,
            ..Default::default()
        },
        precision: Precision::Single,
        workers: 1,
        fused_outer: true,
        ..Default::default()
    }
}

#[test]
fn dd_recovers_manufactured_solution() {
    let dims = Dims::new(8, 8, 8, 8);
    let op = operator(dims, 0.5, 0.15, 1001);
    let mut rng = Rng64::new(1002);
    let x_true = SpinorField::<f64>::random(dims, &mut rng);
    let mut b = SpinorField::zeros(dims);
    op.apply(&mut b, &x_true);

    let solver =
        DdSolver::new(operator(dims, 0.5, 0.15, 1001), dd_config(Dims::new(4, 4, 4, 4))).unwrap();
    let mut stats = SolveStats::new();
    let (x, out) = solver.solve(&b, &mut stats);
    assert!(out.converged);
    let mut d = x.clone();
    d.sub_assign(&x_true);
    let rel = d.norm() / x_true.norm();
    assert!(rel < 1e-8, "solution error {rel}");
}

#[test]
fn all_solvers_agree_on_the_same_problem() {
    let dims = Dims::new(8, 4, 4, 8);
    let op = operator(dims, 0.4, 0.2, 1003);
    let mut rng = Rng64::new(1004);
    let b = SpinorField::<f64>::random(dims, &mut rng);
    let sys = LocalSystem::new(&op);

    let mut stats = SolveStats::new();
    let (x_bi, out_bi) = bicgstab(
        &sys,
        &b,
        &BiCgStabConfig { tolerance: 1e-10, max_iterations: 20_000 },
        &mut stats,
    );
    assert!(out_bi.converged);

    let solver =
        DdSolver::new(operator(dims, 0.4, 0.2, 1003), dd_config(Dims::new(4, 4, 2, 4))).unwrap();
    let (x_dd, out_dd) = solver.solve(&b, &mut stats);
    assert!(out_dd.converged);

    let (x_cg, out_cg) =
        cgnr(&sys, &b, &CgConfig { tolerance: 1e-9, max_iterations: 100_000 }, &mut stats);
    assert!(out_cg.converged);

    let mut d = x_dd.clone();
    d.sub_assign(&x_bi);
    assert!(d.norm() / x_bi.norm() < 1e-7, "DD vs BiCGstab: {}", d.norm() / x_bi.norm());
    let mut d = x_cg.clone();
    d.sub_assign(&x_bi);
    assert!(d.norm() / x_bi.norm() < 1e-6, "CGNR vs BiCGstab: {}", d.norm() / x_bi.norm());
}

#[test]
fn multi_worker_solve_is_deterministic_and_correct() {
    let dims = Dims::new(8, 8, 4, 8);
    let mut rng = Rng64::new(1005);
    let b = SpinorField::<f64>::random(dims, &mut rng);
    let mut cfg = dd_config(Dims::new(4, 4, 2, 4));
    let s1 = DdSolver::new(operator(dims, 0.5, 0.2, 1006), cfg).unwrap();
    cfg.workers = 3;
    let s3 = DdSolver::new(operator(dims, 0.5, 0.2, 1006), cfg).unwrap();
    let mut st1 = SolveStats::new();
    let mut st3 = SolveStats::new();
    let (x1, o1) = s1.solve(&b, &mut st1);
    let (x3, o3) = s3.solve(&b, &mut st3);
    assert_eq!(o1.iterations, o3.iterations);
    assert_eq!(x1.as_slice(), x3.as_slice(), "threading changed the arithmetic");
}

#[test]
fn half_precision_preconditioner_full_pipeline() {
    let dims = Dims::new(8, 8, 4, 4);
    let mut rng = Rng64::new(1007);
    let b = SpinorField::<f64>::random(dims, &mut rng);
    let mut cfg = dd_config(Dims::new(4, 4, 2, 2));
    cfg.precision = Precision::HalfCompressed;
    let solver = DdSolver::new(operator(dims, 0.5, 0.2, 1008), cfg).unwrap();
    let mut stats = SolveStats::new();
    let (x, out) = solver.solve(&b, &mut stats);
    assert!(out.converged, "residual {}", out.relative_residual);
    // Final accuracy is still the double-precision target: the f16
    // storage only lives inside the preconditioner.
    assert!(out.relative_residual < 1e-9);
    assert!(x.norm() > 0.0);
}

#[test]
fn free_field_solve_matches_analytic_eigenvalue() {
    // U = 1, constant source: A^-1 b = b / m for the constant mode.
    let dims = Dims::new(8, 4, 4, 4);
    let gauge = GaugeField::<f64>::identity(dims);
    let basis = GammaBasis::degrand_rossi();
    let clover = build_clover_field(&gauge, 1.0, &basis);
    let mass = 0.5;
    let op = WilsonClover::new(gauge, clover, mass, BoundaryPhases::periodic());
    let mut rng = Rng64::new(1009);
    let s0 = Spinor::<f64>::random(&mut rng);
    let b = SpinorField::from_fn(dims, |_| s0);
    let sys = LocalSystem::new(&op);
    let mut stats = SolveStats::new();
    let (x, out) =
        bicgstab(&sys, &b, &BiCgStabConfig { tolerance: 1e-12, max_iterations: 100 }, &mut stats);
    assert!(out.converged);
    for site in 0..dims.volume() {
        let expect = s0.scale(1.0 / mass);
        let d = x.site(site).sub(expect);
        assert!(d.norm_sqr() < 1e-18, "site {site}");
    }
}

#[test]
fn stats_ledger_is_consistent_across_pipeline() {
    let dims = Dims::new(8, 4, 4, 8);
    let mut rng = Rng64::new(1010);
    let b = SpinorField::<f64>::random(dims, &mut rng);
    let solver =
        DdSolver::new(operator(dims, 0.4, 0.3, 1011), dd_config(Dims::new(4, 4, 2, 4))).unwrap();
    let mut stats = SolveStats::new();
    let (_, out) = solver.solve(&b, &mut stats);
    assert!(out.converged);
    // Operator applications: one per outer iteration plus the final true
    // residual (and possibly restarts).
    let apps = stats.operator_applications();
    assert!(apps as usize >= out.iterations);
    assert!((apps as usize) <= out.iterations + out.cycles + 2);
    // Global sums: ~2 per iteration (batched CGS).
    let per_iter = stats.global_sums() as f64 / out.iterations.max(1) as f64;
    assert!((1.5..3.5).contains(&per_iter), "sums/iter {per_iter}");
    // The preconditioner dominates the flop budget.
    assert!(stats.flop_fractions()[1] > 0.6);
}
