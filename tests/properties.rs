//! Property-based tests (proptest) over the numerical core: invariants
//! that must hold for *any* gauge configuration, mass, and source.

use lattice_qcd_dd::prelude::*;
use proptest::prelude::*;
use qdd_util::half::F16;

fn operator(dims: Dims, spread: f64, mass: f64, seed: u64) -> WilsonClover<f64> {
    let mut rng = Rng64::new(seed);
    let gauge = GaugeField::<f64>::random(dims, &mut rng, spread);
    let basis = GammaBasis::degrand_rossi();
    let clover = build_clover_field(&gauge, 1.5, &basis);
    WilsonClover::new(gauge, clover, mass, BoundaryPhases::antiperiodic_t())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// gamma5-hermiticity holds for every synthetic configuration.
    #[test]
    fn gamma5_hermiticity_any_configuration(
        seed in 0u64..1000,
        spread in 0.0f64..1.2,
        mass in -0.2f64..1.0,
    ) {
        let dims = Dims::new(4, 4, 4, 4);
        let op = operator(dims, spread, mass, seed);
        let basis = GammaBasis::degrand_rossi();
        let mut rng = Rng64::new(seed ^ 0xABCD);
        let x = SpinorField::<f64>::random(dims, &mut rng);
        let y = SpinorField::<f64>::random(dims, &mut rng);
        // <x, g5 A g5 y> == <A x, y>
        let g5y = SpinorField::from_fn(dims, |s| basis.apply_gamma5(y.site(s)));
        let mut ag5y = SpinorField::zeros(dims);
        op.apply(&mut ag5y, &g5y);
        let g5ag5y = SpinorField::from_fn(dims, |s| basis.apply_gamma5(ag5y.site(s)));
        let mut ax = SpinorField::zeros(dims);
        op.apply(&mut ax, &x);
        let lhs = x.dot(&g5ag5y);
        let rhs = ax.dot(&y);
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + rhs.abs()));
    }

    /// The operator is linear for arbitrary complex coefficients.
    #[test]
    fn operator_linearity(
        seed in 0u64..1000,
        re in -2.0f64..2.0,
        im in -2.0f64..2.0,
    ) {
        let dims = Dims::new(4, 4, 4, 4);
        let op = operator(dims, 0.6, 0.1, seed);
        let mut rng = Rng64::new(seed ^ 0x1111);
        let a = SpinorField::<f64>::random(dims, &mut rng);
        let b = SpinorField::<f64>::random(dims, &mut rng);
        let alpha = Complex::new(re, im);
        let mut combo = a.clone();
        combo.axpy(alpha, &b);
        let mut lhs = SpinorField::zeros(dims);
        op.apply(&mut lhs, &combo);
        let mut aa = SpinorField::zeros(dims);
        op.apply(&mut aa, &a);
        let mut ab = SpinorField::zeros(dims);
        op.apply(&mut ab, &b);
        aa.axpy(alpha, &ab);
        lhs.sub_assign(&aa);
        prop_assert!(lhs.norm() < 1e-9 * (1.0 + aa.norm()));
    }

    /// BiCGstab always returns a vector whose true residual matches its
    /// claim, for any solvable random problem.
    #[test]
    fn bicgstab_reports_true_residuals(seed in 0u64..500) {
        let dims = Dims::new(4, 4, 4, 4);
        let op = operator(dims, 0.4, 0.4, seed);
        let mut rng = Rng64::new(seed ^ 0x2222);
        let b = SpinorField::<f64>::random(dims, &mut rng);
        let sys = LocalSystem::new(&op);
        let mut stats = SolveStats::new();
        let (x, out) = bicgstab(
            &sys,
            &b,
            &BiCgStabConfig { tolerance: 1e-7, max_iterations: 5000 },
            &mut stats,
        );
        let mut ax = SpinorField::zeros(dims);
        op.apply(&mut ax, &x);
        let mut r = b.clone();
        r.sub_assign(&ax);
        let true_rel = r.norm() / b.norm();
        prop_assert!((true_rel - out.relative_residual).abs() < 1e-9);
        if out.converged {
            prop_assert!(true_rel < 1e-6);
        }
    }

    /// f16 round-trips are monotone and bounded for normal-range values.
    #[test]
    fn f16_roundtrip_bounded(x in -6.0e4f32..6.0e4) {
        let r = F16::round_f32(x);
        if x.abs() > 6.2e-5 {
            prop_assert!(((r - x) / x).abs() <= 2.0f32.powi(-11) + 1e-9);
        } else {
            // Subnormal range: absolute error bounded by the subnormal ulp.
            prop_assert!((r - x).abs() <= 2.0f32.powi(-24));
        }
    }

    /// f16 conversion is monotone: a <= b implies round(a) <= round(b).
    #[test]
    fn f16_monotone(a in -1.0e4f32..1.0e4, b in -1.0e4f32..1.0e4) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(F16::round_f32(lo) <= F16::round_f32(hi));
    }

    /// Gauge fields generated at any roughness stay in SU(3).
    #[test]
    fn gauge_generation_stays_special_unitary(seed in 0u64..2000, spread in 0.0f64..3.0) {
        let dims = Dims::new(2, 2, 2, 2);
        let mut rng = Rng64::new(seed);
        let g = GaugeField::<f64>::random(dims, &mut rng, spread);
        prop_assert!(g.max_unitarity_error() < 1e-10);
    }

    /// The Schwarz preconditioner never *increases* the residual of a
    /// random right-hand side (it is a contraction on the residual for
    /// these well-conditioned synthetic problems).
    #[test]
    fn schwarz_contracts_residual(seed in 0u64..200) {
        let dims = Dims::new(8, 4, 4, 4);
        let op = operator(dims, 0.4, 0.4, seed);
        let pre = SchwarzPreconditioner::new(
            op.cast::<f32>(),
            SchwarzConfig {
                block: Dims::new(4, 2, 2, 2),
                i_schwarz: 3,
                mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
                additive: false,
                overlap: true,
                ..Default::default()
            },
        ).unwrap();
        let mut rng = Rng64::new(seed ^ 0x3333);
        let f = SpinorField::<f64>::random(dims, &mut rng).cast::<f32>();
        let mut stats = SolveStats::new();
        let u = pre.apply(&f, &mut stats);
        // Residual after preconditioning.
        let op32: WilsonClover<f32> = op.cast();
        let mut au = SpinorField::zeros(dims);
        op32.apply(&mut au, &u);
        let mut r = f.clone();
        r.sub_assign(&au);
        prop_assert!(r.norm() < f.norm(), "{} !< {}", r.norm(), f.norm());
    }
}
