//! Chaos determinism: the fault injector is part of the reproducibility
//! contract. Fault decisions are keyed by (seed, rank, class, channel,
//! sequence, attempt) hashes — never by wall clock or thread scheduling —
//! so a seeded chaotic run is as bitwise-reproducible as a clean one, and
//! a disabled injector costs nothing.

use lattice_qcd_dd::comm::{
    dd_solve_resilient, gather_field, run_spmd, scatter_clover, scatter_field, scatter_gauge,
    CommWorld, DistDdConfig, ResilientOutcome,
};
use lattice_qcd_dd::faults::{FaultPlan, FaultRates};
use lattice_qcd_dd::prelude::*;
use lattice_qcd_dd::trace::FaultStats;

struct Problem {
    grid: RankGrid,
    gauge: GaugeField<f64>,
    clover: CloverField<f64>,
    b: SpinorField<f64>,
    local_gauge: Vec<GaugeField<f64>>,
    local_clover: Vec<CloverField<f64>>,
    b_local: Vec<SpinorField<f64>>,
    cfg: DistDdConfig,
    mass: f64,
}

fn problem(dims: Dims, ranks: Dims, tolerance: f64) -> Problem {
    let grid = RankGrid::new(dims, ranks);
    let mut rng = Rng64::new(77);
    let gauge = GaugeField::<f64>::random(dims, &mut rng, 0.45);
    let basis = GammaBasis::degrand_rossi();
    let clover = build_clover_field(&gauge, 1.5, &basis);
    let b = SpinorField::<f64>::random(dims, &mut rng);
    Problem {
        local_gauge: scatter_gauge(&gauge, &grid),
        local_clover: scatter_clover(&clover, &grid),
        b_local: scatter_field(&b, &grid),
        grid,
        gauge,
        clover,
        b,
        cfg: DistDdConfig {
            fgmres: FgmresConfig { max_basis: 8, deflate: 4, tolerance, max_iterations: 300 },
            schwarz: SchwarzConfig {
                block: Dims::new(4, 4, 4, 4),
                i_schwarz: 4,
                mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
                additive: false,
                overlap: true,
                ..Default::default()
            },
            precision: Precision::Single,
        },
        mass: 0.1,
    }
}

fn run(p: &Problem, world: &CommWorld) -> Vec<(SpinorField<f64>, ResilientOutcome, FaultStats)> {
    let phases = BoundaryPhases::antiperiodic_t();
    run_spmd(world, |ctx| {
        let r = ctx.rank();
        let op =
            WilsonClover::new(p.local_gauge[r].clone(), p.local_clover[r].clone(), p.mass, phases);
        let mut stats = SolveStats::new();
        let (x, out, comm) = dd_solve_resilient(ctx, &op, &p.b_local[r], &p.cfg, 2, &mut stats);
        (x, out, comm.faults)
    })
}

#[test]
fn same_fault_seed_is_bitwise_reproducible() {
    // Two runs of the same chaotic world: identical solutions (bitwise),
    // identical iteration counts, and identical per-rank recovery
    // counters — thread scheduling differs between runs, the fault
    // schedule must not.
    let p = problem(Dims::new(8, 4, 4, 8), Dims::new(1, 1, 1, 2), 1e-8);
    let rates = FaultRates { loss: 0.02, corrupt: 0.02, delay: 0.02, hiccup: 0.01 };
    let a = run(&p, &CommWorld::with_faults(p.grid.clone(), FaultPlan::new(5, rates)));
    let b = run(&p, &CommWorld::with_faults(p.grid.clone(), FaultPlan::new(5, rates)));
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.0.as_slice(), rb.0.as_slice(), "solutions differ between identical runs");
        assert_eq!(ra.1.outcome.iterations, rb.1.outcome.iterations);
        assert_eq!(ra.1.restarts, rb.1.restarts);
        assert_eq!(ra.2, rb.2, "fault counters differ between identical runs");
    }
    // The schedule actually fired (otherwise this test proves nothing).
    let total: u64 = a.iter().map(|r| r.2.retries).sum();
    assert!(total > 0, "no retries at 2% loss + 2% corruption");

    // A different seed gives a different schedule.
    let c = run(&p, &CommWorld::with_faults(p.grid.clone(), FaultPlan::new(6, rates)));
    let counters_a: Vec<FaultStats> = a.iter().map(|r| r.2).collect();
    let counters_c: Vec<FaultStats> = c.iter().map(|r| r.2).collect();
    assert_ne!(counters_a, counters_c, "different fault seeds produced identical schedules");
}

#[test]
fn disabled_faults_are_bitwise_identical_to_a_clean_world() {
    // Three worlds must agree bitwise: no plan, an inert plan (zero
    // rates), and by construction the pre-fault-machinery behavior —
    // checksums are only computed when a live plan is attached, so the
    // clean fast path is untouched.
    let p = problem(Dims::new(8, 4, 4, 8), Dims::new(1, 1, 1, 2), 1e-8);
    let clean = run(&p, &CommWorld::new(p.grid.clone()));
    let inert =
        run(&p, &CommWorld::with_faults(p.grid.clone(), FaultPlan::new(123, FaultRates::NONE)));
    for (rc, ri) in clean.iter().zip(&inert) {
        assert_eq!(rc.0.as_slice(), ri.0.as_slice());
        assert_eq!(rc.1.outcome.iterations, ri.1.outcome.iterations);
        assert_eq!(ri.2, FaultStats::default(), "inert plan bumped a fault counter");
    }
    assert!(clean[0].1.outcome.converged);
    assert!(!clean[0].1.comm_faulted);
}

#[test]
fn acceptance_one_percent_loss_and_corruption_converges_like_fault_free() {
    // The PR's acceptance bar: seeded 1% loss + 1% corruption on a
    // 2-rank 8^4 solve converges to the same tolerance as the fault-free
    // run (extra iterations allowed), with fault.retries > 0 and zero
    // panics (a rank panic would abort run_spmd).
    let tol = 1e-10;
    let p = problem(Dims::new(8, 8, 8, 8), Dims::new(1, 1, 1, 2), tol);
    let clean = run(&p, &CommWorld::new(p.grid.clone()));
    assert!(clean[0].1.outcome.converged, "fault-free reference must converge");

    let rates = FaultRates { loss: 0.01, corrupt: 0.01, delay: 0.0, hiccup: 0.0 };
    let chaotic = run(&p, &CommWorld::with_faults(p.grid.clone(), FaultPlan::new(1, rates)));
    let out = &chaotic[0].1;
    assert!(
        out.outcome.converged,
        "chaotic solve failed: residual {}",
        out.outcome.relative_residual
    );
    assert!(out.outcome.relative_residual <= tol);
    let retries: u64 = chaotic.iter().map(|r| r.2.retries).sum();
    assert!(retries > 0, "1% loss + 1% corruption triggered no retries");

    // The recovered solution solves the *fault-free* global system.
    let locals: Vec<SpinorField<f64>> = chaotic.iter().map(|r| r.0.clone()).collect();
    let x = gather_field(&locals, &p.grid);
    let op = WilsonClover::new(
        p.gauge.clone(),
        p.clover.clone(),
        p.mass,
        BoundaryPhases::antiperiodic_t(),
    );
    let mut ax = SpinorField::zeros(*p.b.dims());
    op.apply(&mut ax, &x);
    ax.sub_assign(&p.b);
    let true_rel = ax.norm() / p.b.norm();
    assert!(true_rel <= 10.0 * tol, "true residual {true_rel} vs tolerance {tol}");
}

#[test]
fn every_rank_agrees_on_the_collective_fault_verdict() {
    // comm_faulted is all-reduced: under heavy loss some rank exhausts
    // its retry budget, and then EVERY rank must report the same verdict
    // (SPMD discipline — diverging rank-local decisions would deadlock
    // later collectives).
    let p = problem(Dims::new(8, 4, 4, 8), Dims::new(1, 1, 1, 2), 1e-6);
    let rates = FaultRates { loss: 0.30, corrupt: 0.10, delay: 0.0, hiccup: 0.0 };
    let results = run(&p, &CommWorld::with_faults(p.grid.clone(), FaultPlan::new(3, rates)));
    let verdicts: Vec<bool> = results.iter().map(|r| r.1.comm_faulted).collect();
    assert!(verdicts.windows(2).all(|w| w[0] == w[1]), "ranks disagree on comm_faulted");
    // At 30% loss the 4-attempt budget is exhausted somewhere with
    // overwhelming probability; if not, the timeout path went untested.
    let timeouts: u64 = results.iter().map(|r| r.2.timeouts).sum();
    assert!(timeouts > 0, "no retry budget exhausted at 30% loss");
    assert!(verdicts[0], "timeouts must surface as a collective fault verdict");
}
