//! Property tests of the machine model: the Table III generator must obey
//! the structural laws the paper's data shows, for *any* sensible
//! configuration — not just the calibrated points.

use proptest::prelude::*;
use qdd_lattice::Dims;
use qdd_machine::multinode::MultiNodeModel;
use qdd_machine::onchip::OnChipModel;
use qdd_machine::workload::{lattice_48, lattice_64, paper_block, rank_layout, DdParams};

#[test]
fn dd_time_strictly_improves_with_more_kncs_on_48() {
    let m = MultiNodeModel::paper_setup();
    let lat = lattice_48();
    let mut prev = f64::INFINITY;
    for &k in &lat.dd_knc_counts {
        let b = m.dd_solve(&lat.dims, &rank_layout(&lat.dims, k).unwrap(), &lat.dd);
        assert!(b.total_time_s < prev);
        assert!(b.total_time_s > 0.0);
        prev = b.total_time_s;
    }
}

#[test]
fn traffic_per_knc_shrinks_with_more_kncs() {
    let m = MultiNodeModel::paper_setup();
    for lat in [lattice_48(), lattice_64()] {
        let mut prev = f64::INFINITY;
        for &k in &lat.dd_knc_counts {
            let b = m.dd_solve(&lat.dims, &rank_layout(&lat.dims, k).unwrap(), &lat.dd);
            assert!(
                b.comm_mb_per_knc < prev,
                "{}: {} KNCs sent {} MB",
                lat.label,
                k,
                b.comm_mb_per_knc
            );
            prev = b.comm_mb_per_knc;
        }
    }
}

#[test]
fn global_sum_count_is_independent_of_knc_count() {
    // The paper's Table III shows exactly 423 / 27 sums at every node
    // count — reductions are an algorithm property, not a machine one.
    let m = MultiNodeModel::paper_setup();
    let lat = lattice_48();
    let counts: Vec<u64> = lat
        .dd_knc_counts
        .iter()
        .map(|&k| m.dd_solve(&lat.dims, &rank_layout(&lat.dims, k).unwrap(), &lat.dd).global_sums)
        .collect();
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// More Schwarz iterations cost proportionally more preconditioner
    /// time but never change A/GS/other.
    #[test]
    fn ischwarz_scales_m_linearly(is1 in 2usize..30) {
        let m = MultiNodeModel::paper_setup();
        let lat = lattice_48();
        let layout = rank_layout(&lat.dims, 64).unwrap();
        let mk = |i_schwarz| DdParams { i_schwarz, ..lat.dd };
        let a = m.dd_solve(&lat.dims, &layout, &mk(is1));
        let b = m.dd_solve(&lat.dims, &layout, &mk(2 * is1));
        prop_assert!((b.time_m / a.time_m - 2.0).abs() < 0.05);
        prop_assert!((b.time_a - a.time_a).abs() < 1e-12);
        prop_assert!((b.time_gs - a.time_gs).abs() < 1e-12);
    }

    /// Outer iterations scale every component linearly.
    #[test]
    fn outer_iterations_scale_everything(iters in 10usize..400) {
        let m = MultiNodeModel::paper_setup();
        let lat = lattice_48();
        let layout = rank_layout(&lat.dims, 32).unwrap();
        let mk = |outer_iterations| DdParams { outer_iterations, ..lat.dd };
        let a = m.dd_solve(&lat.dims, &layout, &mk(iters));
        let b = m.dd_solve(&lat.dims, &layout, &mk(2 * iters));
        prop_assert!((b.total_time_s / a.total_time_s - 2.0).abs() < 1e-9);
        prop_assert!((b.comm_mb_per_knc / a.comm_mb_per_knc - 2.0).abs() < 1e-9);
    }

    /// On-chip rate never exceeds cores x single-core rate, and the load
    /// factor stays within (0, 1].
    #[test]
    fn onchip_rate_bounded_by_linear_scaling(
        cores in 1usize..=60,
        bx in 1usize..=4,
        bt in 1usize..=6,
    ) {
        let model = OnChipModel::paper_setup();
        let block = paper_block();
        let lattice = Dims::new(16 * bx, 8, 8, 8 * bt);
        let r1 = model.preconditioner_gflops(&lattice, &block, 1);
        let rc = model.preconditioner_gflops(&lattice, &block, cores);
        prop_assert!(rc <= cores as f64 * r1 * 1.001,
            "cores {cores}: {rc} > {} x {r1}", cores as f64);
        prop_assert!(rc >= r1 * 0.999);
    }
}
