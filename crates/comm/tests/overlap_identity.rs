//! Bitwise-identity property sweep for the Fig. 4 overlapped Schwarz
//! schedule: communication hiding may change only *when data moves*,
//! never any arithmetic. The distributed preconditioner must reproduce
//! the serial one bit-for-bit for every combination of overlap on/off,
//! worker count, and rank geometry.
//!
//! One `#[test]` function on purpose: `QDD_WORKERS` is process-global
//! state, so the sweep must run serially.

use qdd_comm::dist_schwarz::DistSchwarz;
use qdd_comm::runtime::{run_spmd, CommWorld};
use qdd_comm::scatter::{gather_field, scatter_clover, scatter_field, scatter_gauge};
use qdd_core::mr::MrConfig;
use qdd_core::schwarz::{SchwarzConfig, SchwarzPreconditioner};
use qdd_dirac::clover::build_clover_field;
use qdd_dirac::gamma::GammaBasis;
use qdd_dirac::wilson::{BoundaryPhases, WilsonClover};
use qdd_field::fields::{GaugeField, SpinorField};
use qdd_lattice::{Dims, RankGrid};
use qdd_util::rng::Rng64;
use qdd_util::stats::SolveStats;

#[test]
fn overlap_workers_and_geometry_never_change_the_bits() {
    let global_dims = Dims::new(8, 8, 8, 8);
    let block = Dims::new(4, 4, 4, 4);
    let mut rng = Rng64::new(41);
    let gauge = GaugeField::<f64>::random(global_dims, &mut rng, 0.6);
    let basis = GammaBasis::degrand_rossi();
    let clover = build_clover_field(&gauge, 1.5, &basis);
    let phases = BoundaryPhases::antiperiodic_t();
    let mass = 0.2;
    let f = SpinorField::<f64>::random(global_dims, &mut rng);

    let cfg = |overlap: bool| SchwarzConfig {
        block,
        i_schwarz: 2,
        mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
        additive: false,
        overlap,
        ..Default::default()
    };

    // Serial reference, computed once. The serial preconditioner ignores
    // `overlap` (there is nothing to hide on one rank).
    let pre = SchwarzPreconditioner::new(
        WilsonClover::new(gauge.clone(), clover.clone(), mass, phases),
        cfg(true),
    )
    .unwrap();
    let mut st = SolveStats::new();
    let expect = pre.apply(&f, &mut st);

    let saved = std::env::var("QDD_WORKERS").ok();
    for rank_dims in [Dims::new(1, 1, 1, 2), Dims::new(2, 2, 1, 1), Dims::new(2, 2, 2, 2)] {
        let grid = RankGrid::new(global_dims, rank_dims);
        let local_gauge = scatter_gauge(&gauge, &grid);
        let local_clover = scatter_clover(&clover, &grid);
        let f_local = scatter_field(&f, &grid);
        for workers in [1usize, 2, 4] {
            std::env::set_var("QDD_WORKERS", workers.to_string());
            for overlap in [true, false] {
                let world = CommWorld::new(grid.clone());
                let locals = run_spmd(&world, |ctx| {
                    let r = ctx.rank();
                    let op = WilsonClover::new(
                        local_gauge[r].clone(),
                        local_clover[r].clone(),
                        mass,
                        phases,
                    );
                    let pre = DistSchwarz::new(ctx, &op, cfg(overlap)).unwrap();
                    let mut stats = SolveStats::new();
                    pre.apply(&f_local[r], &mut stats)
                });
                let got = gather_field(&locals, &grid);
                assert_eq!(
                    got.as_slice(),
                    expect.as_slice(),
                    "bits changed: ranks {rank_dims}, workers {workers}, overlap {overlap}"
                );
            }
        }
    }
    match saved {
        Some(v) => std::env::set_var("QDD_WORKERS", v),
        None => std::env::remove_var("QDD_WORKERS"),
    }
}
