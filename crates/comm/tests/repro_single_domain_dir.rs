//! Repro: DistSchwarz with a direction having exactly ONE global domain
//! (block spans the full global extent of an unsplit direction).

use qdd_comm::{
    gather_field, run_spmd, scatter_clover, scatter_field, scatter_gauge, CommWorld, DistSchwarz,
};
use qdd_core::mr::MrConfig;
use qdd_core::schwarz::{SchwarzConfig, SchwarzPreconditioner};
use qdd_dirac::clover::build_clover_field;
use qdd_dirac::gamma::GammaBasis;
use qdd_dirac::wilson::{BoundaryPhases, WilsonClover};
use qdd_field::fields::{GaugeField, SpinorField};
use qdd_lattice::{Dims, RankGrid};
use qdd_util::rng::Rng64;
use qdd_util::stats::SolveStats;

#[test]
fn dist_schwarz_single_domain_direction() {
    let global_dims = Dims::new(8, 8, 8, 8);
    // 2 ranks in t; block 8x4x4x4 -> x direction has ONE global domain.
    let rank_dims = Dims::new(1, 1, 1, 2);
    let block = Dims::new(8, 4, 4, 4);
    let cfg = SchwarzConfig {
        block,
        i_schwarz: 2,
        mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
        additive: false,
        overlap: true,
        ..Default::default()
    };
    let grid = RankGrid::new(global_dims, rank_dims);
    let mut rng = Rng64::new(31);
    let gauge = GaugeField::<f64>::random(global_dims, &mut rng, 0.6);
    let basis = GammaBasis::degrand_rossi();
    let clover = build_clover_field(&gauge, 1.5, &basis);
    let phases = BoundaryPhases::antiperiodic_t();
    let f = SpinorField::<f64>::random(global_dims, &mut rng);

    // Serial reference.
    let pre = SchwarzPreconditioner::new(
        WilsonClover::new(gauge.clone(), clover.clone(), 0.2, phases),
        cfg,
    )
    .unwrap();
    let mut st = SolveStats::new();
    let expect = pre.apply(&f, &mut st);

    let local_gauge = scatter_gauge(&gauge, &grid);
    let local_clover = scatter_clover(&clover, &grid);
    let f_local = scatter_field(&f, &grid);
    let world = CommWorld::new(grid.clone());
    let results = run_spmd(&world, |ctx| {
        let r = ctx.rank();
        let op = WilsonClover::new(local_gauge[r].clone(), local_clover[r].clone(), 0.2, phases);
        let pre = DistSchwarz::new(ctx, &op, cfg).unwrap();
        let mut stats = SolveStats::new();
        pre.apply(&f_local[r], &mut stats)
    });
    let got = gather_field(&results, &grid);
    let mut diff = got.clone();
    diff.sub_assign(&expect);
    let rel = diff.norm() / expect.norm();
    assert!(rel < 1e-14, "distributed Schwarz diverged from serial: rel {rel}");
}
