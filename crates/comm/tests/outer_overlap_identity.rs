//! Bitwise-identity sweep for the staged *outer* operator apply plus
//! the peer-skip fault accounting it must keep honest.
//!
//! The staged schedule (`DistSystem` default) may change only *when*
//! the halo drain happens, never any arithmetic: for every rank
//! geometry and worker count the overlapped apply must reproduce the
//! bulk (`with_overlap(false)`) apply bit for bit. One `#[test]` for
//! the sweep on purpose: `QDD_WORKERS` is process-global state.

use qdd_comm::dist_system::DistSystem;
use qdd_comm::exchange::{exchange_bytes, face_bytes};
use qdd_comm::runtime::{run_spmd, CommError, CommWorld};
use qdd_comm::scatter::{gather_field, scatter_clover, scatter_field, scatter_gauge};
use qdd_core::system::{LocalSystem, SystemOps};
use qdd_dirac::clover::build_clover_field;
use qdd_dirac::gamma::GammaBasis;
use qdd_dirac::wilson::{BoundaryPhases, WilsonClover};
use qdd_faults::{FaultClass, FaultEvent, FaultPlan, FaultRates};
use qdd_field::fields::{GaugeField, SpinorField};
use qdd_lattice::{Dims, Dir, RankGrid};
use qdd_util::rng::Rng64;
use qdd_util::stats::{Component, SolveStats};

struct Setup {
    global_op: WilsonClover<f64>,
    gauge: GaugeField<f64>,
    clover: qdd_field::fields::CloverField<f64>,
    f: SpinorField<f64>,
}

fn setup() -> Setup {
    let global_dims = Dims::new(8, 8, 8, 8);
    let mut rng = Rng64::new(97);
    let gauge = GaugeField::<f64>::random(global_dims, &mut rng, 0.55);
    let basis = GammaBasis::degrand_rossi();
    let clover = build_clover_field(&gauge, 1.45, &basis);
    let phases = BoundaryPhases::antiperiodic_t();
    let global_op = WilsonClover::new(gauge.clone(), clover.clone(), 0.22, phases);
    let f = SpinorField::<f64>::random(global_dims, &mut rng);
    Setup { global_op, gauge, clover, f }
}

fn dist_apply(
    s: &Setup,
    grid: &RankGrid,
    overlap: bool,
    plan: Option<FaultPlan>,
) -> (SpinorField<f64>, Vec<(f64, u64, u64, u64, u64, Option<CommError>)>) {
    let local_gauge = scatter_gauge(&s.gauge, grid);
    let local_clover = scatter_clover(&s.clover, grid);
    let f_local = scatter_field(&s.f, grid);
    let world = match plan {
        Some(p) => CommWorld::with_faults(grid.clone(), p),
        None => CommWorld::new(grid.clone()),
    };
    let results = run_spmd(&world, |ctx| {
        let r = ctx.rank();
        let op = WilsonClover::new(
            local_gauge[r].clone(),
            local_clover[r].clone(),
            0.22,
            BoundaryPhases::antiperiodic_t(),
        );
        let sys = DistSystem::new(ctx, &op).with_overlap(overlap);
        let mut stats = SolveStats::new();
        let mut out = SpinorField::zeros(*op.dims());
        sys.apply(&mut out, &f_local[r], &mut stats);
        let faults = ctx.counters.snapshot().faults;
        (
            out,
            (
                stats.comm_recv_bytes(Component::OperatorA),
                faults.peer_skips,
                faults.zero_fills,
                faults.timeouts,
                faults.hiccups,
                sys.comm_error(),
            ),
        )
    });
    let locals: Vec<SpinorField<f64>> = results.iter().map(|r| r.0.clone()).collect();
    (gather_field(&locals, grid), results.into_iter().map(|r| r.1).collect())
}

#[test]
fn outer_overlap_workers_and_geometry_never_change_the_bits() {
    let s = setup();
    let global_dims = *s.global_op.dims();

    // Tolerance anchor: the distributed apply (any schedule) must agree
    // with the single-rank operator to rounding.
    let mut st = SolveStats::new();
    let local = LocalSystem::new(&s.global_op);
    let mut anchor = SpinorField::zeros(global_dims);
    local.apply(&mut anchor, &s.f, &mut st);

    let saved = std::env::var("QDD_WORKERS").ok();
    for rank_dims in [Dims::new(1, 1, 1, 2), Dims::new(2, 2, 1, 1), Dims::new(2, 2, 2, 2)] {
        let grid = RankGrid::new(global_dims, rank_dims);
        // Bulk reference at one worker: the schedule every other
        // (overlap, workers) combination must reproduce bitwise.
        std::env::set_var("QDD_WORKERS", "1");
        let (reference, _) = dist_apply(&s, &grid, false, None);
        let mut diff = reference.clone();
        diff.sub_assign(&anchor);
        assert!(
            diff.norm() < 1e-12 * anchor.norm(),
            "distributed apply drifted from the single-rank operator: ranks {rank_dims}"
        );
        for workers in [1usize, 2, 4] {
            std::env::set_var("QDD_WORKERS", workers.to_string());
            for overlap in [true, false] {
                let (got, stats) = dist_apply(&s, &grid, overlap, None);
                assert_eq!(
                    got.as_slice(),
                    reference.as_slice(),
                    "bits changed: ranks {rank_dims}, workers {workers}, overlap {overlap}"
                );
                for (recv, skips, zf, to, hic, err) in stats {
                    assert!(recv > 0.0, "clean apply must receive its halo");
                    assert_eq!((skips, zf, to, hic), (0, 0, 0, 0), "clean run counted faults");
                    assert!(err.is_none());
                }
            }
        }
    }
    match saved {
        Some(v) => std::env::set_var("QDD_WORKERS", v),
        None => std::env::remove_var("QDD_WORKERS"),
    }
}

/// A peer hiccup under the overlapped outer apply: the victim rank must
/// report the *peer-skip* fault class (not retry-exhausted timeouts),
/// zero-fill exactly the skipped faces, and deduct exactly those faces
/// from its received-byte ledger — while the overlap on/off results stay
/// bitwise identical (both degrade to the same zeroed faces).
#[test]
fn peer_hiccup_is_skip_accounted_not_timeout() {
    let s = setup();
    let global_dims = *s.global_op.dims();
    let grid = RankGrid::new(global_dims, Dims::new(1, 1, 1, 2));
    // Rank 0 hiccups its first outer exchange: both of its t-faces turn
    // into skip markers, which rank 1 receives.
    let plan = || {
        FaultPlan::new(5, FaultRates::NONE).with_event(FaultEvent {
            rank: 0,
            class: FaultClass::Hiccup,
            dir: None,
            forward: None,
            at_seq: 0,
            attempts: 1,
        })
    };
    let (with, stats_on) = dist_apply(&s, &grid, true, Some(plan()));
    let (without, stats_off) = dist_apply(&s, &grid, false, Some(plan()));
    assert_eq!(
        with.as_slice(),
        without.as_slice(),
        "degraded apply must stay bitwise overlap-independent"
    );

    let local = *grid.local();
    let full = {
        // Full exchange bytes for this geometry, from any rank's view
        // (the grid is homogeneous).
        let world = CommWorld::new(grid.clone());
        let g = scatter_gauge(&s.gauge, &grid);
        let c = scatter_clover(&s.clover, &grid);
        run_spmd(&world, |ctx| {
            let op = WilsonClover::new(
                g[ctx.rank()].clone(),
                c[ctx.rank()].clone(),
                0.22,
                BoundaryPhases::antiperiodic_t(),
            );
            exchange_bytes(ctx, &op)
        })[0]
    };
    let skipped = 2.0 * face_bytes::<f64>(local.face_area(Dir::T));
    for stats in [&stats_on, &stats_off] {
        // Rank 0 skipped the round: one hiccup, clean receives.
        let (recv0, skips0, zf0, to0, hic0, err0) = &stats[0];
        assert_eq!((*skips0, *zf0, *to0, *hic0), (0, 0, 0, 1), "rank 0 is the skipper");
        assert_eq!(*recv0, full, "rank 0 still receives rank 1's faces in full");
        assert!(err0.is_none(), "skipping your own send is not a local fault");
        // Rank 1 is the victim: two peer skips, two zero-filled faces,
        // zero timeouts (no retry budget was burned), and a received-byte
        // ledger short by exactly the two skipped t-faces.
        let (recv1, skips1, zf1, to1, hic1, err1) = &stats[1];
        assert_eq!((*skips1, *zf1, *to1, *hic1), (2, 2, 0, 0), "peer skips must not be timeouts");
        assert!((recv1 - (full - skipped)).abs() < 1e-9, "recv ledger must deduct skipped faces");
        assert!(
            matches!(err1, Some(CommError::PeerSkipped { .. })),
            "fault must surface as PeerSkipped, got {err1:?}"
        );
    }
}
