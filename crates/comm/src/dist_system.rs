//! The distributed linear system: `SystemOps` over ranks.
//!
//! Plugging this into the *unchanged* solvers of `qdd-core` gives the
//! multi-node solver variants: operator applications exchange halos,
//! inner products become deterministic all-reduces, and every byte and
//! reduction is accounted in the `SolveStats` ledger.

use crate::exchange::exchange_halo;
use crate::runtime::{CommError, HaloScalar, RankCtx};
use qdd_core::system::SystemOps;
use qdd_dirac::wilson::WilsonClover;
use qdd_field::fields::SpinorField;
use qdd_field::halo::HaloData;
use qdd_lattice::Dims;
use qdd_util::complex::{Complex, Real};
use qdd_util::stats::{Component, SolveStats};
use std::cell::Cell;

/// One rank's view of the distributed system.
pub struct DistSystem<'a, T: Real> {
    ctx: &'a RankCtx<'a>,
    op: &'a WilsonClover<T>,
    /// First communication fault, if any. `SystemOps` has no error channel
    /// (the solvers are oblivious to distribution), so a failed exchange
    /// degrades to a zeroed halo and is recorded here for the caller to
    /// inspect after the solve.
    fault: Cell<Option<CommError>>,
}

impl<'a, T: HaloScalar> DistSystem<'a, T> {
    pub fn new(ctx: &'a RankCtx<'a>, op: &'a WilsonClover<T>) -> Self {
        assert_eq!(
            op.dims(),
            ctx.grid().local(),
            "operator must be built on the rank-local lattice"
        );
        Self { ctx, op, fault: Cell::new(None) }
    }

    pub fn ctx(&self) -> &RankCtx<'a> {
        self.ctx
    }

    pub fn op(&self) -> &WilsonClover<T> {
        self.op
    }

    /// The first communication fault seen by this rank's operator
    /// applications, if any. A solve whose system reports a fault must be
    /// treated as unreliable (the serve layer maps it to `Degraded`).
    pub fn comm_error(&self) -> Option<CommError> {
        self.fault.get()
    }

    fn comm_bytes_per_apply(&self) -> f64 {
        crate::exchange::exchange_bytes(self.ctx, self.op)
    }

    /// Halo exchange with an *explicit* degradation policy: faces that
    /// survive the retry budget are used as delivered; each exhausted
    /// face stays zeroed in the partial halo, is counted under
    /// `fault.zero_fills`, and the first typed error is recorded for the
    /// caller. The old behavior — silently zeroing the whole halo on the
    /// first error — is gone. Returns the halo together with the bytes
    /// actually received (full exchange minus undelivered faces).
    fn exchange_or_degrade(&self, inp: &SpinorField<T>) -> (HaloData<T>, f64) {
        let full = self.comm_bytes_per_apply();
        match exchange_halo(self.ctx, self.op, inp) {
            Ok(h) => (h, full),
            Err(fail) => {
                if self.fault.get().is_none() {
                    self.fault.set(Some(fail.first()));
                }
                let zf = &self.ctx.counters.faults.zero_fills;
                zf.set(zf.get() + fail.faults.len() as u64);
                let per_site = (12 * std::mem::size_of::<T>()) as f64;
                let lost: f64 = fail
                    .faults
                    .iter()
                    .map(|f| self.op.dims().face_area(f.dir) as f64 * per_site)
                    .sum();
                (fail.partial, full - lost)
            }
        }
    }
}

impl<T: HaloScalar> SystemOps<T> for DistSystem<'_, T> {
    fn local_dims(&self) -> Dims {
        *self.op.dims()
    }

    fn apply(&self, out: &mut SpinorField<T>, inp: &SpinorField<T>, stats: &mut SolveStats) {
        let (halo, received) = self.exchange_or_degrade(inp);
        self.op.apply_with_halo_split(out, inp, &halo, self.ctx.split_dirs());
        stats.add_flops(Component::OperatorA, self.op.apply_flops());
        stats.add_comm_bytes(Component::OperatorA, self.comm_bytes_per_apply());
        stats.add_comm_recv_bytes(Component::OperatorA, received);
        stats.count_operator_application();
    }

    fn apply_adjoint(
        &self,
        out: &mut SpinorField<T>,
        inp: &SpinorField<T>,
        stats: &mut SolveStats,
    ) {
        let basis = self.op.basis();
        let g5in = SpinorField::from_fn(*inp.dims(), |s| basis.apply_gamma5(inp.site(s)));
        let (halo, received) = self.exchange_or_degrade(&g5in);
        self.op.apply_with_halo_split(out, &g5in, &halo, self.ctx.split_dirs());
        for s in 0..out.len() {
            *out.site_mut(s) = basis.apply_gamma5(out.site(s));
        }
        stats.add_flops(Component::OperatorA, self.op.apply_flops());
        stats.add_comm_bytes(Component::OperatorA, self.comm_bytes_per_apply());
        stats.add_comm_recv_bytes(Component::OperatorA, received);
        stats.count_operator_application();
    }

    fn apply_flops(&self) -> f64 {
        self.op.apply_flops()
    }

    fn dot(&self, a: &SpinorField<T>, b: &SpinorField<T>, stats: &mut SolveStats) -> Complex<T> {
        stats.count_global_sum();
        let local = a.dot(b);
        let global = self.ctx.all_sum(&[local.re.to_f64(), local.im.to_f64()]);
        Complex::new(T::from_f64(global[0]), T::from_f64(global[1]))
    }

    fn norm_sqr(&self, a: &SpinorField<T>, stats: &mut SolveStats) -> T {
        stats.count_global_sum();
        let local = a.norm_sqr().to_f64();
        T::from_f64(self.ctx.all_sum(&[local])[0])
    }

    fn dots_batched(
        &self,
        vs: &[SpinorField<T>],
        w: &SpinorField<T>,
        stats: &mut SolveStats,
    ) -> Vec<Complex<T>> {
        stats.count_global_sum();
        let mut partial = Vec::with_capacity(2 * vs.len());
        for v in vs {
            let d = v.dot(w);
            partial.push(d.re.to_f64());
            partial.push(d.im.to_f64());
        }
        let global = self.ctx.all_sum(&partial);
        global.chunks(2).map(|c| Complex::new(T::from_f64(c[0]), T::from_f64(c[1]))).collect()
    }

    fn dot_and_norm(
        &self,
        a: &SpinorField<T>,
        b: &SpinorField<T>,
        stats: &mut SolveStats,
    ) -> (Complex<T>, T) {
        stats.count_global_sum();
        let d = a.dot(b);
        let n = a.norm_sqr().to_f64();
        let global = self.ctx.all_sum(&[d.re.to_f64(), d.im.to_f64(), n]);
        (Complex::new(T::from_f64(global[0]), T::from_f64(global[1])), T::from_f64(global[2]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run_spmd, CommWorld};
    use crate::scatter::{gather_field, scatter_clover, scatter_field, scatter_gauge};
    use qdd_core::bicgstab::{bicgstab, BiCgStabConfig};
    use qdd_core::system::LocalSystem;
    use qdd_dirac::clover::build_clover_field;
    use qdd_dirac::gamma::GammaBasis;
    use qdd_dirac::wilson::BoundaryPhases;
    use qdd_field::fields::GaugeField;
    use qdd_lattice::{Dims, RankGrid};
    use qdd_util::rng::Rng64;

    struct Setup {
        grid: RankGrid,
        global_op: WilsonClover<f64>,
        local_gauge: Vec<GaugeField<f64>>,
        local_clover: Vec<qdd_field::fields::CloverField<f64>>,
        f_global: SpinorField<f64>,
        f_local: Vec<SpinorField<f64>>,
    }

    fn setup(rank_dims: Dims) -> Setup {
        let global_dims = Dims::new(8, 8, 4, 8);
        let grid = RankGrid::new(global_dims, rank_dims);
        let mut rng = Rng64::new(21);
        let gauge = GaugeField::<f64>::random(global_dims, &mut rng, 0.5);
        let basis = GammaBasis::degrand_rossi();
        let clover = build_clover_field(&gauge, 1.4, &basis);
        let global_op = WilsonClover::new(
            gauge.clone(),
            clover.clone(),
            0.25,
            BoundaryPhases::antiperiodic_t(),
        );
        let f_global = SpinorField::<f64>::random(global_dims, &mut rng);
        Setup {
            local_gauge: scatter_gauge(&gauge, &grid),
            local_clover: scatter_clover(&clover, &grid),
            f_local: scatter_field(&f_global, &grid),
            grid,
            global_op,
            f_global,
        }
    }

    #[test]
    fn distributed_bicgstab_matches_single_rank() {
        let s = setup(Dims::new(2, 1, 1, 2));
        let cfg = BiCgStabConfig { tolerance: 1e-9, max_iterations: 3000 };

        // Single rank ground truth.
        let mut st = qdd_util::stats::SolveStats::new();
        let (x_ref, out_ref) =
            bicgstab(&LocalSystem::new(&s.global_op), &s.f_global, &cfg, &mut st);
        assert!(out_ref.converged);

        // Distributed.
        let world = CommWorld::new(s.grid.clone());
        let results = run_spmd(&world, |ctx| {
            let r = ctx.rank();
            let op = WilsonClover::new(
                s.local_gauge[r].clone(),
                s.local_clover[r].clone(),
                0.25,
                BoundaryPhases::antiperiodic_t(),
            );
            let sys = DistSystem::new(ctx, &op);
            let mut stats = qdd_util::stats::SolveStats::new();
            let (x, out) = bicgstab(&sys, &s.f_local[r], &cfg, &mut stats);
            (x, out.iterations, out.converged, stats.total_comm_bytes())
        });
        // All ranks took the same iteration count and converged.
        for (_, iters, conv, _) in &results {
            assert!(*conv);
            assert_eq!(*iters, results[0].1);
        }
        // Solutions agree with the single-rank solve.
        let locals: Vec<SpinorField<f64>> = results.iter().map(|r| r.0.clone()).collect();
        let x = gather_field(&locals, &s.grid);
        let mut diff = x.clone();
        diff.sub_assign(&x_ref);
        assert!(
            diff.norm() < 1e-6 * x_ref.norm(),
            "solutions diverge: rel {}",
            diff.norm() / x_ref.norm()
        );
        // Communication happened.
        assert!(results[0].3 > 0.0);
    }

    #[test]
    fn distributed_dot_is_global() {
        let s = setup(Dims::new(2, 2, 1, 1));
        let world = CommWorld::new(s.grid.clone());
        let expect = s.f_global.norm_sqr();
        let results = run_spmd(&world, |ctx| {
            let r = ctx.rank();
            let op = WilsonClover::new(
                s.local_gauge[r].clone(),
                s.local_clover[r].clone(),
                0.25,
                BoundaryPhases::antiperiodic_t(),
            );
            let sys = DistSystem::new(ctx, &op);
            let mut stats = qdd_util::stats::SolveStats::new();
            sys.norm_sqr(&s.f_local[r], &mut stats)
        });
        for r in results {
            assert!((r - expect).abs() < 1e-9 * expect);
        }
    }
}
