//! The distributed linear system: `SystemOps` over ranks.
//!
//! Plugging this into the *unchanged* solvers of `qdd-core` gives the
//! multi-node solver variants: operator applications exchange halos,
//! inner products become deterministic all-reduces, and every byte and
//! reduction is accounted in the `SolveStats` ledger.
//!
//! # The staged outer apply (Fig. 4, end to end)
//!
//! Every operator application runs the boundary-first staged schedule
//! that PR 5 built for the Schwarz sweep, now on the outer matvec:
//!
//! 1. **begin**: pack and post all split-direction face sends
//!    ([`begin_exchange`]) — boundary data leaves first, before any
//!    local flop.
//! 2. **interior**: pool workers steal chunks of the interior site list
//!    (sites with no split-direction coordinate on a rank face) off an
//!    atomic [`ChunkQueue`] and compute them while the receives are
//!    still in flight. Interior sites never consult the halo, so they
//!    read a persistent zeroed one.
//! 3. **drain**: the first worker to need the halo — the leader, once
//!    the interior queue runs dry — drains the receives lazily
//!    ([`drain_exchange`]), publishes the halo through a [`StageGate`],
//!    and steals straight into the boundary stage. Other workers wait
//!    on the *gate* (the data dependency), never on each other: there
//!    is no inter-stage barrier.
//! 4. **boundary**: workers steal boundary-site chunks and finish the
//!    apply with the real halo.
//!
//! Because the per-site kernel (`apply_site_with_halo_fetch_split`) is
//! pure and output sites are disjoint, the staged schedule is bitwise
//! identical to the bulk one (`--no-overlap`) for any worker count —
//! only *when* the drain happens differs, which is exactly the exposed
//! communication time the paper hides.

use crate::exchange::{
    begin_exchange, drain_exchange, exchange_bytes, face_bytes, PendingExchange,
};
use crate::runtime::{CommError, HaloScalar, RankCtx};
use qdd_core::pool::{resolve_workers, LeaderOnly, SharedCells, WorkerPool};
use qdd_core::stage::{ChunkQueue, StageGate};
use qdd_core::system::SystemOps;
use qdd_dirac::fused_full::{build_full_operator, FullOperator, SplitTiles};
use qdd_dirac::wilson::WilsonClover;
use qdd_field::fields::SpinorField;
use qdd_field::halo::HaloData;
use qdd_lattice::{Dims, SiteIndexer};
use qdd_util::complex::{Complex, Real};
use qdd_util::stats::{Component, SolveStats};
use std::cell::{Cell, RefCell};

/// Interior/boundary partition of the local site list for a rank split:
/// a site is *boundary* iff some split-direction coordinate sits on a
/// rank face (0 or L-1), i.e. iff its apply may consult the halo.
struct SitePartition {
    interior: Vec<usize>,
    boundary: Vec<usize>,
}

impl SitePartition {
    fn new(dims: Dims, split: [bool; 4]) -> Self {
        let idx = SiteIndexer::new(dims);
        let volume = dims.volume();
        let mut interior = Vec::with_capacity(volume);
        let mut boundary = Vec::new();
        for site in 0..volume {
            let c = idx.coord(site);
            let on_face = (0..4).any(|d| split[d] && (c.0[d] == 0 || c.0[d] == dims.0[d] - 1));
            if on_face {
                boundary.push(site);
            } else {
                interior.push(site);
            }
        }
        Self { interior, boundary }
    }
}

/// Optional fused-SIMD interior engine: the interior stage runs the
/// fused full-lattice kernel over interior (z, t) tiles, the boundary
/// stage stays scalar (it needs the halo fetch path). Opt-in via
/// [`DistSystem::with_fused_interior`] because fused and scalar
/// arithmetic differ in rounding: the hybrid apply is bitwise
/// *overlap-on vs overlap-off* (same engines either way), but only
/// tolerance-equal to the all-scalar apply.
struct FusedInterior<T: Real> {
    op: Box<dyn FullOperator<T>>,
    tiles: SplitTiles,
}

/// One rank's view of the distributed system.
pub struct DistSystem<'a, T: Real> {
    ctx: &'a RankCtx<'a>,
    op: &'a WilsonClover<T>,
    /// First communication fault, if any. `SystemOps` has no error channel
    /// (the solvers are oblivious to distribution), so a failed exchange
    /// degrades to a zeroed halo and is recorded here for the caller to
    /// inspect after the solve.
    fault: Cell<Option<CommError>>,
    /// Staged overlap schedule on (default) or bulk exchange-then-compute.
    overlap: bool,
    pool: WorkerPool,
    sites: SitePartition,
    /// The halo the interior stage reads while the real one is in
    /// flight. Interior sites never take the halo branch
    /// (`wrap && split` requires a face coordinate), so it stays zero.
    empty_halo: HaloData<T>,
    fused: Option<FusedInterior<T>>,
}

impl<'a, T: HaloScalar> DistSystem<'a, T> {
    pub fn new(ctx: &'a RankCtx<'a>, op: &'a WilsonClover<T>) -> Self {
        assert_eq!(
            op.dims(),
            ctx.grid().local(),
            "operator must be built on the rank-local lattice"
        );
        Self {
            ctx,
            op,
            fault: Cell::new(None),
            overlap: true,
            pool: WorkerPool::new(resolve_workers(1)),
            sites: SitePartition::new(*op.dims(), ctx.split_dirs()),
            empty_halo: HaloData::zeros(*op.dims()),
            fused: None,
        }
    }

    /// Enable (default) or disable the staged overlap schedule. Off, the
    /// apply drains the exchange before computing anything — the bulk
    /// baseline the overlap must match bitwise.
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// Use an explicit worker count for the staged apply, overriding the
    /// default (`QDD_WORKERS` or 1). Unlike the constructor default this
    /// ignores the environment — benches sweep it deterministically.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.pool = WorkerPool::new(workers.max(1));
        self
    }

    /// Run interior tiles through the fused SIMD kernel (boundary sites
    /// stay scalar: they need the halo fetch path). Falls back to the
    /// all-scalar schedule silently when the fused operator cannot be
    /// built (odd extents, unsupported lane count) or the split has x/y
    /// components (tiles span the x-y cross-section). Opt-in: the hybrid
    /// rounds like the fused kernel, not like the scalar loop, so it is
    /// bitwise-comparable only against itself across overlap/workers.
    pub fn with_fused_interior(mut self) -> Self {
        let split = self.ctx.split_dirs();
        self.fused = build_full_operator(self.op)
            .and_then(|op| op.split_tiles(split).map(|tiles| FusedInterior { op, tiles }));
        self
    }

    /// True if the fused-interior engine is active (diagnostics).
    pub fn fused_interior_active(&self) -> bool {
        self.fused.is_some()
    }

    /// Interior / boundary site counts of the staged schedule (the
    /// paper's `ndomain` analog for the Eq. 7 hiding boundary).
    pub fn stage_site_counts(&self) -> (usize, usize) {
        (self.sites.interior.len(), self.sites.boundary.len())
    }

    pub fn ctx(&self) -> &RankCtx<'a> {
        self.ctx
    }

    pub fn op(&self) -> &WilsonClover<T> {
        self.op
    }

    /// The first communication fault seen by this rank's operator
    /// applications, if any. A solve whose system reports a fault must be
    /// treated as unreliable (the serve layer maps it to `Degraded`).
    pub fn comm_error(&self) -> Option<CommError> {
        self.fault.get()
    }

    fn comm_bytes_per_apply(&self) -> f64 {
        exchange_bytes(self.ctx, self.op)
    }

    /// Drain a staged exchange with an *explicit* degradation policy:
    /// faces that survive the retry budget are used as delivered; each
    /// undelivered face (retry-exhausted or peer-skipped) stays zeroed
    /// in the partial halo, is counted under `fault.zero_fills`, and the
    /// first typed error is recorded for the caller. Returns the halo
    /// together with the bytes actually received (full exchange minus
    /// undelivered faces, matching the runtime's `bytes_received`
    /// ledger — both derive per-face bytes from [`face_bytes`]).
    fn drain_or_degrade(&self, pending: PendingExchange) -> (HaloData<T>, f64) {
        let full = self.comm_bytes_per_apply();
        match drain_exchange(self.ctx, *self.op.dims(), pending) {
            Ok(h) => (h, full),
            Err(fail) => {
                if self.fault.get().is_none() {
                    self.fault.set(Some(fail.first()));
                }
                let zf = &self.ctx.counters.faults.zero_fills;
                zf.set(zf.get() + fail.faults().len() as u64);
                let lost: f64 = fail
                    .faults()
                    .iter()
                    .map(|f| face_bytes::<T>(self.op.dims().face_area(f.dir)))
                    .sum();
                (fail.into_partial(), full - lost)
            }
        }
    }

    /// One staged apply: begin the exchange, compute, drain where the
    /// schedule dictates. Returns the bytes actually received.
    fn staged_apply(&self, out: &mut SpinorField<T>, inp: &SpinorField<T>) -> f64 {
        let pending = begin_exchange(self.ctx, self.op, inp);
        if let Some(fused) = &self.fused {
            return self.apply_fused_hybrid(fused, pending, out, inp);
        }
        if !self.overlap || self.sites.interior.is_empty() {
            // Bulk: drain first, then one split-aware pass over all sites.
            let (halo, received) = self.drain_or_degrade(pending);
            self.op.apply_with_halo_split(out, inp, &halo, self.ctx.split_dirs());
            return received;
        }
        self.apply_overlapped(pending, out, inp)
    }

    /// The barrier-free staged schedule (module docs). One pool job runs
    /// interior-steal → lazy drain behind a gate → boundary-steal.
    fn apply_overlapped(
        &self,
        pending: PendingExchange,
        out: &mut SpinorField<T>,
        inp: &SpinorField<T>,
    ) -> f64 {
        let op = self.op;
        let split = self.ctx.split_dirs();
        let interior = &self.sites.interior[..];
        let boundary = &self.sites.boundary[..];
        let empty = &self.empty_halo;
        let workers = self.pool.workers();
        let chunk = (interior.len() / (8 * workers)).clamp(32, 4096);
        let iq = ChunkQueue::new(interior.len(), chunk);
        let bq = ChunkQueue::new(boundary.len(), chunk);
        let gate = StageGate::new();
        // The halo starts zeroed and is replaced by the leader before the
        // gate opens; the received-byte count rides the same handoff.
        let mut halo_slot = [HaloData::<T>::zeros(*op.dims())];
        let halo_cells = SharedCells::new(&mut halo_slot[..]);
        let received = Cell::new(0.0f64);
        // `self` (Cell fault), the pending receives, and the byte ledger
        // are leader-confined: only worker 0 — the rank thread itself —
        // touches the comm context.
        let pending = RefCell::new(Some(pending));
        let leader_self = LeaderOnly::new(self);
        let leader_pending = LeaderOnly::new(&pending);
        let leader_received = LeaderOnly::new(&received);
        let out_cells = SharedCells::new(out.as_mut_slice());
        self.pool.run(&|w| {
            let fetch = |i: usize| *inp.site(i);
            // Interior stage: steal chunks while the faces fly.
            while let Some(r) = iq.next() {
                for &site in &interior[r] {
                    let v = op.apply_site_with_halo_fetch_split(site, fetch, empty, split);
                    unsafe { out_cells.write(site, v) };
                }
            }
            if w == 0 {
                // Leader: the interior queue is dry on this worker, so
                // the halo is now the critical path — drain it and open
                // the gate. Everything written here is published by the
                // gate's release store.
                let this = unsafe { leader_self.get() };
                let p = unsafe { leader_pending.get() }
                    .borrow_mut()
                    .take()
                    .expect("staged apply drains exactly once");
                let (halo, recv) = this.drain_or_degrade(p);
                let slot = unsafe { halo_cells.slice_mut(0..1) };
                slot[0] = halo;
                unsafe { leader_received.get() }.set(recv);
                gate.open();
            } else {
                // Not a barrier: waits on the halo (the data dependency),
                // not on other workers' interior shares.
                gate.wait();
            }
            let halo: &HaloData<T> = unsafe { halo_cells.get(0) };
            // Boundary stage: steal chunks against the drained halo.
            while let Some(r) = bq.next() {
                for &site in &boundary[r] {
                    let v = op.apply_site_with_halo_fetch_split(site, fetch, halo, split);
                    unsafe { out_cells.write(site, v) };
                }
            }
        });
        received.get()
    }

    /// Hybrid fused/scalar staged apply: fused kernel over interior
    /// (z, t) tiles, scalar halo path over boundary-tile sites. The two
    /// engines and their site assignment are identical with overlap on
    /// and off — only the drain position moves — so the hybrid keeps the
    /// bitwise overlap-on/off identity.
    fn apply_fused_hybrid(
        &self,
        fused: &FusedInterior<T>,
        pending: PendingExchange,
        out: &mut SpinorField<T>,
        inp: &SpinorField<T>,
    ) -> f64 {
        let split = self.ctx.split_dirs();
        if self.overlap {
            // Interior tiles compute while the faces are in flight.
            fused.op.apply_tiles(out, inp, &self.pool, &fused.tiles.interior);
            let (halo, received) = self.drain_or_degrade(pending);
            for &site in &fused.tiles.boundary_sites {
                *out.site_mut(site) =
                    self.op.apply_site_with_halo_fetch_split(site, |i| *inp.site(i), &halo, split);
            }
            received
        } else {
            let (halo, received) = self.drain_or_degrade(pending);
            fused.op.apply_tiles(out, inp, &self.pool, &fused.tiles.interior);
            for &site in &fused.tiles.boundary_sites {
                *out.site_mut(site) =
                    self.op.apply_site_with_halo_fetch_split(site, |i| *inp.site(i), &halo, split);
            }
            received
        }
    }
}

impl<T: HaloScalar> SystemOps<T> for DistSystem<'_, T> {
    fn local_dims(&self) -> Dims {
        *self.op.dims()
    }

    fn apply(&self, out: &mut SpinorField<T>, inp: &SpinorField<T>, stats: &mut SolveStats) {
        let received = self.staged_apply(out, inp);
        stats.add_flops(Component::OperatorA, self.op.apply_flops());
        stats.add_comm_bytes(Component::OperatorA, self.comm_bytes_per_apply());
        stats.add_comm_recv_bytes(Component::OperatorA, received);
        stats.count_operator_application();
    }

    fn apply_adjoint(
        &self,
        out: &mut SpinorField<T>,
        inp: &SpinorField<T>,
        stats: &mut SolveStats,
    ) {
        let basis = self.op.basis();
        let g5in = SpinorField::from_fn(*inp.dims(), |s| basis.apply_gamma5(inp.site(s)));
        let received = self.staged_apply(out, &g5in);
        for s in 0..out.len() {
            *out.site_mut(s) = basis.apply_gamma5(out.site(s));
        }
        stats.add_flops(Component::OperatorA, self.op.apply_flops());
        stats.add_comm_bytes(Component::OperatorA, self.comm_bytes_per_apply());
        stats.add_comm_recv_bytes(Component::OperatorA, received);
        stats.count_operator_application();
    }

    fn apply_flops(&self) -> f64 {
        self.op.apply_flops()
    }

    fn dot(&self, a: &SpinorField<T>, b: &SpinorField<T>, stats: &mut SolveStats) -> Complex<T> {
        stats.count_global_sum();
        let local = a.dot(b);
        let global = self.ctx.all_sum(&[local.re.to_f64(), local.im.to_f64()]);
        Complex::new(T::from_f64(global[0]), T::from_f64(global[1]))
    }

    fn norm_sqr(&self, a: &SpinorField<T>, stats: &mut SolveStats) -> T {
        stats.count_global_sum();
        let local = a.norm_sqr().to_f64();
        T::from_f64(self.ctx.all_sum(&[local])[0])
    }

    fn dots_batched(
        &self,
        vs: &[SpinorField<T>],
        w: &SpinorField<T>,
        stats: &mut SolveStats,
    ) -> Vec<Complex<T>> {
        stats.count_global_sum();
        let mut partial = Vec::with_capacity(2 * vs.len());
        for v in vs {
            let d = v.dot(w);
            partial.push(d.re.to_f64());
            partial.push(d.im.to_f64());
        }
        let global = self.ctx.all_sum(&partial);
        global.chunks(2).map(|c| Complex::new(T::from_f64(c[0]), T::from_f64(c[1]))).collect()
    }

    fn dot_and_norm(
        &self,
        a: &SpinorField<T>,
        b: &SpinorField<T>,
        stats: &mut SolveStats,
    ) -> (Complex<T>, T) {
        stats.count_global_sum();
        let d = a.dot(b);
        let n = a.norm_sqr().to_f64();
        let global = self.ctx.all_sum(&[d.re.to_f64(), d.im.to_f64(), n]);
        (Complex::new(T::from_f64(global[0]), T::from_f64(global[1])), T::from_f64(global[2]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run_spmd, CommWorld};
    use crate::scatter::{gather_field, scatter_clover, scatter_field, scatter_gauge};
    use qdd_core::bicgstab::{bicgstab, BiCgStabConfig};
    use qdd_core::system::LocalSystem;
    use qdd_dirac::clover::build_clover_field;
    use qdd_dirac::gamma::GammaBasis;
    use qdd_dirac::wilson::BoundaryPhases;
    use qdd_field::fields::GaugeField;
    use qdd_lattice::{Dims, RankGrid};
    use qdd_util::rng::Rng64;

    struct Setup {
        grid: RankGrid,
        global_op: WilsonClover<f64>,
        local_gauge: Vec<GaugeField<f64>>,
        local_clover: Vec<qdd_field::fields::CloverField<f64>>,
        f_global: SpinorField<f64>,
        f_local: Vec<SpinorField<f64>>,
    }

    fn setup(rank_dims: Dims) -> Setup {
        let global_dims = Dims::new(8, 8, 4, 8);
        let grid = RankGrid::new(global_dims, rank_dims);
        let mut rng = Rng64::new(21);
        let gauge = GaugeField::<f64>::random(global_dims, &mut rng, 0.5);
        let basis = GammaBasis::degrand_rossi();
        let clover = build_clover_field(&gauge, 1.4, &basis);
        let global_op = WilsonClover::new(
            gauge.clone(),
            clover.clone(),
            0.25,
            BoundaryPhases::antiperiodic_t(),
        );
        let f_global = SpinorField::<f64>::random(global_dims, &mut rng);
        Setup {
            local_gauge: scatter_gauge(&gauge, &grid),
            local_clover: scatter_clover(&clover, &grid),
            f_local: scatter_field(&f_global, &grid),
            grid,
            global_op,
            f_global,
        }
    }

    #[test]
    fn partition_covers_all_sites_disjointly() {
        let dims = Dims::new(4, 8, 6, 8);
        for split in [[false; 4], [false, false, false, true], [true, true, true, true]] {
            let p = SitePartition::new(dims, split);
            let mut seen = vec![false; dims.volume()];
            for &s in p.interior.iter().chain(&p.boundary) {
                assert!(!seen[s], "site {s} in both classes");
                seen[s] = true;
            }
            assert!(seen.iter().all(|&b| b), "partition misses sites for split {split:?}");
        }
        // No split: everything interior.
        let p = SitePartition::new(dims, [false; 4]);
        assert!(p.boundary.is_empty());
        // Full split: boundary = sites with any coordinate on any face.
        let p = SitePartition::new(dims, [true; 4]);
        assert_eq!(p.interior.len(), (4 - 2) * (8 - 2) * (6 - 2) * (8 - 2));
    }

    #[test]
    fn distributed_bicgstab_matches_single_rank() {
        let s = setup(Dims::new(2, 1, 1, 2));
        let cfg = BiCgStabConfig { tolerance: 1e-9, max_iterations: 3000 };

        // Single rank ground truth.
        let mut st = qdd_util::stats::SolveStats::new();
        let (x_ref, out_ref) =
            bicgstab(&LocalSystem::new(&s.global_op), &s.f_global, &cfg, &mut st);
        assert!(out_ref.converged);

        // Distributed.
        let world = CommWorld::new(s.grid.clone());
        let results = run_spmd(&world, |ctx| {
            let r = ctx.rank();
            let op = WilsonClover::new(
                s.local_gauge[r].clone(),
                s.local_clover[r].clone(),
                0.25,
                BoundaryPhases::antiperiodic_t(),
            );
            let sys = DistSystem::new(ctx, &op);
            let mut stats = qdd_util::stats::SolveStats::new();
            let (x, out) = bicgstab(&sys, &s.f_local[r], &cfg, &mut stats);
            (x, out.iterations, out.converged, stats.total_comm_bytes())
        });
        // All ranks took the same iteration count and converged.
        for (_, iters, conv, _) in &results {
            assert!(*conv);
            assert_eq!(*iters, results[0].1);
        }
        // Solutions agree with the single-rank solve.
        let locals: Vec<SpinorField<f64>> = results.iter().map(|r| r.0.clone()).collect();
        let x = gather_field(&locals, &s.grid);
        let mut diff = x.clone();
        diff.sub_assign(&x_ref);
        assert!(
            diff.norm() < 1e-6 * x_ref.norm(),
            "solutions diverge: rel {}",
            diff.norm() / x_ref.norm()
        );
        // Communication happened.
        assert!(results[0].3 > 0.0);
    }

    #[test]
    fn distributed_dot_is_global() {
        let s = setup(Dims::new(2, 2, 1, 1));
        let world = CommWorld::new(s.grid.clone());
        let expect = s.f_global.norm_sqr();
        let results = run_spmd(&world, |ctx| {
            let r = ctx.rank();
            let op = WilsonClover::new(
                s.local_gauge[r].clone(),
                s.local_clover[r].clone(),
                0.25,
                BoundaryPhases::antiperiodic_t(),
            );
            let sys = DistSystem::new(ctx, &op);
            let mut stats = qdd_util::stats::SolveStats::new();
            sys.norm_sqr(&s.f_local[r], &mut stats)
        });
        for r in results {
            assert!((r - expect).abs() < 1e-9 * expect);
        }
    }

    /// The hybrid fused-interior apply must agree with the all-scalar
    /// distributed apply to fused-vs-scalar rounding (not bitwise), and
    /// must be *bitwise* identical between overlap on and off.
    #[test]
    fn fused_interior_hybrid_matches_scalar_apply() {
        let s = setup(Dims::new(1, 1, 1, 2));
        let world = CommWorld::new(s.grid.clone());
        let results = run_spmd(&world, |ctx| {
            let r = ctx.rank();
            let op = WilsonClover::new(
                s.local_gauge[r].clone(),
                s.local_clover[r].clone(),
                0.25,
                BoundaryPhases::antiperiodic_t(),
            );
            let mut stats = qdd_util::stats::SolveStats::new();
            let mut scalar = SpinorField::zeros(*op.dims());
            let mut hybrid_on = SpinorField::zeros(*op.dims());
            let mut hybrid_off = SpinorField::zeros(*op.dims());
            {
                let sys = DistSystem::new(ctx, &op);
                sys.apply(&mut scalar, &s.f_local[r], &mut stats);
            }
            {
                let sys = DistSystem::new(ctx, &op).with_fused_interior().with_workers(2);
                assert!(sys.fused_interior_active(), "t-split must support fused tiles");
                sys.apply(&mut hybrid_on, &s.f_local[r], &mut stats);
            }
            {
                let sys = DistSystem::new(ctx, &op).with_fused_interior().with_overlap(false);
                sys.apply(&mut hybrid_off, &s.f_local[r], &mut stats);
            }
            assert_eq!(
                hybrid_on.as_slice(),
                hybrid_off.as_slice(),
                "hybrid apply must be bitwise overlap-independent"
            );
            let mut diff = hybrid_on.clone();
            diff.sub_assign(&scalar);
            assert!(
                diff.norm() < 1e-10 * scalar.norm(),
                "hybrid vs scalar rel {}",
                diff.norm() / scalar.norm()
            );
            hybrid_on
        });
        assert_eq!(results.len(), 2);
    }

    /// An x-split cannot be expressed at tile granularity: the fused
    /// interior must silently fall back to the scalar schedule.
    #[test]
    fn fused_interior_falls_back_on_xy_split() {
        let s = setup(Dims::new(2, 1, 1, 1));
        let world = CommWorld::new(s.grid.clone());
        run_spmd(&world, |ctx| {
            let r = ctx.rank();
            let op = WilsonClover::new(
                s.local_gauge[r].clone(),
                s.local_clover[r].clone(),
                0.25,
                BoundaryPhases::antiperiodic_t(),
            );
            let sys = DistSystem::new(ctx, &op).with_fused_interior();
            assert!(!sys.fused_interior_active());
            let mut stats = qdd_util::stats::SolveStats::new();
            let mut out = SpinorField::zeros(*op.dims());
            sys.apply(&mut out, &s.f_local[r], &mut stats);
            out.norm()
        });
    }
}
