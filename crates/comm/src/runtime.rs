//! SPMD runtime: ranks as threads, neighbor channels, deterministic
//! collectives, traffic counters.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use qdd_faults::{FaultPlan, RecvFault};
use qdd_field::spinor::{HalfSpinor, HalfSpinorF16};
use qdd_lattice::{Dir, RankGrid};
use qdd_trace::{CommStats, FaultStats, FlightLane, Phase, TraceSink};
use qdd_util::complex::Real;
use std::cell::{Cell, RefCell};
use std::sync::Barrier;

/// Message payload: one face worth of half-spinors, in either compute
/// precision or packed to f16 on the wire.
#[derive(Clone)]
pub enum Payload {
    F16(Vec<HalfSpinorF16>),
    F32(Vec<HalfSpinor<f32>>),
    F64(Vec<HalfSpinor<f64>>),
}

impl Payload {
    fn precision(&self) -> &'static str {
        match self {
            Payload::F16(_) => "f16",
            Payload::F32(_) => "f32",
            Payload::F64(_) => "f64",
        }
    }

    fn try_unwrap_f16(self) -> Result<Vec<HalfSpinorF16>, CommError> {
        match self {
            Payload::F16(d) => Ok(d),
            other => Err(CommError::PrecisionMismatch { expected: "f16", got: other.precision() }),
        }
    }
}

/// Which slice of a face an envelope carries: part `index` of `of`
/// equal-rank slices, in ascending face-index order. Whole faces travel
/// as [`FacePart::FULL`]; the Fig. 4 overlap schedule ships x/y/z faces
/// as two halves so each can leave as soon as its owning domains finish.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct FacePart {
    pub index: u8,
    pub of: u8,
}

impl FacePart {
    /// The whole face in one message.
    pub const FULL: FacePart = FacePart { index: 0, of: 1 };
}

/// A delivered face payload with its part header; `None` marks a peer
/// hiccup skip (keep stale halo data).
pub type ReceivedPart<T> = Option<(Vec<HalfSpinor<T>>, FacePart)>;

/// One face message as it travels the (simulated) wire: the payload plus
/// an end-to-end checksum. The checksum is `None` when the sender had no
/// fault plan attached — the clean fast path pays nothing for the fault
/// machinery.
#[derive(Clone)]
pub struct Envelope {
    payload: Payload,
    checksum: Option<u64>,
    part: FacePart,
}

/// What actually goes down a channel.
enum Msg {
    Face(Envelope),
    /// Hiccup marker: the sender skipped this exchange entirely. Sent so
    /// every posted receive still has a matching message (a silent skip
    /// would misalign the channel stream and deadlock the receiver).
    Skip,
}

/// A message the injector withheld or damaged, parked until the bounded
/// retry asks for its "retransmission".
struct Stashed {
    seq: u64,
    attempt: u32,
    env: Envelope,
}

/// FNV-1a over the bit patterns of every real component of the payload.
/// Bit-exact, order-sensitive, and cheap — one multiply per real.
fn checksum_payload(p: &Payload) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    match p {
        Payload::F16(v) => {
            for hs in v {
                for row in &hs.0 {
                    for z in row {
                        h = (h ^ z.re.0 as u64).wrapping_mul(PRIME);
                        h = (h ^ z.im.0 as u64).wrapping_mul(PRIME);
                    }
                }
            }
        }
        Payload::F32(v) => {
            for hs in v {
                for c3 in &hs.0 {
                    for z in &c3.0 {
                        h = (h ^ z.re.to_bits() as u64).wrapping_mul(PRIME);
                        h = (h ^ z.im.to_bits() as u64).wrapping_mul(PRIME);
                    }
                }
            }
        }
        Payload::F64(v) => {
            for hs in v {
                for c3 in &hs.0 {
                    for z in &c3.0 {
                        h = (h ^ z.re.to_bits()).wrapping_mul(PRIME);
                        h = (h ^ z.im.to_bits()).wrapping_mul(PRIME);
                    }
                }
            }
        }
    }
    h
}

/// Payload size on the wire, bytes.
fn payload_bytes(p: &Payload) -> f64 {
    match p {
        Payload::F16(v) => (v.len() * HalfSpinorF16::WIRE_BYTES) as f64,
        Payload::F32(v) => (v.len() * HalfSpinor::<f32>::REALS * std::mem::size_of::<f32>()) as f64,
        Payload::F64(v) => (v.len() * HalfSpinor::<f64>::REALS * std::mem::size_of::<f64>()) as f64,
    }
}

/// Flip 1-3 seeded bits somewhere in the payload (no-op on empty faces).
fn corrupt_payload(p: &mut Payload, rng: &mut qdd_util::rng::Rng64) {
    let flips = 1 + rng.below(3);
    for _ in 0..flips {
        match p {
            Payload::F16(v) => {
                if v.is_empty() {
                    return;
                }
                let i = rng.below(v.len());
                let hs = &mut v[i];
                let c = rng.below(6);
                let z = &mut hs.0[c / 3][c % 3];
                let bit = 1u16 << rng.below(16);
                if rng.below(2) == 0 {
                    z.re.0 ^= bit;
                } else {
                    z.im.0 ^= bit;
                }
            }
            Payload::F32(v) => {
                if v.is_empty() {
                    return;
                }
                let i = rng.below(v.len());
                let hs = &mut v[i];
                let c = rng.below(6);
                let z = &mut hs.0[c / 3].0[c % 3];
                let bit = 1u32 << rng.below(32);
                if rng.below(2) == 0 {
                    z.re = f32::from_bits(z.re.to_bits() ^ bit);
                } else {
                    z.im = f32::from_bits(z.im.to_bits() ^ bit);
                }
            }
            Payload::F64(v) => {
                if v.is_empty() {
                    return;
                }
                let i = rng.below(v.len());
                let hs = &mut v[i];
                let c = rng.below(6);
                let z = &mut hs.0[c / 3].0[c % 3];
                let bit = 1u64 << rng.below(64);
                if rng.below(2) == 0 {
                    z.re = f64::from_bits(z.re.to_bits() ^ bit);
                } else {
                    z.im = f64::from_bits(z.im.to_bits() ^ bit);
                }
            }
        }
    }
}

/// A communication failure a rank can recover from. The service layer
/// maps these to degraded solve results; a malformed exchange must never
/// abort the rank thread.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CommError {
    /// A received payload carried the wrong scalar precision.
    PrecisionMismatch { expected: &'static str, got: &'static str },
    /// The peer rank hung up (channel disconnected).
    Disconnected,
    /// The face from `(dir, forward)` failed its checksum: the payload
    /// was damaged in flight. A retry fetches the retransmission.
    Corrupt { dir: Dir, forward: bool },
    /// The face in `dir` never arrived within the delivery attempt(s):
    /// `attempts` is the total number of attempts made so far.
    Timeout { dir: Dir, attempts: u32 },
    /// The peer rank deliberately skipped its face send for this step
    /// (a scheduling hiccup announced with an explicit skip marker).
    /// Unlike [`CommError::Timeout`] no retry budget was spent and none
    /// would help: the peer will not retransmit what it never packed.
    PeerSkipped { dir: Dir, forward: bool },
}

impl CommError {
    /// True if a retry can plausibly fix this (lost or damaged message);
    /// false for structural errors (wrong precision, dead peer) and for
    /// deliberate peer skips (the peer announced it has nothing to send).
    pub fn is_retryable(&self) -> bool {
        matches!(self, CommError::Corrupt { .. } | CommError::Timeout { .. })
    }
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::PrecisionMismatch { expected, got } => {
                write!(f, "payload precision mismatch: expected {expected}, got {got}")
            }
            CommError::Disconnected => write!(f, "peer rank hung up"),
            CommError::Corrupt { dir, forward } => {
                let o = if *forward { "fwd" } else { "bwd" };
                write!(f, "face checksum mismatch ({dir} {o}): payload corrupted in flight")
            }
            CommError::Timeout { dir, attempts } => {
                write!(f, "face receive in {dir} timed out after {attempts} attempt(s)")
            }
            CommError::PeerSkipped { dir, forward } => {
                let o = if *forward { "fwd" } else { "bwd" };
                write!(f, "peer skipped its face send ({dir} {o}): scheduling hiccup")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Retransmission budget and modeled backoff schedule for retrying face
/// receives. The default reproduces the historical hard-coded behavior
/// (4 delivery attempts, 50 µs linear backoff, no cap) bit for bit, so
/// existing baselines are unaffected unless a caller installs a custom
/// policy via [`CommWorld::with_retry_policy`] or
/// [`RankCtx::set_retry_policy`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Delivery attempts per face: the first try plus retransmissions.
    pub max_attempts: u32,
    /// Modeled backoff before retransmission `k` (1-based) is
    /// `base_backoff_us * k`, accounted in the fault ledger's `delay_us`
    /// (never slept — fault timing stays bitwise reproducible).
    pub base_backoff_us: f64,
    /// Ceiling on a single backoff step; `f64::INFINITY` disables it.
    pub cap_backoff_us: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: crate::exchange::MAX_ATTEMPTS,
            base_backoff_us: 50.0,
            cap_backoff_us: f64::INFINITY,
        }
    }
}

impl RetryPolicy {
    /// Modeled backoff in microseconds before retransmitting after
    /// failed attempt `attempt` (0-based).
    pub fn backoff_us(&self, attempt: u32) -> f64 {
        (self.base_backoff_us * (attempt + 1) as f64).min(self.cap_backoff_us)
    }
}

/// Precision dispatch for payloads.
pub trait HaloScalar: Real {
    fn wrap(data: Vec<HalfSpinor<Self>>) -> Payload;
    /// Typed unwrap: a mismatched payload is an error, not a panic.
    fn try_unwrap(p: Payload) -> Result<Vec<HalfSpinor<Self>>, CommError>;
}

impl HaloScalar for f32 {
    fn wrap(data: Vec<HalfSpinor<f32>>) -> Payload {
        Payload::F32(data)
    }
    fn try_unwrap(p: Payload) -> Result<Vec<HalfSpinor<f32>>, CommError> {
        match p {
            Payload::F32(d) => Ok(d),
            other => Err(CommError::PrecisionMismatch { expected: "f32", got: other.precision() }),
        }
    }
}

impl HaloScalar for f64 {
    fn wrap(data: Vec<HalfSpinor<f64>>) -> Payload {
        Payload::F64(data)
    }
    fn try_unwrap(p: Payload) -> Result<Vec<HalfSpinor<f64>>, CommError> {
        match p {
            Payload::F64(d) => Ok(d),
            other => Err(CommError::PrecisionMismatch { expected: "f64", got: other.precision() }),
        }
    }
}

/// Deterministic all-reduce: every rank deposits a partial vector, all
/// ranks reduce in fixed rank order (bit-reproducible independent of
/// thread scheduling).
pub struct Collective {
    slots: Vec<Mutex<Vec<f64>>>,
    barrier: Barrier,
    parties: usize,
}

impl Collective {
    pub fn new(parties: usize) -> Self {
        Self {
            slots: (0..parties).map(|_| Mutex::new(Vec::new())).collect(),
            barrier: Barrier::new(parties),
            parties,
        }
    }

    /// All ranks must call with vectors of identical length.
    pub fn all_sum(&self, rank: usize, vals: &[f64]) -> Vec<f64> {
        *self.slots[rank].lock() = vals.to_vec();
        self.barrier.wait();
        let mut acc = vec![0.0; vals.len()];
        for r in 0..self.parties {
            let slot = self.slots[r].lock();
            assert_eq!(slot.len(), vals.len(), "collective length mismatch");
            for (a, v) in acc.iter_mut().zip(slot.iter()) {
                *a += v;
            }
        }
        // Second barrier: nobody may overwrite a slot before all have read.
        self.barrier.wait();
        acc
    }
}

/// Per-rank fault-handling counters (Cell-based mirror of
/// [`FaultStats`]; each context lives on one thread).
#[derive(Default)]
pub struct FaultCounters {
    pub retries: Cell<u64>,
    pub timeouts: Cell<u64>,
    pub corruptions: Cell<u64>,
    pub delays: Cell<u64>,
    pub delay_us: Cell<f64>,
    pub hiccups: Cell<u64>,
    /// Explicit skip markers received from hiccuping peers. Distinct
    /// from `timeouts`: no retry budget was spent and the face is known
    /// to be deliberately absent rather than lost.
    pub peer_skips: Cell<u64>,
    pub zero_fills: Cell<u64>,
}

impl FaultCounters {
    fn snapshot(&self) -> FaultStats {
        FaultStats {
            retries: self.retries.get(),
            timeouts: self.timeouts.get(),
            corruptions: self.corruptions.get(),
            delays: self.delays.get(),
            delay_us: self.delay_us.get(),
            hiccups: self.hiccups.get(),
            peer_skips: self.peer_skips.get(),
            zero_fills: self.zero_fills.get(),
        }
    }

    #[inline]
    fn bump(cell: &Cell<u64>) {
        cell.set(cell.get() + 1);
    }
}

/// Per-rank communication counters.
#[derive(Default)]
pub struct CommCounters {
    /// Bytes actually sent over the (simulated) network.
    pub bytes_sent: Cell<f64>,
    /// Bytes successfully *delivered* off the (simulated) network.
    /// Counted exactly once, at delivery — not at physical arrival — so
    /// a message that is stashed and redelivered across retry attempts
    /// is never double-counted, and a message abandoned when the retry
    /// budget runs out is never counted at all (its bytes reached the
    /// NIC but never the solver). A hiccuping rank (which sends nothing)
    /// still accounts what it received and merged.
    pub bytes_received: Cell<f64>,
    /// Bytes per `[dimension][orientation]` (0 = backward, 1 = forward).
    pub bytes_by_dir: [[Cell<f64>; 2]; 4],
    /// Number of point-to-point messages sent.
    pub messages_sent: Cell<u64>,
    /// Number of collective reductions participated in.
    pub reductions: Cell<u64>,
    /// Wall-clock seconds spent blocked in face receives: the measured
    /// *exposed* communication time of this rank.
    pub recv_wait_s: Cell<f64>,
    /// Fault injection and recovery activity.
    pub faults: FaultCounters,
}

impl CommCounters {
    /// Immutable snapshot in the trace crate's exchange format.
    pub fn snapshot(&self) -> CommStats {
        CommStats {
            bytes_sent: self.bytes_sent.get(),
            bytes_received: self.bytes_received.get(),
            bytes_by_dir: std::array::from_fn(|d| {
                std::array::from_fn(|o| self.bytes_by_dir[d][o].get())
            }),
            messages_sent: self.messages_sent.get(),
            reductions: self.reductions.get(),
            recv_wait_s: self.recv_wait_s.get(),
            faults: self.faults.snapshot(),
        }
    }
}

/// One rank's endpoint: channels to/from its eight neighbors plus the
/// collective.
pub struct RankCtx<'w> {
    rank: usize,
    grid: &'w RankGrid,
    /// `rx[d][o]` receives from `neighbor(rank, d, o == 1)`.
    rx: [[Receiver<Msg>; 2]; 4],
    /// `tx[d][o]` sends to `neighbor(rank, d, o == 1)`.
    tx: [[Sender<Msg>; 2]; 4],
    collective: &'w Collective,
    pub counters: CommCounters,
    /// Trace sink for the rank's communication spans (disabled by
    /// default). `RefCell` because contexts are handed to rank bodies by
    /// shared reference; each context lives on exactly one thread.
    trace: RefCell<TraceSink>,
    /// Fault schedule for this rank (`None` = perfect fabric). Attached
    /// by [`CommWorld::with_faults`] or [`RankCtx::attach_faults`].
    faults: RefCell<Option<FaultPlan>>,
    /// Face messages received per channel, the injector's coordinate.
    recv_seq: [[Cell<u64>; 2]; 4],
    /// Collective reductions performed, for collective straggler faults.
    coll_seq: Cell<u64>,
    /// Schwarz exchange rounds, the hiccup decision coordinate.
    hiccup_seq: Cell<u64>,
    /// Per-channel parking spot for a withheld genuine message.
    stash: [[RefCell<Option<Stashed>>; 2]; 4],
    /// Flight-recorder lane for this rank's fault/comm events (disabled
    /// by default; attach via [`RankCtx::attach_flight`]).
    flight: RefCell<FlightLane>,
    /// Retransmission budget and backoff schedule for retrying receives.
    retry: Cell<RetryPolicy>,
}

impl<'w> RankCtx<'w> {
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    pub fn grid(&self) -> &RankGrid {
        self.grid
    }

    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.grid.num_ranks()
    }

    /// True if halos in `dir` cross the network (more than one rank).
    #[inline]
    pub fn is_split(&self, dir: Dir) -> bool {
        self.grid.is_split(dir)
    }

    /// Split mask over all four directions, indexed by `Dir::index()`.
    #[inline]
    pub fn split_dirs(&self) -> [bool; 4] {
        std::array::from_fn(|d| self.grid.is_split(Dir::ALL[d]))
    }

    /// Attach a trace sink: subsequent sends, receives and collectives
    /// record `HaloSend` / `HaloRecv` / `GlobalSum` spans into it.
    pub fn attach_trace(&self, sink: TraceSink) {
        *self.trace.borrow_mut() = sink;
    }

    /// The rank's trace sink (disabled unless attached).
    pub fn trace(&self) -> TraceSink {
        self.trace.borrow().clone()
    }

    /// Attach a fault schedule: subsequent sends checksum their payload
    /// and subsequent receives run through the injector. An inert plan
    /// (zero rates, no events) is dropped so the clean path stays
    /// bitwise identical to a context without a plan.
    pub fn attach_faults(&self, plan: FaultPlan) {
        *self.faults.borrow_mut() = if plan.is_inert() { None } else { Some(plan) };
    }

    /// True if a (non-inert) fault plan is attached.
    pub fn faults_active(&self) -> bool {
        self.faults.borrow().is_some()
    }

    /// Attach a flight-recorder lane: subsequent fault events (losses,
    /// detected corruptions, retries, exhausted budgets, hiccups) record
    /// into its ring, tagged with the lane's current trace id.
    pub fn attach_flight(&self, lane: FlightLane) {
        *self.flight.borrow_mut() = lane;
    }

    /// Tag subsequent flight events with `id` (a per-solve trace id).
    pub fn set_trace_id(&self, id: qdd_trace::TraceId) {
        self.flight.borrow().set_trace(id);
    }

    /// Install a retransmission policy for subsequent retrying receives.
    /// SPMD discipline: install the same policy on every rank (or via
    /// [`CommWorld::with_retry_policy`]) so peers agree on budgets.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        self.retry.set(policy);
    }

    /// The active retransmission policy (default unless set).
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry.get()
    }

    /// Send one face to the neighbor in `(dir, forward)`. Traffic is
    /// counted only when the neighbor is a different rank.
    pub fn send_face<T: HaloScalar>(&self, dir: Dir, forward: bool, data: Vec<HalfSpinor<T>>) {
        self.send_face_part(dir, forward, FacePart::FULL, data);
    }

    /// Send one labelled slice of a face (the Fig. 4 split-face path).
    /// The part header travels with the envelope so the receiver can
    /// verify the schedule stayed in step.
    pub fn send_face_part<T: HaloScalar>(
        &self,
        dir: Dir,
        forward: bool,
        part: FacePart,
        data: Vec<HalfSpinor<T>>,
    ) {
        self.send_payload(dir, forward, part, T::wrap(data));
    }

    /// Send one labelled face slice packed to f16 on the wire — half the
    /// bytes of the f32 envelope. The receiver must drain it with
    /// [`recv_face_part_retrying_f16`](Self::recv_face_part_retrying_f16).
    pub fn send_face_part_f16(
        &self,
        dir: Dir,
        forward: bool,
        part: FacePart,
        data: Vec<HalfSpinorF16>,
    ) {
        self.send_payload(dir, forward, part, Payload::F16(data));
    }

    fn send_payload(&self, dir: Dir, forward: bool, part: FacePart, payload: Payload) {
        let mut sent = 0.0;
        if self.is_split(dir) {
            let bytes = payload_bytes(&payload);
            self.counters.bytes_sent.set(self.counters.bytes_sent.get() + bytes);
            let by_dir = &self.counters.bytes_by_dir[dir.index()][forward as usize];
            by_dir.set(by_dir.get() + bytes);
            self.counters.messages_sent.set(self.counters.messages_sent.get() + 1);
            sent = bytes;
        }
        let trace = self.trace.borrow();
        trace.begin(Phase::HaloSend);
        let checksum = self.faults.borrow().as_ref().map(|_| checksum_payload(&payload));
        self.tx[dir.index()][forward as usize]
            .send(Msg::Face(Envelope { payload, checksum, part }))
            .expect("peer rank hung up");
        trace.end_with(Phase::HaloSend, &[("bytes", sent), ("dir", dir.index() as f64)]);
    }

    /// Send a hiccup marker instead of a face: the receiver learns this
    /// exchange was skipped (and keeps its stale halo) without the
    /// channel stream going out of step. No traffic is counted — the
    /// modeled rank sent nothing.
    pub fn send_skip(&self, dir: Dir, forward: bool) {
        self.tx[dir.index()][forward as usize].send(Msg::Skip).expect("peer rank hung up");
    }

    /// One delivery attempt on `(dir, forward)`: take the stashed
    /// withheld message if one is parked, otherwise block on the channel.
    /// Runs the injector when a plan is attached and verifies the
    /// checksum of whatever would be delivered. `Ok(None)` means the
    /// peer skipped this exchange (hiccup marker).
    fn recv_attempt(
        &self,
        dir: Dir,
        forward: bool,
    ) -> Result<Option<(Payload, FacePart)>, CommError> {
        let d = dir.index();
        let o = forward as usize;
        let stashed = self.stash[d][o].borrow_mut().take();
        let (seq, attempt, env) = match stashed {
            Some(s) => (s.seq, s.attempt, s.env),
            None => {
                let trace = self.trace.borrow();
                trace.begin(Phase::HaloRecv);
                let t0 = std::time::Instant::now();
                let msg = self.rx[d][o].recv().map_err(|_| CommError::Disconnected)?;
                let waited = &self.counters.recv_wait_s;
                waited.set(waited.get() + t0.elapsed().as_secs_f64());
                trace.end_with(Phase::HaloRecv, &[("dir", d as f64)]);
                match msg {
                    Msg::Skip => {
                        // Count every skip marker here, at its single
                        // delivery point, so the inner (Schwarz) and
                        // outer (matvec) exchanges share one ledger for
                        // the peer-skip fault class.
                        FaultCounters::bump(&self.counters.faults.peer_skips);
                        self.flight.borrow().record(Phase::Fault, "fault.peer_skip", d as f64, 0.0);
                        return Ok(None);
                    }
                    Msg::Face(env) => {
                        let seq = self.recv_seq[d][o].get();
                        self.recv_seq[d][o].set(seq + 1);
                        (seq, 0, env)
                    }
                }
            }
        };
        // Delivered traffic is accounted at the successful-return points
        // below — exactly once per message, however many delivery
        // attempts the injector forced, and never for a message whose
        // retry budget runs out before it is delivered.
        let delivered = |payload: &Payload| {
            if self.is_split(dir) {
                let got = &self.counters.bytes_received;
                got.set(got.get() + payload_bytes(payload));
            }
        };
        let plan = self.faults.borrow();
        if let Some(plan) = plan.as_ref() {
            match plan.recv_fault(self.rank, dir, forward, seq, attempt) {
                RecvFault::Lose => {
                    // The message "never arrived": park the genuine
                    // envelope as the future retransmission and time out.
                    self.flight.borrow().record(
                        Phase::Fault,
                        "fault.lose",
                        d as f64,
                        attempt as f64,
                    );
                    *self.stash[d][o].borrow_mut() =
                        Some(Stashed { seq, attempt: attempt + 1, env });
                    return Err(CommError::Timeout { dir, attempts: attempt + 1 });
                }
                RecvFault::Corrupt => {
                    let mut damaged = env.payload.clone();
                    let mut rng = plan.corruption_rng(self.rank, dir, forward, seq, attempt);
                    corrupt_payload(&mut damaged, &mut rng);
                    let detected = env.checksum.is_some_and(|ck| checksum_payload(&damaged) != ck);
                    if detected {
                        FaultCounters::bump(&self.counters.faults.corruptions);
                        self.flight.borrow().record(
                            Phase::Fault,
                            "fault.corrupt",
                            d as f64,
                            attempt as f64,
                        );
                        *self.stash[d][o].borrow_mut() =
                            Some(Stashed { seq, attempt: attempt + 1, env });
                        return Err(CommError::Corrupt { dir, forward });
                    }
                    // No checksum on the envelope (or a hash collision):
                    // the damage goes undetected and the damaged payload
                    // is delivered — exactly the silent poisoning the
                    // checksum exists to prevent.
                    delivered(&damaged);
                    return Ok(Some((damaged, env.part)));
                }
                RecvFault::None => {
                    if attempt == 0 {
                        if let Some(us) = plan.delay_fault(self.rank, dir, forward, seq) {
                            FaultCounters::bump(&self.counters.faults.delays);
                            let cell = &self.counters.faults.delay_us;
                            cell.set(cell.get() + us);
                            self.flight.borrow().record(Phase::Fault, "fault.delay", d as f64, us);
                        }
                    }
                }
            }
            // Verify deliveries even when the injector let them pass:
            // detection must come from the checksum, not from knowing
            // the injection decision.
            if let Some(ck) = env.checksum {
                if checksum_payload(&env.payload) != ck {
                    FaultCounters::bump(&self.counters.faults.corruptions);
                    return Err(CommError::Corrupt { dir, forward });
                }
            }
        }
        delivered(&env.payload);
        Ok(Some((env.payload, env.part)))
    }

    /// Receive one face from the neighbor in `(dir, forward)` (blocking).
    /// A payload of the wrong precision, a hung-up peer, or an injected
    /// fault is reported as a [`CommError`], never a panic: callers
    /// retry ([`recv_face_retrying`](Self::recv_face_retrying)) or
    /// degrade the solve. A hiccup marker surfaces as
    /// [`CommError::PeerSkipped`] here (no retry budget was spent);
    /// exchanges that expect skips use
    /// [`recv_face_or_skip`](Self::recv_face_or_skip).
    pub fn recv_face<T: HaloScalar>(
        &self,
        dir: Dir,
        forward: bool,
    ) -> Result<Vec<HalfSpinor<T>>, CommError> {
        match self.recv_attempt(dir, forward)? {
            Some((p, _)) => T::try_unwrap(p),
            None => Err(CommError::PeerSkipped { dir, forward }),
        }
    }

    /// Like [`recv_face`](Self::recv_face) but distinguishing a peer
    /// hiccup (`Ok(None)`: the sender skipped the exchange, keep stale
    /// data) from a delivery fault (`Err`). Returns the part header
    /// alongside the data so split-face schedules can check step.
    pub fn recv_part_or_skip<T: HaloScalar>(
        &self,
        dir: Dir,
        forward: bool,
    ) -> Result<ReceivedPart<T>, CommError> {
        match self.recv_attempt(dir, forward)? {
            Some((p, part)) => T::try_unwrap(p).map(|d| Some((d, part))),
            None => Ok(None),
        }
    }

    /// [`recv_part_or_skip`](Self::recv_part_or_skip) without the header.
    pub fn recv_face_or_skip<T: HaloScalar>(
        &self,
        dir: Dir,
        forward: bool,
    ) -> Result<Option<Vec<HalfSpinor<T>>>, CommError> {
        Ok(self.recv_part_or_skip::<T>(dir, forward)?.map(|(d, _)| d))
    }

    /// Receive with bounded retry: up to `max_attempts` delivery
    /// attempts, counting each repeat as a retry (with modeled backoff
    /// latency) under `fault.*`. On budget exhaustion the withheld
    /// message is abandoned — the channel stream has already advanced
    /// past it, so keeping it would desynchronize later exchanges — a
    /// timeout is counted, and the last error is returned.
    pub fn recv_face_retrying<T: HaloScalar>(
        &self,
        dir: Dir,
        forward: bool,
        max_attempts: u32,
    ) -> Result<Option<Vec<HalfSpinor<T>>>, CommError> {
        self.recv_face_part_retrying(dir, forward, FacePart::FULL, max_attempts)
    }

    /// [`recv_face_retrying`](Self::recv_face_retrying) for one labelled
    /// slice of a face. The delivered part header must equal `expect`: a
    /// mismatch is a schedule bug on our side, not a fabric fault, so it
    /// panics instead of degrading.
    pub fn recv_face_part_retrying<T: HaloScalar>(
        &self,
        dir: Dir,
        forward: bool,
        expect: FacePart,
        max_attempts: u32,
    ) -> Result<Option<Vec<HalfSpinor<T>>>, CommError> {
        match self.recv_payload_part_retrying(dir, forward, expect, max_attempts)? {
            Some(p) => T::try_unwrap(p).map(Some),
            None => Ok(None),
        }
    }

    /// [`recv_face_part_retrying`](Self::recv_face_part_retrying) for an
    /// f16-packed face slice (the wire format of
    /// [`send_face_part_f16`](Self::send_face_part_f16)).
    pub fn recv_face_part_retrying_f16(
        &self,
        dir: Dir,
        forward: bool,
        expect: FacePart,
        max_attempts: u32,
    ) -> Result<Option<Vec<HalfSpinorF16>>, CommError> {
        match self.recv_payload_part_retrying(dir, forward, expect, max_attempts)? {
            Some(p) => p.try_unwrap_f16().map(Some),
            None => Ok(None),
        }
    }

    fn recv_payload_part_retrying(
        &self,
        dir: Dir,
        forward: bool,
        expect: FacePart,
        max_attempts: u32,
    ) -> Result<Option<Payload>, CommError> {
        debug_assert!(max_attempts >= 1);
        let policy = self.retry.get();
        let mut last = CommError::Timeout { dir, attempts: 0 };
        for attempt in 0..max_attempts {
            match self.recv_attempt(dir, forward) {
                Ok(Some((payload, part))) => {
                    assert_eq!(part, expect, "split-face schedule out of step in {dir}");
                    return Ok(Some(payload));
                }
                Ok(None) => return Ok(None),
                Err(e) if e.is_retryable() && attempt + 1 < max_attempts => {
                    let trace = self.trace.borrow();
                    trace.begin(Phase::Fault);
                    FaultCounters::bump(&self.counters.faults.retries);
                    let backoff = policy.backoff_us(attempt);
                    let cell = &self.counters.faults.delay_us;
                    cell.set(cell.get() + backoff);
                    self.flight.borrow().record(
                        Phase::Fault,
                        "fault.retry",
                        dir.index() as f64,
                        (attempt + 1) as f64,
                    );
                    trace.end_with(
                        Phase::Fault,
                        &[("dir", dir.index() as f64), ("attempt", (attempt + 1) as f64)],
                    );
                    last = e;
                }
                Err(e) => {
                    if e.is_retryable() {
                        // Budget exhausted on a retryable fault: the
                        // stashed message is abandoned undelivered (its
                        // bytes were never counted as received).
                        self.stash[dir.index()][forward as usize].borrow_mut().take();
                        FaultCounters::bump(&self.counters.faults.timeouts);
                        self.flight.borrow().record(
                            Phase::Fault,
                            "fault.timeout",
                            dir.index() as f64,
                            max_attempts as f64,
                        );
                    }
                    return Err(e);
                }
            }
        }
        Err(last)
    }

    /// Hiccup decision for the next Schwarz exchange round: true = this
    /// rank skips the round (callers send [`send_skip`](Self::send_skip)
    /// markers instead of faces). Consumes one hiccup sequence number
    /// only when a plan is attached, so clean runs are unaffected.
    pub fn take_hiccup(&self) -> bool {
        let plan = self.faults.borrow();
        match plan.as_ref() {
            Some(plan) => {
                let seq = self.hiccup_seq.get();
                self.hiccup_seq.set(seq + 1);
                let hic = plan.hiccup_fault(self.rank, seq);
                if hic {
                    FaultCounters::bump(&self.counters.faults.hiccups);
                    self.flight.borrow().record(Phase::Fault, "fault.hiccup", seq as f64, 0.0);
                }
                hic
            }
            None => false,
        }
    }

    /// Deterministic global sum of a small vector of reals.
    pub fn all_sum(&self, vals: &[f64]) -> Vec<f64> {
        self.counters.reductions.set(self.counters.reductions.get() + 1);
        if let Some(plan) = self.faults.borrow().as_ref() {
            // Only stragglers are modeled for collectives: the barrier
            // cannot lose a contribution without deadlocking the world.
            let seq = self.coll_seq.get();
            self.coll_seq.set(seq + 1);
            if let Some(us) = plan.collective_delay(self.rank, seq) {
                FaultCounters::bump(&self.counters.faults.delays);
                let cell = &self.counters.faults.delay_us;
                cell.set(cell.get() + us);
            }
        }
        let trace = self.trace.borrow();
        trace.begin(Phase::GlobalSum);
        let out = self.collective.all_sum(self.rank, vals);
        trace.end(Phase::GlobalSum);
        out
    }

    /// Rank coordinate helpers for boundary-phase decisions.
    pub fn at_global_backward_edge(&self, dir: Dir) -> bool {
        self.grid.rank_coord(self.rank)[dir] == 0
    }

    pub fn at_global_forward_edge(&self, dir: Dir) -> bool {
        self.grid.rank_coord(self.rank)[dir] == self.grid.grid()[dir] - 1
    }
}

/// The communication world: construct once, then run an SPMD closure on
/// every rank.
pub struct CommWorld {
    grid: RankGrid,
    /// Fault schedule attached to every rank context at spawn (so senders
    /// and receivers agree on whether envelopes carry checksums).
    faults: Option<FaultPlan>,
    /// Retransmission policy installed on every rank context at spawn.
    retry: RetryPolicy,
}

impl CommWorld {
    pub fn new(grid: RankGrid) -> Self {
        Self { grid, faults: None, retry: RetryPolicy::default() }
    }

    /// A world whose fabric misbehaves according to `plan`. An inert plan
    /// (zero rates, no events) is equivalent to [`CommWorld::new`].
    pub fn with_faults(grid: RankGrid, plan: FaultPlan) -> Self {
        Self { grid, faults: (!plan.is_inert()).then_some(plan), retry: RetryPolicy::default() }
    }

    /// Install a retransmission policy on every rank of this world
    /// (SPMD-consistent by construction).
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    #[inline]
    pub fn grid(&self) -> &RankGrid {
        &self.grid
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The world's retransmission policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }
}

/// Run `body` on every rank concurrently; returns the per-rank results in
/// rank order. `body` must follow SPMD discipline: all ranks make the same
/// sequence of collective calls.
pub fn run_spmd<R: Send>(world: &CommWorld, body: impl Fn(&RankCtx<'_>) -> R + Sync) -> Vec<R> {
    let grid = &world.grid;
    let n = grid.num_ranks();
    let collective = Collective::new(n);

    // Wire channels: for each (receiver rank, dir, orientation) one channel;
    // the sender is neighbor(receiver, dir, o), who addresses it through
    // its own tx[d][!o].
    let mut rx_slots: Vec<Vec<Option<Receiver<Msg>>>> =
        (0..n).map(|_| (0..8).map(|_| None).collect()).collect();
    let mut tx_slots: Vec<Vec<Option<Sender<Msg>>>> =
        (0..n).map(|_| (0..8).map(|_| None).collect()).collect();
    for r in 0..n {
        for dir in Dir::ALL {
            let d = dir.index();
            for o in 0..2 {
                let (s, rcv) = unbounded();
                rx_slots[r][2 * d + o] = Some(rcv);
                // Sender: the neighbor in (d, o); it sends via tx[d][!o].
                let nb = grid.neighbor_rank(r, dir, o == 1);
                tx_slots[nb][2 * d + (1 - o)] = Some(s);
            }
        }
    }

    let mut ctxs: Vec<RankCtx<'_>> = Vec::with_capacity(n);
    for (r, (rx_row, tx_row)) in rx_slots.into_iter().zip(tx_slots).enumerate() {
        let mut rx_iter = rx_row.into_iter();
        let rx: [[Receiver<Msg>; 2]; 4] =
            std::array::from_fn(|_| std::array::from_fn(|_| rx_iter.next().unwrap().unwrap()));
        let mut tx_iter = tx_row.into_iter();
        let tx: [[Sender<Msg>; 2]; 4] =
            std::array::from_fn(|_| std::array::from_fn(|_| tx_iter.next().unwrap().unwrap()));
        ctxs.push(RankCtx {
            rank: r,
            grid,
            rx,
            tx,
            collective: &collective,
            counters: CommCounters::default(),
            trace: RefCell::new(TraceSink::disabled()),
            faults: RefCell::new(world.faults.clone()),
            recv_seq: std::array::from_fn(|_| std::array::from_fn(|_| Cell::new(0))),
            coll_seq: Cell::new(0),
            hiccup_seq: Cell::new(0),
            stash: std::array::from_fn(|_| std::array::from_fn(|_| RefCell::new(None))),
            flight: RefCell::new(FlightLane::disabled()),
            retry: Cell::new(world.retry),
        });
    }

    let body = &body;
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    crossbeam::scope(|s| {
        let mut handles = Vec::with_capacity(n);
        for ctx in ctxs {
            // Each context is moved into exactly one thread; the cheap
            // Cell-based counters therefore never cross threads.
            handles.push(s.spawn(move |_| body(&ctx)));
        }
        for (r, h) in handles.into_iter().enumerate() {
            results[r] = Some(h.join().expect("rank thread panicked"));
        }
    })
    .expect("spmd scope failed");
    results.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdd_lattice::Dims;

    fn world_2x1x1x2() -> CommWorld {
        CommWorld::new(RankGrid::new(Dims::new(8, 4, 4, 8), Dims::new(2, 1, 1, 2)))
    }

    #[test]
    fn all_sum_is_deterministic_and_correct() {
        let world = world_2x1x1x2();
        let sums = run_spmd(&world, |ctx| {
            let mine = vec![ctx.rank() as f64 + 1.0, 0.5];
            ctx.all_sum(&mine)
        });
        // 4 ranks: sum of 1+2+3+4 = 10; 4 * 0.5 = 2.
        for s in &sums {
            assert_eq!(s[0], 10.0);
            assert_eq!(s[1], 2.0);
        }
    }

    #[test]
    fn repeated_collectives_do_not_interleave() {
        let world = world_2x1x1x2();
        let results = run_spmd(&world, |ctx| {
            let mut acc = Vec::new();
            for round in 0..20 {
                let s = ctx.all_sum(&[round as f64]);
                acc.push(s[0]);
            }
            acc
        });
        for r in &results {
            for (round, v) in r.iter().enumerate() {
                assert_eq!(*v, 4.0 * round as f64);
            }
        }
    }

    #[test]
    fn face_messages_route_between_neighbors() {
        let world = world_2x1x1x2();
        let grid = world.grid().clone();
        run_spmd(&world, |ctx| {
            // Send my rank id encoded in a half-spinor to my forward-x
            // neighbor; expect to receive from my backward-x neighbor.
            let mut h = HalfSpinor::<f64>::ZERO;
            h.0[0].0[0] = qdd_util::complex::Complex::real(ctx.rank() as f64);
            ctx.send_face(Dir::X, true, vec![h]);
            let got = ctx.recv_face::<f64>(Dir::X, false).unwrap();
            let expect = grid.neighbor_rank(ctx.rank(), Dir::X, false) as f64;
            assert_eq!(got[0].0[0].0[0].re, expect);
        });
    }

    #[test]
    fn traffic_counted_only_for_split_directions() {
        let world = world_2x1x1x2();
        let counters = run_spmd(&world, |ctx| {
            // Y is unsplit: self-message, no bytes. X is split: bytes.
            ctx.send_face(Dir::Y, true, vec![HalfSpinor::<f32>::ZERO; 10]);
            let _ = ctx.recv_face::<f32>(Dir::Y, false).unwrap();
            ctx.send_face(Dir::X, true, vec![HalfSpinor::<f32>::ZERO; 10]);
            let _ = ctx.recv_face::<f32>(Dir::X, false).unwrap();
            (ctx.counters.bytes_sent.get(), ctx.counters.messages_sent.get())
        });
        for (bytes, msgs) in counters {
            assert_eq!(bytes, 10.0 * 12.0 * 4.0);
            assert_eq!(msgs, 1);
        }
    }

    #[test]
    fn split_face_parts_roundtrip_with_receive_accounting() {
        let world = world_2x1x1x2();
        let rows = run_spmd(&world, |ctx| {
            assert_eq!(ctx.split_dirs(), [true, false, false, true]);
            let half = vec![HalfSpinor::<f64>::ZERO; 5];
            ctx.send_face_part(Dir::X, true, FacePart { index: 0, of: 2 }, half.clone());
            ctx.send_face_part(Dir::X, true, FacePart { index: 1, of: 2 }, half);
            let a = ctx
                .recv_face_part_retrying::<f64>(Dir::X, false, FacePart { index: 0, of: 2 }, 1)
                .unwrap()
                .unwrap();
            let b = ctx
                .recv_face_part_retrying::<f64>(Dir::X, false, FacePart { index: 1, of: 2 }, 1)
                .unwrap()
                .unwrap();
            assert_eq!(a.len() + b.len(), 10);
            (
                ctx.counters.bytes_sent.get(),
                ctx.counters.bytes_received.get(),
                ctx.counters.messages_sent.get(),
            )
        });
        for (sent, got, msgs) in rows {
            assert_eq!(sent, 10.0 * 12.0 * 8.0);
            assert_eq!(got, sent, "every sent byte arrives somewhere");
            assert_eq!(msgs, 2);
        }
    }

    #[test]
    fn retried_delivery_counts_received_bytes_once() {
        use qdd_faults::{FaultClass, FaultEvent, FaultRates};
        // Rank 0's backward-x receive loses the first delivery attempt;
        // the retransmission (attempt 1) goes through. The delivered
        // bytes must be counted exactly once, not per attempt.
        let plan = FaultPlan::new(1, FaultRates::NONE).with_event(FaultEvent {
            rank: 0,
            class: FaultClass::Loss,
            dir: Some(Dir::X),
            forward: Some(false),
            at_seq: 0,
            attempts: 1,
        });
        let world = CommWorld::with_faults(
            RankGrid::new(Dims::new(8, 4, 4, 4), Dims::new(2, 1, 1, 1)),
            plan,
        );
        let face_bytes = 6.0 * 12.0 * 8.0;
        let rows = run_spmd(&world, |ctx| {
            ctx.send_face(Dir::X, true, vec![HalfSpinor::<f64>::ZERO; 6]);
            let got = ctx.recv_face_retrying::<f64>(Dir::X, false, 4).unwrap().unwrap();
            assert_eq!(got.len(), 6);
            (ctx.rank(), ctx.counters.bytes_received.get(), ctx.counters.faults.snapshot().retries)
        });
        for (rank, got, retries) in rows {
            assert_eq!(got, face_bytes, "rank {rank}: one delivery, one accounting");
            assert_eq!(retries, u64::from(rank == 0));
        }
    }

    #[test]
    fn abandoned_message_is_never_counted_as_received() {
        use qdd_faults::{FaultClass, FaultEvent, FaultRates};
        // A permanent loss on rank 0's backward-x channel exhausts the
        // retry budget: the message physically reached the rank but was
        // never delivered to the solver, so it must not appear in
        // `bytes_received` (the ledger the model join consumes).
        let plan = FaultPlan::new(1, FaultRates::NONE).with_event(FaultEvent {
            rank: 0,
            class: FaultClass::Loss,
            dir: Some(Dir::X),
            forward: Some(false),
            at_seq: 0,
            attempts: u32::MAX,
        });
        let world = CommWorld::with_faults(
            RankGrid::new(Dims::new(8, 4, 4, 4), Dims::new(2, 1, 1, 1)),
            plan,
        );
        let face_bytes = 6.0 * 12.0 * 8.0;
        let rows = run_spmd(&world, |ctx| {
            ctx.send_face(Dir::X, true, vec![HalfSpinor::<f64>::ZERO; 6]);
            let res = ctx.recv_face_retrying::<f64>(Dir::X, false, 2);
            (ctx.rank(), res.is_err(), ctx.counters.snapshot())
        });
        for (rank, failed, stats) in rows {
            if rank == 0 {
                assert!(failed, "rank 0's receive must exhaust its budget");
                assert_eq!(stats.bytes_received, 0.0, "abandoned bytes must not be counted");
                assert_eq!(stats.faults.timeouts, 1);
            } else {
                assert!(!failed);
                assert_eq!(stats.bytes_received, face_bytes);
            }
            assert_eq!(stats.bytes_sent, face_bytes, "sends are accounted at the sender");
        }
    }

    #[test]
    fn retry_policy_default_matches_historical_constants() {
        // The default policy must reproduce the pre-policy behavior
        // bit for bit: 4 delivery attempts, 50 us linear backoff, no cap.
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, crate::exchange::MAX_ATTEMPTS);
        assert_eq!(p.backoff_us(0), 50.0);
        assert_eq!(p.backoff_us(2), 150.0);
    }

    #[test]
    fn retry_policy_governs_budget_and_caps_backoff() {
        use qdd_faults::{FaultClass, FaultEvent, FaultRates};
        // Permanent loss on rank 0's X-backward channel: with a 3-attempt
        // policy the receive retries twice (backoffs 40 then min(80, 50))
        // and then times out; the modeled delay ledger must show the
        // capped schedule exactly.
        let plan = FaultPlan::new(1, FaultRates::NONE).with_event(FaultEvent {
            rank: 0,
            class: FaultClass::Loss,
            dir: Some(Dir::X),
            forward: Some(false),
            at_seq: 0,
            attempts: u32::MAX,
        });
        let world = CommWorld::with_faults(
            RankGrid::new(Dims::new(8, 4, 4, 4), Dims::new(2, 1, 1, 1)),
            plan,
        )
        .with_retry_policy(RetryPolicy {
            max_attempts: 3,
            base_backoff_us: 40.0,
            cap_backoff_us: 50.0,
        });
        let rows = run_spmd(&world, |ctx| {
            ctx.send_face(Dir::X, true, vec![HalfSpinor::<f64>::ZERO; 6]);
            let attempts = ctx.retry_policy().max_attempts;
            let res = ctx.recv_face_retrying::<f64>(Dir::X, false, attempts);
            (ctx.rank(), res.is_err(), ctx.counters.snapshot())
        });
        for (rank, failed, stats) in rows {
            if rank == 0 {
                assert!(failed, "rank 0 must exhaust the 3-attempt budget");
                assert_eq!(stats.faults.retries, 2);
                assert_eq!(stats.faults.timeouts, 1);
                assert_eq!(stats.faults.delay_us, 40.0 + 50.0, "linear backoff, capped at 50");
            } else {
                assert!(!failed);
            }
        }
    }

    #[test]
    fn flight_lane_records_fault_events_with_trace_ids() {
        use qdd_faults::{FaultClass, FaultEvent, FaultRates};
        use qdd_trace::{FlightRecorder, TraceId};
        let plan = FaultPlan::new(1, FaultRates::NONE).with_event(FaultEvent {
            rank: 0,
            class: FaultClass::Loss,
            dir: Some(Dir::X),
            forward: Some(false),
            at_seq: 0,
            attempts: 1,
        });
        let world = CommWorld::with_faults(
            RankGrid::new(Dims::new(8, 4, 4, 4), Dims::new(2, 1, 1, 1)),
            plan,
        );
        let recorder = FlightRecorder::enabled();
        let rec = &recorder;
        run_spmd(&world, |ctx| {
            ctx.attach_flight(rec.lane(ctx.rank() as u32));
            ctx.set_trace_id(TraceId::derive(9, ctx.rank() as u64));
            ctx.send_face(Dir::X, true, vec![HalfSpinor::<f64>::ZERO; 6]);
            let _ = ctx.recv_face_retrying::<f64>(Dir::X, false, 4).unwrap();
        });
        let events = recorder.snapshot();
        let codes: Vec<&str> = events.iter().map(|e| e.code).collect();
        assert_eq!(codes, ["fault.lose", "fault.retry"], "lose then retry, rank 0 only");
        for e in &events {
            assert_eq!(e.lane, 0);
            assert_eq!(e.trace, TraceId::derive(9, 0).0);
        }
    }

    #[test]
    fn same_seed_chaos_produces_identical_flight_sequences() {
        use qdd_faults::FaultRates;
        use qdd_trace::{FlightRecorder, TraceId};
        // Two runs with the same fault seed must leave bitwise-identical
        // flight recordings: fault decisions are pure hashes, delays are
        // modeled (not slept), and lane seq counters are the only clock.
        let run = || {
            let rates = FaultRates { loss: 0.2, corrupt: 0.1, delay: 0.1, hiccup: 0.0 };
            let world = CommWorld::with_faults(
                RankGrid::new(Dims::new(8, 4, 4, 4), Dims::new(2, 1, 1, 1)),
                FaultPlan::new(42, rates),
            );
            let recorder = FlightRecorder::enabled();
            let rec = &recorder;
            run_spmd(&world, |ctx| {
                ctx.attach_flight(rec.lane(ctx.rank() as u32));
                ctx.set_trace_id(TraceId::derive(42, ctx.rank() as u64));
                for _ in 0..20 {
                    ctx.send_face(Dir::X, true, vec![HalfSpinor::<f64>::ZERO; 6]);
                    let _ = ctx.recv_face_retrying::<f64>(Dir::X, false, 8).unwrap();
                }
            });
            recorder.snapshot()
        };
        let a = run();
        let b = run();
        assert!(
            a.iter().any(|e| e.code.starts_with("fault.")),
            "the fault rates must actually inject something"
        );
        assert_eq!(a, b, "same seed, same flight recording");
    }

    #[test]
    fn precision_mismatch_is_typed_error_not_panic() {
        let world = world_2x1x1x2();
        let errs = run_spmd(&world, |ctx| {
            // Every rank sends f32 but receives as f64: each rank must get
            // a typed error back and keep running (the SPMD scope would
            // fail the test if any rank thread panicked).
            ctx.send_face(Dir::X, true, vec![HalfSpinor::<f32>::ZERO; 4]);
            let err = ctx.recv_face::<f64>(Dir::X, false).unwrap_err();
            // The rank thread is still healthy: a follow-up well-formed
            // exchange goes through.
            ctx.send_face(Dir::X, true, vec![HalfSpinor::<f64>::ZERO; 4]);
            assert!(ctx.recv_face::<f64>(Dir::X, false).is_ok());
            err
        });
        for err in errs {
            assert_eq!(err, CommError::PrecisionMismatch { expected: "f64", got: "f32" });
            assert!(err.to_string().contains("expected f64"));
        }
    }

    #[test]
    fn edge_detection() {
        let world = world_2x1x1x2();
        let flags = run_spmd(&world, |ctx| {
            (
                ctx.at_global_backward_edge(Dir::X),
                ctx.at_global_forward_edge(Dir::X),
                ctx.at_global_backward_edge(Dir::Y),
                ctx.at_global_forward_edge(Dir::Y),
            )
        });
        // Y has a single rank: both edges at once.
        for (_, _, by, fy) in &flags {
            assert!(by & fy);
        }
        // X: exactly half the ranks at each edge.
        assert_eq!(flags.iter().filter(|f| f.0).count(), 2);
        assert_eq!(flags.iter().filter(|f| f.1).count(), 2);
    }
}
