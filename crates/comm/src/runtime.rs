//! SPMD runtime: ranks as threads, neighbor channels, deterministic
//! collectives, traffic counters.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use qdd_field::spinor::HalfSpinor;
use qdd_lattice::{Dir, RankGrid};
use qdd_trace::{CommStats, Phase, TraceSink};
use qdd_util::complex::Real;
use std::cell::{Cell, RefCell};
use std::sync::Barrier;

/// Message payload: one face worth of half-spinors, in either precision.
pub enum Payload {
    F32(Vec<HalfSpinor<f32>>),
    F64(Vec<HalfSpinor<f64>>),
}

impl Payload {
    fn precision(&self) -> &'static str {
        match self {
            Payload::F32(_) => "f32",
            Payload::F64(_) => "f64",
        }
    }
}

/// A communication failure a rank can recover from. The service layer
/// maps these to degraded solve results; a malformed exchange must never
/// abort the rank thread.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CommError {
    /// A received payload carried the wrong scalar precision.
    PrecisionMismatch { expected: &'static str, got: &'static str },
    /// The peer rank hung up (channel disconnected).
    Disconnected,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::PrecisionMismatch { expected, got } => {
                write!(f, "payload precision mismatch: expected {expected}, got {got}")
            }
            CommError::Disconnected => write!(f, "peer rank hung up"),
        }
    }
}

impl std::error::Error for CommError {}

/// Precision dispatch for payloads.
pub trait HaloScalar: Real {
    fn wrap(data: Vec<HalfSpinor<Self>>) -> Payload;
    /// Typed unwrap: a mismatched payload is an error, not a panic.
    fn try_unwrap(p: Payload) -> Result<Vec<HalfSpinor<Self>>, CommError>;
}

impl HaloScalar for f32 {
    fn wrap(data: Vec<HalfSpinor<f32>>) -> Payload {
        Payload::F32(data)
    }
    fn try_unwrap(p: Payload) -> Result<Vec<HalfSpinor<f32>>, CommError> {
        match p {
            Payload::F32(d) => Ok(d),
            other => Err(CommError::PrecisionMismatch { expected: "f32", got: other.precision() }),
        }
    }
}

impl HaloScalar for f64 {
    fn wrap(data: Vec<HalfSpinor<f64>>) -> Payload {
        Payload::F64(data)
    }
    fn try_unwrap(p: Payload) -> Result<Vec<HalfSpinor<f64>>, CommError> {
        match p {
            Payload::F64(d) => Ok(d),
            other => Err(CommError::PrecisionMismatch { expected: "f64", got: other.precision() }),
        }
    }
}

/// Deterministic all-reduce: every rank deposits a partial vector, all
/// ranks reduce in fixed rank order (bit-reproducible independent of
/// thread scheduling).
pub struct Collective {
    slots: Vec<Mutex<Vec<f64>>>,
    barrier: Barrier,
    parties: usize,
}

impl Collective {
    pub fn new(parties: usize) -> Self {
        Self {
            slots: (0..parties).map(|_| Mutex::new(Vec::new())).collect(),
            barrier: Barrier::new(parties),
            parties,
        }
    }

    /// All ranks must call with vectors of identical length.
    pub fn all_sum(&self, rank: usize, vals: &[f64]) -> Vec<f64> {
        *self.slots[rank].lock() = vals.to_vec();
        self.barrier.wait();
        let mut acc = vec![0.0; vals.len()];
        for r in 0..self.parties {
            let slot = self.slots[r].lock();
            assert_eq!(slot.len(), vals.len(), "collective length mismatch");
            for (a, v) in acc.iter_mut().zip(slot.iter()) {
                *a += v;
            }
        }
        // Second barrier: nobody may overwrite a slot before all have read.
        self.barrier.wait();
        acc
    }
}

/// Per-rank communication counters.
#[derive(Default)]
pub struct CommCounters {
    /// Bytes actually sent over the (simulated) network.
    pub bytes_sent: Cell<f64>,
    /// Bytes per `[dimension][orientation]` (0 = backward, 1 = forward).
    pub bytes_by_dir: [[Cell<f64>; 2]; 4],
    /// Number of point-to-point messages sent.
    pub messages_sent: Cell<u64>,
    /// Number of collective reductions participated in.
    pub reductions: Cell<u64>,
}

impl CommCounters {
    /// Immutable snapshot in the trace crate's exchange format.
    pub fn snapshot(&self) -> CommStats {
        CommStats {
            bytes_sent: self.bytes_sent.get(),
            bytes_by_dir: std::array::from_fn(|d| {
                std::array::from_fn(|o| self.bytes_by_dir[d][o].get())
            }),
            messages_sent: self.messages_sent.get(),
            reductions: self.reductions.get(),
        }
    }
}

/// One rank's endpoint: channels to/from its eight neighbors plus the
/// collective.
pub struct RankCtx<'w> {
    rank: usize,
    grid: &'w RankGrid,
    /// `rx[d][o]` receives from `neighbor(rank, d, o == 1)`.
    rx: [[Receiver<Payload>; 2]; 4],
    /// `tx[d][o]` sends to `neighbor(rank, d, o == 1)`.
    tx: [[Sender<Payload>; 2]; 4],
    collective: &'w Collective,
    pub counters: CommCounters,
    /// Trace sink for the rank's communication spans (disabled by
    /// default). `RefCell` because contexts are handed to rank bodies by
    /// shared reference; each context lives on exactly one thread.
    trace: RefCell<TraceSink>,
}

impl<'w> RankCtx<'w> {
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    pub fn grid(&self) -> &RankGrid {
        self.grid
    }

    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.grid.num_ranks()
    }

    /// True if halos in `dir` cross the network (more than one rank).
    #[inline]
    pub fn is_split(&self, dir: Dir) -> bool {
        self.grid.is_split(dir)
    }

    /// Attach a trace sink: subsequent sends, receives and collectives
    /// record `HaloSend` / `HaloRecv` / `GlobalSum` spans into it.
    pub fn attach_trace(&self, sink: TraceSink) {
        *self.trace.borrow_mut() = sink;
    }

    /// The rank's trace sink (disabled unless attached).
    pub fn trace(&self) -> TraceSink {
        self.trace.borrow().clone()
    }

    /// Send one face to the neighbor in `(dir, forward)`. Traffic is
    /// counted only when the neighbor is a different rank.
    pub fn send_face<T: HaloScalar>(&self, dir: Dir, forward: bool, data: Vec<HalfSpinor<T>>) {
        let mut sent = 0.0;
        if self.is_split(dir) {
            let bytes = (data.len() * HalfSpinor::<T>::REALS * std::mem::size_of::<T>()) as f64;
            self.counters.bytes_sent.set(self.counters.bytes_sent.get() + bytes);
            let by_dir = &self.counters.bytes_by_dir[dir.index()][forward as usize];
            by_dir.set(by_dir.get() + bytes);
            self.counters.messages_sent.set(self.counters.messages_sent.get() + 1);
            sent = bytes;
        }
        let trace = self.trace.borrow();
        trace.begin(Phase::HaloSend);
        self.tx[dir.index()][forward as usize].send(T::wrap(data)).expect("peer rank hung up");
        trace.end_with(Phase::HaloSend, &[("bytes", sent), ("dir", dir.index() as f64)]);
    }

    /// Receive one face from the neighbor in `(dir, forward)` (blocking).
    /// A payload of the wrong precision or a hung-up peer is reported as a
    /// [`CommError`], never a panic: the serve path degrades such solves.
    pub fn recv_face<T: HaloScalar>(
        &self,
        dir: Dir,
        forward: bool,
    ) -> Result<Vec<HalfSpinor<T>>, CommError> {
        let trace = self.trace.borrow();
        trace.begin(Phase::HaloRecv);
        let p =
            self.rx[dir.index()][forward as usize].recv().map_err(|_| CommError::Disconnected)?;
        trace.end_with(Phase::HaloRecv, &[("dir", dir.index() as f64)]);
        T::try_unwrap(p)
    }

    /// Deterministic global sum of a small vector of reals.
    pub fn all_sum(&self, vals: &[f64]) -> Vec<f64> {
        self.counters.reductions.set(self.counters.reductions.get() + 1);
        let trace = self.trace.borrow();
        trace.begin(Phase::GlobalSum);
        let out = self.collective.all_sum(self.rank, vals);
        trace.end(Phase::GlobalSum);
        out
    }

    /// Rank coordinate helpers for boundary-phase decisions.
    pub fn at_global_backward_edge(&self, dir: Dir) -> bool {
        self.grid.rank_coord(self.rank)[dir] == 0
    }

    pub fn at_global_forward_edge(&self, dir: Dir) -> bool {
        self.grid.rank_coord(self.rank)[dir] == self.grid.grid()[dir] - 1
    }
}

/// The communication world: construct once, then run an SPMD closure on
/// every rank.
pub struct CommWorld {
    grid: RankGrid,
}

impl CommWorld {
    pub fn new(grid: RankGrid) -> Self {
        Self { grid }
    }

    #[inline]
    pub fn grid(&self) -> &RankGrid {
        &self.grid
    }
}

/// Run `body` on every rank concurrently; returns the per-rank results in
/// rank order. `body` must follow SPMD discipline: all ranks make the same
/// sequence of collective calls.
pub fn run_spmd<R: Send>(world: &CommWorld, body: impl Fn(&RankCtx<'_>) -> R + Sync) -> Vec<R> {
    let grid = &world.grid;
    let n = grid.num_ranks();
    let collective = Collective::new(n);

    // Wire channels: for each (receiver rank, dir, orientation) one channel;
    // the sender is neighbor(receiver, dir, o), who addresses it through
    // its own tx[d][!o].
    let mut rx_slots: Vec<Vec<Option<Receiver<Payload>>>> =
        (0..n).map(|_| (0..8).map(|_| None).collect()).collect();
    let mut tx_slots: Vec<Vec<Option<Sender<Payload>>>> =
        (0..n).map(|_| (0..8).map(|_| None).collect()).collect();
    for r in 0..n {
        for dir in Dir::ALL {
            let d = dir.index();
            for o in 0..2 {
                let (s, rcv) = unbounded();
                rx_slots[r][2 * d + o] = Some(rcv);
                // Sender: the neighbor in (d, o); it sends via tx[d][!o].
                let nb = grid.neighbor_rank(r, dir, o == 1);
                tx_slots[nb][2 * d + (1 - o)] = Some(s);
            }
        }
    }

    let mut ctxs: Vec<RankCtx<'_>> = Vec::with_capacity(n);
    for (r, (rx_row, tx_row)) in rx_slots.into_iter().zip(tx_slots).enumerate() {
        let mut rx_iter = rx_row.into_iter();
        let rx: [[Receiver<Payload>; 2]; 4] =
            std::array::from_fn(|_| std::array::from_fn(|_| rx_iter.next().unwrap().unwrap()));
        let mut tx_iter = tx_row.into_iter();
        let tx: [[Sender<Payload>; 2]; 4] =
            std::array::from_fn(|_| std::array::from_fn(|_| tx_iter.next().unwrap().unwrap()));
        ctxs.push(RankCtx {
            rank: r,
            grid,
            rx,
            tx,
            collective: &collective,
            counters: CommCounters::default(),
            trace: RefCell::new(TraceSink::disabled()),
        });
    }

    let body = &body;
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    crossbeam::scope(|s| {
        let mut handles = Vec::with_capacity(n);
        for ctx in ctxs {
            // Each context is moved into exactly one thread; the cheap
            // Cell-based counters therefore never cross threads.
            handles.push(s.spawn(move |_| body(&ctx)));
        }
        for (r, h) in handles.into_iter().enumerate() {
            results[r] = Some(h.join().expect("rank thread panicked"));
        }
    })
    .expect("spmd scope failed");
    results.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdd_lattice::Dims;

    fn world_2x1x1x2() -> CommWorld {
        CommWorld::new(RankGrid::new(Dims::new(8, 4, 4, 8), Dims::new(2, 1, 1, 2)))
    }

    #[test]
    fn all_sum_is_deterministic_and_correct() {
        let world = world_2x1x1x2();
        let sums = run_spmd(&world, |ctx| {
            let mine = vec![ctx.rank() as f64 + 1.0, 0.5];
            ctx.all_sum(&mine)
        });
        // 4 ranks: sum of 1+2+3+4 = 10; 4 * 0.5 = 2.
        for s in &sums {
            assert_eq!(s[0], 10.0);
            assert_eq!(s[1], 2.0);
        }
    }

    #[test]
    fn repeated_collectives_do_not_interleave() {
        let world = world_2x1x1x2();
        let results = run_spmd(&world, |ctx| {
            let mut acc = Vec::new();
            for round in 0..20 {
                let s = ctx.all_sum(&[round as f64]);
                acc.push(s[0]);
            }
            acc
        });
        for r in &results {
            for (round, v) in r.iter().enumerate() {
                assert_eq!(*v, 4.0 * round as f64);
            }
        }
    }

    #[test]
    fn face_messages_route_between_neighbors() {
        let world = world_2x1x1x2();
        let grid = world.grid().clone();
        run_spmd(&world, |ctx| {
            // Send my rank id encoded in a half-spinor to my forward-x
            // neighbor; expect to receive from my backward-x neighbor.
            let mut h = HalfSpinor::<f64>::ZERO;
            h.0[0].0[0] = qdd_util::complex::Complex::real(ctx.rank() as f64);
            ctx.send_face(Dir::X, true, vec![h]);
            let got = ctx.recv_face::<f64>(Dir::X, false).unwrap();
            let expect = grid.neighbor_rank(ctx.rank(), Dir::X, false) as f64;
            assert_eq!(got[0].0[0].0[0].re, expect);
        });
    }

    #[test]
    fn traffic_counted_only_for_split_directions() {
        let world = world_2x1x1x2();
        let counters = run_spmd(&world, |ctx| {
            // Y is unsplit: self-message, no bytes. X is split: bytes.
            ctx.send_face(Dir::Y, true, vec![HalfSpinor::<f32>::ZERO; 10]);
            let _ = ctx.recv_face::<f32>(Dir::Y, false).unwrap();
            ctx.send_face(Dir::X, true, vec![HalfSpinor::<f32>::ZERO; 10]);
            let _ = ctx.recv_face::<f32>(Dir::X, false).unwrap();
            (ctx.counters.bytes_sent.get(), ctx.counters.messages_sent.get())
        });
        for (bytes, msgs) in counters {
            assert_eq!(bytes, 10.0 * 12.0 * 4.0);
            assert_eq!(msgs, 1);
        }
    }

    #[test]
    fn precision_mismatch_is_typed_error_not_panic() {
        let world = world_2x1x1x2();
        let errs = run_spmd(&world, |ctx| {
            // Every rank sends f32 but receives as f64: each rank must get
            // a typed error back and keep running (the SPMD scope would
            // fail the test if any rank thread panicked).
            ctx.send_face(Dir::X, true, vec![HalfSpinor::<f32>::ZERO; 4]);
            let err = ctx.recv_face::<f64>(Dir::X, false).unwrap_err();
            // The rank thread is still healthy: a follow-up well-formed
            // exchange goes through.
            ctx.send_face(Dir::X, true, vec![HalfSpinor::<f64>::ZERO; 4]);
            assert!(ctx.recv_face::<f64>(Dir::X, false).is_ok());
            err
        });
        for err in errs {
            assert_eq!(err, CommError::PrecisionMismatch { expected: "f64", got: "f32" });
            assert!(err.to_string().contains("expected f64"));
        }
    }

    #[test]
    fn edge_detection() {
        let world = world_2x1x1x2();
        let flags = run_spmd(&world, |ctx| {
            (
                ctx.at_global_backward_edge(Dir::X),
                ctx.at_global_forward_edge(Dir::X),
                ctx.at_global_backward_edge(Dir::Y),
                ctx.at_global_forward_edge(Dir::Y),
            )
        });
        // Y has a single rank: both edges at once.
        for (_, _, by, fy) in &flags {
            assert!(by & fy);
        }
        // X: exactly half the ranks at each edge.
        assert_eq!(flags.iter().filter(|f| f.0).count(), 2);
        assert_eq!(flags.iter().filter(|f| f.1).count(), 2);
    }
}
