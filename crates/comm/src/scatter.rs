//! Scatter global fields to ranks and gather them back.
//!
//! Used to set up distributed runs from a globally generated
//! configuration and to compare distributed results against single-rank
//! ground truth. The clover field is built on the *global* lattice (its
//! clover leaves reach across rank boundaries) and then scattered.

use qdd_field::fields::{CloverField, GaugeField, SpinorField};
use qdd_lattice::{Coord, Dir, RankGrid, SiteIndexer};
use qdd_util::complex::Real;

/// Global site coordinate of a local coordinate on `rank`.
fn to_global(grid: &RankGrid, rank: usize, local: &Coord) -> Coord {
    let rc = grid.rank_coord(rank);
    let l = grid.local();
    Coord([
        rc[Dir::X] * l[Dir::X] + local[Dir::X],
        rc[Dir::Y] * l[Dir::Y] + local[Dir::Y],
        rc[Dir::Z] * l[Dir::Z] + local[Dir::Z],
        rc[Dir::T] * l[Dir::T] + local[Dir::T],
    ])
}

/// Split a global spinor field into per-rank local fields.
pub fn scatter_field<T: Real>(global: &SpinorField<T>, grid: &RankGrid) -> Vec<SpinorField<T>> {
    assert_eq!(global.dims(), grid.global());
    let gidx = SiteIndexer::new(*grid.global());
    let lidx = SiteIndexer::new(*grid.local());
    (0..grid.num_ranks())
        .map(|rank| {
            SpinorField::from_fn(*grid.local(), |ls| {
                let local = lidx.coord(ls);
                *global.site(gidx.index(&to_global(grid, rank, &local)))
            })
        })
        .collect()
}

/// Reassemble a global spinor field from per-rank locals.
pub fn gather_field<T: Real>(locals: &[SpinorField<T>], grid: &RankGrid) -> SpinorField<T> {
    assert_eq!(locals.len(), grid.num_ranks());
    let gidx = SiteIndexer::new(*grid.global());
    let lidx = SiteIndexer::new(*grid.local());
    SpinorField::from_fn(*grid.global(), |gs| {
        let gc = gidx.coord(gs);
        let (rank, local) = grid.locate(&gc);
        *locals[rank].site(lidx.index(&local))
    })
}

/// Split a global gauge field into per-rank local fields.
pub fn scatter_gauge<T: Real>(global: &GaugeField<T>, grid: &RankGrid) -> Vec<GaugeField<T>> {
    assert_eq!(global.dims(), grid.global());
    let gidx = SiteIndexer::new(*grid.global());
    let lidx = SiteIndexer::new(*grid.local());
    (0..grid.num_ranks())
        .map(|rank| {
            let mut g = GaugeField::identity(*grid.local());
            for ls in 0..grid.local().volume() {
                let local = lidx.coord(ls);
                let gs = gidx.index(&to_global(grid, rank, &local));
                for d in Dir::ALL {
                    *g.link_mut(ls, d) = *global.link(gs, d);
                }
            }
            g
        })
        .collect()
}

/// Split a global clover field into per-rank local fields.
pub fn scatter_clover<T: Real>(global: &CloverField<T>, grid: &RankGrid) -> Vec<CloverField<T>> {
    assert_eq!(global.dims(), grid.global());
    let gidx = SiteIndexer::new(*grid.global());
    let lidx = SiteIndexer::new(*grid.local());
    (0..grid.num_ranks())
        .map(|rank| {
            CloverField::from_fn(*grid.local(), |ls| {
                let local = lidx.coord(ls);
                *global.site(gidx.index(&to_global(grid, rank, &local)))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdd_lattice::Dims;
    use qdd_util::rng::Rng64;

    #[test]
    fn scatter_gather_roundtrip() {
        let grid = RankGrid::new(Dims::new(8, 4, 8, 4), Dims::new(2, 1, 2, 1));
        let mut rng = Rng64::new(1);
        let global = SpinorField::<f64>::random(*grid.global(), &mut rng);
        let locals = scatter_field(&global, &grid);
        assert_eq!(locals.len(), 4);
        let back = gather_field(&locals, &grid);
        assert_eq!(global, back);
    }

    #[test]
    fn scatter_preserves_total_norm() {
        let grid = RankGrid::new(Dims::new(4, 4, 4, 8), Dims::new(1, 1, 1, 4));
        let mut rng = Rng64::new(2);
        let global = SpinorField::<f64>::random(*grid.global(), &mut rng);
        let locals = scatter_field(&global, &grid);
        let total: f64 = locals.iter().map(|l| l.norm_sqr()).sum();
        assert!((total - global.norm_sqr()).abs() < 1e-9 * global.norm_sqr());
    }

    #[test]
    fn gauge_scatter_places_links_correctly() {
        let grid = RankGrid::new(Dims::new(4, 4, 4, 4), Dims::new(2, 2, 1, 1));
        let mut rng = Rng64::new(3);
        let global = GaugeField::<f64>::random(*grid.global(), &mut rng, 0.5);
        let locals = scatter_gauge(&global, &grid);
        let gidx = SiteIndexer::new(*grid.global());
        let lidx = SiteIndexer::new(*grid.local());
        // Spot-check a handful of sites on every rank.
        for (rank, lg) in locals.iter().enumerate() {
            for ls in [0, 3, 7, lidx.volume() - 1] {
                let local = lidx.coord(ls);
                let gs = gidx.index(&to_global(&grid, rank, &local));
                for d in Dir::ALL {
                    assert_eq!(lg.link(ls, d), global.link(gs, d));
                }
            }
        }
    }
}
