//! Rank-boundary halo exchange for the full operator.
//!
//! Each rank packs its spin-projected faces (Fig. 3 format) and sends one
//! message per direction and orientation; fermion boundary phases are
//! folded in at pack time by the rank sitting at the global edge.

use crate::runtime::{CommError, HaloScalar, RankCtx};
use qdd_dirac::boundary::{pack_for_backward_hop, pack_for_forward_hop};
use qdd_dirac::wilson::WilsonClover;
use qdd_field::fields::SpinorField;
use qdd_field::halo::{FaceBuffer, HaloData};
use qdd_lattice::Dir;
use qdd_trace::Phase;

/// Default delivery attempts per face before an exchange gives up on it:
/// the first try plus three retransmissions with modeled backoff. This is
/// the `max_attempts` of [`RetryPolicy::default`](crate::RetryPolicy);
/// exchanges consult the context's installed policy
/// ([`RankCtx::retry_policy`]) rather than this constant directly.
pub const MAX_ATTEMPTS: u32 = 4;

/// One face that could not be delivered within the retry budget.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultedFace {
    pub dir: Dir,
    pub forward: bool,
    pub error: CommError,
}

/// A halo exchange that lost at least one face. Carries *all* faulted
/// directions — not just the first — plus the partial halo with every
/// successfully delivered face in place and the faulted ones zeroed, so
/// the caller can choose its degradation policy explicitly instead of
/// silently inheriting a zero fill.
pub struct ExchangeFailure<T: HaloScalar> {
    pub faults: Vec<FaultedFace>,
    pub partial: HaloData<T>,
}

impl<T: HaloScalar> ExchangeFailure<T> {
    /// The first fault, for callers that track a single representative
    /// error.
    pub fn first(&self) -> CommError {
        self.faults[0].error
    }
}

impl<T: HaloScalar> std::fmt::Debug for ExchangeFailure<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExchangeFailure").field("faults", &self.faults).finish_non_exhaustive()
    }
}

impl<T: HaloScalar> std::fmt::Display for ExchangeFailure<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "halo exchange lost {} face(s):", self.faults.len())?;
        for ff in &self.faults {
            let o = if ff.forward { "fwd" } else { "bwd" };
            write!(f, " [{} {}: {}]", ff.dir, o, ff.error)?;
        }
        Ok(())
    }
}

/// Exchange the *split-direction* faces of `inp` and assemble this
/// rank's halo. Faces of unsplit directions are left zeroed and never
/// sent: consumers must apply the operator with the split-aware halo
/// path (`apply_with_halo_split`), which wraps unsplit hops through the
/// local field directly.
///
/// Non-blocking in effect: all sends are posted before any receive
/// (channels are unbounded), matching the paper's non-blocking MPI
/// send/receive pairs issued by a dedicated core (Sec. III-E).
///
/// Lost or corrupted faces are retried up to [`MAX_ATTEMPTS`] deliveries
/// each. On exhaustion the exchange still drains every remaining receive
/// (keeping the per-neighbor channels aligned for later exchanges) and
/// returns an [`ExchangeFailure`] naming every faulted face alongside the
/// partial halo, so the caller decides — explicitly — how to degrade.
pub fn exchange_halo<T: HaloScalar>(
    ctx: &RankCtx<'_>,
    op: &WilsonClover<T>,
    inp: &SpinorField<T>,
) -> Result<HaloData<T>, Box<ExchangeFailure<T>>> {
    let trace = ctx.trace();
    // Post all sends. Unsplit directions stay entirely local: packing
    // and self-looping a face there is pure copy overhead — the caller's
    // split-aware apply wraps those hops through the local field instead.
    trace.begin(Phase::HaloPack);
    for dir in Dir::ALL.into_iter().filter(|&d| ctx.is_split(d)) {
        let sign_fwd = if ctx.at_global_backward_edge(dir) { op.phases().of(dir) } else { 1.0 };
        let sign_bwd = if ctx.at_global_forward_edge(dir) { op.phases().of(dir) } else { 1.0 };
        // Our backward face, projected for the forward hops of our
        // backward neighbor's sites.
        let fwd_payload = pack_for_forward_hop(op, inp, dir, sign_fwd);
        ctx.send_face(dir, false, fwd_payload.data);
        // Our forward face, link-applied, for the backward hops of our
        // forward neighbor's sites.
        let bwd_payload = pack_for_backward_hop(op, inp, dir, sign_bwd);
        ctx.send_face(dir, true, bwd_payload.data);
    }
    trace.end(Phase::HaloPack);
    // Collect receives; drain them all even after a fault.
    trace.begin(Phase::HaloUnpack);
    let mut halo = HaloData::zeros(*op.dims());
    let mut faults: Vec<FaultedFace> = Vec::new();
    let max_attempts = ctx.retry_policy().max_attempts;
    for dir in Dir::ALL.into_iter().filter(|&d| ctx.is_split(d)) {
        // face(dir, true): from our forward neighbor; face(dir, false):
        // from our backward neighbor.
        for forward in [true, false] {
            match ctx.recv_face_retrying::<T>(dir, forward, max_attempts) {
                Ok(Some(data)) => *halo.face_mut(dir, forward) = FaceBuffer { data },
                // A hiccup marker in the full-operator exchange (the
                // peer skipped): no data will ever come for this face.
                Ok(None) => {
                    faults.push(FaultedFace {
                        dir,
                        forward,
                        error: CommError::Timeout { dir, attempts: 0 },
                    });
                }
                Err(error) => faults.push(FaultedFace { dir, forward, error }),
            }
        }
    }
    trace.end(Phase::HaloUnpack);
    if faults.is_empty() {
        Ok(halo)
    } else {
        Err(Box::new(ExchangeFailure { faults, partial: halo }))
    }
}

/// Bytes one full exchange moves over the network for this rank.
pub fn exchange_bytes<T: HaloScalar>(ctx: &RankCtx<'_>, op: &WilsonClover<T>) -> f64 {
    let dims = *op.dims();
    let per_site = (12 * std::mem::size_of::<T>()) as f64;
    Dir::ALL
        .iter()
        .filter(|d| ctx.is_split(**d))
        .map(|&d| 2.0 * dims.face_area(d) as f64 * per_site)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run_spmd, CommWorld};
    use crate::scatter::{gather_field, scatter_clover, scatter_field, scatter_gauge};
    use qdd_dirac::clover::build_clover_field;
    use qdd_dirac::gamma::GammaBasis;
    use qdd_dirac::wilson::BoundaryPhases;
    use qdd_field::fields::GaugeField;
    use qdd_lattice::{Dims, RankGrid};
    use qdd_util::rng::Rng64;

    /// The decisive correctness test: the distributed operator application
    /// (local fields + exchanged halos) must reproduce the single-rank
    /// global operator bit-for-bit up to fp ordering.
    fn check_distributed_apply(rank_dims: Dims, phases: BoundaryPhases) {
        let global_dims = Dims::new(8, 8, 8, 8);
        let grid = RankGrid::new(global_dims, rank_dims);
        let mut rng = Rng64::new(11);
        let gauge = GaugeField::<f64>::random(global_dims, &mut rng, 0.7);
        let basis = GammaBasis::degrand_rossi();
        let clover = build_clover_field(&gauge, 1.6, &basis);
        let global_op = WilsonClover::new(gauge.clone(), clover.clone(), 0.2, phases);
        let inp = SpinorField::<f64>::random(global_dims, &mut rng);

        // Ground truth.
        let mut expect = SpinorField::zeros(global_dims);
        global_op.apply(&mut expect, &inp);

        // Distributed.
        let local_gauge = scatter_gauge(&gauge, &grid);
        let local_clover = scatter_clover(&clover, &grid);
        let local_in = scatter_field(&inp, &grid);
        let world = CommWorld::new(grid.clone());
        let local_out = run_spmd(&world, |ctx| {
            let r = ctx.rank();
            let op =
                WilsonClover::new(local_gauge[r].clone(), local_clover[r].clone(), 0.2, phases);
            let halo = exchange_halo(ctx, &op, &local_in[r]).unwrap();
            // Unsplit-direction faces must come back untouched (all zero):
            // nothing was packed or self-looped for them.
            for dir in Dir::ALL.into_iter().filter(|&d| !ctx.is_split(d)) {
                for forward in [false, true] {
                    assert!(halo.face(dir, forward).data.iter().all(|h| h
                        .0
                        .iter()
                        .all(|v| v.0.iter().all(|z| z.re == 0.0 && z.im == 0.0))));
                }
            }
            let mut out = SpinorField::zeros(*grid.local());
            op.apply_with_halo_split(&mut out, &local_in[r], &halo, ctx.split_dirs());
            out
        });
        let got = gather_field(&local_out, &grid);

        let mut diff = got.clone();
        diff.sub_assign(&expect);
        assert!(
            diff.norm() < 1e-12 * expect.norm(),
            "distributed apply mismatch: rel {}",
            diff.norm() / expect.norm()
        );
    }

    #[test]
    fn distributed_apply_matches_global_2ranks_t() {
        check_distributed_apply(Dims::new(1, 1, 1, 2), BoundaryPhases::antiperiodic_t());
    }

    #[test]
    fn distributed_apply_matches_global_4ranks_xy() {
        check_distributed_apply(Dims::new(2, 2, 1, 1), BoundaryPhases::antiperiodic_t());
    }

    #[test]
    fn distributed_apply_matches_global_16ranks_all_dirs() {
        check_distributed_apply(Dims::new(2, 2, 2, 2), BoundaryPhases::antiperiodic_t());
    }

    #[test]
    fn distributed_apply_matches_global_periodic() {
        check_distributed_apply(Dims::new(2, 1, 2, 1), BoundaryPhases::periodic());
    }

    #[test]
    fn traffic_matches_halo_spec() {
        let global_dims = Dims::new(8, 8, 8, 8);
        let grid = RankGrid::new(global_dims, Dims::new(2, 1, 1, 2));
        let mut rng = Rng64::new(12);
        let gauge = GaugeField::<f64>::random(global_dims, &mut rng, 0.5);
        let basis = GammaBasis::degrand_rossi();
        let clover = build_clover_field(&gauge, 1.0, &basis);
        let inp = SpinorField::<f64>::random(global_dims, &mut rng);
        let local_gauge = scatter_gauge(&gauge, &grid);
        let local_clover = scatter_clover(&clover, &grid);
        let local_in = scatter_field(&inp, &grid);
        let world = CommWorld::new(grid.clone());
        let stats = run_spmd(&world, |ctx| {
            let r = ctx.rank();
            let op = WilsonClover::new(
                local_gauge[r].clone(),
                local_clover[r].clone(),
                0.2,
                BoundaryPhases::periodic(),
            );
            let _ = exchange_halo(ctx, &op, &local_in[r]).unwrap();
            (
                ctx.counters.bytes_sent.get(),
                exchange_bytes(ctx, &op),
                ctx.counters.messages_sent.get(),
            )
        });
        for (sent, predicted, msgs) in stats {
            assert_eq!(sent, predicted, "byte accounting mismatch");
            // Two split directions x two orientations.
            assert_eq!(msgs, 4);
            // Local lattice 4x8x8x4: x-face 256 sites, t-face 256 sites;
            // 2 dirs x 2 faces x 256 x 96 bytes.
            assert_eq!(sent, (4 * 256 * 96) as f64);
        }
    }
}
