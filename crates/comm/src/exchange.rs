//! Rank-boundary halo exchange for the full operator.
//!
//! Each rank packs its spin-projected faces (Fig. 3 format) and sends one
//! message per direction and orientation; fermion boundary phases are
//! folded in at pack time by the rank sitting at the global edge.

use crate::runtime::{CommError, HaloScalar, RankCtx};
use qdd_dirac::boundary::{pack_for_backward_hop, pack_for_forward_hop};
use qdd_dirac::wilson::WilsonClover;
use qdd_field::fields::SpinorField;
use qdd_field::halo::{FaceBuffer, HaloData};
use qdd_lattice::Dir;
use qdd_trace::Phase;

/// Default delivery attempts per face before an exchange gives up on it:
/// the first try plus three retransmissions with modeled backoff. This is
/// the `max_attempts` of [`RetryPolicy::default`](crate::RetryPolicy);
/// exchanges consult the context's installed policy
/// ([`RankCtx::retry_policy`]) rather than this constant directly.
pub const MAX_ATTEMPTS: u32 = 4;

/// One face that could not be delivered within the retry budget.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultedFace {
    pub dir: Dir,
    pub forward: bool,
    pub error: CommError,
}

/// A halo exchange that lost at least one face. Carries *all* faulted
/// directions — not just the first — plus the partial halo with every
/// successfully delivered face in place and the faulted ones zeroed, so
/// the caller can choose its degradation policy explicitly instead of
/// silently inheriting a zero fill.
///
/// Invariant: holds at least one fault. A fault-free exchange is an
/// `Ok(HaloData)`, never an empty failure — the constructor enforces it.
pub struct ExchangeFailure<T: HaloScalar> {
    faults: Vec<FaultedFace>,
    partial: HaloData<T>,
}

impl<T: HaloScalar> ExchangeFailure<T> {
    /// Wrap the faulted faces of one exchange. Panics if `faults` is
    /// empty: an exchange with nothing wrong must not manufacture a
    /// failure (and [`first`](Self::first) relies on non-emptiness).
    pub fn new(faults: Vec<FaultedFace>, partial: HaloData<T>) -> Self {
        assert!(!faults.is_empty(), "ExchangeFailure requires at least one faulted face");
        ExchangeFailure { faults, partial }
    }

    /// The first fault, for callers that track a single representative
    /// error. Total: the constructor guarantees at least one fault.
    pub fn first(&self) -> CommError {
        self.faults[0].error
    }

    /// Every faulted face, in drain order. Never empty.
    pub fn faults(&self) -> &[FaultedFace] {
        &self.faults
    }

    /// The partial halo: delivered faces in place, faulted faces zeroed.
    pub fn partial(&self) -> &HaloData<T> {
        &self.partial
    }

    /// Consume the failure, keeping the partial halo for a degraded
    /// apply.
    pub fn into_partial(self) -> HaloData<T> {
        self.partial
    }
}

impl<T: HaloScalar> std::fmt::Debug for ExchangeFailure<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExchangeFailure").field("faults", &self.faults).finish_non_exhaustive()
    }
}

impl<T: HaloScalar> std::fmt::Display for ExchangeFailure<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "halo exchange lost {} face(s):", self.faults.len())?;
        for ff in &self.faults {
            let o = if ff.forward { "fwd" } else { "bwd" };
            write!(f, " [{} {}: {}]", ff.dir, o, ff.error)?;
        }
        Ok(())
    }
}

/// The in-flight half of a staged outer halo exchange: every send has
/// been posted (or skip markers sent, if this rank hiccuped), and the
/// listed receives are still outstanding. Produced by
/// [`begin_exchange`]; consumed by [`drain_exchange`]. Dropping it
/// without draining desynchronizes the per-neighbor channels — the type
/// is deliberately not `Clone` and carries no escape hatch.
#[must_use = "pending receives must be drained or the channels go out of step"]
pub struct PendingExchange {
    /// Receive slots still to drain, in the fixed bulk-exchange order
    /// (per split direction: forward neighbor, then backward neighbor).
    slots: Vec<(Dir, bool)>,
}

impl PendingExchange {
    /// Outstanding receives (diagnostics; drained by [`drain_exchange`]).
    pub fn outstanding(&self) -> usize {
        self.slots.len()
    }
}

/// Post all sends of one outer halo exchange and return the pending
/// receives. Unsplit directions stay entirely local: packing and
/// self-looping a face there is pure copy overhead — the caller's
/// split-aware apply wraps those hops through the local field instead.
///
/// Non-blocking in effect: all sends are posted before any receive
/// (channels are unbounded), matching the paper's non-blocking MPI
/// send/receive pairs issued by a dedicated core (Sec. III-E). The
/// split between `begin` and [`drain_exchange`] is what lets the caller
/// compute interior sites while the faces are in flight (Fig. 4).
///
/// Consumes one hiccup decision when a fault plan is attached: a
/// hiccuping rank sends explicit skip markers instead of faces (peers
/// see [`CommError::PeerSkipped`], not a timeout) but still drains its
/// own receives so the channel streams stay aligned.
pub fn begin_exchange<T: HaloScalar>(
    ctx: &RankCtx<'_>,
    op: &WilsonClover<T>,
    inp: &SpinorField<T>,
) -> PendingExchange {
    let trace = ctx.trace();
    trace.begin(Phase::HaloPack);
    let hiccup = ctx.take_hiccup();
    let mut slots = Vec::with_capacity(8);
    for dir in Dir::ALL.into_iter().filter(|&d| ctx.is_split(d)) {
        if hiccup {
            // Announce the skip on both channels so peers learn the
            // faces are deliberately absent without burning retries.
            ctx.send_skip(dir, false);
            ctx.send_skip(dir, true);
        } else {
            let sign_fwd = if ctx.at_global_backward_edge(dir) { op.phases().of(dir) } else { 1.0 };
            let sign_bwd = if ctx.at_global_forward_edge(dir) { op.phases().of(dir) } else { 1.0 };
            // Our backward face, projected for the forward hops of our
            // backward neighbor's sites.
            let fwd_payload = pack_for_forward_hop(op, inp, dir, sign_fwd);
            ctx.send_face(dir, false, fwd_payload.data);
            // Our forward face, link-applied, for the backward hops of
            // our forward neighbor's sites.
            let bwd_payload = pack_for_backward_hop(op, inp, dir, sign_bwd);
            ctx.send_face(dir, true, bwd_payload.data);
        }
        // face(dir, true): from our forward neighbor; face(dir, false):
        // from our backward neighbor.
        slots.push((dir, true));
        slots.push((dir, false));
    }
    trace.end(Phase::HaloPack);
    PendingExchange { slots }
}

/// Drain the receives of a staged exchange and assemble this rank's
/// halo. Faces of unsplit directions are left zeroed (they were never
/// sent).
///
/// Lost or corrupted faces are retried up to the context's installed
/// [`RetryPolicy`](crate::RetryPolicy) budget each. On exhaustion the
/// drain still collects every remaining receive (keeping the
/// per-neighbor channels aligned for later exchanges) and returns an
/// [`ExchangeFailure`] naming every faulted face alongside the partial
/// halo, so the caller decides — explicitly — how to degrade. A peer's
/// skip marker is reported as [`CommError::PeerSkipped`], distinct from
/// a retry-exhausted [`CommError::Timeout`].
pub fn drain_exchange<T: HaloScalar>(
    ctx: &RankCtx<'_>,
    dims: qdd_lattice::Dims,
    pending: PendingExchange,
) -> Result<HaloData<T>, Box<ExchangeFailure<T>>> {
    let trace = ctx.trace();
    trace.begin(Phase::HaloUnpack);
    let mut halo = HaloData::zeros(dims);
    let mut faults: Vec<FaultedFace> = Vec::new();
    let max_attempts = ctx.retry_policy().max_attempts;
    for (dir, forward) in pending.slots {
        match ctx.recv_face_retrying::<T>(dir, forward, max_attempts) {
            Ok(Some(data)) => *halo.face_mut(dir, forward) = FaceBuffer { data },
            // A hiccup marker in the full-operator exchange: the peer
            // deliberately skipped, no data will ever come for this face.
            Ok(None) => {
                faults.push(FaultedFace {
                    dir,
                    forward,
                    error: CommError::PeerSkipped { dir, forward },
                });
            }
            Err(error) => faults.push(FaultedFace { dir, forward, error }),
        }
    }
    trace.end(Phase::HaloUnpack);
    if faults.is_empty() {
        Ok(halo)
    } else {
        Err(Box::new(ExchangeFailure::new(faults, halo)))
    }
}

/// Exchange the *split-direction* faces of `inp` and assemble this
/// rank's halo: [`begin_exchange`] immediately followed by
/// [`drain_exchange`] — the bulk (non-overlapped) schedule. The staged
/// pair exists so callers can put interior compute between the two; the
/// sends, receives, and fault handling are identical either way, which
/// is what makes the overlapped schedule bitwise-equal to this one.
pub fn exchange_halo<T: HaloScalar>(
    ctx: &RankCtx<'_>,
    op: &WilsonClover<T>,
    inp: &SpinorField<T>,
) -> Result<HaloData<T>, Box<ExchangeFailure<T>>> {
    let pending = begin_exchange(ctx, op, inp);
    drain_exchange(ctx, *op.dims(), pending)
}

/// Wire bytes of one face site: a spin-projected [`HalfSpinor`]
/// (6 complex = 12 reals) at the exchange's scalar precision. The single
/// source of truth for sent-vs-received accounting — `exchange_bytes`
/// (predicted sends) and the degraded-receive ledger in
/// `DistSystem` both derive from it, so a future wire-format change
/// (e.g. f16 outer faces) cannot silently desync the two counters.
pub fn face_bytes_per_site<T: HaloScalar>() -> f64 {
    (qdd_field::spinor::HalfSpinor::<T>::REALS * std::mem::size_of::<T>()) as f64
}

/// Wire bytes of one whole face (`area` sites) at precision `T`.
pub fn face_bytes<T: HaloScalar>(area: usize) -> f64 {
    area as f64 * face_bytes_per_site::<T>()
}

/// Bytes one full exchange moves over the network for this rank.
pub fn exchange_bytes<T: HaloScalar>(ctx: &RankCtx<'_>, op: &WilsonClover<T>) -> f64 {
    let dims = *op.dims();
    Dir::ALL
        .iter()
        .filter(|d| ctx.is_split(**d))
        .map(|&d| 2.0 * face_bytes::<T>(dims.face_area(d)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run_spmd, CommWorld};
    use crate::scatter::{gather_field, scatter_clover, scatter_field, scatter_gauge};
    use qdd_dirac::clover::build_clover_field;
    use qdd_dirac::gamma::GammaBasis;
    use qdd_dirac::wilson::BoundaryPhases;
    use qdd_field::fields::GaugeField;
    use qdd_lattice::{Dims, RankGrid};
    use qdd_util::rng::Rng64;

    /// The decisive correctness test: the distributed operator application
    /// (local fields + exchanged halos) must reproduce the single-rank
    /// global operator bit-for-bit up to fp ordering.
    fn check_distributed_apply(rank_dims: Dims, phases: BoundaryPhases) {
        let global_dims = Dims::new(8, 8, 8, 8);
        let grid = RankGrid::new(global_dims, rank_dims);
        let mut rng = Rng64::new(11);
        let gauge = GaugeField::<f64>::random(global_dims, &mut rng, 0.7);
        let basis = GammaBasis::degrand_rossi();
        let clover = build_clover_field(&gauge, 1.6, &basis);
        let global_op = WilsonClover::new(gauge.clone(), clover.clone(), 0.2, phases);
        let inp = SpinorField::<f64>::random(global_dims, &mut rng);

        // Ground truth.
        let mut expect = SpinorField::zeros(global_dims);
        global_op.apply(&mut expect, &inp);

        // Distributed.
        let local_gauge = scatter_gauge(&gauge, &grid);
        let local_clover = scatter_clover(&clover, &grid);
        let local_in = scatter_field(&inp, &grid);
        let world = CommWorld::new(grid.clone());
        let local_out = run_spmd(&world, |ctx| {
            let r = ctx.rank();
            let op =
                WilsonClover::new(local_gauge[r].clone(), local_clover[r].clone(), 0.2, phases);
            let halo = exchange_halo(ctx, &op, &local_in[r]).unwrap();
            // Unsplit-direction faces must come back untouched (all zero):
            // nothing was packed or self-looped for them.
            for dir in Dir::ALL.into_iter().filter(|&d| !ctx.is_split(d)) {
                for forward in [false, true] {
                    assert!(halo.face(dir, forward).data.iter().all(|h| h
                        .0
                        .iter()
                        .all(|v| v.0.iter().all(|z| z.re == 0.0 && z.im == 0.0))));
                }
            }
            let mut out = SpinorField::zeros(*grid.local());
            op.apply_with_halo_split(&mut out, &local_in[r], &halo, ctx.split_dirs());
            out
        });
        let got = gather_field(&local_out, &grid);

        let mut diff = got.clone();
        diff.sub_assign(&expect);
        assert!(
            diff.norm() < 1e-12 * expect.norm(),
            "distributed apply mismatch: rel {}",
            diff.norm() / expect.norm()
        );
    }

    #[test]
    fn distributed_apply_matches_global_2ranks_t() {
        check_distributed_apply(Dims::new(1, 1, 1, 2), BoundaryPhases::antiperiodic_t());
    }

    #[test]
    fn distributed_apply_matches_global_4ranks_xy() {
        check_distributed_apply(Dims::new(2, 2, 1, 1), BoundaryPhases::antiperiodic_t());
    }

    #[test]
    fn distributed_apply_matches_global_16ranks_all_dirs() {
        check_distributed_apply(Dims::new(2, 2, 2, 2), BoundaryPhases::antiperiodic_t());
    }

    #[test]
    fn distributed_apply_matches_global_periodic() {
        check_distributed_apply(Dims::new(2, 1, 2, 1), BoundaryPhases::periodic());
    }

    #[test]
    fn traffic_matches_halo_spec() {
        let global_dims = Dims::new(8, 8, 8, 8);
        let grid = RankGrid::new(global_dims, Dims::new(2, 1, 1, 2));
        let mut rng = Rng64::new(12);
        let gauge = GaugeField::<f64>::random(global_dims, &mut rng, 0.5);
        let basis = GammaBasis::degrand_rossi();
        let clover = build_clover_field(&gauge, 1.0, &basis);
        let inp = SpinorField::<f64>::random(global_dims, &mut rng);
        let local_gauge = scatter_gauge(&gauge, &grid);
        let local_clover = scatter_clover(&clover, &grid);
        let local_in = scatter_field(&inp, &grid);
        let world = CommWorld::new(grid.clone());
        let stats = run_spmd(&world, |ctx| {
            let r = ctx.rank();
            let op = WilsonClover::new(
                local_gauge[r].clone(),
                local_clover[r].clone(),
                0.2,
                BoundaryPhases::periodic(),
            );
            let _ = exchange_halo(ctx, &op, &local_in[r]).unwrap();
            (
                ctx.counters.bytes_sent.get(),
                exchange_bytes(ctx, &op),
                ctx.counters.messages_sent.get(),
            )
        });
        for (sent, predicted, msgs) in stats {
            assert_eq!(sent, predicted, "byte accounting mismatch");
            // Two split directions x two orientations.
            assert_eq!(msgs, 4);
            // Local lattice 4x8x8x4: x-face 256 sites, t-face 256 sites;
            // 2 dirs x 2 faces x 256 x 96 bytes.
            assert_eq!(sent, (4 * 256 * 96) as f64);
        }
    }
}
