//! The complete distributed DD solver: FGMRES-DR over `DistSystem` with a
//! `DistSchwarz` preconditioner — the full multi-node pipeline of the
//! paper, per rank.

use crate::dist_schwarz::DistSchwarz;
use crate::dist_system::DistSystem;
use crate::runtime::{CommError, RankCtx};
use qdd_core::dd_solver::Precision;
use qdd_core::fgmres_dr::{fgmres_dr, Breakdown, FgmresConfig, SolveOutcome};
use qdd_core::schwarz::SchwarzConfig;
use qdd_core::system::SystemOps;
use qdd_dirac::wilson::WilsonClover;
use qdd_field::fields::{CloverFieldF16, GaugeFieldF16, SpinorField};
use qdd_trace::CommStats;
use qdd_util::stats::SolveStats;

/// Configuration of a distributed DD solve.
#[derive(Copy, Clone, Debug)]
pub struct DistDdConfig {
    pub fgmres: FgmresConfig,
    pub schwarz: SchwarzConfig,
    pub precision: Precision,
}

/// Run the paper's solver on this rank: double-precision FGMRES-DR outer,
/// single- (or half-compressed-) precision distributed Schwarz inner.
/// SPMD: every rank calls this with its local operator and local rhs.
///
/// The third return value is this rank's network traffic during the solve
/// (the delta of the context's [`CommCounters`](crate::runtime::CommCounters)),
/// so callers can attribute bytes per direction without bookkeeping of
/// their own.
pub fn dd_solve_distributed(
    ctx: &RankCtx<'_>,
    op: &WilsonClover<f64>,
    f: &SpinorField<f64>,
    cfg: &DistDdConfig,
    stats: &mut SolveStats,
) -> (SpinorField<f64>, SolveOutcome, CommStats) {
    let before = ctx.counters.snapshot();
    let op32 = match cfg.precision {
        Precision::Single => op.cast::<f32>(),
        Precision::HalfCompressed => {
            let g16 = GaugeFieldF16::compress(&op.gauge().cast()).decompress();
            let c16 = CloverFieldF16::compress(&op.clover().cast()).decompress();
            WilsonClover::new(g16, c16, op.mass() as f32, *op.phases())
        }
    };
    let pre =
        DistSchwarz::new(ctx, &op32, cfg.schwarz).expect("singular clover block in preconditioner");
    // One switch governs hiding on both paths: the inner Schwarz sweep
    // (above) and the outer matvec (here).
    let sys = DistSystem::new(ctx, op).with_overlap(cfg.schwarz.overlap);
    let mut precond = |r: &SpinorField<f64>, st: &mut SolveStats| -> SpinorField<f64> {
        let r32: SpinorField<f32> = r.cast();
        pre.apply(&r32, st).cast()
    };
    let (x, out) = fgmres_dr(&sys, f, &mut precond, &cfg.fgmres, stats);
    let comm = ctx.counters.snapshot().since(&before);
    (x, out, comm)
}

/// What a self-healing distributed solve did on top of the plain one.
#[derive(Clone, Debug)]
pub struct ResilientOutcome {
    /// Aggregated solver outcome: `converged` and `relative_residual` are
    /// with respect to the *original* right-hand side; `iterations` and
    /// `cycles` sum over all rounds; `breakdown` is the last unrecovered
    /// breakdown (`None` when the final round ended healthy).
    pub outcome: SolveOutcome,
    /// Restart rounds taken after the first solve (0 = nothing went wrong).
    pub restarts: u32,
    /// Every breakdown the restart ladder recovered from (or died on), in
    /// order of occurrence.
    pub breakdowns: Vec<Breakdown>,
    /// Rounds whose correction was discarded because it made the true
    /// residual worse or non-finite (rollback to the previous checkpoint).
    pub rollbacks: u32,
    /// True if *any* rank saw a communication fault during the solve
    /// (collectively agreed, so every rank reports the same value). The
    /// serve layer maps this to a degraded status even on convergence.
    pub comm_faulted: bool,
    /// This rank's first communication fault, if any (rank-local detail
    /// behind `comm_faulted`).
    pub local_comm_error: Option<CommError>,
    /// True when the solve was seeded from a caller-provided iterate
    /// (failover warm restart) instead of the zero vector.
    pub warm_started: bool,
    /// True when a provided warm-start iterate was *rejected* because its
    /// honest residual on this world was no better than starting cold.
    pub warm_rejected: bool,
}

/// A per-solve health verdict a shard supervisor can consume without
/// digging through solver internals: the collectively agreed fault flag
/// plus this rank's timeout/straggler evidence from the fault ledger.
///
/// `unhealthy()` is the breaker input: it fires on communication faults
/// and unrecovered breakdowns — the failure modes that implicate the
/// *world* (fabric or runtime) rather than the problem. A convergence
/// miss on a clean fabric stays a request-level concern (degrade, don't
/// trip the breaker).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HealthVerdict {
    /// Collectively agreed: some rank saw a communication fault.
    pub comm_faulted: bool,
    /// The final round died in an unrecovered numerical breakdown.
    pub breakdown: bool,
    /// The solve reached its tolerance (after restarts/rollbacks).
    pub converged: bool,
    /// Receives that exhausted their retry budget (timeout verdicts).
    pub timeouts: u64,
    /// Retransmission attempts (straggler evidence short of a timeout).
    pub retries: u64,
    /// Modeled straggler/backoff delay accumulated, microseconds.
    pub delay_us: f64,
    /// Schwarz exchange rounds skipped by a hiccuping peer.
    pub hiccups: u64,
    /// Skip markers received from hiccuping peers — deliberate absences,
    /// reported separately from retry-exhausted `timeouts`.
    pub peer_skips: u64,
    /// Faces zero-filled after an abandoned delivery.
    pub zero_fills: u64,
}

impl HealthVerdict {
    /// Summarize one resilient solve for the supervisor.
    pub fn from_solve(out: &ResilientOutcome, comm: &CommStats) -> Self {
        Self {
            comm_faulted: out.comm_faulted,
            breakdown: out.outcome.breakdown.is_some(),
            converged: out.outcome.converged,
            timeouts: comm.faults.timeouts,
            retries: comm.faults.retries,
            delay_us: comm.faults.delay_us,
            hiccups: comm.faults.hiccups,
            peer_skips: comm.faults.peer_skips,
            zero_fills: comm.faults.zero_fills,
        }
    }

    /// Should this solve count against the shard's circuit breaker?
    pub fn unhealthy(&self) -> bool {
        self.comm_faulted || self.breakdown
    }
}

/// Self-healing wrapper around [`dd_solve_distributed`]: runs the solve,
/// and when it ends in a detected breakdown (non-finite residual,
/// divergence) instead of convergence, restarts from the best surviving
/// iterate — solving the *residual correction* system `A e = f - A x` —
/// up to `max_restarts` times. A round whose correction made things worse
/// is rolled back (the checkpoint `x` is kept; the correction discarded).
///
/// SPMD-safe by construction: every accept/rollback/stop decision derives
/// from `SolveOutcome` fields and norms computed via deterministic
/// all-reduces, so all ranks take identical branches; the final
/// `comm_faulted` flag is agreed through one explicit collective.
pub fn dd_solve_resilient(
    ctx: &RankCtx<'_>,
    op: &WilsonClover<f64>,
    f: &SpinorField<f64>,
    cfg: &DistDdConfig,
    max_restarts: u32,
    stats: &mut SolveStats,
) -> (SpinorField<f64>, ResilientOutcome, CommStats) {
    dd_solve_resilient_warm(ctx, op, f, None, cfg, max_restarts, stats)
}

/// [`dd_solve_resilient`] seeded from a caller-provided iterate: the
/// failover path of a sharded service hands the best-so-far iterate of a
/// solve that died on a sick shard (the resilient wrapper's rollback
/// checkpoint) to a healthy shard, which continues from it by solving the
/// residual-correction system `A e = f - A x0` instead of starting cold.
///
/// The warm start is *audited*, not trusted: its honest residual is
/// recomputed on this world first, and an iterate that is no better than
/// the zero vector (e.g. poisoned by zero-filled halos on the sick shard)
/// is rejected (`warm_rejected`), falling back to a cold start. With
/// `x0 = None` this is exactly `dd_solve_resilient`, bit for bit.
pub fn dd_solve_resilient_warm(
    ctx: &RankCtx<'_>,
    op: &WilsonClover<f64>,
    f: &SpinorField<f64>,
    x0: Option<&SpinorField<f64>>,
    cfg: &DistDdConfig,
    max_restarts: u32,
    stats: &mut SolveStats,
) -> (SpinorField<f64>, ResilientOutcome, CommStats) {
    let before = ctx.counters.snapshot();
    let op32 = match cfg.precision {
        Precision::Single => op.cast::<f32>(),
        Precision::HalfCompressed => {
            let g16 = GaugeFieldF16::compress(&op.gauge().cast()).decompress();
            let c16 = CloverFieldF16::compress(&op.clover().cast()).decompress();
            WilsonClover::new(g16, c16, op.mass() as f32, *op.phases())
        }
    };
    let pre =
        DistSchwarz::new(ctx, &op32, cfg.schwarz).expect("singular clover block in preconditioner");
    // As in `dd_solve_distributed`: `cfg.schwarz.overlap` governs hiding
    // on the outer matvec too.
    let sys = DistSystem::new(ctx, op).with_overlap(cfg.schwarz.overlap);
    let mut precond = |r: &SpinorField<f64>, st: &mut SolveStats| -> SpinorField<f64> {
        let r32: SpinorField<f32> = r.cast();
        pre.apply(&r32, st).cast()
    };

    let f_norm = sys.norm_sqr(f, stats).sqrt();
    let mut res = ResilientOutcome {
        outcome: SolveOutcome {
            converged: f_norm == 0.0,
            iterations: 0,
            cycles: 0,
            relative_residual: if f_norm == 0.0 { 0.0 } else { 1.0 },
            history: Vec::new(),
            breakdown: None,
        },
        restarts: 0,
        breakdowns: Vec::new(),
        rollbacks: 0,
        comm_faulted: false,
        local_comm_error: None,
        warm_started: false,
        warm_rejected: false,
    };
    // Checkpoint: the accepted solution so far, with its true relative
    // residual (vs. `f`). Rollback = refusing a round's correction.
    let mut x = SpinorField::<f64>::zeros(*f.dims());
    let mut best_rel = res.outcome.relative_residual;
    // Audit a warm-start iterate against the cold start: accept it as the
    // initial checkpoint only if its honest residual on *this* world
    // improves on the zero vector's (rel = 1).
    let mut x_is_zero = true;
    if let Some(x0) = x0 {
        if f_norm > 0.0 {
            let mut ax = SpinorField::zeros(*f.dims());
            sys.apply(&mut ax, x0, stats);
            let mut g0 = f.clone();
            g0.sub_assign(&ax);
            let rel = sys.norm_sqr(&g0, stats).sqrt() / f_norm;
            if rel.is_finite() && rel < best_rel {
                x = x0.clone();
                best_rel = rel;
                x_is_zero = false;
                res.warm_started = true;
            } else {
                res.warm_rejected = true;
            }
        }
    }

    let mut round = 0u32;
    while best_rel > cfg.fgmres.tolerance && round <= max_restarts {
        // Residual correction system: g = f - A x (first round from a
        // cold start: g = f, no operator application needed).
        let g = if round == 0 && x_is_zero {
            f.clone()
        } else {
            let mut ax = SpinorField::zeros(*f.dims());
            sys.apply(&mut ax, &x, stats);
            let mut g = f.clone();
            g.sub_assign(&ax);
            g
        };
        let g_norm = sys.norm_sqr(&g, stats).sqrt();
        if !g_norm.is_finite() || g_norm <= 0.0 {
            break;
        }
        // The inner tolerance is relative to ||g||; convert the outer
        // target (relative to ||f||) into this round's frame.
        let mut round_cfg = cfg.fgmres;
        round_cfg.tolerance = (cfg.fgmres.tolerance * f_norm / g_norm).min(0.99);
        let (e, out) = fgmres_dr(&sys, &g, &mut precond, &round_cfg, stats);
        res.outcome.iterations += out.iterations;
        res.outcome.cycles += out.cycles;
        res.outcome.history.extend(out.history.iter().copied());
        if let Some(b) = out.breakdown {
            res.breakdowns.push(b);
        }
        // out.relative_residual is the honest, recomputed residual of the
        // correction solve (vs. ||g||); rebase to the original system.
        let cand_rel = out.relative_residual * g_norm / f_norm;
        if cand_rel.is_finite() && cand_rel < best_rel {
            // Accept: the round made progress (even a broken-down round
            // leaves its iterate at the last healthy cycle boundary, so
            // partial progress survives the breakdown).
            x.axpy(qdd_util::complex::Complex::real(1.0), &e);
            best_rel = cand_rel;
        } else {
            // Rollback: keep the checkpoint, discard the correction.
            res.rollbacks += 1;
        }
        res.outcome.breakdown = out.breakdown;
        if out.breakdown.is_none() && !out.converged && cand_rel > cfg.fgmres.tolerance {
            // The solver ran out of iterations without misbehaving:
            // restarting would just repeat the same stall. Stop honestly.
            break;
        }
        round += 1;
    }
    res.restarts = round.saturating_sub(1);
    res.outcome.relative_residual = best_rel;
    res.outcome.converged = best_rel <= cfg.fgmres.tolerance;
    if res.outcome.converged {
        res.outcome.breakdown = None;
    }

    // Collective agreement on "did anything fault anywhere": every rank
    // must report the same flag (SPMD discipline), while the local error
    // detail stays rank-local.
    res.local_comm_error = sys.comm_error().or_else(|| pre.comm_error());
    let any = ctx.all_sum(&[res.local_comm_error.is_some() as u64 as f64]);
    res.comm_faulted = any[0] > 0.0;

    let comm = ctx.counters.snapshot().since(&before);
    (x, res, comm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run_spmd, CommWorld};
    use crate::scatter::{gather_field, scatter_clover, scatter_field, scatter_gauge};
    use qdd_core::dd_solver::{DdSolver, DdSolverConfig};
    use qdd_core::mr::MrConfig;
    use qdd_dirac::clover::build_clover_field;
    use qdd_dirac::gamma::GammaBasis;
    use qdd_dirac::wilson::BoundaryPhases;
    use qdd_field::fields::GaugeField;
    use qdd_lattice::{Dims, RankGrid};
    use qdd_util::rng::Rng64;
    use qdd_util::stats::Component;

    #[test]
    fn distributed_dd_solve_matches_single_rank() {
        let global_dims = Dims::new(8, 8, 8, 8);
        let grid = RankGrid::new(global_dims, Dims::new(2, 1, 1, 2));
        let mut rng = Rng64::new(41);
        let gauge = GaugeField::<f64>::random(global_dims, &mut rng, 0.5);
        let basis = GammaBasis::degrand_rossi();
        let clover = build_clover_field(&gauge, 1.5, &basis);
        let phases = BoundaryPhases::antiperiodic_t();
        let f = SpinorField::<f64>::random(global_dims, &mut rng);

        let fgmres =
            FgmresConfig { max_basis: 8, deflate: 4, tolerance: 1e-10, max_iterations: 300 };
        let schwarz = SchwarzConfig {
            block: Dims::new(4, 4, 4, 4),
            i_schwarz: 4,
            mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
            additive: false,
            overlap: true,
            ..Default::default()
        };

        // Single-rank reference.
        let solver = DdSolver::new(
            WilsonClover::new(gauge.clone(), clover.clone(), 0.2, phases),
            // Scalar outer path: this test compares iteration counts
            // against the distributed solver, which applies the operator
            // with the scalar site loop and plain left-to-right sums.
            DdSolverConfig {
                fgmres,
                schwarz,
                precision: Precision::Single,
                workers: 1,
                fused_outer: false,
                ..Default::default()
            },
        )
        .unwrap();
        let mut st = SolveStats::new();
        let (x_ref, out_ref) = solver.solve(&f, &mut st);
        assert!(out_ref.converged);

        // Distributed.
        let local_gauge = scatter_gauge(&gauge, &grid);
        let local_clover = scatter_clover(&clover, &grid);
        let f_local = scatter_field(&f, &grid);
        let world = CommWorld::new(grid.clone());
        let cfg = DistDdConfig { fgmres, schwarz, precision: Precision::Single };
        let results = run_spmd(&world, |ctx| {
            let r = ctx.rank();
            let op =
                WilsonClover::new(local_gauge[r].clone(), local_clover[r].clone(), 0.2, phases);
            let mut stats = SolveStats::new();
            let (x, out, comm) = dd_solve_distributed(ctx, &op, &f_local[r], &cfg, &mut stats);
            (x, out, stats, comm)
        });

        for (_, out, _, _) in &results {
            assert!(out.converged, "rank failed: residual {}", out.relative_residual);
            assert_eq!(out.iterations, results[0].1.iterations);
        }
        let locals: Vec<SpinorField<f64>> = results.iter().map(|r| r.0.clone()).collect();
        let x = gather_field(&locals, &grid);
        let mut diff = x.clone();
        diff.sub_assign(&x_ref);
        assert!(
            diff.norm() < 1e-7 * x_ref.norm(),
            "distributed DD solution deviates: rel {}",
            diff.norm() / x_ref.norm()
        );
        // Outer iteration counts agree with the serial solve (collectives
        // are deterministic; only reduction association differs).
        let di = results[0].1.iterations as i64;
        let si = out_ref.iterations as i64;
        assert!((di - si).abs() <= 1, "iterations {di} vs {si}");

        // Traffic sanity: the preconditioner communicates, and per outer
        // iteration it moves ~ISchwarz full halos versus 1 for A.
        let stats = &results[0].2;
        assert!(stats.comm_bytes(Component::PreconditionerM) > 0.0);
        assert!(stats.comm_bytes(Component::OperatorA) > 0.0);
        // The returned counter delta agrees with the ledger, and the split
        // directions carry symmetric traffic.
        let comm = &results[0].3;
        let ledger =
            stats.comm_bytes(Component::PreconditionerM) + stats.comm_bytes(Component::OperatorA);
        assert!((comm.bytes_sent - ledger).abs() < 1e-6, "{} vs {ledger}", comm.bytes_sent);
        assert_eq!(comm.bytes_by_dir[0][0], comm.bytes_by_dir[0][1]);
        assert_eq!(comm.bytes_by_dir[1], [0.0, 0.0], "y is unsplit");
        assert!(comm.reductions > 0);
    }

    #[test]
    fn f16_face_solve_converges_to_the_same_tolerance() {
        // Switching the preconditioner's halo envelopes to f16 perturbs
        // only the preconditioner (the flexible outer solver tolerates
        // that): the solve must still converge to the same residual
        // tolerance, while the preconditioner's traffic ledger halves
        // exactly.
        let global_dims = Dims::new(8, 8, 4, 8);
        let grid = RankGrid::new(global_dims, Dims::new(2, 1, 1, 1));
        let mut rng = Rng64::new(43);
        let gauge = GaugeField::<f64>::random(global_dims, &mut rng, 0.5);
        let basis = GammaBasis::degrand_rossi();
        let clover = build_clover_field(&gauge, 1.4, &basis);
        let phases = BoundaryPhases::antiperiodic_t();
        let f = SpinorField::<f64>::random(global_dims, &mut rng);
        let local_gauge = scatter_gauge(&gauge, &grid);
        let local_clover = scatter_clover(&clover, &grid);
        let f_local = scatter_field(&f, &grid);

        let fgmres =
            FgmresConfig { max_basis: 8, deflate: 4, tolerance: 1e-9, max_iterations: 300 };
        let run = |f16_faces: bool| {
            let schwarz = SchwarzConfig {
                block: Dims::new(4, 4, 4, 4),
                i_schwarz: 4,
                mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
                additive: false,
                overlap: true,
                f16_faces,
            };
            let cfg = DistDdConfig { fgmres, schwarz, precision: Precision::Single };
            let world = CommWorld::new(grid.clone());
            run_spmd(&world, |ctx| {
                let r = ctx.rank();
                let op =
                    WilsonClover::new(local_gauge[r].clone(), local_clover[r].clone(), 0.2, phases);
                let mut stats = SolveStats::new();
                let (x, out, _) = dd_solve_distributed(ctx, &op, &f_local[r], &cfg, &mut stats);
                (x, out, stats.comm_bytes(Component::PreconditionerM))
            })
        };
        let wide = run(false);
        let packed = run(true);
        for ((_, out_w, _), (_, out_p, _)) in wide.iter().zip(&packed) {
            assert!(out_w.converged);
            assert!(
                out_p.converged,
                "f16-face solve failed to reach the tolerance: residual {}",
                out_p.relative_residual
            );
            assert!(out_p.relative_residual <= fgmres.tolerance);
        }
        // Bytes per preconditioner application halve; iteration counts may
        // differ slightly, so compare per-application traffic.
        let per_apply_w = wide[0].2 / wide[0].1.iterations as f64;
        let per_apply_p = packed[0].2 / packed[0].1.iterations as f64;
        assert_eq!(per_apply_p, per_apply_w / 2.0, "f16 faces must halve preconditioner bytes");
        // Both runs solve the same f64 outer system to the same tolerance;
        // the solutions agree to that tolerance (not bitwise — the
        // preconditioner differs).
        let x_w = gather_field(&wide.iter().map(|r| r.0.clone()).collect::<Vec<_>>(), &grid);
        let x_p = gather_field(&packed.iter().map(|r| r.0.clone()).collect::<Vec<_>>(), &grid);
        let mut diff = x_w.clone();
        diff.sub_assign(&x_p);
        assert!(diff.norm() < 1e-6 * x_w.norm());
    }

    #[test]
    fn dd_vs_bicgstab_communication_ratio() {
        // The core claim (Table III last column): per solve, DD moves far
        // fewer bytes than BiCGstab. Measure both on the same distributed
        // problem.
        let global_dims = Dims::new(8, 8, 4, 8);
        let grid = RankGrid::new(global_dims, Dims::new(2, 1, 1, 1));
        let mut rng = Rng64::new(42);
        let gauge = GaugeField::<f64>::random(global_dims, &mut rng, 0.4);
        let basis = GammaBasis::degrand_rossi();
        let clover = build_clover_field(&gauge, 1.4, &basis);
        let phases = BoundaryPhases::antiperiodic_t();
        let f = SpinorField::<f64>::random(global_dims, &mut rng);
        let local_gauge = scatter_gauge(&gauge, &grid);
        let local_clover = scatter_clover(&clover, &grid);
        let f_local = scatter_field(&f, &grid);

        // Near-critical quark mass on a smooth field: the regime where the
        // paper's comparison lives (light pion, many BiCGstab iterations).
        let fgmres =
            FgmresConfig { max_basis: 12, deflate: 6, tolerance: 1e-9, max_iterations: 400 };
        let schwarz = SchwarzConfig {
            block: Dims::new(4, 4, 4, 4),
            i_schwarz: 8,
            mr: MrConfig { iterations: 5, tolerance: 0.0, f16_vectors: false },
            additive: false,
            overlap: true,
            ..Default::default()
        };
        let cfg = DistDdConfig { fgmres, schwarz, precision: Precision::Single };

        let world = CommWorld::new(grid.clone());
        let dd = run_spmd(&world, |ctx| {
            let r = ctx.rank();
            let op =
                WilsonClover::new(local_gauge[r].clone(), local_clover[r].clone(), -0.15, phases);
            let mut stats = SolveStats::new();
            let (_, out, _) = dd_solve_distributed(ctx, &op, &f_local[r], &cfg, &mut stats);
            assert!(out.converged);
            (stats.total_comm_bytes(), stats.global_sums())
        });

        let world = CommWorld::new(grid.clone());
        let bi = run_spmd(&world, |ctx| {
            let r = ctx.rank();
            let op =
                WilsonClover::new(local_gauge[r].clone(), local_clover[r].clone(), -0.15, phases);
            let sys = crate::dist_system::DistSystem::new(ctx, &op);
            let mut stats = SolveStats::new();
            let (_, out) = qdd_core::bicgstab::bicgstab(
                &sys,
                &f_local[r],
                &qdd_core::bicgstab::BiCgStabConfig { tolerance: 1e-9, max_iterations: 20_000 },
                &mut stats,
            );
            assert!(out.converged);
            (stats.total_comm_bytes(), stats.global_sums())
        });

        let (dd_bytes, dd_sums) = dd[0];
        let (bi_bytes, bi_sums) = bi[0];
        assert!(
            dd_bytes < 0.5 * bi_bytes,
            "DD bytes {dd_bytes} not well below BiCGstab {bi_bytes}"
        );
        assert!(
            (dd_sums as f64) < 0.15 * bi_sums as f64,
            "DD sums {dd_sums} vs BiCGstab {bi_sums}"
        );
    }

    #[test]
    fn warm_restart_continues_from_checkpoint_and_audits_it() {
        // A healthy world finishing a solve another world started: the
        // warm-started solve must accept a good iterate (fewer iterations
        // than cold), reject a poisoned one, and agree with the cold
        // solution to the solver tolerance either way.
        let global_dims = Dims::new(8, 4, 4, 8);
        let grid = RankGrid::new(global_dims, Dims::new(1, 1, 1, 2));
        let mut rng = Rng64::new(77);
        let gauge = GaugeField::<f64>::random(global_dims, &mut rng, 0.5);
        let basis = GammaBasis::degrand_rossi();
        let clover = build_clover_field(&gauge, 1.5, &basis);
        let phases = BoundaryPhases::antiperiodic_t();
        let f = SpinorField::<f64>::random(global_dims, &mut rng);
        let local_gauge = scatter_gauge(&gauge, &grid);
        let local_clover = scatter_clover(&clover, &grid);
        let f_local = scatter_field(&f, &grid);
        let fgmres =
            FgmresConfig { max_basis: 8, deflate: 4, tolerance: 1e-9, max_iterations: 300 };
        let schwarz = SchwarzConfig {
            block: Dims::new(4, 4, 4, 4),
            i_schwarz: 4,
            mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
            additive: false,
            overlap: true,
            ..Default::default()
        };
        let cfg = DistDdConfig { fgmres, schwarz, precision: Precision::Single };

        let solve = |x0: Option<&Vec<SpinorField<f64>>>| {
            let world = CommWorld::new(grid.clone());
            run_spmd(&world, |ctx| {
                let r = ctx.rank();
                let op =
                    WilsonClover::new(local_gauge[r].clone(), local_clover[r].clone(), 0.2, phases);
                let mut stats = SolveStats::new();
                let (x, out, _) = dd_solve_resilient_warm(
                    ctx,
                    &op,
                    &f_local[r],
                    x0.map(|v| &v[r]),
                    &cfg,
                    2,
                    &mut stats,
                );
                (x, out)
            })
        };

        // Cold reference.
        let cold = solve(None);
        assert!(cold[0].1.outcome.converged);
        assert!(!cold[0].1.warm_started && !cold[0].1.warm_rejected);
        let x_cold = gather_field(&cold.iter().map(|r| r.0.clone()).collect::<Vec<_>>(), &grid);

        // Warm start from a deliberately imperfect copy of the solution
        // (solves the last digits only): must be accepted and converge in
        // strictly fewer iterations.
        let mut near = x_cold.clone();
        near.scale(qdd_util::complex::Complex::real(0.999));
        let near_local = scatter_field(&near, &grid);
        let warm = solve(Some(&near_local));
        for (_, out) in &warm {
            assert!(out.warm_started && !out.warm_rejected);
            assert!(out.outcome.converged);
            assert!(
                out.outcome.iterations < cold[0].1.outcome.iterations,
                "warm {} vs cold {}",
                out.outcome.iterations,
                cold[0].1.outcome.iterations
            );
        }
        let x_warm = gather_field(&warm.iter().map(|r| r.0.clone()).collect::<Vec<_>>(), &grid);
        let mut diff = x_warm.clone();
        diff.sub_assign(&x_cold);
        assert!(diff.norm() < 1e-6 * x_cold.norm());

        // A poisoned iterate (huge garbage) must be rejected, landing on
        // the cold path — bitwise equal to the cold solve.
        let mut garbage = x_cold.clone();
        garbage.scale(qdd_util::complex::Complex::real(1e12));
        let garbage_local = scatter_field(&garbage, &grid);
        let audited = solve(Some(&garbage_local));
        for ((x_a, out), (x_c, _)) in audited.iter().zip(&cold) {
            assert!(!out.warm_started && out.warm_rejected);
            assert!(out.outcome.converged);
            assert_eq!(
                x_a.as_slice(),
                x_c.as_slice(),
                "rejected warm start must reduce to the cold solve bitwise"
            );
        }
    }
}
