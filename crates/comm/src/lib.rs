//! Simulated multi-node runtime for the DD solver.
//!
//! The paper runs one MPI rank per KNC; here each rank is a thread with
//! its own local fields, exchanging *real* boundary data over channels and
//! reducing scalars through a deterministic collective. This reproduces
//! the paper's communication structure faithfully enough to (a) verify
//! that the distributed operator and preconditioner are bit-compatible
//! with their single-rank counterparts, and (b) account exactly how many
//! bytes and global sums each solver variant moves (Table III columns
//! "comm./KNC" and "#global-sums").
//!
//! Key fidelity choices, mirroring Sec. III-E:
//!
//! - Only spin-projected half-spinors cross boundaries (12 reals/site).
//! - All per-direction faces are combined into single messages per
//!   neighbor ("combines the surface data of all domains and communicates
//!   them using a single thread").
//! - The Schwarz preconditioner exchanges only the half of each face owned
//!   by the just-updated domain color, once per half-sweep, so a full
//!   Schwarz iteration moves exactly one face worth of data — the factor
//!   `Idomain` communication reduction of Sec. II-D.
//! - Self-neighbor "messages" (unsplit directions) move no network bytes.

pub mod dist_schwarz;
pub mod dist_solver;
pub mod dist_system;
pub mod exchange;
pub mod runtime;
pub mod scatter;

pub use dist_schwarz::DistSchwarz;
pub use dist_solver::{
    dd_solve_distributed, dd_solve_resilient, dd_solve_resilient_warm, DistDdConfig, HealthVerdict,
    ResilientOutcome,
};
pub use dist_system::DistSystem;
pub use exchange::{
    begin_exchange, drain_exchange, exchange_halo, face_bytes, face_bytes_per_site,
    ExchangeFailure, FaultedFace, PendingExchange, MAX_ATTEMPTS,
};
pub use runtime::{
    run_spmd, CommCounters, CommError, CommWorld, FaultCounters, RankCtx, RetryPolicy,
};
pub use scatter::{gather_field, scatter_clover, scatter_field, scatter_gauge};
