//! The distributed multiplicative Schwarz preconditioner.
//!
//! Per rank: sweep the *globally* two-colored domain grid; after each
//! half-sweep, exchange only the boundary data owned by the just-updated
//! color (half of each face). Over one full Schwarz iteration this moves
//! exactly one face worth of half-spinors — versus one exchange per
//! operator application for a non-DD solver, i.e. the communication
//! reduction by roughly `Idomain` block iterations that Sec. II-D argues
//! for.
//!
//! Domain colors must be *global*: with an odd number of domains per rank
//! the checkerboard phase alternates from rank to rank, and using local
//! colors would put adjacent domains in the same half-sweep.

use crate::runtime::{CommError, HaloScalar, RankCtx};
use qdd_core::mr::MrConfig;
use qdd_core::schwarz::{schwarz_block_update, SchwarzConfig};
use qdd_dirac::block::{DomainFields, SchurOperator};
use qdd_dirac::boundary::{pack_for_backward_hop, pack_for_forward_hop};
use qdd_dirac::wilson::WilsonClover;
use qdd_field::fields::SpinorField;
use qdd_field::halo::{face_index, HaloData};
use qdd_field::spinor::HalfSpinor;
use qdd_lattice::{Dir, DomainColor, DomainGrid, Parity, SiteIndexer};
use qdd_util::stats::{Component, SolveStats};
use std::cell::Cell;

/// One rank's Schwarz preconditioner.
pub struct DistSchwarz<'a, T: HaloScalar> {
    ctx: &'a RankCtx<'a>,
    op: &'a WilsonClover<T>,
    fields: DomainFields<T>,
    grid: DomainGrid,
    cfg: SchwarzConfig,
    /// Domain indices per *global* color.
    colors: [Vec<usize>; 2],
    /// `face_color[d][o][k]`: global color of the domain owning face site
    /// `k` of our face `o` (0 = backward, coord 0; 1 = forward, coord L-1)
    /// in direction `d`.
    face_color: [[Vec<DomainColor>; 2]; 4],
    /// First communication fault, if any: a malformed partial-face
    /// exchange leaves the previous (stale) halo entries in place and is
    /// recorded here instead of aborting the rank thread.
    fault: Cell<Option<CommError>>,
}

impl<'a, T: HaloScalar> DistSchwarz<'a, T> {
    pub fn new(ctx: &'a RankCtx<'a>, op: &'a WilsonClover<T>, cfg: SchwarzConfig) -> Option<Self> {
        let local = *op.dims();
        assert_eq!(&local, ctx.grid().local(), "operator must be rank-local");
        let grid = DomainGrid::new(local, cfg.block);
        assert!(!cfg.additive, "the distributed path implements the multiplicative method");

        // Global color parity offset of this rank.
        let rc = ctx.grid().rank_coord(ctx.rank());
        let mut offset = 0usize;
        for d in Dir::ALL {
            let doms_per_rank = local[d] / cfg.block[d];
            // Global domain-grid extent must be even in split directions so
            // the checkerboard closes around the torus.
            let global_doms = ctx.grid().grid()[d] * doms_per_rank;
            assert!(
                global_doms.is_multiple_of(2) || global_doms == 1,
                "global domain count in {d} is odd ({global_doms}): two-coloring impossible"
            );
            offset += rc[d] * doms_per_rank;
        }
        let flip = offset % 2 == 1;
        let global_color = |local_color: DomainColor| {
            if flip {
                local_color.flip()
            } else {
                local_color
            }
        };

        let mut colors = [Vec::new(), Vec::new()];
        for dom in grid.domains() {
            colors[global_color(dom.color) as usize].push(dom.index);
        }

        // Face-site colors.
        let idx = SiteIndexer::new(local);
        let mut face_color: [[Vec<DomainColor>; 2]; 4] =
            std::array::from_fn(|_| std::array::from_fn(|_| Vec::new()));
        for dir in Dir::ALL {
            for o in 0..2 {
                let fixed = if o == 1 { local[dir] - 1 } else { 0 };
                let mut v = vec![DomainColor::Black; local.face_area(dir)];
                for c in idx.iter().filter(|c| c[dir] == fixed) {
                    let (dom_idx, _) = grid.locate(&c);
                    v[face_index(&local, dir, &c)] = global_color(grid.domain(dom_idx).color);
                }
                face_color[dir.index()][o] = v;
            }
        }

        let fields = DomainFields::new(op)?;
        Some(Self { ctx, op, fields, grid, cfg, colors, face_color, fault: Cell::new(None) })
    }

    /// The first communication fault seen by this rank's preconditioner,
    /// if any. A solve whose preconditioner reports a fault must be
    /// treated as unreliable (the serve layer maps it to `Degraded`).
    pub fn comm_error(&self) -> Option<CommError> {
        self.fault.get()
    }

    #[inline]
    pub fn grid(&self) -> &DomainGrid {
        &self.grid
    }

    #[inline]
    pub fn config(&self) -> &SchwarzConfig {
        &self.cfg
    }

    /// Exchange the boundary data of the just-updated `color`: masked
    /// subsets of every face, merged into the halo.
    fn exchange_color(
        &self,
        u: &SpinorField<T>,
        halo: &mut HaloData<T>,
        color: DomainColor,
        stats: &mut SolveStats,
    ) {
        let local = *self.op.dims();
        let trace = self.ctx.trace();
        // A rank hiccup makes this rank sit out the exchange: it sends
        // skip markers instead of its updated boundary (peers keep their
        // stale halo entries for us) but still drains its own receives so
        // the channel streams stay aligned. Under flexible outer solves
        // a stale preconditioner boundary only costs iterations, never
        // correctness.
        let hiccup = self.ctx.take_hiccup();
        // Post sends.
        trace.begin(qdd_trace::Phase::HaloPack);
        for dir in Dir::ALL {
            if hiccup {
                self.ctx.send_skip(dir, false);
                self.ctx.send_skip(dir, true);
                continue;
            }
            let sign_fwd =
                if self.ctx.at_global_backward_edge(dir) { self.op.phases().of(dir) } else { 1.0 };
            let sign_bwd =
                if self.ctx.at_global_forward_edge(dir) { self.op.phases().of(dir) } else { 1.0 };
            // Backward face (o = 0), masked by the updated color.
            let full = pack_for_forward_hop(self.op, u, dir, sign_fwd);
            let masked: Vec<HalfSpinor<T>> = full
                .data
                .iter()
                .zip(&self.face_color[dir.index()][0])
                .filter(|(_, c)| **c == color)
                .map(|(h, _)| *h)
                .collect();
            self.ctx.send_face(dir, false, masked);
            // Forward face (o = 1).
            let full = pack_for_backward_hop(self.op, u, dir, sign_bwd);
            let masked: Vec<HalfSpinor<T>> = full
                .data
                .iter()
                .zip(&self.face_color[dir.index()][1])
                .filter(|(_, c)| **c == color)
                .map(|(h, _)| *h)
                .collect();
            self.ctx.send_face(dir, true, masked);
        }
        trace.end(qdd_trace::Phase::HaloPack);
        // Receive and merge.
        trace.begin(qdd_trace::Phase::HaloUnpack);
        for dir in Dir::ALL {
            // halo.face(dir, true) entries mirror the *forward* neighbor's
            // backward face; its site colors are the flip of our forward
            // face's colors at the same face positions.
            for (forward, own_face) in [(true, 1usize), (false, 0usize)] {
                let data = match self.ctx.recv_face_retrying::<T>(
                    dir,
                    forward,
                    crate::exchange::MAX_ATTEMPTS,
                ) {
                    Ok(Some(d)) => d,
                    // Peer hiccup: it skipped this exchange. Keep the
                    // stale halo entries; benign under a flexible outer
                    // solver, so no fault is recorded.
                    Ok(None) => continue,
                    Err(e) => {
                        // Retry budget exhausted: keep the stale halo
                        // entries for this face, record the fault, and
                        // keep draining the remaining faces so channels
                        // stay aligned.
                        if self.fault.get().is_none() {
                            self.fault.set(Some(e));
                        }
                        continue;
                    }
                };
                let mask = &self.face_color[dir.index()][own_face];
                let positions: Vec<usize> =
                    (0..local.face_area(dir)).filter(|&k| mask[k].flip() == color).collect();
                assert_eq!(
                    data.len(),
                    positions.len(),
                    "partial-face exchange misaligned ({dir}, fwd={forward})"
                );
                let buf = halo.face_mut(dir, forward);
                for (h, &k) in data.into_iter().zip(&positions) {
                    buf.data[k] = h;
                }
            }
        }
        trace.end(qdd_trace::Phase::HaloUnpack);
        // Account traffic to the preconditioner (a hiccuping rank sent
        // nothing).
        if !hiccup {
            let bytes: f64 = Dir::ALL
                .iter()
                .filter(|d| self.ctx.is_split(**d))
                .map(|&d| {
                    let n_fwd =
                        self.face_color[d.index()][0].iter().filter(|c| **c == color).count();
                    let n_bwd =
                        self.face_color[d.index()][1].iter().filter(|c| **c == color).count();
                    ((n_fwd + n_bwd) * HalfSpinor::<T>::REALS * std::mem::size_of::<T>()) as f64
                })
                .sum();
            stats.add_comm_bytes(Component::PreconditionerM, bytes);
        }
    }

    /// Apply the preconditioner: `u ~= A^-1 f` on this rank's sub-volume,
    /// collaborating with all other ranks.
    pub fn apply(&self, f: &SpinorField<T>, stats: &mut SolveStats) -> SpinorField<T> {
        let local = *self.op.dims();
        assert_eq!(*f.dims(), local);
        let mut u = SpinorField::<T>::zeros(local);
        let mut halo_u = HaloData::<T>::zeros(local);
        let mut flops = 0.0;

        for sweep in 0..self.cfg.i_schwarz {
            stats.span_begin(qdd_trace::Phase::SchwarzSweep);
            for color in DomainColor::ALL {
                stats.span_begin(qdd_trace::Phase::ColorSweep);
                for &dom_idx in &self.colors[color as usize] {
                    stats.span_begin(qdd_trace::Phase::DomainSolve);
                    let schur =
                        SchurOperator::new(self.op, &self.fields, self.grid.domain(dom_idx));
                    let au =
                        |g: usize| self.op.apply_site_with_halo_fetch(g, |i| *u.site(i), &halo_u);
                    let (z_e, z_o, fl) = schwarz_block_update(&schur, &self.cfg.mr, f, au);
                    schur.scatter_add_cb(&mut u, &z_e, Parity::Even);
                    schur.scatter_add_cb(&mut u, &z_o, Parity::Odd);
                    stats.span_end(qdd_trace::Phase::DomainSolve);
                    flops += fl;
                }
                // Boundary data of the updated color feeds the next
                // half-sweep; the very last exchange is not needed.
                let last = sweep + 1 == self.cfg.i_schwarz && color == DomainColor::White;
                if !last {
                    self.exchange_color(&u, &mut halo_u, color, stats);
                }
                stats.span_end(qdd_trace::Phase::ColorSweep);
            }
            stats.span_end(qdd_trace::Phase::SchwarzSweep);
        }
        stats.add_flops(Component::PreconditionerM, flops);
        u
    }

    /// MR configuration in use.
    pub fn mr_config(&self) -> &MrConfig {
        &self.cfg.mr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run_spmd, CommWorld};
    use crate::scatter::{gather_field, scatter_clover, scatter_field, scatter_gauge};
    use qdd_core::schwarz::SchwarzPreconditioner;
    use qdd_dirac::clover::build_clover_field;
    use qdd_dirac::gamma::GammaBasis;
    use qdd_dirac::wilson::BoundaryPhases;
    use qdd_field::fields::GaugeField;
    use qdd_lattice::{Dims, RankGrid};
    use qdd_util::rng::Rng64;

    fn schwarz_cfg(block: Dims, sweeps: usize) -> SchwarzConfig {
        SchwarzConfig {
            block,
            i_schwarz: sweeps,
            mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
            additive: false,
        }
    }

    /// Distributed Schwarz must reproduce the single-rank preconditioner
    /// bitwise (all block arithmetic is identical; only data movement
    /// differs).
    fn check_dist_schwarz(rank_dims: Dims, block: Dims, sweeps: usize) {
        let global_dims = Dims::new(8, 8, 8, 8);
        let grid = RankGrid::new(global_dims, rank_dims);
        let mut rng = Rng64::new(31);
        let gauge = GaugeField::<f64>::random(global_dims, &mut rng, 0.6);
        let basis = GammaBasis::degrand_rossi();
        let clover = build_clover_field(&gauge, 1.5, &basis);
        let phases = BoundaryPhases::antiperiodic_t();
        let f = SpinorField::<f64>::random(global_dims, &mut rng);

        // Serial reference.
        let pre = SchwarzPreconditioner::new(
            WilsonClover::new(gauge.clone(), clover.clone(), 0.2, phases),
            schwarz_cfg(block, sweeps),
        )
        .unwrap();
        let mut st = SolveStats::new();
        let expect = pre.apply(&f, &mut st);

        // Distributed.
        let local_gauge = scatter_gauge(&gauge, &grid);
        let local_clover = scatter_clover(&clover, &grid);
        let f_local = scatter_field(&f, &grid);
        let world = CommWorld::new(grid.clone());
        let results = run_spmd(&world, |ctx| {
            let r = ctx.rank();
            let op =
                WilsonClover::new(local_gauge[r].clone(), local_clover[r].clone(), 0.2, phases);
            let pre = DistSchwarz::new(ctx, &op, schwarz_cfg(block, sweeps)).unwrap();
            let mut stats = SolveStats::new();
            let u = pre.apply(&f_local[r], &mut stats);
            (u, stats.comm_bytes(Component::PreconditionerM))
        });
        let locals: Vec<SpinorField<f64>> = results.iter().map(|r| r.0.clone()).collect();
        let got = gather_field(&locals, &grid);
        assert_eq!(
            got.as_slice(),
            expect.as_slice(),
            "distributed Schwarz diverged from serial (ranks {rank_dims})"
        );
        results
            .iter()
            .for_each(|(_, bytes)| assert!(*bytes > 0.0, "no preconditioner traffic counted"));
    }

    #[test]
    fn matches_serial_2ranks_even_domains() {
        // 2 ranks in t; 8x8x8x4 local; 4^4 blocks: 2 domains per dir.
        check_dist_schwarz(Dims::new(1, 1, 1, 2), Dims::new(4, 4, 4, 4), 2);
    }

    #[test]
    fn matches_serial_4ranks_xy() {
        check_dist_schwarz(Dims::new(2, 2, 1, 1), Dims::new(4, 4, 4, 4), 3);
    }

    #[test]
    fn matches_serial_odd_domains_per_rank() {
        // 2 ranks in x, 4x8x8x8 local with 4^4 blocks: ONE domain per rank
        // in x — the global-coloring correction is exercised here.
        check_dist_schwarz(Dims::new(2, 1, 1, 1), Dims::new(4, 4, 4, 4), 2);
    }

    #[test]
    fn matches_serial_16ranks() {
        check_dist_schwarz(Dims::new(2, 2, 2, 2), Dims::new(4, 4, 4, 4), 2);
    }

    #[test]
    fn schwarz_traffic_less_than_operator_equivalent() {
        // One Schwarz iteration moves one face worth of data; Idomain MR
        // iterations inside would have cost Idomain exchanges in a non-DD
        // scheme. Check the per-iteration traffic equals one full halo.
        let global_dims = Dims::new(8, 8, 8, 8);
        let grid = RankGrid::new(global_dims, Dims::new(2, 1, 1, 1));
        let mut rng = Rng64::new(32);
        let gauge = GaugeField::<f64>::random(global_dims, &mut rng, 0.5);
        let basis = GammaBasis::degrand_rossi();
        let clover = build_clover_field(&gauge, 1.2, &basis);
        let phases = BoundaryPhases::periodic();
        let f = SpinorField::<f64>::random(global_dims, &mut rng);
        let local_gauge = scatter_gauge(&gauge, &grid);
        let local_clover = scatter_clover(&clover, &grid);
        let f_local = scatter_field(&f, &grid);
        let world = CommWorld::new(grid.clone());
        let sweeps = 4;
        let results = run_spmd(&world, |ctx| {
            let r = ctx.rank();
            let op =
                WilsonClover::new(local_gauge[r].clone(), local_clover[r].clone(), 0.2, phases);
            let pre =
                DistSchwarz::new(ctx, &op, schwarz_cfg(Dims::new(4, 4, 4, 4), sweeps)).unwrap();
            let mut stats = SolveStats::new();
            let _ = pre.apply(&f_local[r], &mut stats);
            stats.comm_bytes(Component::PreconditionerM)
        });
        // Full halo of the split (x) direction: 2 faces x 8*8*8 sites x
        // 96 bytes; per full iteration one such exchange; the final
        // half-exchange is skipped.
        let full_halo = 2.0 * 512.0 * 96.0;
        let expect = full_halo * sweeps as f64 - full_halo / 2.0;
        for bytes in results {
            assert!((bytes - expect).abs() < 1e-9, "bytes {bytes} vs expected {expect}");
        }
    }
}
