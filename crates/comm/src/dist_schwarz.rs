//! The distributed multiplicative Schwarz preconditioner.
//!
//! Per rank: sweep the *globally* two-colored domain grid; after each
//! half-sweep, exchange only the boundary data owned by the just-updated
//! color (half of each face). Over one full Schwarz iteration this moves
//! exactly one face worth of half-spinors — versus one exchange per
//! operator application for a non-DD solver, i.e. the communication
//! reduction by roughly `Idomain` block iterations that Sec. II-D argues
//! for.
//!
//! Communication hiding (Fig. 4b/4c): each half-sweep is executed as a
//! staged schedule — t-boundary domains first, then the remaining x/y/z
//! boundary domains, then the interior in two halves. As each stage
//! finishes, the faces its domains own are packed (color-masked, straight
//! from the shared iterate) and sent while the next stage computes: the t
//! full-face first, the x/y/z faces in two halves. Receives are drained
//! lazily — right before the *dependent* half-sweep — instead of as a bulk
//! barrier after the sends. The schedule changes only when data moves,
//! never any arithmetic: results stay bitwise identical to the serial
//! preconditioner for every worker count and overlap setting.
//!
//! Domain colors must be *global*: with an odd number of domains per rank
//! the checkerboard phase alternates from rank to rank, and using local
//! colors would put adjacent domains in the same half-sweep.

use crate::runtime::{CommError, FacePart, HaloScalar, RankCtx};
use qdd_core::mr::MrConfig;
use qdd_core::pool::{
    blocked_ranges, resolve_workers, LeaderOnly, SharedCells, SharedSpinors, SpinBarrier,
    WorkerPool,
};
use qdd_core::schwarz::{
    plan_color_schedule, schwarz_block_update, ColorSchedule, FaceHalf, SchwarzConfig, SendSlot,
};
use qdd_dirac::block::{DomainFields, SchurOperator};
use qdd_dirac::boundary::{pack_sites_for_backward_hop_with, pack_sites_for_forward_hop_with};
use qdd_dirac::wilson::WilsonClover;
use qdd_field::fields::SpinorField;
use qdd_field::halo::{face_index, HaloData};
use qdd_field::spinor::{HalfSpinor, HalfSpinorF16, Spinor};
use qdd_lattice::{Dir, DomainColor, DomainGrid, Parity, SiteIndexer};
use qdd_util::stats::{Component, SolveStats};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// The wire header a [`FaceHalf`] travels under: halves declare themselves
/// part 0 or 1 of 2, full faces part 0 of 1. Receivers assert the header
/// against the part they expect, so a schedule bug surfaces as a panic at
/// the receive, never as silently misplaced boundary data.
fn part_of(half: FaceHalf) -> FacePart {
    match half {
        FaceHalf::Full => FacePart::FULL,
        FaceHalf::First => FacePart { index: 0, of: 2 },
        FaceHalf::Second => FacePart { index: 1, of: 2 },
    }
}

/// One deferred receive: a face part some peer sent eagerly during its own
/// compute, drained right before the half-sweep that reads it.
struct RecvSlot {
    dir: Dir,
    forward: bool,
    half: FaceHalf,
    /// The color whose boundary the peer sent (ours to merge at the
    /// positions where *our* face color is `color.flip()`).
    color: DomainColor,
}

/// One rank's Schwarz preconditioner.
pub struct DistSchwarz<'a, T: HaloScalar> {
    ctx: &'a RankCtx<'a>,
    op: &'a WilsonClover<T>,
    fields: DomainFields<T>,
    grid: DomainGrid,
    cfg: SchwarzConfig,
    /// `face_sites[d][o][c]`: local site indices on our face `o`
    /// (0 = backward, coord 0; 1 = forward, coord L-1) of direction `d`
    /// owned by global-color-`c` domains, in ascending face-position
    /// order. Senders pack exactly these sites — no full-face staging
    /// buffer, no post-pack filtering.
    face_sites: [[[Vec<usize>; 2]; 2]; 4],
    /// `face_positions[d][o][c]`: the matching face-buffer positions, same
    /// order. Receivers merge an incoming color-`c'` part at
    /// `face_positions[d][o][c'.flip()]` — the checkerboard flips across
    /// the rank boundary, so both sides derive identical lists.
    face_positions: [[[Vec<usize>; 2]; 2]; 4],
    /// The Fig. 4 stage schedule per color (degenerates to one stage with
    /// a trailing bulk exchange when `cfg.overlap` is off or nothing is
    /// split).
    schedules: [ColorSchedule; 2],
    /// Worker team for the staged half-sweeps (size from `QDD_WORKERS`,
    /// default 1).
    pool: WorkerPool,
    /// First communication fault, if any: a malformed partial-face
    /// exchange leaves the previous (stale) halo entries in place and is
    /// recorded here instead of aborting the rank thread.
    fault: Cell<Option<CommError>>,
}

impl<'a, T: HaloScalar> DistSchwarz<'a, T> {
    pub fn new(ctx: &'a RankCtx<'a>, op: &'a WilsonClover<T>, cfg: SchwarzConfig) -> Option<Self> {
        let local = *op.dims();
        assert_eq!(&local, ctx.grid().local(), "operator must be rank-local");
        let grid = DomainGrid::new(local, cfg.block);
        assert!(!cfg.additive, "the distributed path implements the multiplicative method");

        // Global color parity offset of this rank.
        let rc = ctx.grid().rank_coord(ctx.rank());
        let mut offset = 0usize;
        for d in Dir::ALL {
            let doms_per_rank = local[d] / cfg.block[d];
            // Global domain-grid extent must be even in split directions so
            // the checkerboard closes around the torus.
            let global_doms = ctx.grid().grid()[d] * doms_per_rank;
            assert!(
                global_doms.is_multiple_of(2) || global_doms == 1,
                "global domain count in {d} is odd ({global_doms}): two-coloring impossible"
            );
            offset += rc[d] * doms_per_rank;
        }
        let flip = offset % 2 == 1;
        let global_color = |local_color: DomainColor| {
            if flip {
                local_color.flip()
            } else {
                local_color
            }
        };

        let mut colors = [Vec::new(), Vec::new()];
        for dom in grid.domains() {
            colors[global_color(dom.color) as usize].push(dom.index);
        }

        // Color-masked face lists: for every face, the sites (for packing)
        // and face positions (for merging) of each color, ascending in
        // face position so sender and receiver agree on the half split.
        let idx = SiteIndexer::new(local);
        let mut face_sites: [[[Vec<usize>; 2]; 2]; 4] =
            std::array::from_fn(|_| std::array::from_fn(|_| std::array::from_fn(|_| Vec::new())));
        let mut face_positions = face_sites.clone();
        for dir in Dir::ALL {
            for o in 0..2 {
                let fixed = if o == 1 { local[dir] - 1 } else { 0 };
                let mut entries: Vec<(usize, usize, DomainColor)> = idx
                    .iter()
                    .filter(|c| c[dir] == fixed)
                    .map(|c| {
                        let (dom_idx, _) = grid.locate(&c);
                        (
                            face_index(&local, dir, &c),
                            idx.index(&c),
                            global_color(grid.domain(dom_idx).color),
                        )
                    })
                    .collect();
                entries.sort_unstable_by_key(|e| e.0);
                for (k, s, col) in entries {
                    face_positions[dir.index()][o][col as usize].push(k);
                    face_sites[dir.index()][o][col as usize].push(s);
                }
            }
        }

        let split = ctx.split_dirs();
        let schedules = [
            plan_color_schedule(&grid, split, &colors[0], cfg.overlap),
            plan_color_schedule(&grid, split, &colors[1], cfg.overlap),
        ];

        let fields = DomainFields::new(op)?;
        Some(Self {
            ctx,
            op,
            fields,
            grid,
            cfg,
            face_sites,
            face_positions,
            schedules,
            pool: WorkerPool::new(resolve_workers(1)),
            fault: Cell::new(None),
        })
    }

    /// The first communication fault seen by this rank's preconditioner,
    /// if any. A solve whose preconditioner reports a fault must be
    /// treated as unreliable (the serve layer maps it to `Degraded`).
    pub fn comm_error(&self) -> Option<CommError> {
        self.fault.get()
    }

    #[inline]
    pub fn grid(&self) -> &DomainGrid {
        &self.grid
    }

    #[inline]
    pub fn config(&self) -> &SchwarzConfig {
        &self.cfg
    }

    /// Post one send wave of the just-updated `color`: both orientations
    /// of every slot's direction, packed color-masked straight from the
    /// current iterate (read through `fetch` — the shared field while
    /// other workers compute the next stage). Returns the payload bytes
    /// sent. A hiccuping rank sends one skip marker per channel per round
    /// instead (peers keep their stale halo entries for us) and counts
    /// nothing.
    fn post_wave<F: Fn(usize) -> Spinor<T>>(
        &self,
        wave: &[SendSlot],
        color: DomainColor,
        fetch: &F,
        hiccup: bool,
        skip_sent: &mut [[bool; 2]; 4],
    ) -> f64 {
        let trace = self.ctx.trace();
        let mut sent = 0.0f64;
        for slot in wave {
            let dir = slot.dir;
            debug_assert!(self.ctx.is_split(dir), "schedule planned a send in an unsplit dir");
            for o in 0..2 {
                if hiccup {
                    if !skip_sent[dir.index()][o] {
                        self.ctx.send_skip(dir, o == 1);
                        skip_sent[dir.index()][o] = true;
                    }
                    continue;
                }
                let sign = if o == 0 {
                    // Backward face: packed for the forward hops of our
                    // backward neighbor's sites.
                    if self.ctx.at_global_backward_edge(dir) {
                        self.op.phases().of(dir)
                    } else {
                        1.0
                    }
                } else if self.ctx.at_global_forward_edge(dir) {
                    self.op.phases().of(dir)
                } else {
                    1.0
                };
                let sites = &self.face_sites[dir.index()][o][color as usize];
                let range = slot.half.range(sites.len());
                trace.begin(qdd_trace::Phase::HaloPack);
                let data = if o == 0 {
                    pack_sites_for_forward_hop_with(self.op, fetch, dir, sign, &sites[range])
                } else {
                    pack_sites_for_backward_hop_with(self.op, fetch, dir, sign, &sites[range])
                };
                trace.end(qdd_trace::Phase::HaloPack);
                if self.cfg.f16_faces {
                    // f16 envelope: round the packed boundary half-spinors
                    // to f16 and ship 24 bytes per site instead of the
                    // full-width 12 reals (half the f32 halo traffic).
                    let packed: Vec<HalfSpinorF16> =
                        data.iter().map(HalfSpinorF16::compress).collect();
                    sent += (packed.len() * HalfSpinorF16::WIRE_BYTES) as f64;
                    self.ctx.send_face_part_f16(dir, o == 1, part_of(slot.half), packed);
                } else {
                    sent += (data.len() * HalfSpinor::<T>::REALS * std::mem::size_of::<T>()) as f64;
                    self.ctx.send_face_part(dir, o == 1, part_of(slot.half), data);
                }
            }
        }
        sent
    }

    /// Drain every deferred receive of the previous half-sweep into the
    /// halo. Returns the payload bytes actually delivered (skips and
    /// faulted faces contribute nothing — received traffic is counted
    /// independently of sent traffic, because a hiccuping rank skips its
    /// sends but still receives and merges its peers' faces).
    fn drain_pending(&self, pending: &mut Vec<RecvSlot>, halo: &mut HaloData<T>) -> f64 {
        if pending.is_empty() {
            return 0.0;
        }
        let trace = self.ctx.trace();
        trace.begin(qdd_trace::Phase::HaloUnpack);
        let mut got = 0.0f64;
        // A peer that hiccuped this round sent one skip marker on the
        // channel instead of its parts; once seen, expect nothing further
        // from that channel this round.
        let mut peer_skipped = [[false; 2]; 4];
        for slot in pending.drain(..) {
            let o = slot.forward as usize;
            if peer_skipped[slot.dir.index()][o] {
                continue;
            }
            // f16 envelopes are up-converted at the merge; either way the
            // halo holds compute-precision half-spinors and the received
            // ledger counts the wire bytes of the format that traveled.
            let received = if self.cfg.f16_faces {
                self.ctx
                    .recv_face_part_retrying_f16(
                        slot.dir,
                        slot.forward,
                        part_of(slot.half),
                        self.ctx.retry_policy().max_attempts,
                    )
                    .map(|opt| {
                        opt.map(|packed| {
                            let bytes = (packed.len() * HalfSpinorF16::WIRE_BYTES) as f64;
                            let data: Vec<HalfSpinor<T>> =
                                packed.iter().map(HalfSpinorF16::decompress).collect();
                            (data, bytes)
                        })
                    })
            } else {
                self.ctx
                    .recv_face_part_retrying::<T>(
                        slot.dir,
                        slot.forward,
                        part_of(slot.half),
                        self.ctx.retry_policy().max_attempts,
                    )
                    .map(|opt| {
                        opt.map(|data| {
                            let bytes =
                                (data.len() * HalfSpinor::<T>::REALS * std::mem::size_of::<T>())
                                    as f64;
                            (data, bytes)
                        })
                    })
            };
            match received {
                Ok(Some((data, bytes))) => {
                    // halo.face(dir, true) entries mirror the *forward*
                    // neighbor's backward face; its site colors are the
                    // flip of our same-face colors at the same positions.
                    let positions =
                        &self.face_positions[slot.dir.index()][o][slot.color.flip() as usize];
                    let range = slot.half.range(positions.len());
                    assert_eq!(
                        data.len(),
                        range.len(),
                        "partial-face exchange misaligned ({}, fwd={})",
                        slot.dir,
                        slot.forward
                    );
                    got += bytes;
                    let buf = halo.face_mut(slot.dir, slot.forward);
                    for (h, &k) in data.into_iter().zip(&positions[range]) {
                        buf.data[k] = h;
                    }
                }
                // Peer hiccup: it skipped this exchange. Keep the stale
                // halo entries; benign under a flexible outer solver, so
                // no fault is recorded.
                Ok(None) => peer_skipped[slot.dir.index()][o] = true,
                Err(e) => {
                    // Retry budget exhausted: keep the stale halo entries
                    // for this part, record the fault, and keep draining
                    // the remaining parts so channels stay aligned.
                    if self.fault.get().is_none() {
                        self.fault.set(Some(e));
                    }
                }
            }
        }
        trace.end(qdd_trace::Phase::HaloUnpack);
        got
    }

    /// Apply the preconditioner: `u ~= A^-1 f` on this rank's sub-volume,
    /// collaborating with all other ranks.
    ///
    /// Executes the Fig. 4 schedule: per half-sweep, the leader (worker 0,
    /// the rank thread — the only one allowed to touch the `!Sync` comm
    /// context) first drains the receives deferred from the previous
    /// half-sweep, then the team computes the boundary-first stages with
    /// the leader posting each finished stage's send wave while the next
    /// stage runs. Bitwise identical to the serial
    /// [`SchwarzPreconditioner`](qdd_core::schwarz::SchwarzPreconditioner)
    /// for every worker count and overlap setting: face sites belong
    /// exclusively to boundary domains (finished before their face is
    /// packed), same-color domains are never adjacent (so intra-color
    /// reordering changes no update), and a color-`C'` half-sweep reads
    /// only color-`C` halo entries (exactly the freshly merged ones).
    pub fn apply(&self, f: &SpinorField<T>, stats: &mut SolveStats) -> SpinorField<T> {
        let local = *self.op.dims();
        assert_eq!(*f.dims(), local);
        let mut u = SpinorField::<T>::zeros(local);
        let mut halo_u = HaloData::<T>::zeros(local);

        let workers = self.pool.workers();
        let split = self.ctx.split_dirs();
        let rounds = 2 * self.cfg.i_schwarz;
        let shared = SharedSpinors::new(u.as_mut_slice());
        // The halo is epoch-shared: the leader writes it while everyone
        // else waits at the round barrier; all workers read it during the
        // compute stages.
        let halo_slot = std::slice::from_mut(&mut halo_u);
        let halo_cell = SharedCells::new(halo_slot);
        let barrier = SpinBarrier::new(workers);
        let worker_flops: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let sink = stats.sink().clone();
        // `self` holds the `!Sync` comm context; only the leader (worker
        // 0 = this thread) dereferences it inside the job.
        let leader = LeaderOnly::new(self);
        let ledger_cells = (Cell::new(0.0f64), Cell::new(0.0f64));
        let ledger = LeaderOnly::new(&ledger_cells);
        let op = self.op;
        let fields = &self.fields;
        let grid = &self.grid;
        let mr = &self.cfg.mr;
        let schedules = &self.schedules;

        self.pool.run(&|w| {
            let sense = Cell::new(false);
            let mut rec = sink.thread(w as u32 + 1);
            rec.begin(qdd_trace::Phase::PoolJob);
            let mut flops = 0.0;
            // Receives deferred from the previous half-sweep (leader-only
            // state; empty on every other worker).
            let mut pending: Vec<RecvSlot> = Vec::new();
            for round in 0..rounds {
                let color = DomainColor::ALL[round % 2];
                let last = round + 1 == rounds;
                let sched = &schedules[color as usize];
                if w == 0 {
                    if round % 2 == 0 {
                        sink.begin(qdd_trace::Phase::SchwarzSweep);
                    }
                    // SAFETY (LeaderOnly): worker 0 runs on the thread
                    // that built the wrappers. SAFETY (SharedCells): no
                    // reader before the barrier below.
                    let this = unsafe { leader.get() };
                    let halo = &mut unsafe { halo_cell.slice_mut(0..1) }[0];
                    let got = this.drain_pending(&mut pending, halo);
                    let l = unsafe { ledger.get() };
                    l.1.set(l.1.get() + got);
                }
                barrier.wait(&sense);
                rec.begin(qdd_trace::Phase::ColorSweep);
                // One hiccup decision per exchange round, taken before the
                // first wave so every wave of the round skips together.
                let hiccup = if w == 0 && !last {
                    // SAFETY: leader-only, see above.
                    unsafe { leader.get() }.ctx.take_hiccup()
                } else {
                    false
                };
                let mut skip_sent = [[false; 2]; 4];
                for (si, stage) in sched.stages.iter().enumerate() {
                    if w == 0 && si > 0 && !last {
                        // The previous stage's faces are final (their
                        // owning domains finished behind the last
                        // barrier): pack and send them while this stage
                        // computes. SAFETY (fetch): face sites belong to
                        // completed boundary stages; this stage writes
                        // only its own domains' sites.
                        let this = unsafe { leader.get() };
                        let sent = this.post_wave(
                            &sched.sends_after[si - 1],
                            color,
                            &|i: usize| unsafe { shared.read(i) },
                            hiccup,
                            &mut skip_sent,
                        );
                        let l = unsafe { ledger.get() };
                        l.0.set(l.0.get() + sent);
                    }
                    let range = blocked_ranges(stage.len(), workers)[w].clone();
                    for &dom_idx in &stage[range] {
                        rec.begin(qdd_trace::Phase::DomainSolve);
                        // SAFETY (SharedSpinors): reads touch the domain
                        // (owned by this worker in this epoch) and its
                        // opposite-color neighbors (not written in this
                        // epoch); writes touch only the owned domain.
                        // SAFETY (SharedCells): no halo writer after the
                        // round barrier.
                        let fetch = |i: usize| unsafe { shared.read(i) };
                        let halo = unsafe { halo_cell.get(0) };
                        let schur = SchurOperator::new(op, fields, grid.domain(dom_idx));
                        let au =
                            |g: usize| op.apply_site_with_halo_fetch_split(g, fetch, halo, split);
                        let (z_e, z_o, fl) = schwarz_block_update(&schur, mr, f, au);
                        schur.scatter_add_cb_with(
                            |g, v| unsafe { shared.add(g, v) },
                            &z_e,
                            Parity::Even,
                        );
                        schur.scatter_add_cb_with(
                            |g, v| unsafe { shared.add(g, v) },
                            &z_o,
                            Parity::Odd,
                        );
                        flops += fl;
                        rec.end(qdd_trace::Phase::DomainSolve);
                    }
                    barrier.wait(&sense);
                }
                rec.end(qdd_trace::Phase::ColorSweep);
                if w == 0 {
                    if !last {
                        // SAFETY: leader-only, see above.
                        let this = unsafe { leader.get() };
                        let sent = this.post_wave(
                            sched.sends_after.last().map_or(&[][..], |v| v),
                            color,
                            &|i: usize| unsafe { shared.read(i) },
                            hiccup,
                            &mut skip_sent,
                        );
                        let l = unsafe { ledger.get() };
                        l.0.set(l.0.get() + sent);
                        for wave in &sched.sends_after {
                            for slot in wave {
                                for forward in [true, false] {
                                    pending.push(RecvSlot {
                                        dir: slot.dir,
                                        forward,
                                        half: slot.half,
                                        color,
                                    });
                                }
                            }
                        }
                        if sched.stages.len() == 1 {
                            // Degenerate schedule (overlap off or nothing
                            // split): the legacy bulk exchange — drain
                            // right here, exposing the full wait. SAFETY
                            // (SharedCells): every other worker is parked
                            // at the next round's barrier, no reader.
                            let halo = &mut unsafe { halo_cell.slice_mut(0..1) }[0];
                            let got = this.drain_pending(&mut pending, halo);
                            l.1.set(l.1.get() + got);
                        }
                    }
                    if round % 2 == 1 {
                        sink.end(qdd_trace::Phase::SchwarzSweep);
                    }
                }
            }
            rec.end(qdd_trace::Phase::PoolJob);
            rec.flush();
            worker_flops[w].store(flops.to_bits(), Ordering::Relaxed);
        });

        stats.add_flops(
            Component::PreconditionerM,
            worker_flops.iter().map(|b| f64::from_bits(b.load(Ordering::Relaxed))).sum(),
        );
        stats.add_comm_bytes(Component::PreconditionerM, ledger_cells.0.get());
        stats.add_comm_recv_bytes(Component::PreconditionerM, ledger_cells.1.get());
        // Unsplit directions never pack, send, or merge anything: their
        // halo faces must still be all zero (the split-aware operator
        // wraps those hops through the local field instead).
        debug_assert!(Dir::ALL.into_iter().filter(|&d| !self.ctx.is_split(d)).all(|d| {
            [false, true].into_iter().all(|fw| {
                halo_u.face(d, fw).data.iter().all(|h| {
                    h.0.iter().all(|v| v.0.iter().all(|z| z.re == T::ZERO && z.im == T::ZERO))
                })
            })
        }));
        u
    }

    /// MR configuration in use.
    pub fn mr_config(&self) -> &MrConfig {
        &self.cfg.mr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run_spmd, CommWorld};
    use crate::scatter::{gather_field, scatter_clover, scatter_field, scatter_gauge};
    use qdd_core::schwarz::SchwarzPreconditioner;
    use qdd_dirac::clover::build_clover_field;
    use qdd_dirac::gamma::GammaBasis;
    use qdd_dirac::wilson::BoundaryPhases;
    use qdd_field::fields::GaugeField;
    use qdd_lattice::{Dims, RankGrid};
    use qdd_util::rng::Rng64;

    fn schwarz_cfg(block: Dims, sweeps: usize) -> SchwarzConfig {
        SchwarzConfig {
            block,
            i_schwarz: sweeps,
            mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
            additive: false,
            overlap: true,
            ..Default::default()
        }
    }

    /// Distributed Schwarz must reproduce the single-rank preconditioner
    /// bitwise (all block arithmetic is identical; only data movement
    /// differs).
    fn check_dist_schwarz(rank_dims: Dims, block: Dims, sweeps: usize) {
        let global_dims = Dims::new(8, 8, 8, 8);
        let grid = RankGrid::new(global_dims, rank_dims);
        let mut rng = Rng64::new(31);
        let gauge = GaugeField::<f64>::random(global_dims, &mut rng, 0.6);
        let basis = GammaBasis::degrand_rossi();
        let clover = build_clover_field(&gauge, 1.5, &basis);
        let phases = BoundaryPhases::antiperiodic_t();
        let f = SpinorField::<f64>::random(global_dims, &mut rng);

        // Serial reference.
        let pre = SchwarzPreconditioner::new(
            WilsonClover::new(gauge.clone(), clover.clone(), 0.2, phases),
            schwarz_cfg(block, sweeps),
        )
        .unwrap();
        let mut st = SolveStats::new();
        let expect = pre.apply(&f, &mut st);

        // Distributed.
        let local_gauge = scatter_gauge(&gauge, &grid);
        let local_clover = scatter_clover(&clover, &grid);
        let f_local = scatter_field(&f, &grid);
        let world = CommWorld::new(grid.clone());
        let results = run_spmd(&world, |ctx| {
            let r = ctx.rank();
            let op =
                WilsonClover::new(local_gauge[r].clone(), local_clover[r].clone(), 0.2, phases);
            let pre = DistSchwarz::new(ctx, &op, schwarz_cfg(block, sweeps)).unwrap();
            let mut stats = SolveStats::new();
            let u = pre.apply(&f_local[r], &mut stats);
            (
                u,
                stats.comm_bytes(Component::PreconditionerM),
                stats.comm_recv_bytes(Component::PreconditionerM),
            )
        });
        let locals: Vec<SpinorField<f64>> = results.iter().map(|r| r.0.clone()).collect();
        let got = gather_field(&locals, &grid);
        assert_eq!(
            got.as_slice(),
            expect.as_slice(),
            "distributed Schwarz diverged from serial (ranks {rank_dims})"
        );
        // Per-rank send/recv can be asymmetric (e.g. one domain per rank:
        // a Black rank sends in Black rounds but receives only in White
        // rounds) — but every byte sent is received by some rank.
        let total_sent: f64 = results.iter().map(|r| r.1).sum();
        let total_received: f64 = results.iter().map(|r| r.2).sum();
        for (_, sent, _) in &results {
            assert!(*sent > 0.0, "no preconditioner traffic counted");
        }
        assert_eq!(total_sent, total_received, "sent and received world totals must balance");
    }

    #[test]
    fn matches_serial_2ranks_even_domains() {
        // 2 ranks in t; 8x8x8x4 local; 4^4 blocks: 2 domains per dir.
        check_dist_schwarz(Dims::new(1, 1, 1, 2), Dims::new(4, 4, 4, 4), 2);
    }

    #[test]
    fn matches_serial_4ranks_xy() {
        check_dist_schwarz(Dims::new(2, 2, 1, 1), Dims::new(4, 4, 4, 4), 3);
    }

    #[test]
    fn matches_serial_odd_domains_per_rank() {
        // 2 ranks in x, 4x8x8x8 local with 4^4 blocks: ONE domain per rank
        // in x — the global-coloring correction is exercised here.
        check_dist_schwarz(Dims::new(2, 1, 1, 1), Dims::new(4, 4, 4, 4), 2);
    }

    #[test]
    fn matches_serial_16ranks() {
        check_dist_schwarz(Dims::new(2, 2, 2, 2), Dims::new(4, 4, 4, 4), 2);
    }

    #[test]
    fn f16_faces_halve_traffic_and_stay_within_rounding() {
        // The f16 halo envelope (24 bytes/site vs f32's 48) must halve
        // both sides of the traffic ledger exactly, while the result stays
        // a small f16-rounding perturbation of the f32-face run.
        let global_dims = Dims::new(8, 8, 8, 8);
        let grid = RankGrid::new(global_dims, Dims::new(2, 1, 1, 1));
        let mut rng = Rng64::new(35);
        let gauge = GaugeField::<f64>::random(global_dims, &mut rng, 0.5);
        let basis = GammaBasis::degrand_rossi();
        let clover = build_clover_field(&gauge, 1.4, &basis);
        let phases = BoundaryPhases::antiperiodic_t();
        let f = SpinorField::<f64>::random(global_dims, &mut rng);
        let local_gauge = scatter_gauge(&gauge, &grid);
        let local_clover = scatter_clover(&clover, &grid);
        let f_local = scatter_field(&f, &grid);

        let run = |f16_faces: bool| {
            let mut cfg = schwarz_cfg(Dims::new(4, 4, 4, 4), 3);
            cfg.f16_faces = f16_faces;
            let world = CommWorld::new(grid.clone());
            run_spmd(&world, |ctx| {
                let r = ctx.rank();
                let op = WilsonClover::new(
                    local_gauge[r].cast::<f32>(),
                    local_clover[r].cast::<f32>(),
                    0.2f32,
                    phases,
                );
                let pre = DistSchwarz::new(ctx, &op, cfg).unwrap();
                let mut stats = SolveStats::new();
                let u = pre.apply(&f_local[r].cast(), &mut stats);
                (
                    u,
                    stats.comm_bytes(Component::PreconditionerM),
                    stats.comm_recv_bytes(Component::PreconditionerM),
                    ctx.counters.bytes_sent.get(),
                )
            })
        };
        let wide = run(false);
        let packed = run(true);
        for (a, b) in wide.iter().zip(&packed) {
            assert!(a.1 > 0.0, "no preconditioner traffic counted");
            assert_eq!(b.1, a.1 / 2.0, "f16 faces must halve the sent ledger");
            assert_eq!(b.2, a.2 / 2.0, "f16 faces must halve the received ledger");
            assert_eq!(b.3, a.3 / 2.0, "f16 faces must halve the wire counters");
            let mut diff = a.0.clone();
            diff.sub_assign(&b.0);
            let rel = diff.norm() / a.0.norm();
            assert!(rel > 0.0, "f16 faces must actually round something");
            assert!(rel < 1e-2, "f16-face result drifted too far: rel {rel}");
        }
    }

    #[test]
    fn schwarz_traffic_less_than_operator_equivalent() {
        // One Schwarz iteration moves one face worth of data; Idomain MR
        // iterations inside would have cost Idomain exchanges in a non-DD
        // scheme. Check the per-iteration traffic equals one full halo.
        let global_dims = Dims::new(8, 8, 8, 8);
        let grid = RankGrid::new(global_dims, Dims::new(2, 1, 1, 1));
        let mut rng = Rng64::new(32);
        let gauge = GaugeField::<f64>::random(global_dims, &mut rng, 0.5);
        let basis = GammaBasis::degrand_rossi();
        let clover = build_clover_field(&gauge, 1.2, &basis);
        let phases = BoundaryPhases::periodic();
        let f = SpinorField::<f64>::random(global_dims, &mut rng);
        let local_gauge = scatter_gauge(&gauge, &grid);
        let local_clover = scatter_clover(&clover, &grid);
        let f_local = scatter_field(&f, &grid);
        let world = CommWorld::new(grid.clone());
        let sweeps = 4;
        let results = run_spmd(&world, |ctx| {
            let r = ctx.rank();
            let op =
                WilsonClover::new(local_gauge[r].clone(), local_clover[r].clone(), 0.2, phases);
            let pre =
                DistSchwarz::new(ctx, &op, schwarz_cfg(Dims::new(4, 4, 4, 4), sweeps)).unwrap();
            let mut stats = SolveStats::new();
            let _ = pre.apply(&f_local[r], &mut stats);
            (
                stats.comm_bytes(Component::PreconditionerM),
                ctx.counters.bytes_sent.get(),
                ctx.counters.bytes_received.get(),
            )
        });
        // Full halo of the split (x) direction: 2 faces x 8*8*8 sites x
        // 96 bytes; per full iteration one such exchange; the final
        // half-exchange is skipped.
        let full_halo = 2.0 * 512.0 * 96.0;
        let expect = full_halo * sweeps as f64 - full_halo / 2.0;
        for (bytes, wire_sent, wire_received) in results {
            assert!((bytes - expect).abs() < 1e-9, "bytes {bytes} vs expected {expect}");
            // The ledger agrees with the physical channel counters, and
            // every sent byte arrived somewhere.
            assert_eq!(wire_sent, expect, "wire bytes disagree with the ledger");
            assert_eq!(wire_received, expect, "received bytes disagree with sent bytes");
        }
    }

    #[test]
    fn overlap_off_is_bitwise_identical_and_counts_the_same_traffic() {
        // `--no-overlap` escape hatch: the degenerate one-stage schedule
        // (bulk exchange after each half-sweep) must produce the same
        // bits and the same byte totals — overlap changes only when data
        // moves.
        let global_dims = Dims::new(8, 8, 8, 8);
        let rank_dims = Dims::new(2, 1, 1, 2);
        let grid = RankGrid::new(global_dims, rank_dims);
        let mut rng = Rng64::new(33);
        let gauge = GaugeField::<f64>::random(global_dims, &mut rng, 0.6);
        let basis = GammaBasis::degrand_rossi();
        let clover = build_clover_field(&gauge, 1.5, &basis);
        let phases = BoundaryPhases::antiperiodic_t();
        let f = SpinorField::<f64>::random(global_dims, &mut rng);
        let local_gauge = scatter_gauge(&gauge, &grid);
        let local_clover = scatter_clover(&clover, &grid);
        let f_local = scatter_field(&f, &grid);

        let run = |overlap: bool| {
            let mut cfg = schwarz_cfg(Dims::new(4, 4, 4, 4), 3);
            cfg.overlap = overlap;
            let world = CommWorld::new(grid.clone());
            run_spmd(&world, |ctx| {
                let r = ctx.rank();
                let op =
                    WilsonClover::new(local_gauge[r].clone(), local_clover[r].clone(), 0.2, phases);
                let pre = DistSchwarz::new(ctx, &op, cfg).unwrap();
                let mut stats = SolveStats::new();
                let u = pre.apply(&f_local[r], &mut stats);
                (
                    u,
                    stats.comm_bytes(Component::PreconditionerM),
                    stats.comm_recv_bytes(Component::PreconditionerM),
                )
            })
        };
        let with = run(true);
        let without = run(false);
        for (a, b) in with.iter().zip(&without) {
            assert_eq!(a.0.as_slice(), b.0.as_slice(), "overlap changed the result");
            assert_eq!(a.1, b.1, "overlap changed sent-byte accounting");
            assert_eq!(a.2, b.2, "overlap changed received-byte accounting");
        }
    }

    #[test]
    fn hiccup_skips_sends_but_still_counts_received_traffic() {
        // A rank hiccup makes the rank sit out one exchange round: its
        // sends are skip markers (zero bytes) but it still receives and
        // merges its peers' faces — send and receive traffic must be
        // counted independently, not skipped together.
        use qdd_faults::{FaultClass, FaultPlan};
        let global_dims = Dims::new(8, 8, 8, 8);
        let rank_dims = Dims::new(2, 1, 1, 1);
        let grid = RankGrid::new(global_dims, rank_dims);
        let mut rng = Rng64::new(34);
        let gauge = GaugeField::<f64>::random(global_dims, &mut rng, 0.5);
        let basis = GammaBasis::degrand_rossi();
        let clover = build_clover_field(&gauge, 1.3, &basis);
        let phases = BoundaryPhases::periodic();
        let f = SpinorField::<f64>::random(global_dims, &mut rng);
        let local_gauge = scatter_gauge(&gauge, &grid);
        let local_clover = scatter_clover(&clover, &grid);
        let f_local = scatter_field(&f, &grid);

        let sweeps = 2; // 3 exchange rounds
        let run = |plan: FaultPlan| {
            let world = CommWorld::with_faults(grid.clone(), plan);
            run_spmd(&world, |ctx| {
                let r = ctx.rank();
                let op =
                    WilsonClover::new(local_gauge[r].clone(), local_clover[r].clone(), 0.2, phases);
                let pre =
                    DistSchwarz::new(ctx, &op, schwarz_cfg(Dims::new(4, 4, 4, 4), sweeps)).unwrap();
                let mut stats = SolveStats::new();
                let _ = pre.apply(&f_local[r], &mut stats);
                (
                    stats.comm_bytes(Component::PreconditionerM),
                    stats.comm_recv_bytes(Component::PreconditionerM),
                    ctx.counters.faults.hiccups.get(),
                )
            })
        };
        let clean = run(FaultPlan::none());
        // Rank 0 hiccups on its first exchange round (hiccup decisions
        // are consumed once per round, in round order).
        let plan = FaultPlan::none().with_event(qdd_faults::FaultEvent {
            rank: 0,
            class: FaultClass::Hiccup,
            dir: None,
            forward: None,
            at_seq: 0,
            attempts: 1,
        });
        let faulted = run(plan);

        let (clean_sent, clean_recv, _) = clean[0];
        assert_eq!(clean_sent, clean_recv, "clean symmetric run must balance");
        // Rank 0: sat out one of three rounds — sent one round less, but
        // received everything its (non-hiccuping) peer sent.
        let (sent0, recv0, hiccups0) = faulted[0];
        assert_eq!(hiccups0, 1, "the injected hiccup must fire exactly once");
        assert_eq!(recv0, clean_recv, "received traffic must be counted despite the hiccup");
        assert_eq!(sent0, clean_sent * 2.0 / 3.0, "one of three rounds sent nothing");
        // Rank 1: sent everything, received one round less (the skip).
        let (sent1, recv1, hiccups1) = faulted[1];
        assert_eq!(hiccups1, 0);
        assert_eq!(sent1, clean_sent);
        assert_eq!(recv1, clean_recv * 2.0 / 3.0);
    }
}
