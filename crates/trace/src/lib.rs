//! `qdd-trace` — structured tracing and metrics for the solver stack.
//!
//! The paper's whole argument (Table II, Table III, Figs. 5–7) rests on
//! attributing time to components: domain updates vs. boundary operators
//! vs. halo exchange vs. global sums. This crate provides the
//! observability substrate the rest of the workspace records into:
//!
//! 1. **Spans and events** ([`TraceSink`], [`Phase`]): a lightweight
//!    begin/end span recorder keyed by a fixed phase taxonomy, with
//!    nesting, per-thread buffers ([`ThreadRecorder`]) and negligible
//!    overhead when disabled (a disabled sink is a `None` — every record
//!    call is a single branch).
//! 2. **Metrics** ([`MetricsRegistry`], [`Summary`], [`LogHistogram`],
//!    [`ShardedMetrics`]): counters, gauges, min/mean/max summaries and
//!    log-linear histograms with per-rank scoping and a deterministic
//!    `merge` for SPMD aggregation; sharded registries keep hot-path
//!    recording wait-free.
//! 3. **Flight recorder** ([`FlightRecorder`]): always-on per-lane ring
//!    buffers of recent span/fault/comm events with a sequence-number
//!    clock, dumped on breakdown/shed/fault-verdict/straggler anomaly or
//!    on demand — post-mortems without full-trace overhead. Request
//!    identity ([`RequestId`], [`TraceId`]) lives here too.
//! 4. **Model joins** ([`ModelJoin`]): accumulated measured-vs-predicted
//!    phase times exported as `model.err.*` gauges, generalizing the
//!    Fig. 4 overlap validation to every modeled phase.
//! 5. **Exporters** ([`export`]): Chrome-trace JSON (viewable in
//!    `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)), JSONL
//!    event streams, and a human-readable per-phase breakdown table in
//!    the style of the paper's Table III.
//!
//! The sink is threaded through `SolveStats` (in `qdd-util`), so every
//! solver, the Schwarz preconditioner, and the simulated communication
//! runtime record into the same timeline without any signature changes.

pub mod export;
pub mod flight;
pub mod histogram;
pub mod metrics;
pub mod model;
pub mod phase;
pub mod recorder;

pub use export::{
    breakdown_table, chrome_trace, jsonl, phase_totals, write_trace_files, PhaseTotal,
};
pub use flight::{FlightEvent, FlightLane, FlightRecorder, RequestId, TraceId};
pub use histogram::LogHistogram;
pub use metrics::{CommStats, FaultStats, MetricsRegistry, ShardedMetrics, Summary};
pub use model::{ModelErr, ModelJoin};
pub use phase::Phase;
pub use recorder::{validate_balance, Event, EventKind, ThreadRecorder, TraceSink};
