//! `qdd-trace` — structured tracing and metrics for the solver stack.
//!
//! The paper's whole argument (Table II, Table III, Figs. 5–7) rests on
//! attributing time to components: domain updates vs. boundary operators
//! vs. halo exchange vs. global sums. This crate provides the
//! observability substrate the rest of the workspace records into:
//!
//! 1. **Spans and events** ([`TraceSink`], [`Phase`]): a lightweight
//!    begin/end span recorder keyed by a fixed phase taxonomy, with
//!    nesting, per-thread buffers ([`ThreadRecorder`]) and negligible
//!    overhead when disabled (a disabled sink is a `None` — every record
//!    call is a single branch).
//! 2. **Metrics** ([`MetricsRegistry`], [`Summary`]): counters, gauges
//!    and min/mean/max summaries with per-rank scoping and a `merge`
//!    for SPMD aggregation.
//! 3. **Exporters** ([`export`]): Chrome-trace JSON (viewable in
//!    `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)), JSONL
//!    event streams, and a human-readable per-phase breakdown table in
//!    the style of the paper's Table III.
//!
//! The sink is threaded through `SolveStats` (in `qdd-util`), so every
//! solver, the Schwarz preconditioner, and the simulated communication
//! runtime record into the same timeline without any signature changes.

pub mod export;
pub mod metrics;
pub mod phase;
pub mod recorder;

pub use export::{
    breakdown_table, chrome_trace, jsonl, phase_totals, write_trace_files, PhaseTotal,
};
pub use metrics::{CommStats, FaultStats, MetricsRegistry, Summary};
pub use phase::Phase;
pub use recorder::{validate_balance, Event, EventKind, ThreadRecorder, TraceSink};
