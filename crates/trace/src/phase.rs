//! The phase taxonomy every span is keyed by.
//!
//! Phases are the trace-level refinement of the paper's four-component
//! Table III taxonomy (`A`, `M`, `GS`, other): each phase maps onto one
//! component via [`Phase::component`], but the spans resolve *where*
//! inside a component the time goes (which Schwarz color, which halo
//! direction, pack vs. wait).

/// One phase of a solve, from the outer Krylov iteration down to a
/// single halo message.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Phase {
    /// A whole solve (outermost span, optional).
    Solve,
    /// One outer iteration of a baseline solver (BiCGstab, CGNR, GCR)
    /// or one refinement cycle of Richardson.
    OuterIteration,
    /// One Arnoldi step of FGMRES-DR (preconditioner + operator + CGS).
    ArnoldiStep,
    /// Classical Gram-Schmidt orthogonalization (batched projections
    /// plus normalization).
    GramSchmidt,
    /// One application of the preconditioner `M`.
    Precondition,
    /// One multiplicative Schwarz sweep (both colors).
    SchwarzSweep,
    /// All domain solves of one color within a sweep.
    ColorSweep,
    /// One per-domain block solve (MR on the even-odd Schur complement).
    DomainSolve,
    /// One application of the full Wilson-Clover operator `A`.
    OperatorApply,
    /// Packing spin-projected half-spinors into a face buffer.
    HaloPack,
    /// Handing a face buffer to the transport (per direction).
    HaloSend,
    /// Receiving a face buffer — blocking, so the span includes wait time.
    HaloRecv,
    /// Merging a received face back into the boundary accumulator.
    HaloUnpack,
    /// One global reduction (latency-bound all-reduce).
    GlobalSum,
    /// Per-iteration residual samples (counter events, not spans).
    Residual,
    /// Building a prepared operator for the solve service on a setup-cache
    /// miss (clover inversion, precision conversion, domain coloring).
    ServeSetup,
    /// One multi-RHS batch dispatched by the solve service; queue-depth
    /// and batch-size counters ride on this phase.
    ServeBatch,
    /// The solve service's degradation ladder: a fallback solve after the
    /// primary DD attempt missed its target or deadline.
    ServeFallback,
    /// One solve executed by a shard worker of the sharded service (one
    /// world + comm runtime per shard); shard health counters ride here.
    ServeShard,
    /// A failover re-dispatch: the supervisor moving an in-flight
    /// request from a sick shard to a healthy one (warm restart).
    ServeFailover,
    /// One worker's share of a job dispatched on the persistent worker
    /// pool (Schwarz sweeps, fused operator tiles, blocked reductions);
    /// `par.*` counters ride on this phase.
    PoolJob,
    /// Fault handling in the comm runtime: a failed delivery attempt
    /// being retried, a corrupted face detected, an exhausted retry
    /// budget; `fault.*` counters ride on this phase.
    Fault,
    /// Anything not covered above (BLAS-1 glue, restarts).
    Other,
}

impl Phase {
    pub const ALL: [Phase; 23] = [
        Phase::Solve,
        Phase::OuterIteration,
        Phase::ArnoldiStep,
        Phase::GramSchmidt,
        Phase::Precondition,
        Phase::SchwarzSweep,
        Phase::ColorSweep,
        Phase::DomainSolve,
        Phase::OperatorApply,
        Phase::HaloPack,
        Phase::HaloSend,
        Phase::HaloRecv,
        Phase::HaloUnpack,
        Phase::GlobalSum,
        Phase::Residual,
        Phase::ServeSetup,
        Phase::ServeBatch,
        Phase::ServeFallback,
        Phase::ServeShard,
        Phase::ServeFailover,
        Phase::PoolJob,
        Phase::Fault,
        Phase::Other,
    ];

    /// Human-readable label (Chrome-trace event name).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Solve => "solve",
            Phase::OuterIteration => "outer iteration",
            Phase::ArnoldiStep => "Arnoldi step",
            Phase::GramSchmidt => "Gram-Schmidt",
            Phase::Precondition => "precondition",
            Phase::SchwarzSweep => "Schwarz sweep",
            Phase::ColorSweep => "color sweep",
            Phase::DomainSolve => "domain solve",
            Phase::OperatorApply => "operator A",
            Phase::HaloPack => "halo pack",
            Phase::HaloSend => "halo send",
            Phase::HaloRecv => "halo recv",
            Phase::HaloUnpack => "halo unpack",
            Phase::GlobalSum => "global sum",
            Phase::Residual => "residual",
            Phase::ServeSetup => "serve setup",
            Phase::ServeBatch => "serve batch",
            Phase::ServeFallback => "serve fallback",
            Phase::ServeShard => "serve shard",
            Phase::ServeFailover => "serve failover",
            Phase::PoolJob => "pool job",
            Phase::Fault => "fault",
            Phase::Other => "other",
        }
    }

    /// Stable machine-readable key (JSONL `phase` field).
    pub fn key(self) -> &'static str {
        match self {
            Phase::Solve => "solve",
            Phase::OuterIteration => "outer_iteration",
            Phase::ArnoldiStep => "arnoldi_step",
            Phase::GramSchmidt => "gram_schmidt",
            Phase::Precondition => "precondition",
            Phase::SchwarzSweep => "schwarz_sweep",
            Phase::ColorSweep => "color_sweep",
            Phase::DomainSolve => "domain_solve",
            Phase::OperatorApply => "operator_apply",
            Phase::HaloPack => "halo_pack",
            Phase::HaloSend => "halo_send",
            Phase::HaloRecv => "halo_recv",
            Phase::HaloUnpack => "halo_unpack",
            Phase::GlobalSum => "global_sum",
            Phase::Residual => "residual",
            Phase::ServeSetup => "serve_setup",
            Phase::ServeBatch => "serve_batch",
            Phase::ServeFallback => "serve_fallback",
            Phase::ServeShard => "serve_shard",
            Phase::ServeFailover => "serve_failover",
            Phase::PoolJob => "pool_job",
            Phase::Fault => "fault",
            Phase::Other => "other",
        }
    }

    /// Chrome-trace category, used for filtering in the viewer.
    pub fn category(self) -> &'static str {
        match self {
            Phase::Solve | Phase::OuterIteration | Phase::ArnoldiStep | Phase::Residual => "solver",
            Phase::GramSchmidt | Phase::Other => "solver",
            Phase::Precondition | Phase::SchwarzSweep | Phase::ColorSweep | Phase::DomainSolve => {
                "schwarz"
            }
            Phase::OperatorApply => "operator",
            Phase::HaloPack | Phase::HaloSend | Phase::HaloRecv | Phase::HaloUnpack => "halo",
            Phase::GlobalSum => "reduction",
            Phase::ServeSetup | Phase::ServeBatch | Phase::ServeFallback => "serve",
            Phase::ServeShard | Phase::ServeFailover => "serve",
            Phase::PoolJob => "pool",
            Phase::Fault => "fault",
        }
    }

    /// The paper's Table III component this phase is accounted to
    /// (`A`, `M`, `GS`, `sum`, `other`).
    pub fn component(self) -> &'static str {
        match self {
            Phase::OperatorApply => "A",
            Phase::Precondition
            | Phase::SchwarzSweep
            | Phase::ColorSweep
            | Phase::DomainSolve
            | Phase::HaloPack
            | Phase::HaloSend
            | Phase::HaloRecv
            | Phase::HaloUnpack => "M",
            Phase::GramSchmidt => "GS",
            Phase::GlobalSum => "sum",
            _ => "other",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_unique() {
        let mut keys: Vec<&str> = Phase::ALL.iter().map(|p| p.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), Phase::ALL.len());
    }

    #[test]
    fn components_match_table_iii_taxonomy() {
        assert_eq!(Phase::OperatorApply.component(), "A");
        assert_eq!(Phase::DomainSolve.component(), "M");
        assert_eq!(Phase::HaloSend.component(), "M");
        assert_eq!(Phase::GramSchmidt.component(), "GS");
        assert_eq!(Phase::GlobalSum.component(), "sum");
        assert_eq!(Phase::ArnoldiStep.component(), "other");
    }
}
