//! Measured-vs-predicted joins: the generalization of the overlap
//! validation (Fig. 4) to every phase the machine model prices.
//!
//! A [`ModelJoin`] holds one `(measured, predicted)` pair per phase key
//! and exports them as `model.err.*` gauges — the continuous signal a
//! model-driven autotuner consumes. The ratio semantics follow the
//! overlap join in `qdd-machine`: a phase both sides agree is free
//! (predicted ≈ 0 and measured ≈ 0) validates at ratio 1.0; substantial
//! measurement against a zero prediction is flagged infinite.

use crate::metrics::MetricsRegistry;
use std::collections::BTreeMap;

/// Canonical phase keys for the four joins every solve can report
/// (Table III taxonomy): use these so dashboards see stable names.
pub mod keys {
    pub const DIRAC_APPLY: &str = "dirac_apply";
    pub const SCHWARZ_SWEEP: &str = "schwarz_sweep";
    pub const HALO_EXCHANGE: &str = "halo_exchange";
    pub const GLOBAL_SUMS: &str = "global_sums";
}

/// One phase's measured-vs-predicted record.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ModelErr {
    /// Wall-clock seconds the execution spent in the phase.
    pub measured_s: f64,
    /// The machine model's prediction for the same work.
    pub predicted_s: f64,
}

impl ModelErr {
    /// `measured / predicted`, with the overlap join's pinning: a phase
    /// both sides agree is negligible (under [`ModelJoin::FLOOR_S`])
    /// validates to 1.0. Substantial measured time against a ~zero
    /// prediction divides by the floor instead of zero, flagging
    /// unmodeled time as a very large — but finite and JSON-safe —
    /// ratio (the overlap join's `INFINITY`, made serializable).
    pub fn ratio(&self) -> f64 {
        if self.predicted_s > ModelJoin::FLOOR_S {
            self.measured_s / self.predicted_s
        } else if self.measured_s <= ModelJoin::FLOOR_S {
            1.0
        } else {
            self.measured_s / ModelJoin::FLOOR_S
        }
    }
}

/// Accumulating join of measured phase times against machine-model
/// predictions. Merges add both sides, so the join can be built up
/// per batch / per rank and reduced like any other metric.
#[derive(Clone, Debug, Default)]
pub struct ModelJoin {
    entries: BTreeMap<String, ModelErr>,
}

impl ModelJoin {
    /// Measurements at or below this are treated as "negligible" when
    /// the model predicts a free phase (clock granularity, not signal).
    pub const FLOOR_S: f64 = 1e-6;

    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate one observation for `key` (seconds on both sides).
    pub fn record(&mut self, key: &str, measured_s: f64, predicted_s: f64) {
        let e = self
            .entries
            .entry(key.to_string())
            .or_insert(ModelErr { measured_s: 0.0, predicted_s: 0.0 });
        e.measured_s += measured_s;
        e.predicted_s += predicted_s;
    }

    pub fn get(&self, key: &str) -> Option<ModelErr> {
        self.entries.get(key).copied()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> impl Iterator<Item = (&str, ModelErr)> {
        self.entries.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merge another join (both sides add per key).
    pub fn merge(&mut self, other: &ModelJoin) {
        for (k, v) in &other.entries {
            self.record(k, v.measured_s, v.predicted_s);
        }
    }

    /// Export as gauges: `model.err.<key>` is the measured/predicted
    /// ratio, with the raw sides alongside as
    /// `model.measured_s.<key>` / `model.predicted_s.<key>`.
    pub fn export(&self, reg: &mut MetricsRegistry) {
        for (k, e) in &self.entries {
            reg.set_gauge(&format!("model.err.{k}"), e.ratio());
            reg.set_gauge(&format!("model.measured_s.{k}"), e.measured_s);
            reg.set_gauge(&format!("model.predicted_s.{k}"), e.predicted_s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_follows_overlap_join_semantics() {
        let meaningful = ModelErr { measured_s: 3.0, predicted_s: 2.0 };
        assert!((meaningful.ratio() - 1.5).abs() < 1e-15);
        let both_free = ModelErr { measured_s: 0.0, predicted_s: 0.0 };
        assert_eq!(both_free.ratio(), 1.0);
        let negligible = ModelErr { measured_s: ModelJoin::FLOOR_S / 2.0, predicted_s: 0.0 };
        assert_eq!(negligible.ratio(), 1.0);
        // Unmodeled time: huge but finite (serializable) ratio.
        let unmodeled = ModelErr { measured_s: 0.5, predicted_s: 0.0 };
        assert!(unmodeled.ratio().is_finite());
        assert!(unmodeled.ratio() > 1e4);
    }

    #[test]
    fn join_accumulates_and_merges() {
        let mut a = ModelJoin::new();
        a.record(keys::DIRAC_APPLY, 1.0, 2.0);
        a.record(keys::DIRAC_APPLY, 1.0, 0.0);
        let mut b = ModelJoin::new();
        b.record(keys::DIRAC_APPLY, 2.0, 2.0);
        b.record(keys::HALO_EXCHANGE, 0.0, 0.0);
        a.merge(&b);
        let d = a.get(keys::DIRAC_APPLY).unwrap();
        assert_eq!(d.measured_s, 4.0);
        assert_eq!(d.predicted_s, 4.0);
        assert_eq!(a.get(keys::HALO_EXCHANGE).unwrap().ratio(), 1.0);
        assert!(a.get(keys::GLOBAL_SUMS).is_none());
    }

    #[test]
    fn export_emits_model_err_gauges() {
        let mut j = ModelJoin::new();
        j.record(keys::SCHWARZ_SWEEP, 4.0, 2.0);
        j.record(keys::GLOBAL_SUMS, 0.0, 0.0);
        let mut reg = MetricsRegistry::new();
        j.export(&mut reg);
        assert_eq!(reg.gauge("model.err.schwarz_sweep"), Some(2.0));
        assert_eq!(reg.gauge("model.err.global_sums"), Some(1.0));
        assert_eq!(reg.gauge("model.measured_s.schwarz_sweep"), Some(4.0));
        assert_eq!(reg.gauge("model.predicted_s.schwarz_sweep"), Some(2.0));
    }
}
