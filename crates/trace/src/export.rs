//! Exporters: Chrome-trace JSON, JSONL event streams, and a Table
//! III-style per-phase breakdown.
//!
//! All exporters take `&[(rank, events)]` streams — one entry per rank —
//! so single-rank and SPMD runs share one code path. Rank maps to the
//! Chrome-trace `pid`, the per-rank thread lane to `tid`.

use crate::phase::Phase;
use crate::recorder::{Event, EventKind};
use serde_json::{Map, Value};
use std::collections::BTreeMap;

fn ts_us(ts_ns: u64) -> f64 {
    ts_ns as f64 / 1000.0
}

fn args_obj(ev: &Event) -> Value {
    let mut map = Map::new();
    map.insert("phase".to_string(), Value::from(ev.phase.key()));
    map.insert("component".to_string(), Value::from(ev.phase.component()));
    for (k, v) in &ev.args {
        map.insert((*k).to_string(), Value::from(*v));
    }
    Value::Object(map)
}

fn event_name(ev: &Event) -> &str {
    ev.name.as_deref().unwrap_or_else(|| ev.phase.label())
}

/// Shared fields of a Chrome-trace event record.
fn chrome_base(ev: &Event, rank: u32, ph: &str) -> Map {
    let mut m = Map::new();
    m.insert("name".to_string(), Value::from(event_name(ev)));
    m.insert("cat".to_string(), Value::from(ev.phase.category()));
    m.insert("ph".to_string(), Value::from(ph));
    m.insert("ts".to_string(), Value::from(ts_us(ev.ts_ns)));
    m.insert("pid".to_string(), Value::from(rank));
    m.insert("tid".to_string(), Value::from(ev.tid));
    m
}

/// Serialize streams to Chrome-trace JSON (the object form with a
/// `traceEvents` array, accepted by `chrome://tracing` and Perfetto).
/// Timestamps are microseconds.
pub fn chrome_trace(streams: &[(u32, Vec<Event>)]) -> String {
    let mut out: Vec<Value> = Vec::new();
    for (rank, events) in streams {
        let mut meta = Map::new();
        meta.insert("name".to_string(), Value::from("process_name"));
        meta.insert("ph".to_string(), Value::from("M"));
        meta.insert("pid".to_string(), Value::from(*rank));
        meta.insert("tid".to_string(), Value::from(0u32));
        let mut meta_args = Map::new();
        meta_args.insert("name".to_string(), Value::from(format!("rank {rank}")));
        meta.insert("args".to_string(), Value::Object(meta_args));
        out.push(Value::Object(meta));

        for ev in events {
            let v = match &ev.kind {
                EventKind::Begin => {
                    let mut m = chrome_base(ev, *rank, "B");
                    m.insert("args".to_string(), args_obj(ev));
                    Value::Object(m)
                }
                EventKind::End => {
                    let mut m = chrome_base(ev, *rank, "E");
                    m.insert("args".to_string(), args_obj(ev));
                    Value::Object(m)
                }
                EventKind::Complete { dur_ns } => {
                    let mut m = chrome_base(ev, *rank, "X");
                    m.insert("dur".to_string(), Value::from(ts_us(*dur_ns)));
                    m.insert("args".to_string(), args_obj(ev));
                    Value::Object(m)
                }
                EventKind::Instant => {
                    let mut m = chrome_base(ev, *rank, "i");
                    m.insert("s".to_string(), Value::from("t"));
                    m.insert("args".to_string(), args_obj(ev));
                    Value::Object(m)
                }
                EventKind::Counter { value } => {
                    let series = if ev.name.is_some() { event_name(ev) } else { ev.phase.key() };
                    let mut args = Map::new();
                    args.insert(series.to_string(), Value::from(*value));
                    let mut m = Map::new();
                    m.insert("name".to_string(), Value::from(event_name(ev)));
                    m.insert("ph".to_string(), Value::from("C"));
                    m.insert("ts".to_string(), Value::from(ts_us(ev.ts_ns)));
                    m.insert("pid".to_string(), Value::from(*rank));
                    m.insert("tid".to_string(), Value::from(ev.tid));
                    m.insert("args".to_string(), Value::Object(args));
                    Value::Object(m)
                }
            };
            out.push(v);
        }
    }
    let mut doc = Map::new();
    doc.insert("traceEvents".to_string(), Value::Array(out));
    doc.insert("displayTimeUnit".to_string(), Value::from("ms"));
    serde_json::to_string(&Value::Object(doc)).expect("chrome trace serializes")
}

/// Serialize streams to JSONL: one self-describing JSON object per line.
pub fn jsonl(streams: &[(u32, Vec<Event>)]) -> String {
    let mut out = String::new();
    for (rank, events) in streams {
        for ev in events {
            let mut map = Map::new();
            map.insert("rank".to_string(), Value::from(*rank));
            map.insert("tid".to_string(), Value::from(ev.tid));
            map.insert("ts_ns".to_string(), Value::from(ev.ts_ns));
            let kind = match &ev.kind {
                EventKind::Begin => "begin",
                EventKind::End => "end",
                EventKind::Complete { .. } => "complete",
                EventKind::Instant => "instant",
                EventKind::Counter { .. } => "counter",
            };
            map.insert("kind".to_string(), Value::from(kind));
            map.insert("phase".to_string(), Value::from(ev.phase.key()));
            if let Some(n) = &ev.name {
                map.insert("name".to_string(), Value::from(n.as_str()));
            }
            match &ev.kind {
                EventKind::Complete { dur_ns } => {
                    map.insert("dur_ns".to_string(), Value::from(*dur_ns));
                }
                EventKind::Counter { value } => {
                    map.insert("value".to_string(), Value::from(*value));
                }
                _ => {}
            }
            if !ev.args.is_empty() {
                let mut a = Map::new();
                for (k, v) in &ev.args {
                    a.insert((*k).to_string(), Value::from(*v));
                }
                map.insert("args".to_string(), Value::Object(a));
            }
            out.push_str(&serde_json::to_string(&Value::Object(map)).unwrap());
            out.push('\n');
        }
    }
    out
}

/// Accumulated time of one phase across a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTotal {
    /// Number of top-most spans of this phase.
    pub count: u64,
    /// Total inclusive nanoseconds of the top-most spans (spans of a
    /// phase nested inside the same phase are not double-counted).
    pub total_ns: u64,
}

/// Per-phase inclusive totals over all streams. Complete spans count as
/// (begin, end) pairs. Counters and instants are ignored.
pub fn phase_totals(streams: &[(u32, Vec<Event>)]) -> BTreeMap<Phase, PhaseTotal> {
    let mut totals: BTreeMap<Phase, PhaseTotal> = BTreeMap::new();
    for (_rank, events) in streams {
        // Per-lane stack of (phase, begin_ts).
        let mut stacks: BTreeMap<u32, Vec<(Phase, u64)>> = BTreeMap::new();
        for ev in events {
            match ev.kind {
                EventKind::Begin => {
                    stacks.entry(ev.tid).or_default().push((ev.phase, ev.ts_ns));
                }
                EventKind::End => {
                    let stack = stacks.entry(ev.tid).or_default();
                    if let Some((phase, t0)) = stack.pop() {
                        if phase == ev.phase {
                            // Count only if no ancestor has the same phase.
                            let topmost = !stack.iter().any(|(p, _)| *p == phase);
                            if topmost {
                                let t = totals.entry(phase).or_default();
                                t.count += 1;
                                t.total_ns += ev.ts_ns.saturating_sub(t0);
                            }
                        }
                    }
                }
                EventKind::Complete { dur_ns } => {
                    let stack = stacks.entry(ev.tid).or_default();
                    let topmost = !stack.iter().any(|(p, _)| *p == ev.phase);
                    if topmost {
                        let t = totals.entry(ev.phase).or_default();
                        t.count += 1;
                        t.total_ns += dur_ns;
                    }
                }
                _ => {}
            }
        }
    }
    totals
}

fn wall_ns(streams: &[(u32, Vec<Event>)]) -> u64 {
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for (_r, events) in streams {
        for ev in events {
            lo = lo.min(ev.ts_ns);
            let end = match ev.kind {
                EventKind::Complete { dur_ns } => ev.ts_ns + dur_ns,
                _ => ev.ts_ns,
            };
            hi = hi.max(end);
        }
    }
    hi.saturating_sub(lo.min(hi))
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Render a Table III-style breakdown: one row per phase with count,
/// inclusive time and share of wall clock, then the four-component
/// summary (`A` / `M` / `GS` / global sums / other).
pub fn breakdown_table(streams: &[(u32, Vec<Event>)]) -> String {
    let totals = phase_totals(streams);
    let wall = wall_ns(streams).max(1);
    let ranks = streams.len().max(1);
    // Per-rank wall: spans across ranks overlap in (simulated) time.
    let denom = wall as f64 * ranks as f64;

    let mut out = String::new();
    out.push_str(&format!(
        "phase breakdown ({} rank{}, wall {} ms)\n",
        ranks,
        if ranks == 1 { "" } else { "s" },
        fmt_ms(wall)
    ));
    out.push_str(&format!(
        "  {:<16} {:>10} {:>12} {:>8}\n",
        "phase", "count", "time [ms]", "share"
    ));
    let mut component_ns: BTreeMap<&'static str, u64> = BTreeMap::new();
    for phase in Phase::ALL {
        if let Some(t) = totals.get(&phase) {
            out.push_str(&format!(
                "  {:<16} {:>10} {:>12} {:>7.1}%\n",
                phase.label(),
                t.count,
                fmt_ms(t.total_ns),
                100.0 * t.total_ns as f64 / denom
            ));
            // Component attribution uses only the *outermost* phase of
            // each component: A = operator, M = precondition, GS, sum.
            match phase {
                Phase::OperatorApply
                | Phase::Precondition
                | Phase::GramSchmidt
                | Phase::GlobalSum => {
                    *component_ns.entry(phase.component()).or_default() += t.total_ns;
                }
                _ => {}
            }
        }
    }
    let attributed: u64 = component_ns.values().sum();
    let other = (wall as f64 * ranks as f64 - attributed as f64).max(0.0) as u64;
    out.push_str("  --\n");
    for key in ["A", "M", "GS", "sum"] {
        let ns = component_ns.get(key).copied().unwrap_or(0);
        out.push_str(&format!(
            "  {:<16} {:>10} {:>12} {:>7.1}%\n",
            format!("component {key}"),
            "",
            fmt_ms(ns),
            100.0 * ns as f64 / denom
        ));
    }
    out.push_str(&format!(
        "  {:<16} {:>10} {:>12} {:>7.1}%\n",
        "component other",
        "",
        fmt_ms(other),
        100.0 * other as f64 / denom
    ));
    out
}

/// Write both on-disk export formats for a recorded run: the Chrome-trace
/// JSON at `path` (load in `chrome://tracing` or Perfetto) and the
/// line-per-event JSONL at `path.jsonl`.
pub fn write_trace_files(streams: &[(u32, Vec<Event>)], path: &str) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace(streams))?;
    std::fs::write(format!("{path}.jsonl"), jsonl(streams))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TraceSink;

    fn synthetic_stream() -> (u32, Vec<Event>) {
        let sink = TraceSink::for_rank(0);
        // Explicit timestamps: 10 ms precondition containing two 3 ms
        // domain solves, then a 5 ms operator application.
        sink.record(Event {
            phase: Phase::Precondition,
            name: None,
            tid: 0,
            ts_ns: 0,
            kind: EventKind::Begin,
            args: vec![],
        });
        sink.complete_at(Phase::DomainSolve, 0, 1_000_000, 3_000_000, None, &[]);
        sink.complete_at(Phase::DomainSolve, 0, 5_000_000, 3_000_000, None, &[]);
        sink.record(Event {
            phase: Phase::Precondition,
            name: None,
            tid: 0,
            ts_ns: 10_000_000,
            kind: EventKind::End,
            args: vec![],
        });
        sink.complete_at(Phase::OperatorApply, 0, 10_000_000, 5_000_000, None, &[]);
        sink.stream()
    }

    #[test]
    fn totals_count_topmost_spans_only() {
        let stream = synthetic_stream();
        let totals = phase_totals(&[stream]);
        assert_eq!(totals[&Phase::Precondition], PhaseTotal { count: 1, total_ns: 10_000_000 });
        assert_eq!(totals[&Phase::DomainSolve], PhaseTotal { count: 2, total_ns: 6_000_000 });
        assert_eq!(totals[&Phase::OperatorApply], PhaseTotal { count: 1, total_ns: 5_000_000 });
    }

    #[test]
    fn nested_same_phase_not_double_counted() {
        let sink = TraceSink::enabled();
        for (ts, kind, phase) in [
            (0, EventKind::Begin, Phase::OuterIteration),
            (10, EventKind::Begin, Phase::OuterIteration),
            (20, EventKind::End, Phase::OuterIteration),
            (100, EventKind::End, Phase::OuterIteration),
        ] {
            sink.record(Event { phase, name: None, tid: 0, ts_ns: ts, kind, args: vec![] });
        }
        let totals = phase_totals(&[sink.stream()]);
        assert_eq!(totals[&Phase::OuterIteration], PhaseTotal { count: 1, total_ns: 100 });
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_events() {
        let stream = synthetic_stream();
        let s = chrome_trace(&[stream]);
        let doc: serde_json::Value = serde_json::from_str(&s).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        // 1 metadata + 2 B/E + 3 X.
        assert_eq!(events.len(), 6);
        let x = events
            .iter()
            .find(|e| e["name"].as_str() == Some("operator A"))
            .expect("operator A event present");
        assert_eq!(x["ph"].as_str(), Some("X"));
        assert_eq!(x["ts"].as_f64(), Some(10_000.0));
        assert_eq!(x["dur"].as_f64(), Some(5_000.0));
        assert_eq!(x["args"]["component"].as_str(), Some("A"));
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let stream = synthetic_stream();
        let s = jsonl(&[stream]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        for line in lines {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v["phase"].is_string());
            assert!(v["ts_ns"].is_number());
        }
    }

    #[test]
    fn breakdown_reports_components() {
        let stream = synthetic_stream();
        let table = breakdown_table(&[stream]);
        assert!(table.contains("precondition"), "{table}");
        assert!(table.contains("component A"), "{table}");
        assert!(table.contains("component M"), "{table}");
        // Wall is 15 ms; M (precondition) is 10 ms -> 66.7%.
        assert!(table.contains("66.7%"), "{table}");
    }
}
