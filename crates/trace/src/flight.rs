//! Flight recorder: always-on per-lane ring buffers of recent
//! span/fault/comm events, plus the request/trace identity types that
//! tie those events to one `qdd-serve` request or one chaos solve.
//!
//! Full tracing ([`TraceSink`](crate::TraceSink)) records everything and
//! is therefore opt-in; the flight recorder is the inverse trade: it
//! keeps only the last [`FlightRecorder::capacity`] events per lane, so
//! it can stay attached in production and be dumped *after* something
//! went wrong — a solver breakdown, a shed request, a fault verdict, or
//! a straggler anomaly. Recording is cheap by construction:
//!
//! - a detached lane is a single branch;
//! - an attached lane pushes into a ring it owns — the per-lane mutex is
//!   only ever contended by a dump, never by another recording thread;
//! - the "clock" is a per-lane sequence number, not wall time, so event
//!   sequences are bitwise reproducible for seeded runs (and comparable
//!   across `QDD_WORKERS` settings), which wall-clock stamps never are.
//!
//! Dumps are JSONL, one event per line, ordered by `(lane, seq)`.

use crate::phase::Phase;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of one `qdd-serve` request, assigned at admission
/// (monotonically increasing per service run).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// Identity of one end-to-end trace: every span, flight event, and
/// timeline stage of one request (or one chaos-run rank) carries it.
/// Zero means "no trace context".
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Derive a trace id from a seed and an index (SplitMix64 round):
    /// deterministic, collision-resistant, never zero.
    pub fn derive(seed: u64, n: u64) -> TraceId {
        let mut h = seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        TraceId(h | 1)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One ring-buffer entry. Deliberately wall-clock free: `seq` is the
/// lane-local cheap clock, `trace` the [`TraceId`] current on the lane,
/// `code` a stable event name (`fault.retry`, `req.shed`, ...), and
/// `a`/`b` two event-specific operands (direction and attempt, request
/// id and status, ...).
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct FlightEvent {
    pub lane: u32,
    pub seq: u64,
    pub trace: u64,
    pub phase: Phase,
    pub code: &'static str,
    pub a: f64,
    pub b: f64,
}

impl FlightEvent {
    fn to_jsonl(self) -> String {
        format!(
            "{{\"lane\":{},\"seq\":{},\"trace\":\"{:016x}\",\"phase\":\"{}\",\"code\":\"{}\",\"a\":{},\"b\":{}}}",
            self.lane,
            self.seq,
            self.trace,
            self.phase.key(),
            self.code,
            self.a,
            self.b
        )
    }
}

struct LaneInner {
    lane: u32,
    /// (ring of the most recent events, next sequence number, dropped count).
    ring: Mutex<(std::collections::VecDeque<FlightEvent>, u64, u64)>,
}

struct RecorderInner {
    capacity: usize,
    lanes: Mutex<Vec<Arc<LaneInner>>>,
    /// Where automatic dumps go; `None` keeps dumps in memory only
    /// (retrievable via [`FlightRecorder::snapshot`]).
    auto_path: Mutex<Option<String>>,
    dumps: AtomicU64,
}

/// Handle to a flight recorder; clones share the same rings. The
/// default (disabled) recorder costs one branch per record call.
#[derive(Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<RecorderInner>>,
}

impl FlightRecorder {
    /// Default per-lane ring capacity: enough to hold the fault and
    /// request activity of several batches, small enough (~8 KiB per
    /// lane) to stay always-on.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// A recorder that records nothing.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled recorder with the given per-lane ring capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(RecorderInner {
                capacity: capacity.max(1),
                lanes: Mutex::new(Vec::new()),
                auto_path: Mutex::new(None),
                dumps: AtomicU64::new(0),
            })),
        }
    }

    /// An enabled recorder with the default capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Set the file automatic dumps are written to (JSONL, overwritten
    /// per dump so the file always holds the most recent post-mortem).
    pub fn set_auto_dump_path(&self, path: &str) {
        if let Some(inner) = &self.inner {
            *inner.auto_path.lock().unwrap() = Some(path.to_string());
        }
    }

    /// Open (and register) a recording lane. Lane ids follow the trace
    /// sink convention: 0 = main thread, worker `w` uses `w + 1`, SPMD
    /// rank `r` uses `r`.
    pub fn lane(&self, lane: u32) -> FlightLane {
        let inner = match &self.inner {
            Some(inner) => inner,
            None => return FlightLane::disabled(),
        };
        let lane_inner = Arc::new(LaneInner {
            lane,
            ring: Mutex::new((std::collections::VecDeque::with_capacity(inner.capacity), 0, 0)),
        });
        inner.lanes.lock().unwrap().push(lane_inner.clone());
        FlightLane { inner: Some(lane_inner), capacity: inner.capacity, trace: AtomicU64::new(0) }
    }

    /// All retained events, ordered by `(lane, seq)` — a deterministic
    /// order for seeded runs, independent of dump timing relative to
    /// other lanes' progress only if those lanes have quiesced.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let inner = match &self.inner {
            Some(inner) => inner,
            None => return Vec::new(),
        };
        let lanes = inner.lanes.lock().unwrap();
        let mut events: Vec<FlightEvent> = Vec::new();
        for lane in lanes.iter() {
            let ring = lane.ring.lock().unwrap();
            events.extend(ring.0.iter().copied());
        }
        events.sort_by_key(|e| (e.lane, e.seq));
        events
    }

    /// Total events dropped from rings (overwritten by newer ones).
    pub fn dropped(&self) -> u64 {
        let inner = match &self.inner {
            Some(inner) => inner,
            None => return 0,
        };
        inner.lanes.lock().unwrap().iter().map(|l| l.ring.lock().unwrap().2).sum()
    }

    /// Number of dumps triggered so far.
    pub fn dumps(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.dumps.load(Ordering::Relaxed))
    }

    /// Render the current rings as JSONL, preceded by a header line
    /// naming the dump reason.
    pub fn to_jsonl(&self, reason: &str) -> String {
        let mut out = format!(
            "{{\"flight_dump\":\"{reason}\",\"lanes\":{},\"dropped\":{}}}\n",
            self.inner.as_ref().map_or(0, |i| i.lanes.lock().unwrap().len()),
            self.dropped()
        );
        for e in self.snapshot() {
            out.push_str(&e.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Trigger a dump: bump the dump counter and, if an auto-dump path
    /// is configured, write the JSONL there (best effort). Returns the
    /// path written, if any. Called on breakdown, shed, fault verdict,
    /// straggler anomaly, or on demand from the CLI.
    pub fn dump(&self, reason: &str) -> Option<String> {
        let inner = self.inner.as_ref()?;
        inner.dumps.fetch_add(1, Ordering::Relaxed);
        let path = inner.auto_path.lock().unwrap().clone()?;
        match std::fs::write(&path, self.to_jsonl(reason)) {
            Ok(()) => Some(path),
            Err(_) => None,
        }
    }
}

/// One lane of a flight recorder. Owned by a single recording thread;
/// cheap to record into (uncontended mutex), carries the lane's current
/// [`TraceId`] so events don't have to.
#[derive(Default)]
pub struct FlightLane {
    inner: Option<Arc<LaneInner>>,
    capacity: usize,
    trace: AtomicU64,
}

impl Clone for FlightLane {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            capacity: self.capacity,
            trace: AtomicU64::new(self.trace.load(Ordering::Relaxed)),
        }
    }
}

impl FlightLane {
    /// A lane that records nothing (one branch per call).
    pub fn disabled() -> Self {
        Self { inner: None, capacity: 0, trace: AtomicU64::new(0) }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Set the trace id subsequent events are attributed to.
    pub fn set_trace(&self, id: TraceId) {
        self.trace.store(id.0, Ordering::Relaxed);
    }

    pub fn trace(&self) -> TraceId {
        TraceId(self.trace.load(Ordering::Relaxed))
    }

    /// Record one event (drops the oldest if the ring is full).
    #[inline]
    pub fn record(&self, phase: Phase, code: &'static str, a: f64, b: f64) {
        let inner = match &self.inner {
            Some(inner) => inner,
            None => return,
        };
        let mut ring = inner.ring.lock().unwrap();
        let seq = ring.1;
        ring.1 += 1;
        if ring.0.len() == self.capacity {
            ring.0.pop_front();
            ring.2 += 1;
        }
        ring.0.push_back(FlightEvent {
            lane: inner.lane,
            seq,
            trace: self.trace.load(Ordering::Relaxed),
            phase,
            code,
            a,
            b,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_lane_records_nothing() {
        let rec = FlightRecorder::disabled();
        let lane = rec.lane(0);
        assert!(!rec.is_enabled());
        assert!(!lane.is_enabled());
        lane.record(Phase::Fault, "fault.retry", 1.0, 2.0);
        assert!(rec.snapshot().is_empty());
        assert_eq!(rec.dump("test"), None);
    }

    #[test]
    fn ring_keeps_most_recent_events() {
        let rec = FlightRecorder::with_capacity(4);
        let lane = rec.lane(3);
        for i in 0..10 {
            lane.record(Phase::Fault, "e", i as f64, 0.0);
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(rec.dropped(), 6);
        // The last four, in sequence order, on the right lane.
        assert_eq!(events[0].seq, 6);
        assert_eq!(events[3].seq, 9);
        assert!(events.iter().all(|e| e.lane == 3));
    }

    #[test]
    fn trace_ids_tag_events() {
        let rec = FlightRecorder::enabled();
        let lane = rec.lane(0);
        let t = TraceId::derive(7, 42);
        assert_ne!(t.0, 0);
        assert_eq!(t, TraceId::derive(7, 42));
        assert_ne!(t, TraceId::derive(7, 43));
        lane.record(Phase::Fault, "before", 0.0, 0.0);
        lane.set_trace(t);
        lane.record(Phase::Fault, "after", 0.0, 0.0);
        let events = rec.snapshot();
        assert_eq!(events[0].trace, 0);
        assert_eq!(events[1].trace, t.0);
    }

    #[test]
    fn snapshot_orders_by_lane_then_seq() {
        let rec = FlightRecorder::enabled();
        let l1 = rec.lane(1);
        let l0 = rec.lane(0);
        l1.record(Phase::Fault, "b", 0.0, 0.0);
        l0.record(Phase::Fault, "a", 0.0, 0.0);
        l1.record(Phase::Fault, "c", 0.0, 0.0);
        let codes: Vec<&str> = rec.snapshot().iter().map(|e| e.code).collect();
        assert_eq!(codes, ["a", "b", "c"]);
    }

    #[test]
    fn dump_writes_jsonl_with_reason_header() {
        let rec = FlightRecorder::enabled();
        let lane = rec.lane(0);
        lane.set_trace(TraceId::derive(1, 1));
        lane.record(Phase::Fault, "fault.retry", 2.0, 1.0);
        let dir = std::env::temp_dir().join(format!("qdd-flight-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.jsonl");
        rec.set_auto_dump_path(path.to_str().unwrap());
        let written = rec.dump("breakdown").expect("dump path returned");
        let text = std::fs::read_to_string(&written).unwrap();
        assert!(text.starts_with("{\"flight_dump\":\"breakdown\""));
        assert!(text.contains("\"code\":\"fault.retry\""));
        assert!(text.contains(&format!("{}", TraceId::derive(1, 1))));
        assert_eq!(rec.dumps(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
