//! Log-linear histograms with bounded relative error and deterministic
//! SPMD merge.
//!
//! A [`LogHistogram`] buckets positive samples by their floating-point
//! exponent plus the top [`SUBBUCKET_BITS`] mantissa bits — 32 linear
//! sub-buckets per octave. Bucket boundaries are pure functions of the
//! sample's bit pattern, so two ranks always agree on which bucket a
//! value lands in, and merging is a u64 add per bucket: associative,
//! commutative, and bitwise rank-order independent (unlike pooled-sample
//! percentile schemes, whose sort order and memory footprint both depend
//! on the merge).
//!
//! Quantiles are nearest-rank over the cumulative bucket counts; the
//! returned value is the bucket midpoint, clamped to the exactly-tracked
//! `[min, max]`. The relative half-width of a bucket is at most
//! `1/(2 * SUBBUCKETS)` ≈ 1.6 %, which [`LogHistogram::RELATIVE_ERROR`]
//! rounds up to a pinned 2 % contract (see the error-bound test).

use serde::{Map, Serialize, Value};
use std::collections::BTreeMap;

/// Mantissa bits used for the linear split of each octave.
pub const SUBBUCKET_BITS: u32 = 5;
/// Linear sub-buckets per power of two.
pub const SUBBUCKETS: u32 = 1 << SUBBUCKET_BITS;

/// Sparse log-linear histogram. Samples `<= 0` (and non-finite ones)
/// are folded into a dedicated underflow bucket whose representative
/// value is zero.
#[derive(Clone, Debug, PartialEq)]
pub struct LogHistogram {
    /// Bucket id -> count; id = exponent * SUBBUCKETS + sub-bucket.
    buckets: BTreeMap<i32, u64>,
    /// Samples that were zero, negative, or not finite.
    underflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Bucket id of a finite positive value: unbiased binary exponent times
/// [`SUBBUCKETS`] plus the top mantissa bits. Monotone in `v`.
fn bucket_id(v: f64) -> i32 {
    let bits = v.to_bits();
    let exponent = ((bits >> 52) & 0x7ff) as i32 - 1023;
    let sub = ((bits >> (52 - SUBBUCKET_BITS)) & (SUBBUCKETS as u64 - 1)) as i32;
    exponent * SUBBUCKETS as i32 + sub
}

/// Midpoint of a bucket: `2^e * (1 + (sub + 0.5) / SUBBUCKETS)`.
fn bucket_mid(id: i32) -> f64 {
    let e = id.div_euclid(SUBBUCKETS as i32);
    let sub = id.rem_euclid(SUBBUCKETS as i32);
    (2f64).powi(e) * (1.0 + (sub as f64 + 0.5) / SUBBUCKETS as f64)
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Pinned bound on the relative error of [`quantile`](Self::quantile)
    /// versus the exact nearest-rank sample quantile. The structural
    /// bound is `1/(2 * SUBBUCKETS)` ≈ 1.6 %; 2 % is the contract.
    pub const RELATIVE_ERROR: f64 = 0.02;

    pub fn new() -> Self {
        Self {
            buckets: BTreeMap::new(),
            underflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        if v.is_finite() && v > 0.0 {
            *self.buckets.entry(bucket_id(v)).or_insert(0) += 1;
        } else {
            self.underflow += 1;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum of all recorded samples (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum of all recorded samples (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Nearest-rank quantile, `q` in `[0, 1]`; 0 if empty. Within
    /// [`RELATIVE_ERROR`](Self::RELATIVE_ERROR) of the exact sample
    /// quantile, exact at the extremes (clamped to min/max).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1).min(self.count);
        // The extreme ranks are the tracked extremes themselves: the
        // nearest-rank sample at rank `count` IS the maximum, at rank 1
        // the minimum — no bucket resolution involved.
        if rank == self.count {
            return self.max;
        }
        let mut seen = self.underflow;
        if rank <= seen {
            return self.min.max(0.0).min(self.max);
        }
        if rank == 1 {
            return self.min;
        }
        for (&id, &n) in &self.buckets {
            seen += n;
            if rank <= seen {
                return bucket_mid(id).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another histogram (u64 bucket adds: rank-order independent
    /// up to float rounding of `sum`).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (&id, &n) in &other.buckets {
            *self.buckets.entry(id).or_insert(0) += n;
        }
        self.underflow += other.underflow;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The sparse `(bucket id, count)` pairs in ascending bucket order,
    /// with the underflow bucket (if occupied) reported as id
    /// `i32::MIN`. Two histograms with equal snapshots held identical
    /// sample distributions up to bucket resolution.
    pub fn bucket_snapshot(&self) -> Vec<(i32, u64)> {
        let mut v = Vec::with_capacity(self.buckets.len() + 1);
        if self.underflow > 0 {
            v.push((i32::MIN, self.underflow));
        }
        v.extend(self.buckets.iter().map(|(&id, &n)| (id, n)));
        v
    }
}

impl Serialize for LogHistogram {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("count".to_string(), Value::from(self.count));
        m.insert("sum".to_string(), Value::from(self.sum));
        m.insert("min".to_string(), Value::from(self.min()));
        m.insert("max".to_string(), Value::from(self.max()));
        m.insert("p50".to_string(), Value::from(self.quantile(0.50)));
        m.insert("p99".to_string(), Value::from(self.quantile(0.99)));
        m.insert("p999".to_string(), Value::from(self.quantile(0.999)));
        let buckets = self
            .bucket_snapshot()
            .into_iter()
            .map(|(id, n)| Value::Array(vec![Value::from(id as f64), Value::from(n)]))
            .collect();
        m.insert("buckets".to_string(), Value::Array(buckets));
        Value::Object(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank quantile for reference.
    fn exact_quantile(samples: &mut [f64], q: f64) -> f64 {
        samples.sort_by(f64::total_cmp);
        let rank = ((q * samples.len() as f64).ceil() as usize).max(1).min(samples.len());
        samples[rank - 1]
    }

    #[test]
    fn bucket_id_is_monotone_and_log_linear() {
        assert_eq!(bucket_id(1.0), 0);
        assert_eq!(bucket_id(2.0), SUBBUCKETS as i32);
        assert_eq!(bucket_id(0.5), -(SUBBUCKETS as i32));
        let mut prev = bucket_id(1e-9);
        let mut v = 1e-9;
        while v < 1e9 {
            v *= 1.01;
            let id = bucket_id(v);
            assert!(id >= prev, "bucket ids must be monotone in the value");
            prev = id;
        }
    }

    #[test]
    fn quantile_error_is_bounded() {
        // Log-uniform samples over six decades: the histogram quantile
        // must stay within the pinned relative-error contract of the
        // exact nearest-rank quantile at every probed q.
        let mut h = LogHistogram::new();
        let mut samples = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let u = (x >> 11) as f64 / (1u64 << 53) as f64;
            let v = 10f64.powf(-3.0 + 6.0 * u);
            h.record(v);
            samples.push(v);
        }
        for q in [0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999] {
            let exact = exact_quantile(&mut samples, q);
            let approx = h.quantile(q);
            let rel = (approx - exact).abs() / exact;
            assert!(rel <= LogHistogram::RELATIVE_ERROR, "q={q}: {approx} vs {exact} rel={rel}");
        }
        // Extremes are exact, not just bounded.
        assert_eq!(h.quantile(0.0), h.min());
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn merge_is_rank_order_independent() {
        // Three "ranks" with disjoint sample sets: every merge order must
        // produce identical bucket snapshots and quantiles.
        let mut parts = Vec::new();
        for r in 0..3u64 {
            let mut h = LogHistogram::new();
            for i in 0..100 {
                h.record(0.1 + (r * 100 + i) as f64 * 0.37);
            }
            parts.push(h);
        }
        let orders: [[usize; 3]; 3] = [[0, 1, 2], [2, 0, 1], [1, 2, 0]];
        let merged: Vec<LogHistogram> = orders
            .iter()
            .map(|ord| {
                let mut m = LogHistogram::new();
                for &i in ord {
                    m.merge(&parts[i]);
                }
                m
            })
            .collect();
        for m in &merged[1..] {
            assert_eq!(m.bucket_snapshot(), merged[0].bucket_snapshot());
            assert_eq!(m.count(), merged[0].count());
            assert_eq!(m.quantile(0.5), merged[0].quantile(0.5));
            assert_eq!(m.quantile(0.99), merged[0].quantile(0.99));
            assert_eq!(m.min(), merged[0].min());
            assert_eq!(m.max(), merged[0].max());
        }
    }

    #[test]
    fn underflow_and_empty_are_well_defined() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-1.0);
        h.record(2.0);
        assert_eq!(h.count(), 3);
        // Rank 1 and 2 land in the underflow bucket (representative:
        // clamped exact min, floored at zero), rank 3 in the 2.0 bucket.
        assert_eq!(h.quantile(0.34), 0.0);
        let p = h.quantile(1.0);
        assert_eq!(p, 2.0);
    }

    #[test]
    fn serializes_with_quantiles_and_buckets() {
        let mut h = LogHistogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        let v = h.to_value();
        assert_eq!(v["count"].as_u64(), Some(100));
        assert!(v["p50"].as_f64().unwrap() > 40.0);
        assert!(v["p99"].as_f64().unwrap() > 90.0);
        assert!(v["buckets"].as_array().unwrap().len() > 3);
    }
}
