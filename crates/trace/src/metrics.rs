//! The metrics registry: counters, gauges and summaries with per-rank
//! scoping and SPMD merge semantics.
//!
//! `SolveStats` (in `qdd-util`) remains the hot-path ledger the solvers
//! write into; [`MetricsRegistry`] is the superset representation those
//! ledgers (and the comm counters) export into for aggregation and
//! reporting. Merge semantics: counters add, gauges take the maximum,
//! summaries combine, histogram buckets add — all associative and
//! commutative up to floating-point rounding (bucket counts exactly), so
//! the SPMD reduction order does not matter.
//!
//! Hot paths never touch a shared registry: [`ShardedMetrics`] hands
//! each lane (worker, rank) a private registry to record into —
//! wait-free by ownership, no atomics or locks per increment — and folds
//! the shards in fixed lane order at a phase boundary.

use crate::histogram::LogHistogram;
use serde::Serialize;
use std::collections::BTreeMap;

/// Running min / mean / max summary (a poor man's histogram).
#[derive(Clone, Debug, Serialize)]
pub struct Summary {
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    pub fn new() -> Self {
        Self { n: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    pub fn record(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// Combine two summaries (as if all samples had been recorded here).
    pub fn merge(&mut self, other: &Summary) {
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Per-rank (or merged) metrics: counters add, gauges max, summaries
/// merge, histogram buckets add.
#[derive(Clone, Debug, Default, Serialize)]
pub struct MetricsRegistry {
    /// The rank these metrics describe; `None` after merging across ranks.
    pub rank: Option<u32>,
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
    summaries: BTreeMap<String, Summary>,
    histograms: BTreeMap<String, LogHistogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn for_rank(rank: u32) -> Self {
        Self { rank: Some(rank), ..Self::default() }
    }

    /// Add to a monotonically increasing counter.
    pub fn add(&mut self, name: &str, delta: f64) {
        *self.counters.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Set a gauge (last-write-wins locally, max across ranks).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record a sample into a named summary.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.summaries.entry(name.to_string()).or_default().record(value);
    }

    /// Record a sample into a named log-linear histogram.
    pub fn record_hist(&mut self, name: &str, value: f64) {
        self.histograms.entry(name.to_string()).or_default().record(value);
    }

    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn summary(&self, name: &str) -> Option<&Summary> {
        self.summaries.get(name)
    }

    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    pub fn counters(&self) -> &BTreeMap<String, f64> {
        &self.counters
    }

    pub fn histograms(&self) -> &BTreeMap<String, LogHistogram> {
        &self.histograms
    }

    /// Merge another rank's registry into this one. Associative and
    /// commutative (up to floating-point rounding in counter sums).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        if self.rank != other.rank {
            self.rank = None;
        }
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, v) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_insert(f64::NEG_INFINITY);
            *e = e.max(*v);
        }
        for (k, s) in &other.summaries {
            self.summaries.entry(k.clone()).or_default().merge(s);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    pub fn to_json(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("metrics registry serializes")
    }
}

/// Wait-free hot-path metric recording: one private [`MetricsRegistry`]
/// per lane. A lane's increments touch only memory that lane owns — no
/// atomics, locks, or false sharing on the record path — and
/// [`ShardedMetrics::fold`] merges the shards in ascending lane order at
/// a phase boundary, so the reduction is deterministic for a fixed lane
/// count (and, because bucket/counter merges are associative and
/// commutative, value-identical for any).
#[derive(Clone, Debug)]
pub struct ShardedMetrics {
    shards: Vec<MetricsRegistry>,
}

impl ShardedMetrics {
    pub fn new(lanes: usize) -> Self {
        Self { shards: vec![MetricsRegistry::new(); lanes.max(1)] }
    }

    pub fn lanes(&self) -> usize {
        self.shards.len()
    }

    /// The mutable registry of one lane. Callers split `&mut self` so
    /// each worker sees exactly its own shard (e.g. via
    /// `shards_mut().par-chunks` or by moving shards into workers).
    pub fn shard_mut(&mut self, lane: usize) -> &mut MetricsRegistry {
        &mut self.shards[lane]
    }

    /// All shards, for handing one `&mut` slot to each worker.
    pub fn shards_mut(&mut self) -> &mut [MetricsRegistry] {
        &mut self.shards
    }

    /// Fold every shard into `target` in ascending lane order (the
    /// phase-boundary merge).
    pub fn fold(&self, target: &mut MetricsRegistry) {
        for shard in &self.shards {
            target.merge(shard);
        }
    }
}

/// Fault-handling counters of one rank's comm runtime: what the injector
/// did and what the recovery machinery spent. All counts add under merge
/// (each rank sees its own faults).
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize)]
pub struct FaultStats {
    /// Failed delivery attempts that were retried.
    pub retries: u64,
    /// Exchanges that exhausted their retry budget.
    pub timeouts: u64,
    /// Corrupted faces detected by checksum mismatch.
    pub corruptions: u64,
    /// Straggler-delayed messages (injected delays, not backoff).
    pub delays: u64,
    /// Modeled latency added by delays and retry backoff, microseconds.
    pub delay_us: f64,
    /// Schwarz exchanges this rank skipped entirely (hiccups).
    pub hiccups: u64,
    /// Skip markers received from hiccuping peers. Distinct from
    /// `timeouts`: the peer announced the face is deliberately absent,
    /// no retry budget was spent waiting for it.
    pub peer_skips: u64,
    /// Halo faces zero-filled by the degrade policy after a fault.
    pub zero_fills: u64,
}

impl FaultStats {
    /// True if no fault activity was recorded at all.
    pub fn is_clean(&self) -> bool {
        *self == FaultStats::default()
    }

    pub fn merge(&mut self, other: &FaultStats) {
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.corruptions += other.corruptions;
        self.delays += other.delays;
        self.delay_us += other.delay_us;
        self.hiccups += other.hiccups;
        self.peer_skips += other.peer_skips;
        self.zero_fills += other.zero_fills;
    }

    /// The change from `earlier` to `self` (both from the same rank).
    pub fn since(&self, earlier: &FaultStats) -> FaultStats {
        FaultStats {
            retries: self.retries - earlier.retries,
            timeouts: self.timeouts - earlier.timeouts,
            corruptions: self.corruptions - earlier.corruptions,
            delays: self.delays - earlier.delays,
            delay_us: self.delay_us - earlier.delay_us,
            hiccups: self.hiccups - earlier.hiccups,
            peer_skips: self.peer_skips - earlier.peer_skips,
            zero_fills: self.zero_fills - earlier.zero_fills,
        }
    }

    /// Fold into a metrics registry under `fault.*` keys.
    pub fn export(&self, reg: &mut MetricsRegistry) {
        reg.add("fault.retries", self.retries as f64);
        reg.add("fault.timeouts", self.timeouts as f64);
        reg.add("fault.corruptions", self.corruptions as f64);
        reg.add("fault.delays", self.delays as f64);
        reg.add("fault.delay_us", self.delay_us);
        reg.add("fault.hiccups", self.hiccups as f64);
        reg.add("fault.peer_skips", self.peer_skips as f64);
        reg.add("fault.zero_fills", self.zero_fills as f64);
    }
}

/// Snapshot of one rank's communication counters (see `qdd-comm`'s
/// `CommCounters`): total and per-direction traffic, message and
/// reduction counts. Lives here so solver outcomes can carry it without
/// depending on the runtime.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct CommStats {
    /// Total payload bytes handed to the transport.
    pub bytes_sent: f64,
    /// Total payload bytes successfully delivered off the transport.
    /// Counted exactly once per message at delivery — retried deliveries
    /// are not re-counted, and a message abandoned when its retry budget
    /// runs out is not counted at all. Independent of `bytes_sent`: a
    /// rank that hiccups (sends nothing) still receives and merges peer
    /// faces.
    pub bytes_received: f64,
    /// Bytes per (dimension, direction): `[dim][0]` = backward,
    /// `[dim][1]` = forward, dims ordered x, y, z, t.
    pub bytes_by_dir: [[f64; 2]; 4],
    /// Number of face messages sent.
    pub messages_sent: u64,
    /// Number of global reductions participated in.
    pub reductions: u64,
    /// Wall-clock seconds spent blocked in face receives — the measured
    /// *exposed* communication time (Fig. 4: overlap hides the rest).
    pub recv_wait_s: f64,
    /// Fault injection and recovery activity (all zero on a clean fabric).
    pub faults: FaultStats,
}

impl CommStats {
    /// Aggregate another rank's snapshot into this one.
    pub fn merge(&mut self, other: &CommStats) {
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        for d in 0..4 {
            for o in 0..2 {
                self.bytes_by_dir[d][o] += other.bytes_by_dir[d][o];
            }
        }
        self.messages_sent += other.messages_sent;
        self.recv_wait_s += other.recv_wait_s;
        // Reductions are collective: every rank participates in the same
        // ones, so aggregation takes the max, not the sum.
        self.reductions = self.reductions.max(other.reductions);
        self.faults.merge(&other.faults);
    }

    /// The change from `earlier` to `self` (both from the same rank).
    pub fn since(&self, earlier: &CommStats) -> CommStats {
        let mut d = CommStats {
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            bytes_received: self.bytes_received - earlier.bytes_received,
            bytes_by_dir: self.bytes_by_dir,
            messages_sent: self.messages_sent - earlier.messages_sent,
            reductions: self.reductions - earlier.reductions,
            recv_wait_s: self.recv_wait_s - earlier.recv_wait_s,
            faults: self.faults.since(&earlier.faults),
        };
        for dim in 0..4 {
            for o in 0..2 {
                d.bytes_by_dir[dim][o] -= earlier.bytes_by_dir[dim][o];
            }
        }
        d
    }

    /// Fold into a metrics registry under `comm.*` (and `fault.*`) keys.
    pub fn export(&self, reg: &mut MetricsRegistry) {
        if !self.faults.is_clean() {
            self.faults.export(reg);
        }
        reg.add("comm.bytes_sent", self.bytes_sent);
        reg.add("comm.bytes_received", self.bytes_received);
        reg.add("comm.messages_sent", self.messages_sent as f64);
        reg.add("comm.recv_wait_s", self.recv_wait_s);
        reg.set_gauge("comm.reductions", self.reductions as f64);
        const DIM: [&str; 4] = ["x", "y", "z", "t"];
        const DIR: [&str; 2] = ["bwd", "fwd"];
        for (bytes_dir, dim) in self.bytes_by_dir.iter().zip(DIM) {
            for (&bytes, dir) in bytes_dir.iter().zip(DIR) {
                if bytes > 0.0 {
                    reg.add(&format!("comm.bytes.{dim}.{dir}"), bytes);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(rank: u32, c: f64, g: f64, samples: &[f64]) -> MetricsRegistry {
        let mut r = MetricsRegistry::for_rank(rank);
        r.add("flops", c);
        r.set_gauge("iters", g);
        for &s in samples {
            r.observe("residual", s);
        }
        r
    }

    #[test]
    fn counters_add_gauges_max_summaries_merge() {
        let mut a = reg(0, 10.0, 5.0, &[1.0, 3.0]);
        let b = reg(1, 4.0, 7.0, &[2.0]);
        a.merge(&b);
        assert_eq!(a.rank, None);
        assert_eq!(a.counter("flops"), 14.0);
        assert_eq!(a.gauge("iters"), Some(7.0));
        let s = a.summary("residual").unwrap();
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn merge_is_associative() {
        let parts = [
            reg(0, 1.5, 1.0, &[0.5]),
            reg(1, 2.5, 9.0, &[0.25, 4.0]),
            reg(2, 4.0, 3.0, &[]),
            reg(3, 8.0, 2.0, &[7.0]),
        ];
        // (((0+1)+2)+3) vs (0+((1+2)+3)) vs pairwise tree.
        let mut left = parts[0].clone();
        for p in &parts[1..] {
            left.merge(p);
        }
        let mut right_tail = parts[1].clone();
        right_tail.merge(&parts[2]);
        right_tail.merge(&parts[3]);
        let mut right = parts[0].clone();
        right.merge(&right_tail);
        let mut tree_a = parts[0].clone();
        tree_a.merge(&parts[1]);
        let mut tree_b = parts[2].clone();
        tree_b.merge(&parts[3]);
        tree_a.merge(&tree_b);

        for combined in [&right, &tree_a] {
            assert!((left.counter("flops") - combined.counter("flops")).abs() < 1e-12);
            assert_eq!(left.gauge("iters"), combined.gauge("iters"));
            let (ls, cs) =
                (left.summary("residual").unwrap(), combined.summary("residual").unwrap());
            assert_eq!(ls.count(), cs.count());
            assert_eq!(ls.min(), cs.min());
            assert_eq!(ls.max(), cs.max());
            assert!((ls.sum() - cs.sum()).abs() < 1e-12);
        }
    }

    #[test]
    fn comm_stats_delta_and_merge() {
        let earlier = CommStats {
            bytes_sent: 100.0,
            bytes_received: 80.0,
            bytes_by_dir: [[0.0, 100.0], [0.0; 2], [0.0; 2], [0.0; 2]],
            messages_sent: 2,
            reductions: 1,
            recv_wait_s: 0.25,
            faults: FaultStats { retries: 1, ..FaultStats::default() },
        };
        let mut later = earlier.clone();
        later.bytes_sent += 50.0;
        later.bytes_received += 30.0;
        later.recv_wait_s += 0.5;
        later.bytes_by_dir[3][0] += 50.0;
        later.messages_sent += 1;
        later.reductions += 4;
        later.faults.retries += 2;
        later.faults.timeouts += 1;
        let d = later.since(&earlier);
        assert_eq!(d.bytes_received, 30.0);
        assert_eq!(d.recv_wait_s, 0.5);
        assert_eq!(d.faults.retries, 2);
        assert_eq!(d.faults.timeouts, 1);
        assert!(!d.faults.is_clean());
        assert_eq!(d.bytes_sent, 50.0);
        assert_eq!(d.bytes_by_dir[3][0], 50.0);
        assert_eq!(d.bytes_by_dir[0][1], 0.0);
        assert_eq!(d.messages_sent, 1);
        assert_eq!(d.reductions, 4);

        let mut total = d.clone();
        total.merge(&d);
        assert_eq!(total.bytes_sent, 100.0);
        assert_eq!(total.reductions, 4, "reductions are collective: max, not sum");
    }

    #[test]
    fn registry_histograms_merge_bucket_exact() {
        let mut a = MetricsRegistry::for_rank(0);
        let mut b = MetricsRegistry::for_rank(1);
        for i in 0..50 {
            a.record_hist("latency_ms", 1.0 + i as f64);
            b.record_hist("latency_ms", 100.0 + i as f64);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        let (hab, hba) = (ab.histogram("latency_ms").unwrap(), ba.histogram("latency_ms").unwrap());
        assert_eq!(hab.bucket_snapshot(), hba.bucket_snapshot());
        assert_eq!(hab.count(), 100);
        assert_eq!(hab.quantile(0.5), hba.quantile(0.5));
        // Histograms serialize along with the rest of the registry.
        let v = ab.to_json();
        assert_eq!(v["histograms"]["latency_ms"]["count"].as_u64(), Some(100));
    }

    #[test]
    fn sharded_metrics_fold_in_lane_order() {
        let mut shards = ShardedMetrics::new(4);
        for (lane, shard) in shards.shards_mut().iter_mut().enumerate() {
            shard.add("par.jobs", (lane + 1) as f64);
            shard.record_hist("par.block_ms", 0.5 * (lane + 1) as f64);
        }
        let mut total = MetricsRegistry::new();
        shards.fold(&mut total);
        assert_eq!(total.counter("par.jobs"), 10.0);
        let h = total.histogram("par.block_ms").unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 2.0);
    }

    #[test]
    fn summary_roundtrip_matches_util_semantics() {
        let mut s = Summary::new();
        for x in [3.0, 1.0, 2.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
    }
}
