//! The span/event recorder.
//!
//! A [`TraceSink`] is a cheaply clonable handle to a shared event store.
//! The default sink is *disabled*: it holds no store, and every record
//! call reduces to one branch on an `Option` — solvers can record
//! unconditionally without measurable overhead. Enabling tracing means
//! constructing the sink with [`TraceSink::for_rank`] and cloning the
//! handle into whatever records (clones share the store and the time
//! origin, so spans from different layers nest on one timeline).
//!
//! Threaded code (the parallel Schwarz sweep, the SPMD rank threads)
//! records through a per-thread [`ThreadRecorder`]: events buffer in a
//! thread-local `Vec` and flush into the shared store in one lock
//! acquisition, so workers never contend per event.

use crate::phase::Phase;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What kind of event a record is.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// Span start (Chrome-trace `B`).
    Begin,
    /// Span end (Chrome-trace `E`), matching the innermost open `Begin`
    /// of the same phase on the same thread.
    End,
    /// A complete span with an explicit duration (Chrome-trace `X`) —
    /// used for synthetic spans such as the machine model's predictions.
    Complete { dur_ns: u64 },
    /// A point event (Chrome-trace `i`).
    Instant,
    /// A sampled value (Chrome-trace `C`), e.g. the per-iteration
    /// relative residual.
    Counter { value: f64 },
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct Event {
    pub phase: Phase,
    /// Optional display-name override (defaults to the phase label).
    pub name: Option<String>,
    /// Thread lane within the rank (0 = the rank's main thread).
    pub tid: u32,
    /// Nanoseconds since the sink was created.
    pub ts_ns: u64,
    pub kind: EventKind,
    /// Small numeric payload (iteration numbers, byte counts, ...).
    pub args: Vec<(&'static str, f64)>,
}

struct SinkInner {
    rank: u32,
    start: Instant,
    events: Mutex<Vec<Event>>,
}

/// Handle to a (possibly disabled) trace event store.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<SinkInner>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "TraceSink(disabled)"),
            Some(i) => write!(f, "TraceSink(rank {})", i.rank),
        }
    }
}

impl TraceSink {
    /// The no-op sink (also what `Default` gives you).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled sink for rank 0 (single-rank runs).
    pub fn enabled() -> Self {
        Self::for_rank(0)
    }

    /// An enabled sink whose events carry the given rank (Chrome `pid`).
    pub fn for_rank(rank: u32) -> Self {
        Self {
            inner: Some(Arc::new(SinkInner {
                rank,
                start: Instant::now(),
                events: Mutex::new(Vec::new()),
            })),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    pub fn rank(&self) -> u32 {
        self.inner.as_ref().map_or(0, |i| i.rank)
    }

    /// Append a fully-formed event (explicit timestamps; used by the
    /// deterministic exporter tests and the machine-model predictions).
    pub fn record(&self, ev: Event) {
        if let Some(inner) = &self.inner {
            inner.events.lock().unwrap().push(ev);
        }
    }

    /// Open a span on the calling rank's main lane.
    #[inline]
    pub fn begin(&self, phase: Phase) {
        if let Some(inner) = &self.inner {
            let ts_ns = inner.start.elapsed().as_nanos() as u64;
            inner.events.lock().unwrap().push(Event {
                phase,
                name: None,
                tid: 0,
                ts_ns,
                kind: EventKind::Begin,
                args: Vec::new(),
            });
        }
    }

    /// Close the innermost open span of `phase` on the main lane.
    #[inline]
    pub fn end(&self, phase: Phase) {
        if let Some(inner) = &self.inner {
            let ts_ns = inner.start.elapsed().as_nanos() as u64;
            inner.events.lock().unwrap().push(Event {
                phase,
                name: None,
                tid: 0,
                ts_ns,
                kind: EventKind::End,
                args: Vec::new(),
            });
        }
    }

    /// Close the innermost open span of `phase`, attaching args to the end
    /// event (e.g. bytes moved during the span).
    #[inline]
    pub fn end_with(&self, phase: Phase, args: &[(&'static str, f64)]) {
        if let Some(inner) = &self.inner {
            let ts_ns = inner.start.elapsed().as_nanos() as u64;
            inner.events.lock().unwrap().push(Event {
                phase,
                name: None,
                tid: 0,
                ts_ns,
                kind: EventKind::End,
                args: args.to_vec(),
            });
        }
    }

    /// Record a sampled residual: counter event on the `Residual` lane.
    #[inline]
    pub fn residual(&self, iteration: u64, rel: f64) {
        if let Some(inner) = &self.inner {
            let ts_ns = inner.start.elapsed().as_nanos() as u64;
            inner.events.lock().unwrap().push(Event {
                phase: Phase::Residual,
                name: None,
                tid: 0,
                ts_ns,
                kind: EventKind::Counter { value: rel },
                args: vec![("iteration", iteration as f64)],
            });
        }
    }

    /// Record a generic counter sample.
    #[inline]
    pub fn counter(&self, phase: Phase, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            let ts_ns = inner.start.elapsed().as_nanos() as u64;
            inner.events.lock().unwrap().push(Event {
                phase,
                name: Some(name.to_string()),
                tid: 0,
                ts_ns,
                kind: EventKind::Counter { value },
                args: Vec::new(),
            });
        }
    }

    /// Record a complete span with an explicit position and duration.
    pub fn complete_at(
        &self,
        phase: Phase,
        tid: u32,
        ts_ns: u64,
        dur_ns: u64,
        name: Option<String>,
        args: &[(&'static str, f64)],
    ) {
        self.record(Event {
            phase,
            name,
            tid,
            ts_ns,
            kind: EventKind::Complete { dur_ns },
            args: args.to_vec(),
        });
    }

    /// A buffered recorder for one worker thread. `tid` 0 is the rank's
    /// main lane; give workers distinct nonzero lanes.
    pub fn thread(&self, tid: u32) -> ThreadRecorder {
        ThreadRecorder { inner: self.inner.clone(), tid, buf: Vec::new() }
    }

    /// Snapshot of all recorded events, ordered by record time per lane.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.events.lock().unwrap().clone(),
        }
    }

    /// `(rank, events)` — the exporter input for this sink.
    pub fn stream(&self) -> (u32, Vec<Event>) {
        (self.rank(), self.events())
    }
}

/// Per-thread event buffer (see module docs). Flushes on drop.
pub struct ThreadRecorder {
    inner: Option<Arc<SinkInner>>,
    tid: u32,
    buf: Vec<Event>,
}

impl ThreadRecorder {
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    #[inline]
    pub fn begin(&mut self, phase: Phase) {
        if let Some(inner) = &self.inner {
            let ts_ns = inner.start.elapsed().as_nanos() as u64;
            self.buf.push(Event {
                phase,
                name: None,
                tid: self.tid,
                ts_ns,
                kind: EventKind::Begin,
                args: Vec::new(),
            });
        }
    }

    #[inline]
    pub fn end(&mut self, phase: Phase) {
        if let Some(inner) = &self.inner {
            let ts_ns = inner.start.elapsed().as_nanos() as u64;
            self.buf.push(Event {
                phase,
                name: None,
                tid: self.tid,
                ts_ns,
                kind: EventKind::End,
                args: Vec::new(),
            });
        }
    }

    /// Push the buffered events into the shared store (one lock).
    pub fn flush(&mut self) {
        if let Some(inner) = &self.inner {
            if !self.buf.is_empty() {
                inner.events.lock().unwrap().append(&mut self.buf);
            }
        }
    }
}

impl Drop for ThreadRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Check span balance: on every thread lane, each `End` must match the
/// innermost open `Begin` of the same phase, and no span may stay open.
/// Returns the maximum nesting depth observed.
pub fn validate_balance(events: &[Event]) -> Result<usize, String> {
    use std::collections::BTreeMap;
    let mut stacks: BTreeMap<u32, Vec<Phase>> = BTreeMap::new();
    let mut max_depth = 0usize;
    for ev in events {
        match ev.kind {
            EventKind::Begin => {
                let stack = stacks.entry(ev.tid).or_default();
                stack.push(ev.phase);
                max_depth = max_depth.max(stack.len());
            }
            EventKind::End => {
                let stack = stacks.entry(ev.tid).or_default();
                match stack.pop() {
                    Some(open) if open == ev.phase => {}
                    Some(open) => {
                        return Err(format!(
                            "tid {}: end of {:?} closes open {:?}",
                            ev.tid, ev.phase, open
                        ))
                    }
                    None => {
                        return Err(format!(
                            "tid {}: end of {:?} with no open span",
                            ev.tid, ev.phase
                        ))
                    }
                }
            }
            _ => {}
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!("tid {tid}: {} span(s) left open: {:?}", stack.len(), stack));
        }
    }
    Ok(max_depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::disabled();
        sink.begin(Phase::Solve);
        sink.residual(1, 0.5);
        sink.end(Phase::Solve);
        assert!(!sink.is_enabled());
        assert!(sink.events().is_empty());
    }

    #[test]
    fn clones_share_one_store() {
        let sink = TraceSink::for_rank(3);
        let other = sink.clone();
        sink.begin(Phase::Solve);
        other.begin(Phase::OperatorApply);
        other.end(Phase::OperatorApply);
        sink.end(Phase::Solve);
        let ev = sink.events();
        assert_eq!(ev.len(), 4);
        assert_eq!(sink.rank(), 3);
        assert_eq!(validate_balance(&ev), Ok(2));
    }

    #[test]
    fn thread_recorders_buffer_then_flush() {
        let sink = TraceSink::enabled();
        {
            let mut rec = sink.thread(7);
            rec.begin(Phase::DomainSolve);
            rec.end(Phase::DomainSolve);
            assert!(sink.events().is_empty(), "buffered events must not be visible yet");
        } // drop flushes
        let ev = sink.events();
        assert_eq!(ev.len(), 2);
        assert!(ev.iter().all(|e| e.tid == 7));
        assert_eq!(validate_balance(&ev), Ok(1));
    }

    #[test]
    fn balance_detects_mismatched_and_dangling_spans() {
        let sink = TraceSink::enabled();
        sink.begin(Phase::Solve);
        sink.end(Phase::OperatorApply);
        assert!(validate_balance(&sink.events()).is_err());

        let sink = TraceSink::enabled();
        sink.begin(Phase::Solve);
        assert!(validate_balance(&sink.events()).is_err());

        let sink = TraceSink::enabled();
        sink.end(Phase::Solve);
        assert!(validate_balance(&sink.events()).is_err());
    }

    #[test]
    fn nesting_depth_is_reported() {
        let sink = TraceSink::enabled();
        for p in [Phase::Solve, Phase::ArnoldiStep, Phase::Precondition, Phase::DomainSolve] {
            sink.begin(p);
        }
        for p in [Phase::DomainSolve, Phase::Precondition, Phase::ArnoldiStep, Phase::Solve] {
            sink.end(p);
        }
        assert_eq!(validate_balance(&sink.events()), Ok(4));
    }
}
