//! Golden-file test for the Chrome-trace exporter.
//!
//! The trace is built from explicit timestamps (never the wall clock),
//! so the exporter output is bit-for-bit deterministic. Regenerate the
//! golden file after an intentional format change with:
//!
//! ```text
//! BLESS=1 cargo test -p qdd-trace --test golden_chrome
//! ```

use qdd_trace::{chrome_trace, jsonl, Event, EventKind, Phase, TraceSink};

fn deterministic_streams() -> Vec<(u32, Vec<Event>)> {
    let mut streams = Vec::new();
    for rank in 0..2u32 {
        let sink = TraceSink::for_rank(rank);
        let base = 1_000 * rank as u64;
        sink.record(Event {
            phase: Phase::Solve,
            name: None,
            tid: 0,
            ts_ns: base,
            kind: EventKind::Begin,
            args: vec![],
        });
        sink.record(Event {
            phase: Phase::ArnoldiStep,
            name: None,
            tid: 0,
            ts_ns: base + 2_000,
            kind: EventKind::Begin,
            args: vec![("iteration", 1.0)],
        });
        sink.complete_at(Phase::Precondition, 0, base + 3_000, 40_000, None, &[]);
        sink.complete_at(
            Phase::OperatorApply,
            0,
            base + 44_000,
            10_000,
            None,
            &[("flops", 1536.0)],
        );
        sink.complete_at(Phase::GlobalSum, 0, base + 56_000, 2_000, None, &[]);
        sink.record(Event {
            phase: Phase::Residual,
            name: None,
            tid: 0,
            ts_ns: base + 60_000,
            kind: EventKind::Counter { value: 0.125 },
            args: vec![("iteration", 1.0)],
        });
        sink.record(Event {
            phase: Phase::ArnoldiStep,
            name: None,
            tid: 0,
            ts_ns: base + 62_000,
            kind: EventKind::End,
            args: vec![],
        });
        // A worker lane with one domain solve.
        sink.complete_at(Phase::DomainSolve, 1, base + 5_000, 30_000, None, &[("domain", 3.0)]);
        // A predicted span, as the machine model emits them.
        sink.complete_at(
            Phase::OperatorApply,
            9,
            base,
            25_000,
            Some("predicted operator A".to_string()),
            &[("kncs", 64.0), ("predicted", 1.0)],
        );
        sink.record(Event {
            phase: Phase::Solve,
            name: None,
            tid: 0,
            ts_ns: base + 70_000,
            kind: EventKind::End,
            args: vec![],
        });
        streams.push(sink.stream());
    }
    streams
}

fn check_golden(actual: &str, file: &str) {
    let path = format!("{}/tests/golden/{file}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var("BLESS").is_ok() {
        std::fs::write(&path, actual).unwrap();
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path}: {e} (run with BLESS=1)"));
    assert_eq!(actual.trim_end(), expected.trim_end(), "golden mismatch for {file}");
}

#[test]
fn chrome_trace_matches_golden_file() {
    let streams = deterministic_streams();
    let out = chrome_trace(&streams);
    // Structural validity first: parses, and every event has the
    // mandatory Chrome-trace fields.
    let doc: serde_json::Value = serde_json::from_str(&out).unwrap();
    let events = doc["traceEvents"].as_array().unwrap();
    assert!(!events.is_empty());
    for ev in events {
        assert!(ev["ph"].is_string());
        assert!(ev["pid"].is_number());
        assert!(ev["tid"].is_number());
    }
    check_golden(&out, "chrome_trace.json");
}

#[test]
fn jsonl_matches_golden_file() {
    let streams = deterministic_streams();
    let out = jsonl(&streams);
    for line in out.lines() {
        let v: serde_json::Value = serde_json::from_str(line).unwrap();
        assert!(v["kind"].is_string());
    }
    check_golden(&out, "events.jsonl");
}
