//! Chaos-under-supervision: seeded fault injection against the sharded
//! service, checking *request conservation* — every admitted request ends
//! in exactly one terminal state (converged | degraded | shed), none are
//! lost, none are double-counted — plus rerun determinism and bitwise
//! equivalence of the fault-free pool with the single-world solve path.

use qdd_comm::{
    dd_solve_resilient, gather_field, run_spmd, scatter_clover, scatter_field, scatter_gauge,
    CommWorld, DistDdConfig,
};
use qdd_core::{FgmresConfig, MrConfig, Precision, SchwarzConfig};
use qdd_faults::{FaultRates, ShardFaults};
use qdd_field::fields::SpinorField;
use qdd_lattice::{Dims, RankGrid};
use qdd_serve::{
    shard_serve, ConfigKey, ConfigSource, PoolTicket, ServeStatus, ShardPoolConfig, SolveRequest,
    SolveResponse, SyntheticSource,
};
use qdd_trace::TraceSink;
use qdd_util::rng::Rng64;
use qdd_util::stats::SolveStats;
use std::collections::HashSet;
use std::time::Duration;

fn dims() -> Dims {
    Dims::new(8, 4, 4, 8)
}

fn pool_cfg(shards: usize) -> ShardPoolConfig {
    ShardPoolConfig {
        shards,
        rank_dims: Dims::new(1, 1, 1, 2),
        solver: DistDdConfig {
            fgmres: FgmresConfig {
                max_basis: 10,
                deflate: 4,
                tolerance: 1e-8,
                max_iterations: 120,
            },
            schwarz: SchwarzConfig {
                block: Dims::new(4, 4, 4, 4),
                i_schwarz: 4,
                mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
                additive: false,
                overlap: true,
                ..Default::default()
            },
            precision: Precision::Single,
        },
        max_restarts: 1,
        retry_budget: 2,
        ..ShardPoolConfig::default()
    }
}

fn requests(n: u64) -> Vec<SolveRequest> {
    (0..n)
        .map(|i| {
            let mut rng = Rng64::new(900 + i);
            // Spread requests over two configs to exercise the shared
            // setup cache alongside the chaos.
            SolveRequest::new(ConfigKey(1 + i % 2), SpinorField::random(dims(), &mut rng))
        })
        .collect()
}

fn run_pool(
    shards: usize,
    faults: &ShardFaults,
    reqs: Vec<SolveRequest>,
) -> (Vec<SolveResponse>, qdd_serve::PoolReport) {
    let cfg = pool_cfg(shards);
    let source = SyntheticSource::new(dims());
    let sink = TraceSink::disabled();
    shard_serve(&cfg, &source, faults, &sink, |h| {
        h.submit_wave(reqs).into_iter().map(PoolTicket::wait).collect::<Vec<_>>()
    })
}

/// Every admitted request must end in exactly one terminal state — no
/// lost replies, no duplicates — whatever the shard count and however
/// sick part of the pool is.
#[test]
fn conservation_across_shard_counts_under_chaos() {
    for shards in [1usize, 2, 3] {
        // Shard 0 drops everything; the rest run clean. With one shard
        // the whole pool is sick and every request must still come back
        // (degraded), never hang or vanish.
        let faults =
            ShardFaults::none(11).with_shard(0, FaultRates { loss: 1.0, ..FaultRates::default() });
        let mut reqs = requests(5);
        // One immediately-expired request exercises the shed path.
        reqs[4].deadline = Some(Duration::ZERO);
        let admitted = reqs.len() as u64;
        let (responses, report) = run_pool(shards, &faults, reqs);

        assert_eq!(responses.len() as u64, admitted, "{shards} shards: lost replies");
        assert_eq!(report.completed, admitted, "{shards} shards: completed != admitted");

        // Exactly one reply per request id, ids exactly 0..n.
        let ids: HashSet<u64> = responses.iter().map(|r| r.request_id.0).collect();
        assert_eq!(ids.len() as u64, admitted, "{shards} shards: duplicated reply ids");
        assert_eq!(ids, (0..admitted).collect::<HashSet<u64>>());

        // One timeline per request, each with exactly one terminal stage.
        assert_eq!(report.timelines.len() as u64, admitted);
        for t in &report.timelines {
            assert!(t.is_complete(), "{shards} shards: incomplete timeline {:?}", t.stages);
            let terminals = t
                .stages
                .iter()
                .filter(|s| matches!(s.0, "solved" | "fallback" | "degraded" | "shed"))
                .count();
            assert_eq!(terminals, 1, "{shards} shards: {} terminal stages", terminals);
        }

        // Status counters add up to the admitted total (no double counting).
        let c = report.metrics.counters();
        let by_status: f64 = ["converged", "fallback", "degraded", "shed"]
            .iter()
            .map(|s| c.get(&format!("serve.status.{s}")).copied().unwrap_or(0.0))
            .sum();
        assert_eq!(by_status, admitted as f64, "{shards} shards: status counters disagree");

        // The zero-deadline request was shed, never solved.
        let shed: Vec<_> = responses.iter().filter(|r| r.status == ServeStatus::Shed).collect();
        assert_eq!(shed.len(), 1, "{shards} shards: shed count");
        assert_eq!(shed[0].iterations, 0);

        if shards > 1 {
            // A healthy sibling existed: everything not shed converged.
            for r in responses.iter().filter(|r| r.status != ServeStatus::Shed) {
                assert_eq!(r.status, ServeStatus::Converged, "{shards} shards: {}", r.status);
                assert!(r.relative_residual <= 1e-8);
            }
            assert!(report.failovers >= 1, "{shards} shards: sick shard never failed over");
        } else {
            // Nowhere to fail over: honest degradation, not a hang.
            for r in responses.iter().filter(|r| r.status != ServeStatus::Shed) {
                assert!(!r.status.meets_target(), "{shards} shards: {}", r.status);
            }
        }
    }
}

/// The same fault seed and the same wave must reproduce the run exactly:
/// statuses, iteration counts, failover totals, and every solution bit.
#[test]
fn chaos_runs_are_deterministic_under_a_fixed_seed() {
    let faults =
        ShardFaults::none(23).with_shard(0, FaultRates { loss: 1.0, ..FaultRates::default() });
    let (a, ra) = run_pool(2, &faults, requests(4));
    let (b, rb) = run_pool(2, &faults, requests(4));
    assert_eq!(ra.failovers, rb.failovers);
    assert_eq!(ra.breaker_trips, rb.breaker_trips);
    assert_eq!(ra.shard_jobs, rb.shard_jobs);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.status, y.status);
        assert_eq!(x.iterations, y.iterations);
        assert_eq!(x.relative_residual.to_bits(), y.relative_residual.to_bits());
        assert_eq!(x.solution.as_slice(), y.solution.as_slice(), "solution bits differ");
    }
}

/// Fault-free pool solutions are bitwise identical to running the same
/// resilient distributed solve directly on one world — healthy shards are
/// interchangeable with the single-world path.
#[test]
fn fault_free_pool_matches_single_world_path_bitwise() {
    let cfg = pool_cfg(2);
    let faults = ShardFaults::none(1);
    let reqs = requests(3);
    let sources: Vec<SpinorField<f64>> = reqs.iter().map(|r| r.source.clone()).collect();
    let configs: Vec<ConfigKey> = reqs.iter().map(|r| r.config).collect();
    let (responses, _) = run_pool(2, &faults, reqs);

    let synth = SyntheticSource::new(dims());
    for (i, r) in responses.iter().enumerate() {
        assert_eq!(r.status, ServeStatus::Converged, "request {i}");
        // Reference: one plain world, same rank grid, same solver config.
        let op = synth.materialize(configs[i]).unwrap();
        let grid = RankGrid::new(*op.dims(), cfg.rank_dims);
        let gauge = scatter_gauge(op.gauge(), &grid);
        let clover = scatter_clover(op.clover(), &grid);
        let b_local = scatter_field(&sources[i], &grid);
        let world = CommWorld::new(grid.clone());
        let results = run_spmd(&world, |ctx| {
            let rk = ctx.rank();
            let local_op = qdd_dirac::wilson::WilsonClover::new(
                gauge[rk].clone(),
                clover[rk].clone(),
                op.mass(),
                *op.phases(),
            );
            let mut stats = SolveStats::new();
            dd_solve_resilient(
                ctx,
                &local_op,
                &b_local[rk],
                &cfg.solver,
                cfg.max_restarts,
                &mut stats,
            )
        });
        let locals: Vec<SpinorField<f64>> = results.iter().map(|t| t.0.clone()).collect();
        let reference = gather_field(&locals, &grid);
        assert_eq!(
            r.solution.as_slice(),
            reference.as_slice(),
            "request {i}: pool solution diverged from the single-world path"
        );
        assert_eq!(r.iterations, results[0].1.outcome.iterations, "request {i}: iterations");
    }
}
