//! Per-request timelines and the serve-side model join.
//!
//! Every admitted request gets a [`qdd_trace::RequestId`] and a derived
//! [`qdd_trace::TraceId`] at admission; the worker that answers it emits
//! a [`RequestTimeline`] — the request's life as `(stage, ms)` pairs
//! measured from admission. Alongside, [`join_against_model`] prices the
//! batch's measured phase times against the `qdd-machine` KNC model,
//! producing the `model.err.*` gauges (the Fig. 4 overlap validation
//! generalized to every phase of Table III).

use crate::request::ServeStatus;
use qdd_machine::{BackendKind, Precision as ModelPrecision};
use qdd_trace::{ModelJoin, RequestId, TraceId};
use qdd_util::stats::SolveStats;
use serde::{Map, Serialize, Value};

/// One request's life, as elapsed milliseconds since admission.
///
/// Stage order is always `admitted` (0) → `coalesced` (picked off the
/// queue into a batch) → a terminal solve stage (`solved`, `fallback`,
/// or `degraded`) → `done`. A timeline with both endpoints present is
/// *complete*: the request was admitted and answered.
#[derive(Clone, Debug)]
pub struct RequestTimeline {
    pub request: RequestId,
    pub trace: TraceId,
    pub status: ServeStatus,
    /// `(stage, ms since admission)` in event order.
    pub stages: Vec<(&'static str, f64)>,
}

impl RequestTimeline {
    /// True when the timeline spans admission to completion.
    pub fn is_complete(&self) -> bool {
        self.stages.first().is_some_and(|s| s.0 == "admitted")
            && self.stages.last().is_some_and(|s| s.0 == "done")
    }

    /// Milliseconds from admission to the answer (0 if incomplete).
    pub fn total_ms(&self) -> f64 {
        self.stages.last().map_or(0.0, |s| s.1)
    }
}

impl Serialize for RequestTimeline {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("request".to_string(), Value::from(self.request.0));
        m.insert("trace".to_string(), Value::String(self.trace.to_string()));
        m.insert("status".to_string(), Value::String(self.status.to_string()));
        let stages = self
            .stages
            .iter()
            .map(|&(stage, ms)| {
                Value::Array(vec![Value::String(stage.to_string()), Value::from(ms)])
            })
            .collect();
        m.insert("stages".to_string(), Value::Array(stages));
        Value::Object(m)
    }
}

/// Join a solve's measured phase seconds (requires
/// [`SolveStats::enable_phase_timing`]) against the active machine
/// backend's prices for the same work, one entry per `model.err.*` key:
///
/// * `dirac_apply` — operator-`A` flops at the Wilson-Clover issue bound,
/// * `schwarz_sweep` — preconditioner flops at the composite DD rate,
/// * `halo_exchange` — received halo bytes through the network model
///   (zero for a single-process run: nothing crosses a wire),
/// * `global_sums` — reduction count times the allreduce latency (zero
///   at one rank).
///
/// The measured side is host wall-clock and the predicted side is the
/// chosen backend (`ServiceConfig::backend`; the KNC by default, which
/// reproduces the historical hard-coded pricing bitwise) — the ratio is
/// a *model-validation* signal, not an SLO. This delegates to
/// [`qdd_autotune::join_against_backend`] with the backend's default
/// prefetch profile.
pub fn join_against_model(
    stats: &SolveStats,
    backend: BackendKind,
    precision: qdd_core::Precision,
    i_domain: usize,
    ranks: usize,
) -> ModelJoin {
    let model_precision = match precision {
        qdd_core::Precision::Single => ModelPrecision::Single,
        qdd_core::Precision::HalfCompressed => ModelPrecision::Half,
    };
    let b = backend.instance();
    qdd_autotune::join_against_backend(
        stats,
        b,
        model_precision,
        b.default_prefetch(),
        i_domain,
        ranks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::DegradeReason;

    #[test]
    fn timeline_completeness_and_serialization() {
        let t = RequestTimeline {
            request: RequestId(3),
            trace: TraceId::derive(7, 3),
            status: ServeStatus::Converged,
            stages: vec![("admitted", 0.0), ("coalesced", 1.5), ("solved", 10.0), ("done", 10.0)],
        };
        assert!(t.is_complete());
        assert_eq!(t.total_ms(), 10.0);
        let v = t.to_value();
        assert_eq!(v["request"].as_u64(), Some(3));
        assert_eq!(v["status"].as_str(), Some("converged"));
        assert_eq!(v["trace"].as_str(), Some(TraceId::derive(7, 3).to_string().as_str()));
        assert_eq!(v["stages"].as_array().unwrap().len(), 4);

        let partial = RequestTimeline {
            request: RequestId(4),
            trace: TraceId::derive(7, 4),
            status: ServeStatus::Degraded(DegradeReason::SetupFailed),
            stages: vec![("admitted", 0.0)],
        };
        assert!(!partial.is_complete());
    }

    #[test]
    fn model_join_prices_all_four_phases() {
        use qdd_trace::model::keys;
        use qdd_util::stats::Component;
        let mut stats = SolveStats::new();
        stats.enable_phase_timing();
        stats.add_flops(Component::OperatorA, 1e9);
        stats.add_flops(Component::PreconditionerM, 4e9);
        stats.count_global_sums(10);
        stats.count_operator_application();
        let join =
            join_against_model(&stats, BackendKind::Knc7110p, qdd_core::Precision::Single, 4, 1);
        for key in [keys::DIRAC_APPLY, keys::SCHWARZ_SWEEP, keys::HALO_EXCHANGE, keys::GLOBAL_SUMS]
        {
            assert!(join.get(key).is_some(), "missing join entry {key}");
        }
        // Compute phases have real predictions; nothing crosses a wire
        // at one rank, so the network phases price to zero.
        assert!(join.get(keys::DIRAC_APPLY).unwrap().predicted_s > 0.0);
        assert!(join.get(keys::SCHWARZ_SWEEP).unwrap().predicted_s > 0.0);
        assert_eq!(join.get(keys::HALO_EXCHANGE).unwrap().predicted_s, 0.0);
        assert_eq!(join.get(keys::GLOBAL_SUMS).unwrap().predicted_s, 0.0);
        // Measured 0 vs a real prediction is a finite (near-zero) ratio.
        assert!(join.get(keys::DIRAC_APPLY).unwrap().ratio().is_finite());
    }
}
