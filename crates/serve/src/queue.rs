//! The admission queue: bounded, load-shedding, batch-draining.
//!
//! The vendored `crossbeam` stand-in only provides unbounded channels, so
//! backpressure is implemented here directly on `Mutex` + `Condvar`. The
//! queue never blocks a producer: a full queue rejects the item
//! immediately (admission control by load-shedding), which the service
//! surfaces as a `QueueFull` response instead of unbounded memory growth.
//! Consumers block on [`BoundedQueue::pop_wait`] and additionally drain
//! compatible items in one lock acquisition ([`BoundedQueue::drain_where`])
//! — the primitive request batching is built on.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Rejection from a full queue; carries the item back to the caller.
pub struct QueueFull<T>(pub T);

impl<T> std::fmt::Debug for QueueFull<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("QueueFull(..)")
    }
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue with load-shedding admission.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            capacity,
            not_empty: Condvar::new(),
        }
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit `item`, or reject it immediately if the queue is full or
    /// closed. Never blocks.
    pub fn try_push(&self, item: T) -> Result<(), QueueFull<T>> {
        let mut s = self.state.lock().unwrap();
        if s.closed || s.items.len() >= self.capacity {
            return Err(QueueFull(item));
        }
        s.items.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Block until an item is available; `None` once the queue is closed
    /// and drained. Also reports the queue depth *after* the pop (the
    /// service's queue-depth sample point).
    pub fn pop_wait(&self) -> Option<(T, usize)> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some((item, s.items.len()));
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).unwrap();
        }
    }

    /// Remove up to `max` queued items satisfying `pred`, preserving
    /// arrival order, in one lock acquisition. Non-matching items stay
    /// queued. Never blocks.
    pub fn drain_where(&self, max: usize, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut out = Vec::new();
        if max == 0 {
            return out;
        }
        let mut s = self.state.lock().unwrap();
        let mut keep = VecDeque::with_capacity(s.items.len());
        while let Some(item) = s.items.pop_front() {
            if out.len() < max && pred(&item) {
                out.push(item);
            } else {
                keep.push_back(item);
            }
        }
        s.items = keep;
        out
    }

    /// Close the queue: future pushes are rejected; consumers drain the
    /// remaining items and then observe `None`.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheds_load_when_full() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        let QueueFull(rejected) = q.try_push(3).unwrap_err();
        assert_eq!(rejected, 3);
        assert_eq!(q.len(), 2);
        // Popping frees a slot.
        assert_eq!(q.pop_wait().unwrap(), (1, 1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(10).unwrap();
        q.try_push(11).unwrap();
        q.close();
        assert!(q.try_push(12).is_err(), "closed queue must reject");
        assert_eq!(q.pop_wait().unwrap().0, 10);
        assert_eq!(q.pop_wait().unwrap().0, 11);
        assert!(q.pop_wait().is_none());
    }

    #[test]
    fn drain_where_filters_in_order() {
        let q = BoundedQueue::new(8);
        for i in 0..6 {
            q.try_push(i).unwrap();
        }
        let evens = q.drain_where(2, |x| x % 2 == 0);
        assert_eq!(evens, [0, 2]);
        // 4 stayed queued (max reached), odds untouched, order kept.
        assert_eq!(q.pop_wait().unwrap().0, 1);
        assert_eq!(q.pop_wait().unwrap().0, 3);
        assert_eq!(q.pop_wait().unwrap().0, 4);
        assert_eq!(q.pop_wait().unwrap().0, 5);
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = BoundedQueue::new(4);
        crossbeam::scope(|s| {
            let h = s.spawn(|_| q.pop_wait().map(|(v, _)| v));
            std::thread::sleep(std::time::Duration::from_millis(10));
            q.try_push(42).unwrap();
            assert_eq!(h.join().unwrap(), Some(42));
        })
        .unwrap();
    }
}
