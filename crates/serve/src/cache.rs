//! The setup cache: LRU over prepared DD solvers.
//!
//! `DdSolver::new` is the expensive part of a cold solve — clover
//! inversion for every even site, f32/f16 conversion of the gauge and
//! clover fields, domain coloring — and it depends only on the gauge
//! configuration and the solver parameters, not on the right-hand side.
//! Propagator production issues many right-hand sides against few
//! configurations, so the service keeps the most recently used prepared
//! solvers and rebuilds only on a genuine configuration (or parameter)
//! change. Hit/miss/eviction counts are exported into the `qdd-trace`
//! metrics registry by the service.

use qdd_autotune::TunedParams;
use qdd_core::DdSolver;
use std::sync::Arc;

/// An LRU cache of prepared solvers keyed by a 64-bit setup key (see
/// `request::setup_key`: config id + lattice geometry + precision policy +
/// tolerance bits).
pub struct SetupCache {
    capacity: usize,
    /// Most recently used at the back.
    entries: Vec<(u64, Arc<DdSolver>)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Whether a lookup was served from the cache.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CacheOutcome {
    Hit,
    Miss,
}

impl SetupCache {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self { capacity, entries: Vec::new(), hits: 0, misses: 0, evictions: 0 }
    }

    /// Look up `key`, building (and inserting) the solver on a miss.
    /// `build` returning `None` (singular clover block, unknown config)
    /// is passed through and nothing is inserted.
    pub fn get_or_build(
        &mut self,
        key: u64,
        build: impl FnOnce() -> Option<DdSolver>,
    ) -> (Option<Arc<DdSolver>>, CacheOutcome) {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.hits += 1;
            // Refresh recency.
            let entry = self.entries.remove(pos);
            self.entries.push(entry);
            return (Some(self.entries.last().unwrap().1.clone()), CacheOutcome::Hit);
        }
        self.misses += 1;
        let solver = match build() {
            Some(s) => Arc::new(s),
            None => return (None, CacheOutcome::Miss),
        };
        if self.entries.len() >= self.capacity {
            self.entries.remove(0);
            self.evictions += 1;
        }
        self.entries.push((key, solver.clone()));
        (Some(solver), CacheOutcome::Miss)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Hits over lookups; 0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An LRU cache of autotuned operating points keyed by problem *shape*
/// (lattice dims + backend + precision + worker count — see
/// `service::tune_key`). The model search is cheap next to a solver
/// build, but it is per shape, not per request: the service tunes once
/// and serves the cached plan thereafter. Infeasible shapes (no
/// candidate passes the constraints) cache `None` so the search does
/// not rerun every batch.
pub struct TuneCache {
    capacity: usize,
    /// Most recently used at the back.
    entries: Vec<(u64, Option<TunedParams>)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl TuneCache {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self { capacity, entries: Vec::new(), hits: 0, misses: 0, evictions: 0 }
    }

    /// Look up `key`, running the tuner on a miss. Unlike the setup
    /// cache, a `None` outcome *is* cached — "nothing feasible" is a
    /// deterministic property of the shape.
    pub fn get_or_tune(
        &mut self,
        key: u64,
        tune: impl FnOnce() -> Option<TunedParams>,
    ) -> (Option<TunedParams>, CacheOutcome) {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.hits += 1;
            let entry = self.entries.remove(pos);
            self.entries.push(entry);
            return (self.entries.last().unwrap().1, CacheOutcome::Hit);
        }
        self.misses += 1;
        let tuned = tune();
        if self.entries.len() >= self.capacity {
            self.entries.remove(0);
            self.evictions += 1;
        }
        self.entries.push((key, tuned));
        (tuned, CacheOutcome::Miss)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdd_core::{DdSolverConfig, FgmresConfig, MrConfig, SchwarzConfig};
    use qdd_dirac::clover::build_clover_field;
    use qdd_dirac::gamma::GammaBasis;
    use qdd_dirac::wilson::{BoundaryPhases, WilsonClover};
    use qdd_field::fields::GaugeField;
    use qdd_lattice::Dims;
    use qdd_util::rng::Rng64;

    fn solver(seed: u64) -> DdSolver {
        let dims = Dims::new(4, 4, 4, 4);
        let mut rng = Rng64::new(seed);
        let g = GaugeField::random(dims, &mut rng, 0.4);
        let basis = GammaBasis::degrand_rossi();
        let c = build_clover_field(&g, 1.2, &basis);
        let op = WilsonClover::new(g, c, 0.3, BoundaryPhases::antiperiodic_t());
        let cfg = DdSolverConfig {
            fgmres: FgmresConfig { max_basis: 8, deflate: 4, tolerance: 1e-8, max_iterations: 100 },
            schwarz: SchwarzConfig {
                block: Dims::new(2, 2, 2, 2),
                i_schwarz: 2,
                mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
                additive: false,
                overlap: true,
                ..Default::default()
            },
            precision: qdd_core::Precision::Single,
            workers: 1,
            fused_outer: true,
            ..Default::default()
        };
        DdSolver::new(op, cfg).unwrap()
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = SetupCache::new(2);
        let (a, o) = cache.get_or_build(1, || Some(solver(1)));
        assert!(a.is_some());
        assert_eq!(o, CacheOutcome::Miss);
        let _ = cache.get_or_build(2, || Some(solver(2)));
        // Touch 1 so 2 becomes the LRU entry.
        let (_, o) = cache.get_or_build(1, || panic!("must be cached"));
        assert_eq!(o, CacheOutcome::Hit);
        let _ = cache.get_or_build(3, || Some(solver(3)));
        assert_eq!(cache.evictions(), 1);
        // 2 was evicted; 1 survived.
        let (_, o) = cache.get_or_build(1, || panic!("must still be cached"));
        assert_eq!(o, CacheOutcome::Hit);
        let (_, o) = cache.get_or_build(2, || Some(solver(2)));
        assert_eq!(o, CacheOutcome::Miss);
        assert_eq!((cache.hits(), cache.misses()), (2, 4));
        assert!((cache.hit_rate() - 2.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn tune_cache_caches_feasible_and_infeasible_shapes() {
        let mut cache = TuneCache::new(2);
        let tuned = || {
            qdd_autotune::Autotuner::new(qdd_machine::BackendKind::Knc7110p)
                .tune(&qdd_autotune::TuneProblem::single_node(Dims::new(8, 8, 8, 8), 1, 24))
                .best()
                .copied()
        };
        let (t, o) = cache.get_or_tune(1, tuned);
        assert!(t.is_some());
        assert_eq!(o, CacheOutcome::Miss);
        let (t2, o) = cache.get_or_tune(1, || panic!("must be cached"));
        assert_eq!(o, CacheOutcome::Hit);
        assert_eq!(t.unwrap().key(), t2.unwrap().key());
        // "Nothing feasible" is cached, not recomputed per lookup.
        let (none, o) = cache.get_or_tune(2, || None);
        assert!(none.is_none());
        assert_eq!(o, CacheOutcome::Miss);
        let (none, o) = cache.get_or_tune(2, || panic!("infeasible result must be cached"));
        assert!(none.is_none());
        assert_eq!(o, CacheOutcome::Hit);
        // LRU eviction mirrors the setup cache.
        let _ = cache.get_or_tune(3, || None);
        assert_eq!(cache.evictions(), 1);
        assert_eq!((cache.hits(), cache.misses()), (2, 3));
    }

    #[test]
    fn failed_build_is_not_cached() {
        let mut cache = SetupCache::new(2);
        let (s, o) = cache.get_or_build(9, || None);
        assert!(s.is_none());
        assert_eq!(o, CacheOutcome::Miss);
        assert!(cache.is_empty());
        // A later successful build goes through normally.
        let (s, _) = cache.get_or_build(9, || Some(solver(9)));
        assert!(s.is_some());
        assert_eq!(cache.len(), 1);
    }
}
