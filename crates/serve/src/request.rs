//! Request/response vocabulary of the solve service.
//!
//! A [`SolveRequest`] names a gauge configuration by key, carries the
//! source (right-hand side) spinor, and states its quality-of-service
//! terms: target residual, optional deadline, and the preconditioner
//! precision policy. The service answers with a [`SolveResponse`] whose
//! [`ServeStatus`] is honest about what was achieved — a deadline miss or
//! an unconverged solve degrades to the best available solution instead of
//! panicking or hanging.

use qdd_core::Precision;
use qdd_dirac::clover::build_clover_field;
use qdd_dirac::gamma::GammaBasis;
use qdd_dirac::wilson::{BoundaryPhases, WilsonClover};
use qdd_field::fields::{GaugeField, SpinorField};
use qdd_lattice::Dims;
use qdd_trace::{RequestId, TraceId};
use qdd_util::rng::Rng64;
use std::time::Duration;

/// Identifier of a gauge configuration (e.g. ensemble member id). The
/// service treats it as opaque; a [`ConfigSource`] resolves it.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct ConfigKey(pub u64);

/// Where gauge configurations come from. Implementations materialize the
/// double-precision Wilson-Clover operator for a key; the service calls
/// this only on a setup-cache miss.
pub trait ConfigSource: Sync {
    /// `None` if the key is unknown (the request is then degraded with
    /// [`DegradeReason::SetupFailed`], not panicked on).
    fn materialize(&self, key: ConfigKey) -> Option<WilsonClover<f64>>;
}

/// A deterministic synthetic ensemble: configuration `k` is a random
/// gauge field seeded by `k`, so any rank/process regenerates identical
/// fields (and the benchmark's cold path can replay the exact configs the
/// service solved against).
#[derive(Copy, Clone, Debug)]
pub struct SyntheticSource {
    pub dims: Dims,
    /// Spread of the random gauge links (0 = free field).
    pub spread: f64,
    /// Quark mass parameter of the operator.
    pub mass: f64,
    /// Clover coefficient `c_sw`.
    pub csw: f64,
}

impl SyntheticSource {
    pub fn new(dims: Dims) -> Self {
        Self { dims, spread: 0.5, mass: 0.2, csw: 1.5 }
    }
}

impl ConfigSource for SyntheticSource {
    fn materialize(&self, key: ConfigKey) -> Option<WilsonClover<f64>> {
        let mut rng = Rng64::new(key.0 ^ 0x9e37_79b9_7f4a_7c15);
        let gauge = GaugeField::<f64>::random(self.dims, &mut rng, self.spread);
        let basis = GammaBasis::degrand_rossi();
        let clover = build_clover_field(&gauge, self.csw, &basis);
        Some(WilsonClover::new(gauge, clover, self.mass, BoundaryPhases::antiperiodic_t()))
    }
}

/// One solve request.
pub struct SolveRequest {
    pub config: ConfigKey,
    /// Right-hand side (source) spinor.
    pub source: SpinorField<f64>,
    /// Target relative residual.
    pub tolerance: f64,
    /// Latency budget measured from submission; `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Preconditioner storage precision for this request.
    pub precision: Precision,
}

impl SolveRequest {
    /// A request with the service defaults: 1e-8 target, no deadline,
    /// single-precision preconditioner storage.
    pub fn new(config: ConfigKey, source: SpinorField<f64>) -> Self {
        Self { config, source, tolerance: 1e-8, deadline: None, precision: Precision::Single }
    }
}

/// Why a request was degraded.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DegradeReason {
    /// The primary solve ran out of deadline; its best iterate is
    /// returned without attempting the fallback.
    DeadlineExceeded,
    /// Neither the primary DD solve nor the BiCGstab fallback reached the
    /// target; the better of the two iterates is returned.
    TargetMissed,
    /// The configuration could not be materialized or its clover term is
    /// singular; no solve was attempted.
    SetupFailed,
    /// Every shard the failover ladder was allowed to try (retry budget,
    /// breaker state, already-tried set) failed the request; the best
    /// surviving iterate is returned.
    ShardsExhausted,
}

impl DegradeReason {
    pub fn label(self) -> &'static str {
        match self {
            DegradeReason::DeadlineExceeded => "deadline-exceeded",
            DegradeReason::TargetMissed => "target-missed",
            DegradeReason::SetupFailed => "setup-failed",
            DegradeReason::ShardsExhausted => "shards-exhausted",
        }
    }
}

/// What the service achieved for a request — the degradation ladder is
/// `Converged` → `Fallback` → `Degraded`, with `Shed` for requests the
/// service declined to solve at all.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ServeStatus {
    /// The primary FGMRES-DR + Schwarz solve reached the target.
    Converged,
    /// The primary missed, but the plain BiCGstab fallback reached the
    /// target.
    Fallback,
    /// Best-effort result; see the reason.
    Degraded(DegradeReason),
    /// The request expired while queued and was shed at dequeue: no
    /// solver ever ran for it and the zero guess is returned untouched.
    Shed,
}

impl ServeStatus {
    /// True if the returned solution meets the requested tolerance.
    pub fn meets_target(self) -> bool {
        matches!(self, ServeStatus::Converged | ServeStatus::Fallback)
    }

    pub fn label(self) -> &'static str {
        match self {
            ServeStatus::Converged => "converged",
            ServeStatus::Fallback => "fallback",
            ServeStatus::Degraded(_) => "degraded",
            ServeStatus::Shed => "shed",
        }
    }
}

impl std::fmt::Display for ServeStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeStatus::Degraded(r) => write!(f, "degraded({})", r.label()),
            other => f.write_str(other.label()),
        }
    }
}

/// The service's answer to one request.
pub struct SolveResponse {
    /// The id assigned at admission (monotonic per service run).
    pub request_id: RequestId,
    /// The trace id every span/flight event of this request carries;
    /// look it up in the flight dump or the per-request timeline.
    pub trace_id: TraceId,
    pub status: ServeStatus,
    pub solution: SpinorField<f64>,
    /// Relative residual actually achieved.
    pub relative_residual: f64,
    /// Outer iterations spent (primary plus fallback), summed across
    /// failover attempts on the sharded path.
    pub iterations: usize,
    /// Solve attempts made: 1 for a request served by its first shard
    /// (or the single-world path), `1 + failovers` on the sharded path,
    /// 0 for a shed request (no solver ever ran).
    pub attempts: u32,
    /// Time from submission to being picked up by a worker batch.
    pub queue_wait: Duration,
    /// Time from submission to completion.
    pub latency: Duration,
}

/// The cache/batch key of a request: requests agreeing on all of these
/// fields share one prepared solver and may be coalesced into one
/// multi-RHS batch (identical code path ⇒ bitwise-identical results).
pub fn setup_key(config: ConfigKey, dims: Dims, precision: Precision, tolerance: f64) -> u64 {
    let precision_tag = match precision {
        Precision::Single => 0u64,
        Precision::HalfCompressed => 1u64,
    };
    fnv1a(
        [config.0, precision_tag, tolerance.to_bits()]
            .into_iter()
            .chain(dims.0.iter().map(|&e| e as u64)),
    )
}

/// FNV-1a over the little-endian bytes of the words.
fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_key_separates_every_field() {
        let dims = Dims::new(8, 4, 4, 4);
        let base = setup_key(ConfigKey(1), dims, Precision::Single, 1e-8);
        assert_eq!(base, setup_key(ConfigKey(1), dims, Precision::Single, 1e-8));
        assert_ne!(base, setup_key(ConfigKey(2), dims, Precision::Single, 1e-8));
        assert_ne!(base, setup_key(ConfigKey(1), dims, Precision::HalfCompressed, 1e-8));
        assert_ne!(base, setup_key(ConfigKey(1), dims, Precision::Single, 1e-6));
        assert_ne!(base, setup_key(ConfigKey(1), Dims::new(4, 4, 4, 8), Precision::Single, 1e-8));
    }

    #[test]
    fn synthetic_source_is_deterministic() {
        let dims = Dims::new(4, 4, 4, 4);
        let src = SyntheticSource::new(dims);
        let mut rng = Rng64::new(5);
        let probe = SpinorField::<f64>::random(dims, &mut rng);
        let apply = |key: u64| {
            let op = src.materialize(ConfigKey(key)).unwrap();
            let mut out = SpinorField::zeros(dims);
            op.apply(&mut out, &probe);
            out
        };
        // Same key ⇒ bitwise-identical operator; different key ⇒ not.
        assert_eq!(apply(7).as_slice(), apply(7).as_slice());
        assert_ne!(apply(7).as_slice(), apply(8).as_slice());
    }

    #[test]
    fn status_ladder_labels() {
        assert!(ServeStatus::Converged.meets_target());
        assert!(ServeStatus::Fallback.meets_target());
        assert!(!ServeStatus::Degraded(DegradeReason::TargetMissed).meets_target());
        assert_eq!(
            ServeStatus::Degraded(DegradeReason::DeadlineExceeded).to_string(),
            "degraded(deadline-exceeded)"
        );
    }
}
