//! The solve service: admission, batching, caching, degradation.
//!
//! Request lifecycle: [`ServiceHandle::submit`] admits a request into the
//! bounded queue (or sheds it with `QueueFull`); a worker pops it and
//! coalesces every queued request sharing its setup key into one
//! multi-RHS batch; the batch resolves its prepared solver through the
//! LRU setup cache (building it under a `ServeSetup` span on a miss) and
//! runs through `DdSolver::solve_batch` with a worker-local workspace
//! pool. Per request, the degradation ladder is:
//!
//! 1. primary FGMRES-DR + Schwarz (status `Converged`),
//! 2. plain BiCGstab fallback if the primary misses the target and the
//!    deadline still has budget (status `Fallback`),
//! 3. otherwise the best iterate so far with a `Degraded` status naming
//!    the reason — a request is answered in every case; nothing panics or
//!    hangs.
//!
//! Queue depth, batch size, cache hits and latency are recorded both as
//! counter events on the attached [`TraceSink`] (visible in the
//! Chrome-trace export) and in the returned [`ServiceReport`] metrics.
//!
//! **Telemetry.** Every admitted request is stamped with a
//! [`RequestId`]/[`TraceId`] pair at admission; the ids ride through
//! coalescing, the setup cache, the batched solve and the fallback
//! ladder, come back on the [`SolveResponse`], and key the per-request
//! [`RequestTimeline`]s in the report. Workers record wait-free into
//! per-worker [`ShardedMetrics`] shards (merged in lane order at
//! shutdown, so worker count never changes the merged result), feed the
//! measured phase times into the `model.err.*` join, and — when a
//! [`FlightRecorder`] is attached via [`serve_with_flight`] — leave a
//! ring-buffer breadcrumb trail that is auto-dumped on load shed, solver
//! breakdown, or worker-lane straggling.

use crate::cache::{CacheOutcome, SetupCache, TuneCache};
use crate::latency::LatencyRecorder;
use crate::queue::BoundedQueue;
use crate::request::{
    setup_key, ConfigSource, DegradeReason, ServeStatus, SolveRequest, SolveResponse,
};
use crate::telemetry::{join_against_model, RequestTimeline};
use crossbeam::channel::{unbounded, Receiver, Sender};
use qdd_autotune::{fnv1a_u64, Autotuner, TuneProblem};
use qdd_core::{bicgstab, BiCgStabConfig, DdSolver, DdSolverConfig, LocalSystem, WorkspacePool};
use qdd_field::fields::SpinorField;
use qdd_lattice::Dims;
use qdd_machine::BackendKind;
use qdd_trace::{
    FlightLane, FlightRecorder, MetricsRegistry, ModelJoin, Phase, RequestId, ShardedMetrics,
    ThreadRecorder, TraceId, TraceSink,
};
use qdd_util::stats::SolveStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Service tuning knobs.
#[derive(Copy, Clone, Debug)]
pub struct ServiceConfig {
    /// Admission-queue bound; a full queue sheds load (`QueueFull`).
    pub queue_capacity: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Maximum right-hand sides coalesced into one batch.
    pub max_batch: usize,
    /// Prepared solvers kept in the LRU setup cache.
    pub cache_capacity: usize,
    /// Solver template; each request overrides the outer tolerance and
    /// preconditioner precision with its own.
    pub solver: DdSolverConfig,
    /// Iteration cap of the BiCGstab fallback stage.
    pub fallback_max_iterations: usize,
    /// Seed the per-request [`TraceId`]s are derived from; two runs with
    /// the same seed and admission order assign identical trace ids.
    pub trace_seed: u64,
    /// Autotune the Schwarz operating point (block geometry, `ISchwarz`,
    /// `Idomain`) per request *shape* before building solvers. Tuned
    /// plans are cached in an LRU alongside the setup cache: tuning runs
    /// once per shape and is served thereafter (`serve.tune.*` metrics).
    pub autotune: bool,
    /// Machine backend the tuner searches and the `model.err.*` join
    /// prices against. The default (KNC 7110P) reproduces the historical
    /// hard-coded pricing bitwise.
    pub backend: BackendKind,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            workers: 1,
            max_batch: 8,
            cache_capacity: 4,
            solver: DdSolverConfig::default(),
            fallback_max_iterations: 4000,
            trace_seed: 0x5e7e_5e7e_5e7e_5e7e,
            autotune: false,
            backend: BackendKind::Knc7110p,
        }
    }
}

/// Tune-cache key: the problem *shape* — lattice dims, backend,
/// preconditioner precision, worker count. Requests that share a shape
/// share a tuned plan regardless of gauge configuration or tolerance.
fn tune_key(
    dims: &Dims,
    backend: BackendKind,
    precision: qdd_core::Precision,
    workers: usize,
) -> u64 {
    let mut h = qdd_autotune::fnv1a(&[
        backend as u8,
        matches!(precision, qdd_core::Precision::HalfCompressed) as u8,
    ]);
    for &e in &dims.0 {
        h = fnv1a_u64(h, e as u64);
    }
    fnv1a_u64(h, workers as u64)
}

/// A worker's busy time must exceed the worker mean by this factor
/// before the lane-imbalance anomaly trips (and auto-dumps the flight
/// recorder): the signature of one straggling lane, paper Sec. VI.
pub const STRAGGLER_RATIO: f64 = 4.0;

/// A queued request plus its bookkeeping.
struct Pending {
    request: SolveRequest,
    key: u64,
    id: RequestId,
    trace: TraceId,
    submitted: Instant,
    deadline: Option<Instant>,
    reply: Sender<SolveResponse>,
}

/// Per-request bookkeeping kept after the source is moved into the batch.
struct Meta {
    id: RequestId,
    trace: TraceId,
    submitted: Instant,
    deadline: Option<Instant>,
    reply: Sender<SolveResponse>,
}

/// Why a submission was not admitted.
pub enum SubmitError {
    /// Load shed: the queue is at capacity (or the service is shutting
    /// down). The request is handed back for the caller to retry.
    QueueFull(SolveRequest),
}

impl std::fmt::Debug for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull(_) => f.write_str("QueueFull(..)"),
        }
    }
}

/// Claim check for a submitted request.
pub struct Ticket {
    rx: Receiver<SolveResponse>,
}

impl Ticket {
    /// Block until the service answers. Every admitted request is
    /// answered (degraded at worst), including during shutdown drain.
    pub fn wait(self) -> SolveResponse {
        self.rx.recv().expect("serve worker dropped a request reply")
    }
}

/// Client-side handle; valid inside the [`serve`] closure.
pub struct ServiceHandle<'s> {
    queue: &'s BoundedQueue<Pending>,
    sink: TraceSink,
    rejected: AtomicU64,
    next_request: AtomicU64,
    trace_seed: u64,
    flight: FlightRecorder,
    /// Flight lane 0: the admission path.
    flight_lane: FlightLane,
}

impl ServiceHandle<'_> {
    /// Admit a request, or shed it if the queue is full. Never blocks.
    /// Either way the request gets a [`RequestId`]/[`TraceId`] pair here;
    /// a shed request's ids appear only in the flight recorder.
    pub fn submit(&self, request: SolveRequest) -> Result<Ticket, SubmitError> {
        let key =
            setup_key(request.config, *request.source.dims(), request.precision, request.tolerance);
        let n = self.next_request.fetch_add(1, Ordering::Relaxed);
        let id = RequestId(n);
        let trace = TraceId::derive(self.trace_seed, n);
        self.flight_lane.set_trace(trace);
        self.flight_lane.record(Phase::ServeBatch, "req.admit", n as f64, key as f64);
        let submitted = Instant::now();
        let deadline = request.deadline.map(|d| submitted + d);
        let (tx, rx) = unbounded();
        let pending = Pending { request, key, id, trace, submitted, deadline, reply: tx };
        match self.queue.try_push(pending) {
            Ok(()) => Ok(Ticket { rx }),
            Err(crate::queue::QueueFull(p)) => {
                self.flight_lane.record(Phase::ServeBatch, "req.shed", n as f64, 0.0);
                // The first shed of a run snapshots the flight rings:
                // the breadcrumbs leading up to the overload.
                if self.rejected.fetch_add(1, Ordering::Relaxed) == 0 {
                    self.flight.dump("shed");
                }
                self.sink.counter(Phase::ServeBatch, "serve.rejected", 1.0);
                Err(SubmitError::QueueFull(p.request))
            }
        }
    }

    /// Requests shed so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Requests assigned an id so far (admitted plus shed).
    pub fn submitted(&self) -> u64 {
        self.next_request.load(Ordering::Relaxed)
    }
}

/// Aggregated result of one [`serve`] run.
pub struct ServiceReport {
    /// Service metrics (`serve.*`, `model.err.*` keys) for export.
    pub metrics: MetricsRegistry,
    /// End-to-end latency samples (submission → response).
    pub latency: LatencyRecorder,
    /// Queue-wait samples (submission → worker pickup).
    pub queue_wait: LatencyRecorder,
    /// One timeline per answered request, in request-id order.
    pub timelines: Vec<RequestTimeline>,
    /// Measured-vs-predicted join over every solved batch.
    pub model: ModelJoin,
    /// Requests answered (all admitted requests are).
    pub completed: u64,
    /// Requests shed at admission.
    pub rejected: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_hit_rate: f64,
    /// Tune-cache traffic (both zero unless `ServiceConfig::autotune`).
    pub tune_hits: u64,
    pub tune_misses: u64,
}

/// What one worker hands back at shutdown (its metrics shard lives in
/// the service's [`ShardedMetrics`] and is folded separately).
struct WorkerOutput {
    latency: LatencyRecorder,
    queue_wait: LatencyRecorder,
    timelines: Vec<RequestTimeline>,
    model: ModelJoin,
    completed: u64,
    /// Seconds this worker spent processing batches (straggler signal).
    busy_s: f64,
}

/// [`serve_with_flight`] without a flight recorder attached.
pub fn serve<R: Send>(
    cfg: &ServiceConfig,
    source: &dyn ConfigSource,
    sink: &TraceSink,
    client: impl FnOnce(&ServiceHandle<'_>) -> R + Send,
) -> (R, ServiceReport) {
    serve_with_flight(cfg, source, sink, &FlightRecorder::disabled(), client)
}

/// Run the solve service: spawn the worker pool, hand the client closure
/// a submission handle, and — once the closure returns — drain the queue,
/// shut the workers down and aggregate the [`ServiceReport`]. Flight
/// lane 0 is the admission path; worker `w` records on lane `w + 1`.
pub fn serve_with_flight<R: Send>(
    cfg: &ServiceConfig,
    source: &dyn ConfigSource,
    sink: &TraceSink,
    flight: &FlightRecorder,
    client: impl FnOnce(&ServiceHandle<'_>) -> R + Send,
) -> (R, ServiceReport) {
    let queue = BoundedQueue::new(cfg.queue_capacity);
    let cache = Mutex::new(SetupCache::new(cfg.cache_capacity));
    let tunes = Mutex::new(TuneCache::new(cfg.cache_capacity));
    let handle = ServiceHandle {
        queue: &queue,
        sink: sink.clone(),
        rejected: AtomicU64::new(0),
        next_request: AtomicU64::new(0),
        trace_seed: cfg.trace_seed,
        flight: flight.clone(),
        flight_lane: flight.lane(0),
    };

    // One private metrics shard per worker: hot-path recording is a plain
    // `&mut` write (wait-free by ownership), and the fold below merges the
    // shards in ascending lane order, so the merged registry is identical
    // for every worker count.
    let nworkers = cfg.workers.max(1);
    let mut shards = ShardedMetrics::new(nworkers);
    let mut outputs: Vec<WorkerOutput> = Vec::new();
    let mut result: Option<R> = None;
    crossbeam::scope(|s| {
        let queue = &queue;
        let cache = &cache;
        let tunes = &tunes;
        let mut workers = Vec::new();
        for (wid, shard) in shards.shards_mut().iter_mut().enumerate() {
            workers.push(s.spawn(move |_| {
                worker_loop(wid, cfg, source, queue, cache, tunes, sink, flight, shard)
            }));
        }
        result = Some(client(&handle));
        queue.close();
        for w in workers {
            outputs.push(w.join().expect("serve worker panicked"));
        }
    })
    .expect("serve scope failed");

    let mut report = ServiceReport {
        metrics: MetricsRegistry::new(),
        latency: LatencyRecorder::new(),
        queue_wait: LatencyRecorder::new(),
        timelines: Vec::new(),
        model: ModelJoin::new(),
        completed: 0,
        rejected: handle.rejected(),
        cache_hits: 0,
        cache_misses: 0,
        cache_hit_rate: 0.0,
        tune_hits: 0,
        tune_misses: 0,
    };
    shards.fold(&mut report.metrics);
    let busy: Vec<f64> = outputs.iter().map(|o| o.busy_s).collect();
    for out in outputs {
        report.latency.merge(&out.latency);
        report.queue_wait.merge(&out.queue_wait);
        report.model.merge(&out.model);
        report.completed += out.completed;
        report.timelines.extend(out.timelines);
    }
    report.timelines.sort_by_key(|t| t.request.0);
    report.model.export(&mut report.metrics);

    // Straggler anomaly: one worker lane far busier than the mean is the
    // service-level analogue of the paper's per-core load imbalance
    // (Sec. VI); trip the flight recorder so the dump shows what the
    // straggling lane was chewing on.
    if busy.len() > 1 {
        let mean = busy.iter().sum::<f64>() / busy.len() as f64;
        let max = busy.iter().cloned().fold(0.0, f64::max);
        let imbalance = if mean > 0.0 { max / mean } else { 1.0 };
        report.metrics.set_gauge("serve.worker.imbalance", imbalance);
        if imbalance > STRAGGLER_RATIO {
            flight.dump("straggler");
        }
    }

    let cache = cache.into_inner().unwrap();
    report.cache_hits = cache.hits();
    report.cache_misses = cache.misses();
    report.cache_hit_rate = cache.hit_rate();
    report.metrics.add("serve.cache.hits", cache.hits() as f64);
    report.metrics.add("serve.cache.misses", cache.misses() as f64);
    report.metrics.add("serve.cache.evictions", cache.evictions() as f64);
    let tunes = tunes.into_inner().unwrap();
    report.tune_hits = tunes.hits();
    report.tune_misses = tunes.misses();
    report.metrics.add("serve.tune.hits", tunes.hits() as f64);
    report.metrics.add("serve.tune.misses", tunes.misses() as f64);
    report.metrics.add("serve.tune.evictions", tunes.evictions() as f64);
    report.metrics.add("serve.rejected", report.rejected as f64);
    let lat = report.latency.summary();
    report.metrics.set_gauge("serve.latency.p50_ms", lat.p50_ms);
    report.metrics.set_gauge("serve.latency.p99_ms", lat.p99_ms);
    (result.expect("client closure ran"), report)
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    wid: usize,
    cfg: &ServiceConfig,
    source: &dyn ConfigSource,
    queue: &BoundedQueue<Pending>,
    cache: &Mutex<SetupCache>,
    tunes: &Mutex<TuneCache>,
    sink: &TraceSink,
    flight: &FlightRecorder,
    metrics: &mut MetricsRegistry,
) -> WorkerOutput {
    let mut out = WorkerOutput {
        latency: LatencyRecorder::new(),
        queue_wait: LatencyRecorder::new(),
        timelines: Vec::new(),
        model: ModelJoin::new(),
        completed: 0,
        busy_s: 0.0,
    };
    // Spans from this worker land on their own trace lane (the shared
    // begin/end lane 0 would interleave unbalanced across workers);
    // counter samples go through the shared sink. Flight events go on
    // lane `wid + 1` (lane 0 is admission).
    let mut lane = sink.thread(wid as u32 + 1);
    let flane = flight.lane(wid as u32 + 1);
    let mut pool = WorkspacePool::<f64>::new();

    while let Some((first, depth)) = queue.pop_wait() {
        let t0 = Instant::now();
        let key = first.key;
        let mut batch = vec![first];
        if cfg.max_batch > 1 {
            batch.extend(queue.drain_where(cfg.max_batch - 1, |p| p.key == key));
        }
        metrics.observe("serve.queue.depth", depth as f64);
        metrics.observe("serve.batch.size", batch.len() as f64);
        metrics.add("serve.batches", 1.0);
        sink.counter(Phase::ServeBatch, "serve.queue_depth", depth as f64);
        sink.counter(Phase::ServeBatch, "serve.batch_size", batch.len() as f64);
        flane.set_trace(batch[0].trace);
        flane.record(Phase::ServeBatch, "batch.start", depth as f64, batch.len() as f64);

        lane.begin(Phase::ServeBatch);
        run_batch(
            batch, cfg, source, cache, tunes, sink, &mut lane, flight, &flane, &mut pool, metrics,
            &mut out,
        );
        lane.end(Phase::ServeBatch);
        lane.flush();
        out.busy_s += t0.elapsed().as_secs_f64();
    }
    out
}

/// Answer one request: record latency/status metrics, the `serve.*`
/// histograms, the flight breadcrumb, and the request's timeline, then
/// send the response.
#[allow(clippy::too_many_arguments)]
fn respond(
    out: &mut WorkerOutput,
    metrics: &mut MetricsRegistry,
    sink: &TraceSink,
    flane: &FlightLane,
    picked_up: Instant,
    m: Meta,
    status: ServeStatus,
    solution: SpinorField<f64>,
    residual: f64,
    iterations: usize,
) {
    let wait = picked_up.saturating_duration_since(m.submitted);
    let total = m.submitted.elapsed();
    let wait_ms = wait.as_secs_f64() * 1e3;
    let total_ms = total.as_secs_f64() * 1e3;
    out.queue_wait.record(wait);
    out.latency.record(total);
    out.completed += 1;
    metrics.add("serve.requests", 1.0);
    metrics.add(&format!("serve.status.{}", status.label()), 1.0);
    // Histograms: iterations is a deterministic distribution (identical
    // across reruns and worker counts); latency is wall-clock.
    metrics.record_hist("serve.iterations", iterations as f64);
    metrics.record_hist("serve.latency_ms", total_ms);
    sink.counter(Phase::ServeBatch, "serve.latency_ms", total_ms);
    flane.set_trace(m.trace);
    flane.record(Phase::ServeBatch, "req.done", m.id.0 as f64, total_ms);
    let terminal = match status {
        ServeStatus::Converged => "solved",
        ServeStatus::Fallback => "fallback",
        ServeStatus::Degraded(_) => "degraded",
        ServeStatus::Shed => "shed",
    };
    out.timelines.push(RequestTimeline {
        request: m.id,
        trace: m.trace,
        status,
        stages: vec![
            ("admitted", 0.0),
            ("coalesced", wait_ms),
            (terminal, total_ms),
            ("done", total_ms),
        ],
    });
    // A dropped ticket is the client's prerogative; ignore it.
    let _ = m.reply.send(SolveResponse {
        request_id: m.id,
        trace_id: m.trace,
        status,
        solution,
        relative_residual: residual,
        iterations,
        attempts: if status == ServeStatus::Shed { 0 } else { 1 },
        queue_wait: wait,
        latency: total,
    });
}

#[allow(clippy::too_many_arguments)]
fn run_batch(
    batch: Vec<Pending>,
    cfg: &ServiceConfig,
    source: &dyn ConfigSource,
    cache: &Mutex<SetupCache>,
    tunes: &Mutex<TuneCache>,
    sink: &TraceSink,
    lane: &mut ThreadRecorder,
    flight: &FlightRecorder,
    flane: &FlightLane,
    pool: &mut WorkspacePool<f64>,
    metrics: &mut MetricsRegistry,
    out: &mut WorkerOutput,
) {
    let picked_up = Instant::now();
    let key = batch[0].key;
    let config = batch[0].request.config;
    let tolerance = batch[0].request.tolerance;
    let precision = batch[0].request.precision;

    // Split bookkeeping from the sources. Requests whose deadline already
    // passed are shed at dequeue: answered immediately with the untouched
    // zero initial guess and a `Shed` status — the solver never sees them.
    let mut metas: Vec<Meta> = Vec::with_capacity(batch.len());
    let mut sources: Vec<SpinorField<f64>> = Vec::with_capacity(batch.len());
    for p in batch {
        let Pending { request, id, trace, submitted, deadline, reply, .. } = p;
        let meta = Meta { id, trace, submitted, deadline, reply };
        if deadline.is_some_and(|d| picked_up > d) {
            let zero = SpinorField::zeros(*request.source.dims());
            metrics.add("serve.shed.expired", 1.0);
            flane.set_trace(meta.trace);
            flane.record(Phase::ServeBatch, "req.shed.expired", meta.id.0 as f64, 0.0);
            respond(out, metrics, sink, flane, picked_up, meta, ServeStatus::Shed, zero, 1.0, 0);
        } else {
            metas.push(meta);
            sources.push(request.source);
        }
    }
    if metas.is_empty() {
        return;
    }

    // Resolve the prepared solver through the setup cache. Misses build
    // under a ServeSetup span; the cache lock serializes duplicate
    // builds of the same key across workers.
    let mut solver_cfg = cfg.solver;
    solver_cfg.fgmres.tolerance = tolerance;
    solver_cfg.precision = precision;

    // Autotune the Schwarz operating point for this request shape. The
    // search space is restricted to the request's precision contract;
    // the tune cache makes this a once-per-shape model search (a shape
    // with no feasible candidate keeps the hand-set configuration).
    if cfg.autotune {
        let dims = *sources[0].dims();
        let workers = qdd_core::resolve_workers(solver_cfg.workers);
        let tkey = tune_key(&dims, cfg.backend, precision, workers);
        let (tuned, outcome) = {
            let mut guard = tunes.lock().unwrap();
            guard.get_or_tune(tkey, || {
                let t0 = Instant::now();
                let mut tuner = Autotuner::new(cfg.backend);
                tuner.space.precisions = vec![match precision {
                    qdd_core::Precision::Single => qdd_machine::Precision::Single,
                    qdd_core::Precision::HalfCompressed => qdd_machine::Precision::Half,
                }];
                let problem =
                    TuneProblem::single_node(dims, workers, solver_cfg.fgmres.max_iterations);
                let best = tuner.tune(&problem).best().copied();
                metrics.observe("serve.tune_ms", t0.elapsed().as_secs_f64() * 1e3);
                best
            })
        };
        let hit = outcome == CacheOutcome::Hit;
        flane.record(
            Phase::ServeSetup,
            if hit { "tune.hit" } else { "tune.miss" },
            tkey as f64,
            tuned.is_some() as u64 as f64,
        );
        if let Some(t) = tuned {
            solver_cfg = solver_cfg.with_tuned(&t);
            // The request's precision contract wins (the search was
            // already restricted to it; this is belt and braces).
            solver_cfg.precision = precision;
        }
    }
    let (solver, cache_outcome) = {
        let mut guard = cache.lock().unwrap();
        guard.get_or_build(key, || {
            lane.begin(Phase::ServeSetup);
            let t0 = Instant::now();
            let solver = source.materialize(config).and_then(|op| DdSolver::new(op, solver_cfg));
            lane.end(Phase::ServeSetup);
            metrics.observe("serve.setup_ms", t0.elapsed().as_secs_f64() * 1e3);
            solver
        })
    };
    let hit = cache_outcome == CacheOutcome::Hit;
    sink.counter(Phase::ServeSetup, "serve.cache_hit", hit as u64 as f64);
    flane.record(Phase::ServeSetup, if hit { "setup.hit" } else { "setup.miss" }, key as f64, 0.0);
    let Some(solver) = solver else {
        for (m, f) in metas.into_iter().zip(sources) {
            let zero = SpinorField::zeros(*f.dims());
            let status = ServeStatus::Degraded(DegradeReason::SetupFailed);
            respond(out, metrics, sink, flane, picked_up, m, status, zero, 1.0, 0);
        }
        return;
    };

    // Primary multi-RHS solve. The attached sink makes the inner solver
    // phases visible in the same trace; phase timing feeds the model
    // join (bookkeeping only — numerics are untouched either way).
    let mut stats = SolveStats::new();
    stats.attach_sink(sink.clone());
    stats.enable_phase_timing();
    let results = solver.solve_batch(&sources, pool, &mut stats);
    out.model.merge(&join_against_model(
        &stats,
        cfg.backend,
        precision,
        solver_cfg.schwarz.mr.iterations,
        1,
    ));

    let fallback_cfg = BiCgStabConfig { tolerance, max_iterations: cfg.fallback_max_iterations };
    for ((m, f), (x, r)) in metas.into_iter().zip(&sources).zip(results) {
        // A detected solver breakdown (non-finite residual, divergence,
        // recurrence underflow) rides the normal degradation ladder —
        // `converged` is false, so the fallback rung runs — but is
        // counted separately so operators can tell "slow" from "broken",
        // and the flight rings are snapshotted with the breakdown fresh.
        if let Some(b) = r.breakdown {
            metrics.add("serve.breakdowns", 1.0);
            metrics.add(&format!("serve.breakdown.{}", b.label()), 1.0);
            flane.set_trace(m.trace);
            flane.record(Phase::ServeBatch, "solver.breakdown", m.id.0 as f64, 0.0);
            flight.dump("breakdown");
        }
        if r.converged {
            let s = ServeStatus::Converged;
            respond(
                out,
                metrics,
                sink,
                flane,
                picked_up,
                m,
                s,
                x,
                r.relative_residual,
                r.iterations,
            );
            continue;
        }
        if m.deadline.is_some_and(|d| Instant::now() > d) {
            let s = ServeStatus::Degraded(DegradeReason::DeadlineExceeded);
            respond(
                out,
                metrics,
                sink,
                flane,
                picked_up,
                m,
                s,
                x,
                r.relative_residual,
                r.iterations,
            );
            continue;
        }
        // Fallback rung: plain BiCGstab against the same operator.
        lane.begin(Phase::ServeFallback);
        metrics.add("serve.fallbacks", 1.0);
        flane.set_trace(m.trace);
        flane.record(Phase::ServeFallback, "req.fallback", m.id.0 as f64, 0.0);
        let (xb, ob) = bicgstab(&LocalSystem::new(solver.op()), f, &fallback_cfg, &mut stats);
        lane.end(Phase::ServeFallback);
        let iterations = r.iterations + ob.iterations;
        if ob.converged {
            let s = ServeStatus::Fallback;
            respond(
                out,
                metrics,
                sink,
                flane,
                picked_up,
                m,
                s,
                xb,
                ob.relative_residual,
                iterations,
            );
        } else if ob.relative_residual < r.relative_residual {
            let s = ServeStatus::Degraded(DegradeReason::TargetMissed);
            respond(
                out,
                metrics,
                sink,
                flane,
                picked_up,
                m,
                s,
                xb,
                ob.relative_residual,
                iterations,
            );
        } else {
            let s = ServeStatus::Degraded(DegradeReason::TargetMissed);
            respond(out, metrics, sink, flane, picked_up, m, s, x, r.relative_residual, iterations);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ConfigKey, SyntheticSource};
    use qdd_core::{FgmresConfig, MrConfig, Precision, SchwarzConfig};
    use qdd_lattice::Dims;
    use qdd_util::rng::Rng64;
    use std::time::Duration;

    fn test_solver_cfg() -> DdSolverConfig {
        DdSolverConfig {
            fgmres: FgmresConfig { max_basis: 12, deflate: 4, tolerance: 1e-8, max_iterations: 60 },
            schwarz: SchwarzConfig {
                block: Dims::new(4, 4, 4, 4),
                i_schwarz: 4,
                mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
                additive: false,
                overlap: true,
                ..Default::default()
            },
            precision: Precision::Single,
            workers: 1,
            fused_outer: true,
            ..Default::default()
        }
    }

    fn service_cfg() -> ServiceConfig {
        ServiceConfig { solver: test_solver_cfg(), ..ServiceConfig::default() }
    }

    fn dims() -> Dims {
        Dims::new(8, 4, 4, 4)
    }

    fn sources_for(n: u64) -> Vec<SpinorField<f64>> {
        (0..n)
            .map(|i| {
                let mut rng = Rng64::new(100 + i);
                SpinorField::random(dims(), &mut rng)
            })
            .collect()
    }

    #[test]
    fn same_config_requests_converge_with_one_setup() {
        let cfg = service_cfg();
        let source = SyntheticSource::new(dims());
        let sink = TraceSink::enabled();
        let (responses, report) = serve(&cfg, &source, &sink, |h| {
            let tickets: Vec<Ticket> = sources_for(4)
                .into_iter()
                .map(|s| h.submit(SolveRequest::new(ConfigKey(1), s)).unwrap())
                .collect();
            tickets.into_iter().map(Ticket::wait).collect::<Vec<_>>()
        });
        assert_eq!(responses.len(), 4);
        for r in &responses {
            assert_eq!(r.status, ServeStatus::Converged);
            assert!(r.relative_residual <= 1e-8);
            assert!(r.latency >= r.queue_wait);
        }
        assert_eq!(report.completed, 4);
        assert_eq!(report.rejected, 0);
        // One gauge configuration ⇒ exactly one setup-cache miss.
        assert_eq!(report.cache_misses, 1);
        assert_eq!(report.latency.count(), 4);
    }

    #[test]
    fn autotuned_service_tunes_once_per_shape_and_still_converges() {
        let mut cfg = service_cfg();
        cfg.autotune = true;
        cfg.backend = BackendKind::KnlFlat;
        let source = SyntheticSource::new(dims());
        let sink = TraceSink::enabled();
        let (responses, report) = serve(&cfg, &source, &sink, |h| {
            let tickets: Vec<Ticket> = sources_for(4)
                .into_iter()
                .map(|s| h.submit(SolveRequest::new(ConfigKey(1), s)).unwrap())
                .collect();
            tickets.into_iter().map(Ticket::wait).collect::<Vec<_>>()
        });
        for r in &responses {
            assert!(r.status.meets_target(), "tuned solver must still hit the target");
        }
        // One request shape ⇒ the model search ran exactly once; every
        // later batch of the same shape was served from the tune cache.
        assert_eq!(report.tune_misses, 1);
        assert_eq!(
            report.metrics.counters().get("serve.tune.misses").copied(),
            Some(1.0),
            "tune traffic must be exported as serve.tune.* metrics"
        );
        // Tuning happens before the setup build, so the tuned solver is
        // still built (and cached) once.
        assert_eq!(report.cache_misses, 1);
    }

    #[test]
    fn untuned_service_reports_zero_tune_traffic() {
        let cfg = service_cfg();
        let source = SyntheticSource::new(dims());
        let sink = TraceSink::disabled();
        let ((), report) = serve(&cfg, &source, &sink, |h| {
            for s in sources_for(2) {
                h.submit(SolveRequest::new(ConfigKey(1), s)).unwrap().wait();
            }
        });
        assert_eq!((report.tune_hits, report.tune_misses), (0, 0));
    }

    #[test]
    fn expired_while_queued_is_shed_at_dequeue_never_solved() {
        let cfg = service_cfg();
        let source = SyntheticSource::new(dims());
        let sink = TraceSink::enabled();
        let flight = qdd_trace::FlightRecorder::with_capacity(64);
        let (response, report) = serve_with_flight(&cfg, &source, &sink, &flight, |h| {
            let mut req = SolveRequest::new(ConfigKey(1), sources_for(1).pop().unwrap());
            req.deadline = Some(Duration::ZERO);
            let ticket = h.submit(req).unwrap();
            // Let the deadline expire before a worker picks the request up.
            std::thread::sleep(Duration::from_millis(5));
            ticket.wait()
        });
        // Shed, not degraded: the solver never ran (zero iterations, the
        // zero guess untouched), the shed counter fired, and the flight
        // recorder carries the shed breadcrumb under the request's trace.
        assert_eq!(response.status, ServeStatus::Shed);
        assert!(!response.status.meets_target());
        assert_eq!(response.iterations, 0);
        assert_eq!(response.solution.norm(), 0.0);
        assert_eq!(report.metrics.counters().get("serve.shed.expired").copied(), Some(1.0));
        let timeline = &report.timelines[0];
        assert!(timeline.stages.iter().any(|s| s.0 == "shed"));
        let shed = flight
            .snapshot()
            .into_iter()
            .find(|e| e.code == "req.shed.expired")
            .expect("req.shed.expired flight event");
        assert_eq!(shed.trace, response.trace_id.0);
    }

    #[test]
    fn hopeless_target_walks_the_full_ladder() {
        // An unreachable tolerance with tiny iteration caps: the primary
        // misses, the fallback misses, and the service still answers with
        // an honest TargetMissed instead of hanging or panicking.
        let mut cfg = service_cfg();
        cfg.solver.fgmres.max_iterations = 2;
        cfg.fallback_max_iterations = 2;
        let source = SyntheticSource::new(dims());
        let sink = TraceSink::enabled();
        let (response, report) = serve(&cfg, &source, &sink, |h| {
            let mut req = SolveRequest::new(ConfigKey(1), sources_for(1).pop().unwrap());
            req.tolerance = 1e-300;
            h.submit(req).unwrap().wait()
        });
        assert_eq!(response.status, ServeStatus::Degraded(DegradeReason::TargetMissed));
        assert!(!response.status.meets_target());
        assert!(response.relative_residual > 0.0);
        assert!(report.metrics.counters().get("serve.fallbacks").is_some());
    }

    #[test]
    fn fallback_rescues_a_starved_primary() {
        // Primary capped to a single outer iteration (misses 1e-8); the
        // BiCGstab fallback has the budget to finish the job.
        let mut cfg = service_cfg();
        cfg.solver.fgmres.max_iterations = 1;
        cfg.solver.fgmres.max_basis = 2;
        let source = SyntheticSource::new(dims());
        let sink = TraceSink::enabled();
        let (response, _report) = serve(&cfg, &source, &sink, |h| {
            h.submit(SolveRequest::new(ConfigKey(1), sources_for(1).pop().unwrap())).unwrap().wait()
        });
        assert_eq!(response.status, ServeStatus::Fallback);
        assert!(response.relative_residual <= 1e-8);
    }

    #[test]
    fn full_queue_sheds_load_with_queue_full() {
        let mut cfg = service_cfg();
        cfg.queue_capacity = 1;
        let source = SyntheticSource::new(dims());
        let sink = TraceSink::enabled();
        let ((), report) = serve(&cfg, &source, &sink, |h| {
            // 64 back-to-back submissions cannot all fit through a
            // depth-1 queue while each solve takes milliseconds.
            let mut tickets = Vec::new();
            let mut shed = 0u64;
            for s in sources_for(64) {
                match h.submit(SolveRequest::new(ConfigKey(1), s)) {
                    Ok(t) => tickets.push(t),
                    Err(SubmitError::QueueFull(_req)) => shed += 1,
                }
            }
            assert!(shed > 0, "a depth-1 queue must shed some of 64 instant submissions");
            assert_eq!(h.rejected(), shed);
            for t in tickets {
                assert!(t.wait().status.meets_target());
            }
        });
        assert!(report.rejected > 0);
        assert_eq!(report.completed + report.rejected, 64);
    }

    #[test]
    fn requests_carry_ids_timelines_and_model_join() {
        let cfg = service_cfg();
        let source = SyntheticSource::new(dims());
        let sink = TraceSink::enabled();
        let (responses, report) = serve(&cfg, &source, &sink, |h| {
            let tickets: Vec<Ticket> = sources_for(3)
                .into_iter()
                .map(|s| h.submit(SolveRequest::new(ConfigKey(1), s)).unwrap())
                .collect();
            tickets.into_iter().map(Ticket::wait).collect::<Vec<_>>()
        });
        // Ids are the admission order; traces derive from the seed.
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.request_id.0, i as u64);
            assert_eq!(r.trace_id, qdd_trace::TraceId::derive(cfg.trace_seed, i as u64));
        }
        // One complete timeline per request, in request order, with the
        // trace id matching the response's.
        assert_eq!(report.timelines.len(), 3);
        for (i, t) in report.timelines.iter().enumerate() {
            assert_eq!(t.request.0, i as u64);
            assert_eq!(t.trace, responses[i].trace_id);
            assert!(t.is_complete(), "incomplete timeline: {:?}", t.stages);
            assert_eq!(t.status, ServeStatus::Converged);
        }
        // The model join priced all four phases and exported gauges.
        for key in ["dirac_apply", "schwarz_sweep", "halo_exchange", "global_sums"] {
            let g = report.metrics.gauge(&format!("model.err.{key}"));
            assert!(g.is_some_and(f64::is_finite), "model.err.{key} missing/non-finite: {g:?}");
        }
        assert!(
            report.model.get("dirac_apply").unwrap().measured_s > 0.0,
            "operator spans should have accumulated measured time"
        );
        // Histograms: the iteration distribution counts every request.
        let iters = report.metrics.histogram("serve.iterations").expect("iterations histogram");
        assert_eq!(iters.count(), 3);
        assert_eq!(report.metrics.histogram("serve.latency_ms").unwrap().count(), 3);
    }

    #[test]
    fn flight_recorder_sees_admission_and_completion_with_matching_traces() {
        let cfg = service_cfg();
        let source = SyntheticSource::new(dims());
        let sink = TraceSink::enabled();
        let flight = qdd_trace::FlightRecorder::with_capacity(64);
        let (response, _report) = serve_with_flight(&cfg, &source, &sink, &flight, |h| {
            h.submit(SolveRequest::new(ConfigKey(1), sources_for(1).pop().unwrap())).unwrap().wait()
        });
        let events = flight.snapshot();
        let admit = events.iter().find(|e| e.code == "req.admit").expect("req.admit event");
        let done = events.iter().find(|e| e.code == "req.done").expect("req.done event");
        assert_eq!(admit.lane, 0, "admission records on lane 0");
        assert!(done.lane >= 1, "completion records on a worker lane");
        assert_eq!(admit.trace, response.trace_id.0);
        assert_eq!(done.trace, response.trace_id.0);
        assert!(events.iter().any(|e| e.code == "batch.start"));
        assert!(events.iter().any(|e| e.code == "setup.miss"));
    }

    #[test]
    fn worker_count_does_not_change_merged_iteration_histogram() {
        // The deterministic distributions (iteration counts, request
        // tallies) must come out bucket-identical for any worker count:
        // shards merge in lane order and batching is bitwise-stable.
        let source = SyntheticSource::new(dims());
        let run = |workers: usize, solver_workers: usize| {
            let mut cfg = ServiceConfig { workers, ..service_cfg() };
            cfg.solver.workers = solver_workers;
            let sink = TraceSink::disabled();
            let ((), report) = serve(&cfg, &source, &sink, |h| {
                let tickets: Vec<Ticket> = sources_for(6)
                    .into_iter()
                    .map(|s| h.submit(SolveRequest::new(ConfigKey(1), s)).unwrap())
                    .collect();
                for t in tickets {
                    t.wait();
                }
            });
            report
        };
        let one = run(1, 1);
        let four = run(4, 1);
        let pooled = run(2, 2);
        let snap =
            |r: &ServiceReport| r.metrics.histogram("serve.iterations").unwrap().bucket_snapshot();
        assert_eq!(
            snap(&one),
            snap(&four),
            "iteration histogram must be serve-worker-count independent"
        );
        assert_eq!(
            snap(&one),
            snap(&pooled),
            "iteration histogram must be solver-pool-width independent"
        );
        assert_eq!(one.completed, four.completed);
        assert_eq!(one.timelines.len(), four.timelines.len());
    }

    #[test]
    fn trace_has_serve_spans_and_counters() {
        let cfg = service_cfg();
        let source = SyntheticSource::new(dims());
        let sink = TraceSink::enabled();
        let ((), _report) = serve(&cfg, &source, &sink, |h| {
            let tickets: Vec<Ticket> = sources_for(2)
                .into_iter()
                .map(|s| h.submit(SolveRequest::new(ConfigKey(1), s)).unwrap())
                .collect();
            for t in tickets {
                t.wait();
            }
        });
        let events = sink.events();
        assert!(
            events.iter().any(|e| e.phase == Phase::ServeBatch),
            "missing ServeBatch span/counter"
        );
        assert!(
            events.iter().any(|e| e.phase == Phase::ServeSetup),
            "missing ServeSetup span/counter"
        );
    }
}
