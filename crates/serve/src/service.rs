//! The solve service: admission, batching, caching, degradation.
//!
//! Request lifecycle: [`ServiceHandle::submit`] admits a request into the
//! bounded queue (or sheds it with `QueueFull`); a worker pops it and
//! coalesces every queued request sharing its setup key into one
//! multi-RHS batch; the batch resolves its prepared solver through the
//! LRU setup cache (building it under a `ServeSetup` span on a miss) and
//! runs through `DdSolver::solve_batch` with a worker-local workspace
//! pool. Per request, the degradation ladder is:
//!
//! 1. primary FGMRES-DR + Schwarz (status `Converged`),
//! 2. plain BiCGstab fallback if the primary misses the target and the
//!    deadline still has budget (status `Fallback`),
//! 3. otherwise the best iterate so far with a `Degraded` status naming
//!    the reason — a request is answered in every case; nothing panics or
//!    hangs.
//!
//! Queue depth, batch size, cache hits and latency are recorded both as
//! counter events on the attached [`TraceSink`] (visible in the
//! Chrome-trace export) and in the returned [`ServiceReport`] metrics.

use crate::cache::{CacheOutcome, SetupCache};
use crate::latency::LatencyRecorder;
use crate::queue::BoundedQueue;
use crate::request::{
    setup_key, ConfigSource, DegradeReason, ServeStatus, SolveRequest, SolveResponse,
};
use crossbeam::channel::{unbounded, Receiver, Sender};
use qdd_core::{bicgstab, BiCgStabConfig, DdSolver, DdSolverConfig, LocalSystem, WorkspacePool};
use qdd_field::fields::SpinorField;
use qdd_trace::{MetricsRegistry, Phase, ThreadRecorder, TraceSink};
use qdd_util::stats::SolveStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Service tuning knobs.
#[derive(Copy, Clone, Debug)]
pub struct ServiceConfig {
    /// Admission-queue bound; a full queue sheds load (`QueueFull`).
    pub queue_capacity: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Maximum right-hand sides coalesced into one batch.
    pub max_batch: usize,
    /// Prepared solvers kept in the LRU setup cache.
    pub cache_capacity: usize,
    /// Solver template; each request overrides the outer tolerance and
    /// preconditioner precision with its own.
    pub solver: DdSolverConfig,
    /// Iteration cap of the BiCGstab fallback stage.
    pub fallback_max_iterations: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            workers: 1,
            max_batch: 8,
            cache_capacity: 4,
            solver: DdSolverConfig::default(),
            fallback_max_iterations: 4000,
        }
    }
}

/// A queued request plus its bookkeeping.
struct Pending {
    request: SolveRequest,
    key: u64,
    submitted: Instant,
    deadline: Option<Instant>,
    reply: Sender<SolveResponse>,
}

/// Per-request bookkeeping kept after the source is moved into the batch.
struct Meta {
    submitted: Instant,
    deadline: Option<Instant>,
    reply: Sender<SolveResponse>,
}

/// Why a submission was not admitted.
pub enum SubmitError {
    /// Load shed: the queue is at capacity (or the service is shutting
    /// down). The request is handed back for the caller to retry.
    QueueFull(SolveRequest),
}

impl std::fmt::Debug for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull(_) => f.write_str("QueueFull(..)"),
        }
    }
}

/// Claim check for a submitted request.
pub struct Ticket {
    rx: Receiver<SolveResponse>,
}

impl Ticket {
    /// Block until the service answers. Every admitted request is
    /// answered (degraded at worst), including during shutdown drain.
    pub fn wait(self) -> SolveResponse {
        self.rx.recv().expect("serve worker dropped a request reply")
    }
}

/// Client-side handle; valid inside the [`serve`] closure.
pub struct ServiceHandle<'s> {
    queue: &'s BoundedQueue<Pending>,
    sink: TraceSink,
    rejected: AtomicU64,
}

impl ServiceHandle<'_> {
    /// Admit a request, or shed it if the queue is full. Never blocks.
    pub fn submit(&self, request: SolveRequest) -> Result<Ticket, SubmitError> {
        let key =
            setup_key(request.config, *request.source.dims(), request.precision, request.tolerance);
        let submitted = Instant::now();
        let deadline = request.deadline.map(|d| submitted + d);
        let (tx, rx) = unbounded();
        let pending = Pending { request, key, submitted, deadline, reply: tx };
        match self.queue.try_push(pending) {
            Ok(()) => Ok(Ticket { rx }),
            Err(crate::queue::QueueFull(p)) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                self.sink.counter(Phase::ServeBatch, "serve.rejected", 1.0);
                Err(SubmitError::QueueFull(p.request))
            }
        }
    }

    /// Requests shed so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

/// Aggregated result of one [`serve`] run.
pub struct ServiceReport {
    /// Service metrics (`serve.*` keys) for aggregation/export.
    pub metrics: MetricsRegistry,
    /// End-to-end latency samples (submission → response).
    pub latency: LatencyRecorder,
    /// Queue-wait samples (submission → worker pickup).
    pub queue_wait: LatencyRecorder,
    /// Requests answered (all admitted requests are).
    pub completed: u64,
    /// Requests shed at admission.
    pub rejected: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_hit_rate: f64,
}

/// What one worker hands back at shutdown.
struct WorkerOutput {
    metrics: MetricsRegistry,
    latency: LatencyRecorder,
    queue_wait: LatencyRecorder,
    completed: u64,
}

/// Run the solve service: spawn the worker pool, hand the client closure
/// a submission handle, and — once the closure returns — drain the queue,
/// shut the workers down and aggregate the [`ServiceReport`].
pub fn serve<R: Send>(
    cfg: &ServiceConfig,
    source: &dyn ConfigSource,
    sink: &TraceSink,
    client: impl FnOnce(&ServiceHandle<'_>) -> R + Send,
) -> (R, ServiceReport) {
    let queue = BoundedQueue::new(cfg.queue_capacity);
    let cache = Mutex::new(SetupCache::new(cfg.cache_capacity));
    let handle = ServiceHandle { queue: &queue, sink: sink.clone(), rejected: AtomicU64::new(0) };

    let mut outputs: Vec<WorkerOutput> = Vec::new();
    let mut result: Option<R> = None;
    crossbeam::scope(|s| {
        let queue = &queue;
        let cache = &cache;
        let mut workers = Vec::new();
        for wid in 0..cfg.workers.max(1) {
            workers.push(s.spawn(move |_| worker_loop(wid, cfg, source, queue, cache, sink)));
        }
        result = Some(client(&handle));
        queue.close();
        for w in workers {
            outputs.push(w.join().expect("serve worker panicked"));
        }
    })
    .expect("serve scope failed");

    let mut report = ServiceReport {
        metrics: MetricsRegistry::new(),
        latency: LatencyRecorder::new(),
        queue_wait: LatencyRecorder::new(),
        completed: 0,
        rejected: handle.rejected(),
        cache_hits: 0,
        cache_misses: 0,
        cache_hit_rate: 0.0,
    };
    for out in &outputs {
        report.metrics.merge(&out.metrics);
        report.latency.merge(&out.latency);
        report.queue_wait.merge(&out.queue_wait);
        report.completed += out.completed;
    }
    let cache = cache.into_inner().unwrap();
    report.cache_hits = cache.hits();
    report.cache_misses = cache.misses();
    report.cache_hit_rate = cache.hit_rate();
    report.metrics.add("serve.cache.hits", cache.hits() as f64);
    report.metrics.add("serve.cache.misses", cache.misses() as f64);
    report.metrics.add("serve.cache.evictions", cache.evictions() as f64);
    report.metrics.add("serve.rejected", report.rejected as f64);
    let lat = report.latency.summary();
    report.metrics.set_gauge("serve.latency.p50_ms", lat.p50_ms);
    report.metrics.set_gauge("serve.latency.p99_ms", lat.p99_ms);
    (result.expect("client closure ran"), report)
}

fn worker_loop(
    wid: usize,
    cfg: &ServiceConfig,
    source: &dyn ConfigSource,
    queue: &BoundedQueue<Pending>,
    cache: &Mutex<SetupCache>,
    sink: &TraceSink,
) -> WorkerOutput {
    let mut metrics = MetricsRegistry::new();
    let mut latency = LatencyRecorder::new();
    let mut queue_wait = LatencyRecorder::new();
    let mut completed = 0u64;
    // Spans from this worker land on their own trace lane (the shared
    // begin/end lane 0 would interleave unbalanced across workers);
    // counter samples go through the shared sink.
    let mut lane = sink.thread(wid as u32 + 1);
    let mut pool = WorkspacePool::<f64>::new();

    while let Some((first, depth)) = queue.pop_wait() {
        let key = first.key;
        let mut batch = vec![first];
        if cfg.max_batch > 1 {
            batch.extend(queue.drain_where(cfg.max_batch - 1, |p| p.key == key));
        }
        metrics.observe("serve.queue.depth", depth as f64);
        metrics.observe("serve.batch.size", batch.len() as f64);
        metrics.add("serve.batches", 1.0);
        sink.counter(Phase::ServeBatch, "serve.queue_depth", depth as f64);
        sink.counter(Phase::ServeBatch, "serve.batch_size", batch.len() as f64);

        lane.begin(Phase::ServeBatch);
        run_batch(
            batch,
            cfg,
            source,
            cache,
            sink,
            &mut lane,
            &mut pool,
            &mut metrics,
            &mut latency,
            &mut queue_wait,
            &mut completed,
        );
        lane.end(Phase::ServeBatch);
        lane.flush();
    }
    WorkerOutput { metrics, latency, queue_wait, completed }
}

#[allow(clippy::too_many_arguments)]
fn run_batch(
    batch: Vec<Pending>,
    cfg: &ServiceConfig,
    source: &dyn ConfigSource,
    cache: &Mutex<SetupCache>,
    sink: &TraceSink,
    lane: &mut ThreadRecorder,
    pool: &mut WorkspacePool<f64>,
    metrics: &mut MetricsRegistry,
    latency: &mut LatencyRecorder,
    queue_wait: &mut LatencyRecorder,
    completed: &mut u64,
) {
    let picked_up = Instant::now();
    let key = batch[0].key;
    let config = batch[0].request.config;
    let tolerance = batch[0].request.tolerance;
    let precision = batch[0].request.precision;

    let mut respond = |m: Meta,
                       status: ServeStatus,
                       solution: SpinorField<f64>,
                       residual: f64,
                       iterations: usize,
                       metrics: &mut MetricsRegistry| {
        let wait = picked_up.saturating_duration_since(m.submitted);
        let total = m.submitted.elapsed();
        queue_wait.record(wait);
        latency.record(total);
        *completed += 1;
        metrics.add("serve.requests", 1.0);
        metrics.add(&format!("serve.status.{}", status.label()), 1.0);
        sink.counter(Phase::ServeBatch, "serve.latency_ms", total.as_secs_f64() * 1e3);
        // A dropped ticket is the client's prerogative; ignore it.
        let _ = m.reply.send(SolveResponse {
            status,
            solution,
            relative_residual: residual,
            iterations,
            queue_wait: wait,
            latency: total,
        });
    };

    // Split bookkeeping from the sources. Requests whose deadline already
    // passed are answered immediately with the untouched zero initial
    // guess instead of being solved.
    let mut metas: Vec<Meta> = Vec::with_capacity(batch.len());
    let mut sources: Vec<SpinorField<f64>> = Vec::with_capacity(batch.len());
    for p in batch {
        let Pending { request, submitted, deadline, reply, .. } = p;
        let meta = Meta { submitted, deadline, reply };
        if deadline.is_some_and(|d| picked_up > d) {
            let zero = SpinorField::zeros(*request.source.dims());
            let status = ServeStatus::Degraded(DegradeReason::DeadlineBeforeSolve);
            respond(meta, status, zero, 1.0, 0, metrics);
        } else {
            metas.push(meta);
            sources.push(request.source);
        }
    }
    if metas.is_empty() {
        return;
    }

    // Resolve the prepared solver through the setup cache. Misses build
    // under a ServeSetup span; the cache lock serializes duplicate
    // builds of the same key across workers.
    let mut solver_cfg = cfg.solver;
    solver_cfg.fgmres.tolerance = tolerance;
    solver_cfg.precision = precision;
    let (solver, cache_outcome) = {
        let mut guard = cache.lock().unwrap();
        guard.get_or_build(key, || {
            lane.begin(Phase::ServeSetup);
            let t0 = Instant::now();
            let solver = source.materialize(config).and_then(|op| DdSolver::new(op, solver_cfg));
            lane.end(Phase::ServeSetup);
            metrics.observe("serve.setup_ms", t0.elapsed().as_secs_f64() * 1e3);
            solver
        })
    };
    sink.counter(
        Phase::ServeSetup,
        "serve.cache_hit",
        (cache_outcome == CacheOutcome::Hit) as u64 as f64,
    );
    let Some(solver) = solver else {
        for (m, f) in metas.into_iter().zip(sources) {
            let zero = SpinorField::zeros(*f.dims());
            let status = ServeStatus::Degraded(DegradeReason::SetupFailed);
            respond(m, status, zero, 1.0, 0, metrics);
        }
        return;
    };

    // Primary multi-RHS solve. The attached sink makes the inner solver
    // phases visible in the same trace.
    let mut stats = SolveStats::new();
    stats.attach_sink(sink.clone());
    let results = solver.solve_batch(&sources, pool, &mut stats);

    let fallback_cfg = BiCgStabConfig { tolerance, max_iterations: cfg.fallback_max_iterations };
    for ((m, f), (x, out)) in metas.into_iter().zip(&sources).zip(results) {
        // A detected solver breakdown (non-finite residual, divergence,
        // recurrence underflow) rides the normal degradation ladder —
        // `converged` is false, so the fallback rung runs — but is
        // counted separately so operators can tell "slow" from "broken".
        if let Some(b) = out.breakdown {
            metrics.add("serve.breakdowns", 1.0);
            metrics.add(&format!("serve.breakdown.{}", b.label()), 1.0);
        }
        if out.converged {
            respond(m, ServeStatus::Converged, x, out.relative_residual, out.iterations, metrics);
            continue;
        }
        if m.deadline.is_some_and(|d| Instant::now() > d) {
            let status = ServeStatus::Degraded(DegradeReason::DeadlineExceeded);
            respond(m, status, x, out.relative_residual, out.iterations, metrics);
            continue;
        }
        // Fallback rung: plain BiCGstab against the same operator.
        lane.begin(Phase::ServeFallback);
        metrics.add("serve.fallbacks", 1.0);
        let (xb, ob) = bicgstab(&LocalSystem::new(solver.op()), f, &fallback_cfg, &mut stats);
        lane.end(Phase::ServeFallback);
        let iterations = out.iterations + ob.iterations;
        if ob.converged {
            respond(m, ServeStatus::Fallback, xb, ob.relative_residual, iterations, metrics);
        } else if ob.relative_residual < out.relative_residual {
            let status = ServeStatus::Degraded(DegradeReason::TargetMissed);
            respond(m, status, xb, ob.relative_residual, iterations, metrics);
        } else {
            let status = ServeStatus::Degraded(DegradeReason::TargetMissed);
            respond(m, status, x, out.relative_residual, iterations, metrics);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ConfigKey, SyntheticSource};
    use qdd_core::{FgmresConfig, MrConfig, Precision, SchwarzConfig};
    use qdd_lattice::Dims;
    use qdd_util::rng::Rng64;
    use std::time::Duration;

    fn test_solver_cfg() -> DdSolverConfig {
        DdSolverConfig {
            fgmres: FgmresConfig { max_basis: 12, deflate: 4, tolerance: 1e-8, max_iterations: 60 },
            schwarz: SchwarzConfig {
                block: Dims::new(4, 4, 4, 4),
                i_schwarz: 4,
                mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
                additive: false,
                overlap: true,
            },
            precision: Precision::Single,
            workers: 1,
            fused_outer: true,
        }
    }

    fn service_cfg() -> ServiceConfig {
        ServiceConfig { solver: test_solver_cfg(), ..ServiceConfig::default() }
    }

    fn dims() -> Dims {
        Dims::new(8, 4, 4, 4)
    }

    fn sources_for(n: u64) -> Vec<SpinorField<f64>> {
        (0..n)
            .map(|i| {
                let mut rng = Rng64::new(100 + i);
                SpinorField::random(dims(), &mut rng)
            })
            .collect()
    }

    #[test]
    fn same_config_requests_converge_with_one_setup() {
        let cfg = service_cfg();
        let source = SyntheticSource::new(dims());
        let sink = TraceSink::enabled();
        let (responses, report) = serve(&cfg, &source, &sink, |h| {
            let tickets: Vec<Ticket> = sources_for(4)
                .into_iter()
                .map(|s| h.submit(SolveRequest::new(ConfigKey(1), s)).unwrap())
                .collect();
            tickets.into_iter().map(Ticket::wait).collect::<Vec<_>>()
        });
        assert_eq!(responses.len(), 4);
        for r in &responses {
            assert_eq!(r.status, ServeStatus::Converged);
            assert!(r.relative_residual <= 1e-8);
            assert!(r.latency >= r.queue_wait);
        }
        assert_eq!(report.completed, 4);
        assert_eq!(report.rejected, 0);
        // One gauge configuration ⇒ exactly one setup-cache miss.
        assert_eq!(report.cache_misses, 1);
        assert_eq!(report.latency.count(), 4);
    }

    #[test]
    fn zero_deadline_degrades_instead_of_hanging() {
        let cfg = service_cfg();
        let source = SyntheticSource::new(dims());
        let sink = TraceSink::enabled();
        let (response, _report) = serve(&cfg, &source, &sink, |h| {
            let mut req = SolveRequest::new(ConfigKey(1), sources_for(1).pop().unwrap());
            req.deadline = Some(Duration::ZERO);
            let ticket = h.submit(req).unwrap();
            // Let the deadline expire before a worker picks the request up.
            std::thread::sleep(Duration::from_millis(5));
            ticket.wait()
        });
        assert_eq!(response.status, ServeStatus::Degraded(DegradeReason::DeadlineBeforeSolve));
        assert_eq!(response.iterations, 0);
        assert_eq!(response.solution.norm(), 0.0);
    }

    #[test]
    fn hopeless_target_walks_the_full_ladder() {
        // An unreachable tolerance with tiny iteration caps: the primary
        // misses, the fallback misses, and the service still answers with
        // an honest TargetMissed instead of hanging or panicking.
        let mut cfg = service_cfg();
        cfg.solver.fgmres.max_iterations = 2;
        cfg.fallback_max_iterations = 2;
        let source = SyntheticSource::new(dims());
        let sink = TraceSink::enabled();
        let (response, report) = serve(&cfg, &source, &sink, |h| {
            let mut req = SolveRequest::new(ConfigKey(1), sources_for(1).pop().unwrap());
            req.tolerance = 1e-300;
            h.submit(req).unwrap().wait()
        });
        assert_eq!(response.status, ServeStatus::Degraded(DegradeReason::TargetMissed));
        assert!(!response.status.meets_target());
        assert!(response.relative_residual > 0.0);
        assert!(report.metrics.counters().get("serve.fallbacks").is_some());
    }

    #[test]
    fn fallback_rescues_a_starved_primary() {
        // Primary capped to a single outer iteration (misses 1e-8); the
        // BiCGstab fallback has the budget to finish the job.
        let mut cfg = service_cfg();
        cfg.solver.fgmres.max_iterations = 1;
        cfg.solver.fgmres.max_basis = 2;
        let source = SyntheticSource::new(dims());
        let sink = TraceSink::enabled();
        let (response, _report) = serve(&cfg, &source, &sink, |h| {
            h.submit(SolveRequest::new(ConfigKey(1), sources_for(1).pop().unwrap())).unwrap().wait()
        });
        assert_eq!(response.status, ServeStatus::Fallback);
        assert!(response.relative_residual <= 1e-8);
    }

    #[test]
    fn full_queue_sheds_load_with_queue_full() {
        let mut cfg = service_cfg();
        cfg.queue_capacity = 1;
        let source = SyntheticSource::new(dims());
        let sink = TraceSink::enabled();
        let ((), report) = serve(&cfg, &source, &sink, |h| {
            // 64 back-to-back submissions cannot all fit through a
            // depth-1 queue while each solve takes milliseconds.
            let mut tickets = Vec::new();
            let mut shed = 0u64;
            for s in sources_for(64) {
                match h.submit(SolveRequest::new(ConfigKey(1), s)) {
                    Ok(t) => tickets.push(t),
                    Err(SubmitError::QueueFull(_req)) => shed += 1,
                }
            }
            assert!(shed > 0, "a depth-1 queue must shed some of 64 instant submissions");
            assert_eq!(h.rejected(), shed);
            for t in tickets {
                assert!(t.wait().status.meets_target());
            }
        });
        assert!(report.rejected > 0);
        assert_eq!(report.completed + report.rejected, 64);
    }

    #[test]
    fn trace_has_serve_spans_and_counters() {
        let cfg = service_cfg();
        let source = SyntheticSource::new(dims());
        let sink = TraceSink::enabled();
        let ((), _report) = serve(&cfg, &source, &sink, |h| {
            let tickets: Vec<Ticket> = sources_for(2)
                .into_iter()
                .map(|s| h.submit(SolveRequest::new(ConfigKey(1), s)).unwrap())
                .collect();
            for t in tickets {
                t.wait();
            }
        });
        let events = sink.events();
        assert!(
            events.iter().any(|e| e.phase == Phase::ServeBatch),
            "missing ServeBatch span/counter"
        );
        assert!(
            events.iter().any(|e| e.phase == Phase::ServeSetup),
            "missing ServeSetup span/counter"
        );
    }
}
