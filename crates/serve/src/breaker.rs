//! Per-shard circuit breakers.
//!
//! A shard that keeps failing requests (communication faults, solver
//! breakdowns) should stop receiving traffic until there is evidence it
//! recovered — otherwise every request routed to it burns a failover
//! attempt and a full (futile) solve. The classic three-state breaker:
//!
//! * **Closed** — healthy; requests flow. Consecutive failures are
//!   counted, and at [`BreakerConfig::failure_threshold`] the breaker
//!   *trips* to Open.
//! * **Open** — no requests are dispatched. The cooldown is measured in
//!   supervisor *dispatch rounds*, not wall-clock: the supervisor ticks
//!   every breaker once per round ([`CircuitBreaker::tick`]), so breaker
//!   behaviour is a deterministic function of the request schedule and
//!   the fault seed — reruns are bitwise-reproducible.
//! * **HalfOpen** — cooled down; the next dispatch round routes exactly
//!   one probe request to the shard. Success closes the breaker,
//!   failure re-opens it (and restarts the cooldown).
//!
//! Every transition is recorded with the round it happened in; the
//! supervisor exports them (`serve.breaker.*` metrics) and snapshots the
//! flight recorder on each trip.

/// Breaker tuning knobs.
#[derive(Copy, Clone, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a Closed breaker to Open.
    pub failure_threshold: u32,
    /// Dispatch rounds an Open breaker waits before arming a HalfOpen
    /// probe.
    pub cooldown_rounds: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self { failure_threshold: 2, cooldown_rounds: 2 }
    }
}

/// The breaker's position in the Closed → Open → HalfOpen cycle.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

impl BreakerState {
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }

    /// Numeric encoding for the `serve.shard.*.state` gauge.
    pub fn as_gauge(self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::Open => 1.0,
            BreakerState::HalfOpen => 2.0,
        }
    }
}

/// One recorded state change.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BreakerTransition {
    pub from: BreakerState,
    pub to: BreakerState,
    /// Supervisor dispatch round the transition happened in.
    pub round: u64,
}

/// A deterministic, round-clocked circuit breaker.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    cooldown_remaining: u32,
    transitions: Vec<BreakerTransition>,
    trips: u64,
}

impl CircuitBreaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        assert!(cfg.failure_threshold > 0, "failure threshold must be positive");
        Self {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_remaining: 0,
            transitions: Vec::new(),
            trips: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// May the supervisor dispatch to this shard right now? Closed flows
    /// freely; HalfOpen admits (the supervisor's in-flight cap of one
    /// job per shard makes that a single probe); Open admits nothing.
    pub fn admits(&self) -> bool {
        self.state != BreakerState::Open
    }

    /// Times the breaker tripped (entered Open).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Every state change so far, in order.
    pub fn transitions(&self) -> &[BreakerTransition] {
        &self.transitions
    }

    fn transition(&mut self, to: BreakerState, round: u64) {
        let from = self.state;
        if from == to {
            return;
        }
        self.transitions.push(BreakerTransition { from, to, round });
        if to == BreakerState::Open {
            self.trips += 1;
            self.cooldown_remaining = self.cfg.cooldown_rounds;
        }
        self.state = to;
    }

    /// A dispatch round passed. Open breakers cool; one fully cooled
    /// arms a HalfOpen probe. Returns `true` if the breaker just armed.
    pub fn tick(&mut self, round: u64) -> bool {
        if self.state == BreakerState::Open {
            self.cooldown_remaining = self.cooldown_remaining.saturating_sub(1);
            if self.cooldown_remaining == 0 {
                self.transition(BreakerState::HalfOpen, round);
                return true;
            }
        }
        false
    }

    /// The shard answered a request healthily. Resets the failure count;
    /// a HalfOpen probe success closes the breaker.
    pub fn record_success(&mut self, round: u64) {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.transition(BreakerState::Closed, round);
        }
    }

    /// The shard failed a request (fault verdict or breakdown). Returns
    /// `true` when this failure *tripped* the breaker (entered Open).
    pub fn record_failure(&mut self, round: u64) -> bool {
        self.consecutive_failures += 1;
        match self.state {
            BreakerState::Closed if self.consecutive_failures >= self.cfg.failure_threshold => {
                self.transition(BreakerState::Open, round);
                true
            }
            // A failed probe re-opens immediately: the shard proved it is
            // still sick, no need to accumulate a fresh threshold.
            BreakerState::HalfOpen => {
                self.transition(BreakerState::Open, round);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_and_probes_after_cooldown() {
        let mut b = CircuitBreaker::new(BreakerConfig { failure_threshold: 2, cooldown_rounds: 3 });
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admits());
        assert!(!b.record_failure(1), "first failure stays under threshold");
        assert!(b.record_failure(2), "second failure must trip");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admits());
        assert_eq!(b.trips(), 1);
        // Cooldown is counted in ticks, not time.
        assert!(!b.tick(3));
        assert!(!b.tick(4));
        assert!(b.tick(5), "third tick arms the probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.admits());
        // Probe succeeds: closed again, failure count reset.
        b.record_success(6);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(
            b.transitions(),
            &[
                BreakerTransition { from: BreakerState::Closed, to: BreakerState::Open, round: 2 },
                BreakerTransition {
                    from: BreakerState::Open,
                    to: BreakerState::HalfOpen,
                    round: 5
                },
                BreakerTransition {
                    from: BreakerState::HalfOpen,
                    to: BreakerState::Closed,
                    round: 6
                },
            ]
        );
    }

    #[test]
    fn failed_probe_reopens_without_fresh_threshold() {
        let mut b = CircuitBreaker::new(BreakerConfig { failure_threshold: 3, cooldown_rounds: 1 });
        for r in 0..3 {
            b.record_failure(r);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.tick(4));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.record_failure(5), "one failed probe re-trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let mut b = CircuitBreaker::new(BreakerConfig { failure_threshold: 2, cooldown_rounds: 1 });
        b.record_failure(1);
        b.record_success(2);
        assert!(!b.record_failure(3), "the streak restarted after a success");
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
