//! Shard workers: one simulated multi-rank world per worker.
//!
//! A *shard* is the sharded service's unit of failure: one worker thread
//! owning a [`qdd_comm`] communication world (a rank grid of SPMD
//! threads) that executes resilient distributed solves
//! ([`qdd_comm::dd_solve_resilient_warm`]) one job at a time. Each shard
//! carries its own seeded fault plan (from
//! [`qdd_faults::ShardFaults::plan_for`]) and retry policy, so a "sick"
//! shard misbehaves deterministically while its siblings — whose plans
//! are inert and therefore dropped at world construction — run the
//! bitwise-clean fast path. That is what makes healthy shards
//! *interchangeable*: a job solved on any healthy shard produces the
//! same bits as the single-world resilient solve.
//!
//! The expensive part of a cold job is the scatter of the materialized
//! configuration into per-rank local fields; [`ShardSetupCache`] keeps
//! the most recently used [`ShardSetup`]s in one LRU shared (behind a
//! mutex) by every shard in the pool, so eviction is coordinated
//! pool-wide instead of duplicated per shard.

use crate::request::{ConfigKey, ConfigSource};
use qdd_comm::{
    dd_solve_resilient_warm, gather_field, run_spmd, scatter_clover, scatter_field, scatter_gauge,
    CommWorld, DistDdConfig, HealthVerdict, RetryPolicy,
};
use qdd_dirac::wilson::{BoundaryPhases, WilsonClover};
use qdd_faults::FaultPlan;
use qdd_field::fields::{CloverField, GaugeField, SpinorField};
use qdd_lattice::{Dims, RankGrid};
use qdd_trace::{FlightLane, Phase, TraceId, TraceSink};
use qdd_util::stats::SolveStats;
use std::sync::Arc;

/// A gauge configuration scattered for one rank grid: everything a shard
/// needs to stand up its per-rank local operators without touching the
/// [`ConfigSource`] again.
pub struct ShardSetup {
    pub grid: RankGrid,
    pub gauge: Vec<GaugeField<f64>>,
    pub clover: Vec<CloverField<f64>>,
    pub mass: f64,
    pub phases: BoundaryPhases,
}

impl ShardSetup {
    /// Materialize `key` and scatter it across a `rank_dims` grid of the
    /// configuration's own lattice. `None` if the source does not know
    /// the key.
    pub fn build(source: &dyn ConfigSource, key: ConfigKey, rank_dims: Dims) -> Option<Self> {
        let op = source.materialize(key)?;
        let grid = RankGrid::new(*op.dims(), rank_dims);
        Some(Self {
            gauge: scatter_gauge(op.gauge(), &grid),
            clover: scatter_clover(op.clover(), &grid),
            mass: op.mass(),
            phases: *op.phases(),
            grid,
        })
    }
}

/// An LRU of scattered configurations, shared across every shard of a
/// pool (the supervisor wraps it in a mutex): capacity and eviction are
/// pool-wide properties, so two shards never hold duplicate scatters of
/// the same configuration alive past the shared budget.
pub struct ShardSetupCache {
    capacity: usize,
    /// Most recently used at the back.
    entries: Vec<(u64, Arc<ShardSetup>)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ShardSetupCache {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self { capacity, entries: Vec::new(), hits: 0, misses: 0, evictions: 0 }
    }

    /// Look up `key`, building (and inserting) the scatter on a miss. A
    /// `None` build (unknown config) is passed through uncached.
    pub fn get_or_build(
        &mut self,
        key: u64,
        build: impl FnOnce() -> Option<ShardSetup>,
    ) -> Option<Arc<ShardSetup>> {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.hits += 1;
            let entry = self.entries.remove(pos);
            self.entries.push(entry);
            return Some(self.entries.last().unwrap().1.clone());
        }
        self.misses += 1;
        let setup = Arc::new(build()?);
        if self.entries.len() >= self.capacity {
            self.entries.remove(0);
            self.evictions += 1;
        }
        self.entries.push((key, setup.clone()));
        Some(setup)
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One unit of work for a shard: solve `A x = source` on the scattered
/// configuration `setup`, optionally warm-started from a best-so-far
/// iterate handed over by a failover.
pub struct ShardJob {
    /// Request id (supervisor-scoped).
    pub id: u64,
    /// Trace id every flight event of this attempt carries.
    pub trace: TraceId,
    /// Failover attempt number (0 = first dispatch).
    pub attempt: u32,
    /// Setup-cache key of the configuration.
    pub setup_key: u64,
    pub config: ConfigKey,
    /// Right-hand side, shared so failover re-dispatches don't copy it.
    pub source: Arc<SpinorField<f64>>,
    pub tolerance: f64,
    /// Best-so-far iterate from a previous (failed) attempt; the solver
    /// audits it against the honest residual and falls back to a cold
    /// start bitwise if it is no better.
    pub x0: Option<SpinorField<f64>>,
}

/// What a shard hands back to the supervisor for one job.
pub struct ShardOutcome {
    pub id: u64,
    pub attempt: u32,
    /// Gathered global solution (best iterate if unconverged).
    pub solution: SpinorField<f64>,
    pub relative_residual: f64,
    /// Outer iterations summed over restart rounds.
    pub iterations: usize,
    /// Restart rounds the resilient wrapper took.
    pub restarts: u32,
    /// The solve's health summary (drives the shard's breaker).
    pub verdict: HealthVerdict,
    pub warm_started: bool,
    pub warm_rejected: bool,
    /// The configuration could not be materialized; nothing ran. Not a
    /// shard-health signal (the config is bad, not the shard).
    pub setup_failed: bool,
}

/// Per-shard execution parameters, fixed for the pool's lifetime.
#[derive(Clone)]
pub struct ShardRuntime {
    /// The shard's index in the pool (flight lane `shard + 1`).
    pub shard: usize,
    /// Rank-grid decomposition each solve runs on (applied to the
    /// request's own lattice dims).
    pub rank_dims: Dims,
    /// Distributed solver configuration (tolerance overridden per job).
    pub solver: DistDdConfig,
    /// Restart budget of the resilient wrapper.
    pub max_restarts: u32,
    /// Retry policy installed into every rank context.
    pub retry: RetryPolicy,
    /// This shard's seeded fault plan (inert plans are dropped by the
    /// world constructor, preserving the bitwise-clean fast path).
    pub faults: FaultPlan,
}

/// The shard worker loop: drain `jobs` until the channel closes, handing
/// each [`ShardOutcome`] to `emit` (the supervisor's event channel).
///
/// Every job builds a fresh [`CommWorld`] from the shard's fault plan,
/// so fault decisions — pure functions of `(seed, rank, message
/// coordinates)` — replay identically for identical job streams: the
/// whole pool is deterministic given the fault seed and the schedule.
pub fn shard_worker_loop(
    rt: &ShardRuntime,
    source: &dyn ConfigSource,
    setups: &std::sync::Mutex<ShardSetupCache>,
    sink: &TraceSink,
    flane: &FlightLane,
    jobs: &crossbeam::channel::Receiver<ShardJob>,
    emit: impl Fn(ShardOutcome),
) {
    let mut lane = sink.thread(rt.shard as u32 + 1);
    while let Ok(job) = jobs.recv() {
        emit(run_shard_job(rt, source, setups, &mut lane, flane, job));
    }
}

/// Execute one job on this shard's world. Split out of the loop so tests
/// can drive a shard synchronously.
pub fn run_shard_job(
    rt: &ShardRuntime,
    source: &dyn ConfigSource,
    setups: &std::sync::Mutex<ShardSetupCache>,
    lane: &mut qdd_trace::ThreadRecorder,
    flane: &FlightLane,
    job: ShardJob,
) -> ShardOutcome {
    flane.set_trace(job.trace);
    flane.record(Phase::ServeShard, "shard.job", job.id as f64, job.attempt as f64);
    // Resolve the scattered configuration through the pool-shared LRU;
    // the lock serializes duplicate builds of the same key.
    let setup = {
        let mut guard = setups.lock().unwrap();
        guard.get_or_build(job.setup_key, || ShardSetup::build(source, job.config, rt.rank_dims))
    };
    let Some(setup) = setup else {
        flane.record(Phase::ServeShard, "shard.setup.failed", job.id as f64, 0.0);
        return ShardOutcome {
            id: job.id,
            attempt: job.attempt,
            solution: SpinorField::zeros(*job.source.dims()),
            relative_residual: 1.0,
            iterations: 0,
            restarts: 0,
            verdict: HealthVerdict::default(),
            warm_started: false,
            warm_rejected: false,
            setup_failed: true,
        };
    };

    let b_local = scatter_field(&job.source, &setup.grid);
    let x0_local = job.x0.as_ref().map(|x| scatter_field(x, &setup.grid));
    let mut cfg = rt.solver;
    cfg.fgmres.tolerance = job.tolerance;

    let world =
        CommWorld::with_faults(setup.grid.clone(), rt.faults.clone()).with_retry_policy(rt.retry);
    lane.begin(Phase::ServeShard);
    let results = run_spmd(&world, |ctx| {
        let r = ctx.rank();
        // Every rank of this shard records fault breadcrumbs on the
        // shard's flight lane under the request's trace id.
        ctx.attach_flight(flane.clone());
        ctx.set_trace_id(job.trace);
        let op = WilsonClover::new(
            setup.gauge[r].clone(),
            setup.clover[r].clone(),
            setup.mass,
            setup.phases,
        );
        let mut stats = SolveStats::new();
        dd_solve_resilient_warm(
            ctx,
            &op,
            &b_local[r],
            x0_local.as_ref().map(|v| &v[r]),
            &cfg,
            rt.max_restarts,
            &mut stats,
        )
    });
    lane.end(Phase::ServeShard);
    lane.flush();

    let locals: Vec<SpinorField<f64>> = results.iter().map(|r| r.0.clone()).collect();
    let solution = gather_field(&locals, &setup.grid);
    // The outcome is collectively agreed (every rank reports the same
    // converged/faulted flags); fault counters are summed across ranks.
    let out = &results[0].1;
    let mut comm = results[0].2.clone();
    for (_, _, c) in results.iter().skip(1) {
        comm.faults.merge(&c.faults);
    }
    let verdict = HealthVerdict::from_solve(out, &comm);
    flane.record(
        Phase::ServeShard,
        if verdict.unhealthy() { "shard.job.failed" } else { "shard.job.done" },
        job.id as f64,
        out.outcome.iterations as f64,
    );
    ShardOutcome {
        id: job.id,
        attempt: job.attempt,
        solution,
        relative_residual: out.outcome.relative_residual,
        iterations: out.outcome.iterations,
        restarts: out.restarts,
        verdict,
        warm_started: out.warm_started,
        warm_rejected: out.warm_rejected,
        setup_failed: false,
    }
}
