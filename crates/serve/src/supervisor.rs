//! The shard supervisor: deadline-ordered admission, round-synchronous
//! dispatch, circuit breaking, and request failover.
//!
//! [`shard_serve`] runs a pool of [shard workers](crate::shard) under
//! one supervisor thread. The supervisor owns every scheduling decision
//! and consumes a single event channel (admissions from the client
//! handle, results from the shards), so the whole pool behaves like a
//! sequential state machine wrapped around parallel solves:
//!
//! * **Admission** is fully asynchronous: [`PoolHandle::submit`] stamps
//!   the request with a [`RequestId`]/[`TraceId`] pair and enqueues it
//!   without ever blocking on a solve. The admission queue is a
//!   deadline-ordered heap (earliest deadline first, ties by id);
//!   requests whose deadline expired while queued are *shed at
//!   dispatch* — answered [`ServeStatus::Shed`] with the untouched zero
//!   guess, counted in `serve.shed.expired`, never handed to a solver.
//! * **Dispatch is round-synchronous**: the supervisor assigns at most
//!   one job per idle shard (round-robin over shards whose breaker
//!   admits), then waits for *every* in-flight job before scheduling
//!   the next round. Rounds are the pool's logical clock — breaker
//!   cooldowns are counted in rounds, results are processed in shard
//!   order at each round boundary — which makes scheduling, failover,
//!   breaker transitions and (in the wave-driven benchmark) every
//!   solution bit reproducible from the fault seed alone.
//! * **Supervision**: each shard's [`HealthVerdict`]s feed its
//!   [`CircuitBreaker`]. A tripped breaker stops dispatch to the shard,
//!   dumps the flight recorder (`"breaker"`), and cools for a fixed
//!   number of rounds before a single half-open probe is risked.
//!   Completed jobs double as heartbeats (`serve.shard.*` gauges report
//!   jobs, failures, last-heartbeat round and breaker state per shard).
//! * **Failover**: a request failed by one shard (communication fault
//!   or unrecovered breakdown) is re-enqueued with its best-so-far
//!   iterate as a warm start, its attempt counter bumped against
//!   [`ShardPoolConfig::retry_budget`], and the failed shard excluded.
//!   The receiving shard audits the warm iterate against the honest
//!   residual ([`qdd_comm::dd_solve_resilient_warm`]) and falls back to
//!   a cold start — bitwise — if it is no better than zero. A request
//!   that exhausts its budget (or has tried every shard) is answered
//!   `Degraded(ShardsExhausted)` with the best surviving iterate.

use crate::breaker::{BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker};
use crate::latency::LatencyRecorder;
use crate::request::{
    setup_key, ConfigSource, DegradeReason, ServeStatus, SolveRequest, SolveResponse,
};
use crate::shard::{shard_worker_loop, ShardJob, ShardOutcome, ShardRuntime, ShardSetupCache};
use crate::telemetry::RequestTimeline;
use crossbeam::channel::{unbounded, Receiver, Sender};
use qdd_comm::{DistDdConfig, RetryPolicy};
use qdd_core::{FgmresConfig, Precision, SchwarzConfig};
use qdd_faults::ShardFaults;
use qdd_field::fields::SpinorField;
use qdd_lattice::Dims;
use qdd_trace::{
    FlightLane, FlightRecorder, MetricsRegistry, Phase, RequestId, TraceId, TraceSink,
};
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Shard-pool tuning knobs.
#[derive(Copy, Clone, Debug)]
pub struct ShardPoolConfig {
    /// Shard workers (each one simulated multi-rank world).
    pub shards: usize,
    /// Rank-grid decomposition per shard (applied to each request's
    /// lattice dims).
    pub rank_dims: Dims,
    /// Distributed solver template; each request overrides the outer
    /// tolerance with its own.
    pub solver: DistDdConfig,
    /// Restart budget of the resilient wrapper, per attempt.
    pub max_restarts: u32,
    /// Failover re-dispatches allowed per request (0 = fail fast on the
    /// first sick shard).
    pub retry_budget: u32,
    /// Per-shard circuit breaker parameters.
    pub breaker: BreakerConfig,
    /// Communication retry/backoff policy installed into every rank.
    pub retry: RetryPolicy,
    /// Seed the per-request [`TraceId`]s derive from.
    pub trace_seed: u64,
    /// Scattered configurations kept in the pool-shared LRU.
    pub setup_cache_capacity: usize,
}

impl Default for ShardPoolConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            rank_dims: Dims::new(1, 1, 1, 2),
            solver: DistDdConfig {
                fgmres: FgmresConfig::default(),
                schwarz: SchwarzConfig::default(),
                precision: Precision::Single,
            },
            max_restarts: 2,
            retry_budget: 2,
            breaker: BreakerConfig::default(),
            retry: RetryPolicy::default(),
            trace_seed: 0x5e7e_5e7e_5e7e_5e7e,
            setup_cache_capacity: 4,
        }
    }
}

/// Claim check for a submitted request.
pub struct PoolTicket {
    rx: Receiver<SolveResponse>,
}

impl PoolTicket {
    /// Block until the pool answers. Every admitted request is answered
    /// (shed or degraded at worst), including during shutdown drain.
    pub fn wait(self) -> SolveResponse {
        self.rx.recv().expect("shard supervisor dropped a request reply")
    }
}

/// What crosses the supervisor's single event channel.
enum PoolEvent {
    Admit(Vec<Admission>),
    Done(usize, ShardOutcome),
    Close,
}

/// One admitted request, stamped by the handle.
struct Admission {
    id: u64,
    trace: TraceId,
    key: u64,
    request: SolveRequest,
    submitted: Instant,
    reply: Sender<SolveResponse>,
}

/// Client-side handle; valid inside the [`shard_serve`] closure.
pub struct PoolHandle {
    events: Sender<PoolEvent>,
    next_request: AtomicU64,
    trace_seed: u64,
    flight_lane: FlightLane,
}

impl PoolHandle {
    /// Admit one request. Never blocks on a solve.
    pub fn submit(&self, request: SolveRequest) -> PoolTicket {
        self.submit_wave(vec![request]).pop().expect("one ticket per request")
    }

    /// Admit a whole wave of requests as *one* supervisor event: the
    /// wave enters the deadline heap atomically, so the dispatch order
    /// (and with it every downstream decision) is a deterministic
    /// function of the wave contents — the benchmark's reproducibility
    /// hinges on this.
    pub fn submit_wave(&self, requests: Vec<SolveRequest>) -> Vec<PoolTicket> {
        let mut admissions = Vec::with_capacity(requests.len());
        let mut tickets = Vec::with_capacity(requests.len());
        let submitted = Instant::now();
        for request in requests {
            let n = self.next_request.fetch_add(1, Ordering::Relaxed);
            let trace = TraceId::derive(self.trace_seed, n);
            let key = setup_key(
                request.config,
                *request.source.dims(),
                request.precision,
                request.tolerance,
            );
            self.flight_lane.set_trace(trace);
            self.flight_lane.record(Phase::ServeBatch, "req.admit", n as f64, key as f64);
            let (tx, rx) = unbounded();
            admissions.push(Admission { id: n, trace, key, request, submitted, reply: tx });
            tickets.push(PoolTicket { rx });
        }
        // A closed channel means the supervisor is gone — only possible
        // after the serve scope ended, where no handle survives.
        self.events.send(PoolEvent::Admit(admissions)).expect("supervisor event channel closed");
        tickets
    }

    /// Requests assigned an id so far.
    pub fn submitted(&self) -> u64 {
        self.next_request.load(Ordering::Relaxed)
    }
}

/// Aggregated result of one [`shard_serve`] run.
pub struct PoolReport {
    /// `serve.*` metrics for export.
    pub metrics: MetricsRegistry,
    /// End-to-end latency samples (submission → response).
    pub latency: LatencyRecorder,
    /// Queue-wait samples (submission → first dispatch).
    pub queue_wait: LatencyRecorder,
    /// One timeline per answered request, in request-id order.
    pub timelines: Vec<RequestTimeline>,
    /// Requests answered (every admitted request is).
    pub completed: u64,
    /// Requests shed because their deadline expired while queued.
    pub shed: u64,
    /// Failover re-dispatches performed.
    pub failovers: u64,
    /// Breaker trips (Closed/HalfOpen → Open) across all shards.
    pub breaker_trips: u64,
    /// Every breaker transition, tagged with its shard.
    pub breaker_transitions: Vec<(usize, BreakerTransition)>,
    /// Dispatch rounds the supervisor clocked.
    pub rounds: u64,
    /// Jobs completed per shard (heartbeat tally).
    pub shard_jobs: Vec<u64>,
    /// Failed jobs per shard.
    pub shard_failures: Vec<u64>,
    pub setup_hits: u64,
    pub setup_misses: u64,
    pub setup_evictions: u64,
}

/// [`shard_serve_with_flight`] without a flight recorder attached.
pub fn shard_serve<R: Send>(
    cfg: &ShardPoolConfig,
    source: &dyn ConfigSource,
    faults: &ShardFaults,
    sink: &TraceSink,
    client: impl FnOnce(&PoolHandle) -> R + Send,
) -> (R, PoolReport) {
    shard_serve_with_flight(cfg, source, faults, sink, &FlightRecorder::disabled(), client)
}

/// Run the sharded solve service: spawn the shard workers and the
/// supervisor, hand the client closure a submission handle, and — once
/// the closure returns — drain the heap, shut everything down and
/// aggregate the [`PoolReport`]. Flight lane 0 is the admission path,
/// shard `i` records on lane `i + 1`, the supervisor on lane
/// `shards + 1`.
pub fn shard_serve_with_flight<R: Send>(
    cfg: &ShardPoolConfig,
    source: &dyn ConfigSource,
    faults: &ShardFaults,
    sink: &TraceSink,
    flight: &FlightRecorder,
    client: impl FnOnce(&PoolHandle) -> R + Send,
) -> (R, PoolReport) {
    let nshards = cfg.shards.max(1);
    let setups = Mutex::new(ShardSetupCache::new(cfg.setup_cache_capacity));
    let (events_tx, events_rx) = unbounded::<PoolEvent>();
    let handle = PoolHandle {
        events: events_tx.clone(),
        next_request: AtomicU64::new(0),
        trace_seed: cfg.trace_seed,
        flight_lane: flight.lane(0),
    };

    let mut job_channels = Vec::with_capacity(nshards);
    let mut job_senders = Vec::with_capacity(nshards);
    for _ in 0..nshards {
        let (tx, rx) = unbounded::<ShardJob>();
        job_senders.push(tx);
        job_channels.push(rx);
    }

    let mut result: Option<R> = None;
    let mut report: Option<PoolReport> = None;
    crossbeam::scope(|s| {
        let setups = &setups;
        let mut workers = Vec::new();
        for (i, jobs) in job_channels.into_iter().enumerate() {
            let rt = ShardRuntime {
                shard: i,
                rank_dims: cfg.rank_dims,
                solver: cfg.solver,
                max_restarts: cfg.max_restarts,
                retry: cfg.retry,
                faults: faults.plan_for(i),
            };
            let emit = events_tx.clone();
            let flane = flight.lane(i as u32 + 1);
            workers.push(s.spawn(move |_| {
                shard_worker_loop(&rt, source, setups, sink, &flane, &jobs, |out| {
                    // The supervisor may already have exited (final
                    // drain); a dead channel just drops the heartbeat.
                    let _ = emit.send(PoolEvent::Done(rt.shard, out));
                });
            }));
        }
        let sup_flane = flight.lane(nshards as u32 + 1);
        let supervisor =
            s.spawn(|_| Supervisor::new(cfg, job_senders, sink, flight, sup_flane).run(events_rx));
        result = Some(client(&handle));
        handle.events.send(PoolEvent::Close).expect("supervisor event channel closed");
        let mut rep = supervisor.join().expect("shard supervisor panicked");
        for w in workers {
            w.join().expect("shard worker panicked");
        }
        let setups = setups.lock().unwrap();
        rep.setup_hits = setups.hits();
        rep.setup_misses = setups.misses();
        rep.setup_evictions = setups.evictions();
        rep.metrics.add("serve.setup.hits", setups.hits() as f64);
        rep.metrics.add("serve.setup.misses", setups.misses() as f64);
        rep.metrics.add("serve.setup.evictions", setups.evictions() as f64);
        report = Some(rep);
    })
    .expect("shard serve scope failed");

    (result.expect("client closure ran"), report.expect("supervisor report collected"))
}

/// Heap key of a queued request: earliest deadline first (deadline-less
/// requests last), ties broken by admission id. `BinaryHeap` is a
/// max-heap, so `Ord` is inverted.
struct HeapKey {
    deadline: Option<Instant>,
    id: u64,
}

impl HeapKey {
    fn priority(&self) -> (bool, Option<Instant>, u64) {
        (self.deadline.is_none(), self.deadline, self.id)
    }
}

impl PartialEq for HeapKey {
    fn eq(&self, other: &Self) -> bool {
        self.priority() == other.priority()
    }
}
impl Eq for HeapKey {}
impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.priority().cmp(&self.priority())
    }
}

/// One queued (or in-flight) request with its failover bookkeeping.
struct PendingRequest {
    trace: TraceId,
    key: u64,
    config: crate::request::ConfigKey,
    source: Arc<SpinorField<f64>>,
    tolerance: f64,
    deadline: Option<Instant>,
    submitted: Instant,
    /// Failover attempt counter (0 = never dispatched or first attempt).
    attempt: u32,
    /// Shards that already failed this request.
    tried: Vec<usize>,
    /// Best-so-far iterate from a failed attempt (warm-restart seed).
    x0: Option<SpinorField<f64>>,
    /// Outer iterations accumulated across attempts.
    iterations: usize,
    /// Queue wait, frozen at first dispatch.
    queue_wait: Option<std::time::Duration>,
    reply: Sender<SolveResponse>,
}

struct ShardSlot {
    jobs: Sender<ShardJob>,
    breaker: CircuitBreaker,
    busy: bool,
    jobs_done: u64,
    failures: u64,
    /// Round of the shard's most recent completed job (heartbeat).
    last_heartbeat: u64,
}

struct Supervisor {
    retry_budget: u32,
    shards: Vec<ShardSlot>,
    heap: BinaryHeap<HeapKey>,
    pending: HashMap<u64, PendingRequest>,
    /// Round-robin start shard for the next dispatch.
    rr: usize,
    /// The pool's logical clock: one tick per dispatch round.
    round: u64,
    sink: TraceSink,
    flight: FlightRecorder,
    flane: FlightLane,
    metrics: MetricsRegistry,
    latency: LatencyRecorder,
    queue_wait: LatencyRecorder,
    timelines: Vec<RequestTimeline>,
    completed: u64,
    shed: u64,
    failovers: u64,
}

impl Supervisor {
    fn new(
        cfg: &ShardPoolConfig,
        job_senders: Vec<Sender<ShardJob>>,
        sink: &TraceSink,
        flight: &FlightRecorder,
        flane: FlightLane,
    ) -> Self {
        let shards = job_senders
            .into_iter()
            .map(|jobs| ShardSlot {
                jobs,
                breaker: CircuitBreaker::new(cfg.breaker),
                busy: false,
                jobs_done: 0,
                failures: 0,
                last_heartbeat: 0,
            })
            .collect();
        Self {
            retry_budget: cfg.retry_budget,
            shards,
            heap: BinaryHeap::new(),
            pending: HashMap::new(),
            rr: 0,
            round: 0,
            sink: sink.clone(),
            flight: flight.clone(),
            flane,
            metrics: MetricsRegistry::new(),
            latency: LatencyRecorder::new(),
            queue_wait: LatencyRecorder::new(),
            timelines: Vec::new(),
            completed: 0,
            shed: 0,
            failovers: 0,
        }
    }

    /// The supervisor event loop. Round-synchronous: results are
    /// buffered until the whole round is back, then processed in shard
    /// order, then the next round is dispatched — every scheduling
    /// decision happens at a deterministic point of the logical clock.
    fn run(mut self, events: Receiver<PoolEvent>) -> PoolReport {
        let mut outstanding = 0usize;
        let mut round_results: Vec<(usize, ShardOutcome)> = Vec::new();
        let mut closing = false;
        loop {
            if outstanding == 0 {
                round_results.sort_by_key(|&(shard, _)| shard);
                for (shard, out) in round_results.drain(..) {
                    self.handle_result(shard, out);
                }
                while outstanding == 0 && !self.heap.is_empty() {
                    self.round += 1;
                    self.tick_breakers();
                    let n = self.dispatch_round();
                    outstanding += n;
                    if n == 0
                        && !self.shards.iter().any(|s| s.breaker.state() == BreakerState::Open)
                    {
                        // No breaker is cooling and still nothing
                        // dispatched: the remaining requests have no
                        // shard left to try. Answer them now rather
                        // than spin.
                        self.drain_unservable();
                        break;
                    }
                }
                if closing && outstanding == 0 && self.heap.is_empty() {
                    break;
                }
            }
            match events.recv() {
                Ok(PoolEvent::Admit(batch)) => {
                    for adm in batch {
                        self.admit(adm);
                    }
                }
                Ok(PoolEvent::Done(shard, out)) => {
                    self.shards[shard].busy = false;
                    self.shards[shard].last_heartbeat = self.round;
                    round_results.push((shard, out));
                    outstanding -= 1;
                }
                Ok(PoolEvent::Close) => closing = true,
                Err(_) => break,
            }
        }
        self.finish()
    }

    fn admit(&mut self, adm: Admission) {
        let Admission { id, trace, key, request, submitted, reply } = adm;
        let deadline = request.deadline.map(|d| submitted + d);
        self.heap.push(HeapKey { deadline, id });
        self.pending.insert(
            id,
            PendingRequest {
                trace,
                key,
                config: request.config,
                source: Arc::new(request.source),
                tolerance: request.tolerance,
                deadline,
                submitted,
                attempt: 0,
                tried: Vec::new(),
                x0: None,
                iterations: 0,
                queue_wait: None,
                reply,
            },
        );
        self.metrics.observe("serve.queue.depth", self.heap.len() as f64);
        self.sink.counter(Phase::ServeBatch, "serve.queue_depth", self.heap.len() as f64);
    }

    /// Advance every breaker's cooldown by one round; newly armed
    /// half-open probes are breadcrumbed.
    fn tick_breakers(&mut self) {
        for i in 0..self.shards.len() {
            if self.shards[i].breaker.tick(self.round) {
                self.flane.record(
                    Phase::ServeShard,
                    "breaker.halfopen",
                    i as f64,
                    self.round as f64,
                );
            }
        }
    }

    /// Assign at most one job to every idle shard whose breaker admits,
    /// shedding expired requests on the way. Returns the jobs dispatched.
    fn dispatch_round(&mut self) -> usize {
        let n = self.shards.len();
        let now = Instant::now();
        let mut dispatched = 0;
        let mut blocked: Vec<HeapKey> = Vec::new();
        while self.shards.iter().any(|s| !s.busy && s.breaker.admits()) {
            let Some(k) = self.heap.pop() else { break };
            let p = self.pending.get(&k.id).expect("heap entry without pending request");
            // Shed-at-dequeue: an expired request never reaches a shard.
            if p.deadline.is_some_and(|d| now > d) {
                self.shed_expired(k.id);
                continue;
            }
            let mut target = None;
            for j in 0..n {
                let cand = (self.rr + j) % n;
                let slot = &self.shards[cand];
                if !slot.busy && slot.breaker.admits() && !p.tried.contains(&cand) {
                    target = Some(cand);
                    break;
                }
            }
            match target {
                Some(shard) => {
                    self.rr = (shard + 1) % n;
                    self.dispatch_to(shard, k.id, now);
                    dispatched += 1;
                }
                // Every currently admitting shard already failed this
                // request. If no shard is left at all, answer it; if
                // some are merely open/busy, park it for a later round.
                None => {
                    if p.tried.len() >= n {
                        self.finalize_exhausted(k.id);
                    } else {
                        blocked.push(k);
                    }
                }
            }
        }
        for k in blocked {
            self.heap.push(k);
        }
        dispatched
    }

    fn dispatch_to(&mut self, shard: usize, id: u64, now: Instant) {
        let p = self.pending.get_mut(&id).expect("dispatching unknown request");
        if p.queue_wait.is_none() {
            let wait = now.saturating_duration_since(p.submitted);
            p.queue_wait = Some(wait);
            self.queue_wait.record(wait);
        }
        let job = ShardJob {
            id,
            trace: p.trace,
            attempt: p.attempt,
            setup_key: p.key,
            config: p.config,
            source: p.source.clone(),
            tolerance: p.tolerance,
            x0: p.x0.take(),
        };
        self.flane.set_trace(p.trace);
        self.flane.record(Phase::ServeShard, "req.dispatch", id as f64, shard as f64);
        self.metrics.add("serve.dispatches", 1.0);
        self.shards[shard].busy = true;
        // A closed jobs channel would mean the worker died; the scope
        // would already be propagating its panic.
        self.shards[shard].jobs.send(job).expect("shard worker gone");
    }

    fn handle_result(&mut self, shard: usize, out: ShardOutcome) {
        self.shards[shard].jobs_done += 1;
        let mut p = self.pending.remove(&out.id).expect("result for unknown request");
        if out.setup_failed {
            // A bad configuration indicts the request, not the shard:
            // the breaker is left alone.
            let zero = SpinorField::zeros(*p.source.dims());
            self.finalize(out.id, p, ServeStatus::Degraded(DegradeReason::SetupFailed), zero, 1.0);
            return;
        }
        p.iterations += out.iterations;
        if out.warm_started {
            self.metrics.add("serve.failover.warm_accepted", 1.0);
        }
        if out.warm_rejected {
            self.metrics.add("serve.failover.warm_rejected", 1.0);
        }
        if out.verdict.unhealthy() {
            self.shards[shard].failures += 1;
            self.metrics.add("serve.shard.failures", 1.0);
            if self.shards[shard].breaker.record_failure(self.round) {
                self.metrics.add("serve.breaker.trips", 1.0);
                self.flane.record(
                    Phase::ServeShard,
                    "breaker.open",
                    shard as f64,
                    self.round as f64,
                );
                // Post-mortem: the rings hold the fault breadcrumbs
                // that led to the trip.
                self.flight.dump("breaker");
            }
            p.tried.push(shard);
            if p.attempt >= self.retry_budget || p.tried.len() >= self.shards.len() {
                let residual = out.relative_residual;
                self.finalize(
                    out.id,
                    p,
                    ServeStatus::Degraded(DegradeReason::ShardsExhausted),
                    out.solution,
                    residual,
                );
            } else {
                // Failover: hand the best-so-far iterate to a sibling
                // as a warm start and put the request back in the heap.
                p.attempt += 1;
                p.x0 = Some(out.solution);
                self.failovers += 1;
                self.metrics.add("serve.failover", 1.0);
                self.sink.counter(Phase::ServeFailover, "serve.failover", 1.0);
                self.flane.set_trace(p.trace);
                self.flane.record(
                    Phase::ServeFailover,
                    "req.failover",
                    out.id as f64,
                    p.attempt as f64,
                );
                self.heap.push(HeapKey { deadline: p.deadline, id: out.id });
                self.pending.insert(out.id, p);
            }
        } else {
            self.shards[shard].breaker.record_success(self.round);
            let status = if out.verdict.converged {
                if p.attempt > 0 {
                    self.metrics.add("serve.failover.rescued", 1.0);
                }
                ServeStatus::Converged
            } else {
                ServeStatus::Degraded(DegradeReason::TargetMissed)
            };
            let residual = out.relative_residual;
            self.finalize(out.id, p, status, out.solution, residual);
        }
    }

    fn shed_expired(&mut self, id: u64) {
        let p = self.pending.remove(&id).expect("shedding unknown request");
        self.shed += 1;
        self.metrics.add("serve.shed.expired", 1.0);
        self.sink.counter(Phase::ServeBatch, "serve.shed.expired", 1.0);
        self.flane.set_trace(p.trace);
        self.flane.record(Phase::ServeBatch, "req.shed.expired", id as f64, 0.0);
        let zero = SpinorField::zeros(*p.source.dims());
        self.finalize(id, p, ServeStatus::Shed, zero, 1.0);
    }

    fn finalize_exhausted(&mut self, id: u64) {
        let mut p = self.pending.remove(&id).expect("finalizing unknown request");
        let best = p.x0.take().unwrap_or_else(|| SpinorField::zeros(*p.source.dims()));
        self.finalize(id, p, ServeStatus::Degraded(DegradeReason::ShardsExhausted), best, 1.0);
    }

    /// Remaining heap entries that can never dispatch (safety valve for
    /// a fully tripped pool with nothing cooling): answer each with its
    /// best surviving iterate.
    fn drain_unservable(&mut self) {
        while let Some(k) = self.heap.pop() {
            self.finalize_exhausted(k.id);
        }
    }

    /// Answer one request: record latency/status metrics, the timeline,
    /// and send the response.
    fn finalize(
        &mut self,
        id: u64,
        p: PendingRequest,
        status: ServeStatus,
        solution: SpinorField<f64>,
        residual: f64,
    ) {
        let total = p.submitted.elapsed();
        let total_ms = total.as_secs_f64() * 1e3;
        let wait = p.queue_wait.unwrap_or(total);
        let wait_ms = wait.as_secs_f64() * 1e3;
        let attempts = if status == ServeStatus::Shed { 0 } else { p.attempt + 1 };
        self.latency.record(total);
        self.completed += 1;
        self.metrics.add("serve.requests", 1.0);
        self.metrics.add(&format!("serve.status.{}", status.label()), 1.0);
        self.metrics.record_hist("serve.iterations", p.iterations as f64);
        self.metrics.record_hist("serve.latency_ms", total_ms);
        self.metrics.record_hist("serve.attempts", attempts as f64);
        self.sink.counter(Phase::ServeBatch, "serve.latency_ms", total_ms);
        self.flane.set_trace(p.trace);
        self.flane.record(Phase::ServeBatch, "req.done", id as f64, total_ms);
        let terminal = match status {
            ServeStatus::Converged => "solved",
            ServeStatus::Fallback => "fallback",
            ServeStatus::Degraded(_) => "degraded",
            ServeStatus::Shed => "shed",
        };
        self.timelines.push(RequestTimeline {
            request: RequestId(id),
            trace: p.trace,
            status,
            stages: vec![
                ("admitted", 0.0),
                ("dispatched", wait_ms),
                (terminal, total_ms),
                ("done", total_ms),
            ],
        });
        // A dropped ticket is the client's prerogative; ignore it.
        let _ = p.reply.send(SolveResponse {
            request_id: RequestId(id),
            trace_id: p.trace,
            status,
            solution,
            relative_residual: residual,
            iterations: p.iterations,
            attempts,
            queue_wait: wait,
            latency: total,
        });
    }

    fn finish(mut self) -> PoolReport {
        let mut breaker_transitions = Vec::new();
        let mut breaker_trips = 0;
        let mut shard_jobs = Vec::with_capacity(self.shards.len());
        let mut shard_failures = Vec::with_capacity(self.shards.len());
        for (i, slot) in self.shards.iter().enumerate() {
            breaker_trips += slot.breaker.trips();
            for t in slot.breaker.transitions() {
                breaker_transitions.push((i, *t));
            }
            shard_jobs.push(slot.jobs_done);
            shard_failures.push(slot.failures);
            self.metrics.set_gauge(&format!("serve.shard.{i}.jobs"), slot.jobs_done as f64);
            self.metrics.set_gauge(&format!("serve.shard.{i}.failures"), slot.failures as f64);
            self.metrics.set_gauge(&format!("serve.shard.{i}.trips"), slot.breaker.trips() as f64);
            self.metrics
                .set_gauge(&format!("serve.shard.{i}.state"), slot.breaker.state().as_gauge());
            self.metrics
                .set_gauge(&format!("serve.shard.{i}.last_heartbeat"), slot.last_heartbeat as f64);
        }
        self.metrics.set_gauge("serve.rounds", self.round as f64);
        let lat = self.latency.summary();
        self.metrics.set_gauge("serve.latency.p50_ms", lat.p50_ms);
        self.metrics.set_gauge("serve.latency.p99_ms", lat.p99_ms);
        self.timelines.sort_by_key(|t| t.request.0);
        PoolReport {
            metrics: self.metrics,
            latency: self.latency,
            queue_wait: self.queue_wait,
            timelines: self.timelines,
            completed: self.completed,
            shed: self.shed,
            failovers: self.failovers,
            breaker_trips,
            breaker_transitions,
            rounds: self.round,
            shard_jobs,
            shard_failures,
            setup_hits: 0,
            setup_misses: 0,
            setup_evictions: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ConfigKey, SyntheticSource};
    use qdd_core::MrConfig;
    use qdd_faults::{FaultRates, ShardFaults};
    use qdd_util::rng::Rng64;
    use std::time::Duration;

    fn dims() -> Dims {
        Dims::new(8, 4, 4, 8)
    }

    fn pool_cfg(shards: usize) -> ShardPoolConfig {
        ShardPoolConfig {
            shards,
            rank_dims: Dims::new(1, 1, 1, 2),
            solver: DistDdConfig {
                fgmres: FgmresConfig {
                    max_basis: 10,
                    deflate: 4,
                    tolerance: 1e-8,
                    max_iterations: 120,
                },
                schwarz: SchwarzConfig {
                    block: Dims::new(4, 4, 4, 4),
                    i_schwarz: 4,
                    mr: MrConfig { iterations: 4, tolerance: 0.0, f16_vectors: false },
                    additive: false,
                    overlap: true,
                    ..Default::default()
                },
                precision: Precision::Single,
            },
            max_restarts: 1,
            retry_budget: 2,
            breaker: BreakerConfig { failure_threshold: 2, cooldown_rounds: 2 },
            retry: RetryPolicy::default(),
            trace_seed: 0xfeed_beef,
            setup_cache_capacity: 4,
        }
    }

    fn sources_for(n: u64) -> Vec<SpinorField<f64>> {
        (0..n)
            .map(|i| {
                let mut rng = Rng64::new(300 + i);
                SpinorField::random(dims(), &mut rng)
            })
            .collect()
    }

    #[test]
    fn fault_free_pool_converges_and_spreads_load() {
        let cfg = pool_cfg(2);
        let source = SyntheticSource::new(dims());
        let faults = ShardFaults::none(1);
        let sink = TraceSink::enabled();
        let (responses, report) = shard_serve(&cfg, &source, &faults, &sink, |h| {
            let tickets = h.submit_wave(
                sources_for(4).into_iter().map(|s| SolveRequest::new(ConfigKey(1), s)).collect(),
            );
            tickets.into_iter().map(PoolTicket::wait).collect::<Vec<_>>()
        });
        assert_eq!(responses.len(), 4);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.status, ServeStatus::Converged, "request {i}: {}", r.status);
            assert!(r.relative_residual <= 1e-8);
            assert_eq!(r.request_id.0, i as u64);
            assert_eq!(r.trace_id, TraceId::derive(cfg.trace_seed, i as u64));
        }
        assert_eq!(report.completed, 4);
        assert_eq!(report.shed, 0);
        assert_eq!(report.failovers, 0);
        assert_eq!(report.breaker_trips, 0);
        // Two shards, four requests, round-robin: two jobs each.
        assert_eq!(report.shard_jobs, vec![2, 2]);
        // One config, one scatter: the pool-shared cache built it once.
        assert_eq!(report.setup_misses, 1);
        assert_eq!(report.setup_hits, 3);
        assert_eq!(report.timelines.len(), 4);
        for t in &report.timelines {
            assert!(t.is_complete());
            assert!(t.stages.iter().any(|s| s.0 == "solved"));
        }
    }

    #[test]
    fn sick_shard_trips_breaker_and_failover_rescues_requests() {
        let mut cfg = pool_cfg(2);
        cfg.breaker = BreakerConfig { failure_threshold: 1, cooldown_rounds: 100 };
        let source = SyntheticSource::new(dims());
        // Shard 0 drops every message; shard 1 is clean.
        let faults =
            ShardFaults::none(7).with_shard(0, FaultRates { loss: 1.0, ..FaultRates::default() });
        let sink = TraceSink::enabled();
        let flight = FlightRecorder::with_capacity(128);
        let (responses, report) =
            shard_serve_with_flight(&cfg, &source, &faults, &sink, &flight, |h| {
                let tickets = h.submit_wave(
                    sources_for(4)
                        .into_iter()
                        .map(|s| SolveRequest::new(ConfigKey(1), s))
                        .collect(),
                );
                tickets.into_iter().map(PoolTicket::wait).collect::<Vec<_>>()
            });
        // Every request was answered and met its target: the ones that
        // hit the sick shard failed over to the healthy one.
        assert_eq!(report.completed, 4);
        for r in &responses {
            assert_eq!(r.status, ServeStatus::Converged, "{}", r.status);
            assert!(r.relative_residual <= 1e-8);
        }
        // The sick shard failed at least one request, tripped its
        // breaker, and the flight recorder dumped on the trip.
        assert!(report.failovers >= 1, "failovers: {}", report.failovers);
        assert_eq!(report.breaker_trips, 1);
        assert!(report.shard_failures[0] >= 1);
        assert_eq!(report.shard_failures[1], 0);
        assert!(flight.dumps() >= 1, "breaker trip must dump the flight rings");
        assert!(flight.snapshot().iter().any(|e| e.code == "req.failover"));
        assert!(flight.snapshot().iter().any(|e| e.code == "breaker.open"));
        // With the breaker open (cooldown 100 rounds ≫ run length), the
        // healthy shard carried the rest of the load alone.
        let open_at = report
            .breaker_transitions
            .iter()
            .find(|(s, t)| *s == 0 && t.to == BreakerState::Open)
            .expect("shard 0 must have opened");
        assert!(open_at.1.round >= 1);
        assert!(report.metrics.counters().get("serve.failover").copied().unwrap_or(0.0) >= 1.0);
    }

    #[test]
    fn expired_requests_are_shed_at_dispatch() {
        let cfg = pool_cfg(1);
        let source = SyntheticSource::new(dims());
        let faults = ShardFaults::none(3);
        let sink = TraceSink::disabled();
        let (response, report) = shard_serve(&cfg, &source, &faults, &sink, |h| {
            let mut req = SolveRequest::new(ConfigKey(1), sources_for(1).pop().unwrap());
            req.deadline = Some(Duration::ZERO);
            let t = h.submit(req);
            std::thread::sleep(Duration::from_millis(5));
            t.wait()
        });
        assert_eq!(response.status, ServeStatus::Shed);
        assert_eq!(response.iterations, 0);
        assert_eq!(response.solution.norm(), 0.0);
        assert_eq!(report.shed, 1);
        assert_eq!(report.metrics.counters().get("serve.shed.expired").copied(), Some(1.0));
        // Shed at dequeue: the shard never saw a job.
        assert_eq!(report.shard_jobs, vec![0]);
        assert!(report.timelines[0].stages.iter().any(|s| s.0 == "shed"));
    }

    #[test]
    fn every_shard_sick_exhausts_the_ladder_honestly() {
        let mut cfg = pool_cfg(2);
        cfg.retry_budget = 3;
        cfg.breaker = BreakerConfig { failure_threshold: 10, cooldown_rounds: 1 };
        let source = SyntheticSource::new(dims());
        let faults = ShardFaults::new(9, FaultRates { loss: 1.0, ..FaultRates::default() });
        let sink = TraceSink::disabled();
        let (response, report) = shard_serve(&cfg, &source, &faults, &sink, |h| {
            h.submit(SolveRequest::new(ConfigKey(1), sources_for(1).pop().unwrap())).wait()
        });
        // Both shards failed it; after trying each once the tried set
        // covers the pool and the answer is an honest exhaustion.
        assert_eq!(response.status, ServeStatus::Degraded(DegradeReason::ShardsExhausted));
        assert!(!response.status.meets_target());
        assert_eq!(report.completed, 1);
        assert_eq!(report.failovers, 1, "one failover before the pool was exhausted");
        assert_eq!(report.shard_failures, vec![1, 1]);
    }
}
