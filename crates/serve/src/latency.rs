//! Latency sampling with quantiles.
//!
//! The `qdd-trace` [`Summary`](qdd_trace::Summary) keeps only
//! min/mean/max; a latency SLO needs tail quantiles, so the service
//! records full sample vectors (requests per run are few enough that this
//! costs one `f64` each) and computes p50/p99 by rank on demand.

use std::time::Duration;

/// A vector of latency samples in milliseconds.
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    samples_ms: Vec<f64>,
}

/// Condensed view for reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    pub count: u64,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
}

impl LatencyRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, d: Duration) {
        self.samples_ms.push(d.as_secs_f64() * 1e3);
    }

    pub fn record_ms(&mut self, ms: f64) {
        self.samples_ms.push(ms);
    }

    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_ms.extend_from_slice(&other.samples_ms);
    }

    pub fn count(&self) -> u64 {
        self.samples_ms.len() as u64
    }

    pub fn mean_ms(&self) -> f64 {
        if self.samples_ms.is_empty() {
            0.0
        } else {
            self.samples_ms.iter().sum::<f64>() / self.samples_ms.len() as f64
        }
    }

    pub fn max_ms(&self) -> f64 {
        self.samples_ms.iter().copied().fold(0.0, f64::max)
    }

    /// Rank-based quantile (nearest-rank, `q` in `[0, 1]`); 0 with no
    /// samples.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.samples_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            mean_ms: self.mean_ms(),
            p50_ms: self.quantile_ms(0.50),
            p99_ms: self.quantile_ms(0.99),
            max_ms: self.max_ms(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_by_nearest_rank() {
        let mut r = LatencyRecorder::new();
        for ms in [5.0, 1.0, 3.0, 2.0, 4.0] {
            r.record_ms(ms);
        }
        assert_eq!(r.quantile_ms(0.5), 3.0);
        assert_eq!(r.quantile_ms(0.99), 5.0);
        assert_eq!(r.quantile_ms(0.0), 1.0);
        assert_eq!(r.quantile_ms(1.0), 5.0);
        let s = r.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.mean_ms, 3.0);
        assert_eq!(s.max_ms, 5.0);
    }

    #[test]
    fn merge_pools_samples() {
        let mut a = LatencyRecorder::new();
        a.record_ms(1.0);
        a.record(Duration::from_millis(9));
        let mut b = LatencyRecorder::new();
        b.record_ms(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.quantile_ms(0.5), 5.0);
    }

    #[test]
    fn empty_recorder_is_all_zero() {
        let r = LatencyRecorder::new();
        assert_eq!(r.quantile_ms(0.5), 0.0);
        assert_eq!(r.summary().count, 0);
    }
}
