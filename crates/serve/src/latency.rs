//! Latency sampling with quantiles.
//!
//! The `qdd-trace` [`Summary`](qdd_trace::Summary) keeps only
//! min/mean/max; a latency SLO needs tail quantiles, so the service
//! records into a [`LogHistogram`]: constant memory regardless of
//! request volume, p50/p99/p999 within the histogram's pinned 2 %
//! relative-error contract, and a deterministic bucket-count merge
//! (the old full-sample-vector recorder pooled and re-sorted samples,
//! which scaled with request count and made cross-worker merges
//! allocation-heavy).

use qdd_trace::LogHistogram;
use std::time::Duration;

/// A latency distribution in milliseconds, bucketed log-linearly.
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    hist: LogHistogram,
}

/// Condensed view for reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    pub count: u64,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
}

impl LatencyRecorder {
    /// Quantiles are within this relative error of the exact
    /// nearest-rank sample quantile (min/max/mean stay exact).
    pub const QUANTILE_RELATIVE_ERROR: f64 = LogHistogram::RELATIVE_ERROR;

    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, d: Duration) {
        self.hist.record(d.as_secs_f64() * 1e3);
    }

    pub fn record_ms(&mut self, ms: f64) {
        self.hist.record(ms);
    }

    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.hist.merge(&other.hist);
    }

    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    pub fn mean_ms(&self) -> f64 {
        self.hist.mean()
    }

    pub fn max_ms(&self) -> f64 {
        self.hist.max()
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`); 0 with no samples.
    /// Within [`QUANTILE_RELATIVE_ERROR`](Self::QUANTILE_RELATIVE_ERROR)
    /// of the exact sample quantile, exact at the extremes.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.hist.quantile(q.clamp(0.0, 1.0))
    }

    /// The underlying histogram (for registry export and bucket-level
    /// determinism checks).
    pub fn histogram(&self) -> &LogHistogram {
        &self.hist
    }

    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            mean_ms: self.mean_ms(),
            p50_ms: self.quantile_ms(0.50),
            p99_ms: self.quantile_ms(0.99),
            max_ms: self.max_ms(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// |approx - exact| within the recorder's pinned relative error.
    fn close(approx: f64, exact: f64) -> bool {
        (approx - exact).abs() <= LatencyRecorder::QUANTILE_RELATIVE_ERROR * exact
    }

    #[test]
    fn quantiles_by_nearest_rank_within_error_bound() {
        let mut r = LatencyRecorder::new();
        for ms in [5.0, 1.0, 3.0, 2.0, 4.0] {
            r.record_ms(ms);
        }
        assert!(close(r.quantile_ms(0.5), 3.0), "p50 {}", r.quantile_ms(0.5));
        assert!(close(r.quantile_ms(0.99), 5.0), "p99 {}", r.quantile_ms(0.99));
        // Extremes are exact, not just bounded.
        assert_eq!(r.quantile_ms(0.0), 1.0);
        assert_eq!(r.quantile_ms(1.0), 5.0);
        let s = r.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.mean_ms, 3.0);
        assert_eq!(s.max_ms, 5.0);
    }

    #[test]
    fn quantile_error_bound_holds_on_a_heavy_tail() {
        // A lognormal-ish tail: mostly-fast requests with rare slow ones,
        // the regime p99 monitoring exists for. Every probed quantile must
        // stay within the pinned relative error of the exact nearest-rank
        // value computed from the raw samples.
        let mut r = LatencyRecorder::new();
        let mut samples = Vec::new();
        let mut x = 0x243f_6a88_85a3_08d3u64;
        for _ in 0..5_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let u = (x >> 11) as f64 / (1u64 << 53) as f64;
            let ms = 2.0 * (1.0 / (1.0 - u * 0.9999)).powf(1.5);
            r.record_ms(ms);
            samples.push(ms);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
            let exact = samples[rank - 1];
            let approx = r.quantile_ms(q);
            assert!(close(approx, exact), "q={q}: {approx} vs exact {exact}");
        }
        assert_eq!(r.count(), 5_000);
        assert_eq!(r.max_ms(), *samples.last().unwrap());
    }

    #[test]
    fn merge_pools_distributions() {
        let mut a = LatencyRecorder::new();
        a.record_ms(1.0);
        a.record(Duration::from_millis(9));
        let mut b = LatencyRecorder::new();
        b.record_ms(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!(close(a.quantile_ms(0.5), 5.0));
        // Merge order does not change the merged buckets.
        let mut a2 = LatencyRecorder::new();
        a2.record_ms(5.0);
        let mut b2 = LatencyRecorder::new();
        b2.record_ms(1.0);
        b2.record(Duration::from_millis(9));
        a2.merge(&b2);
        assert_eq!(a.histogram().bucket_snapshot(), a2.histogram().bucket_snapshot());
    }

    #[test]
    fn empty_recorder_is_all_zero() {
        let r = LatencyRecorder::new();
        assert_eq!(r.quantile_ms(0.5), 0.0);
        assert_eq!(r.summary().count, 0);
        assert_eq!(r.max_ms(), 0.0);
    }
}
