//! `qdd-serve`: a batched multi-RHS solve service over the `qdd-core`
//! domain-decomposition solvers.
//!
//! Propagator production in lattice QCD issues many right-hand sides
//! against few gauge configurations. This crate turns the one-shot
//! solver into a multi-tenant service shaped around that workload:
//!
//! * **Admission control** — a bounded queue ([`BoundedQueue`]) sheds
//!   load with [`SubmitError::QueueFull`] instead of growing without
//!   bound or blocking producers.
//! * **Request batching** — queued requests that share a setup key
//!   ([`setup_key`]: config id, geometry, precision policy, tolerance)
//!   are coalesced into one multi-RHS batch through
//!   `DdSolver::solve_batch`, amortizing Schwarz setup and reusing
//!   pooled workspaces. Batched results are bitwise identical to
//!   independent solves.
//! * **Setup caching** — prepared solvers (clover inversion, precision
//!   conversion, domain coloring) are kept in an LRU [`SetupCache`],
//!   with hit/miss/eviction counters exported through `qdd-trace`.
//! * **Autotuning** — with `ServiceConfig::autotune` on, the
//!   `qdd-autotune` model search picks the Schwarz operating point
//!   (block geometry, `ISchwarz`, `Idomain`) for each request shape on
//!   the configured machine backend; tuned plans are cached in an LRU
//!   [`TuneCache`] beside the setup cache (`serve.tune.*` metrics), so
//!   tuning runs once per shape and is served thereafter.
//! * **Graceful degradation** — each response carries an honest
//!   [`ServeStatus`]: `Converged`, `Fallback` (plain BiCGstab rescued a
//!   primary miss), or `Degraded` with a [`DegradeReason`]. Deadline
//!   misses return the best iterate so far; nothing panics or hangs.
//!
//! * **Sharded self-healing** — [`shard_serve`] runs the service as a
//!   supervised pool of *shard workers*, each owning a simulated
//!   multi-rank communication world with its own seeded fault plan
//!   ([`qdd_faults::ShardFaults`]). A supervisor thread tracks per-shard
//!   health from solve verdicts, trips a per-shard [`CircuitBreaker`]
//!   on repeated failures (Closed → Open → HalfOpen probe), fails
//!   requests over to healthy shards with a best-so-far warm-restart
//!   iterate, and sheds deadline-expired requests at dequeue — all on a
//!   round-synchronous logical clock that keeps the whole pool
//!   bitwise-reproducible under a fixed fault seed.
//!
//! Entry points: [`serve`] runs the single-world worker pool around a
//! client closure and returns a [`ServiceReport`] with
//! queue-depth/batch-size metrics and p50/p99 latency; [`shard_serve`]
//! runs the supervised shard pool and returns a [`PoolReport`].

pub mod breaker;
pub mod cache;
pub mod latency;
pub mod queue;
pub mod request;
pub mod service;
pub mod shard;
pub mod supervisor;
pub mod telemetry;

pub use breaker::{BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker};
pub use cache::{CacheOutcome, SetupCache, TuneCache};
pub use latency::{LatencyRecorder, LatencySummary};
pub use queue::{BoundedQueue, QueueFull};
pub use request::{
    setup_key, ConfigKey, ConfigSource, DegradeReason, ServeStatus, SolveRequest, SolveResponse,
    SyntheticSource,
};
pub use service::{
    serve, serve_with_flight, ServiceConfig, ServiceHandle, ServiceReport, SubmitError, Ticket,
    STRAGGLER_RATIO,
};
pub use shard::{
    run_shard_job, shard_worker_loop, ShardJob, ShardOutcome, ShardRuntime, ShardSetup,
    ShardSetupCache,
};
pub use supervisor::{
    shard_serve, shard_serve_with_flight, PoolHandle, PoolReport, PoolTicket, ShardPoolConfig,
};
pub use telemetry::{join_against_model, RequestTimeline};
