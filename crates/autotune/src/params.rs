//! The autotuner's vocabulary: the problem being tuned, one tuned
//! operating point, and the ranked plan the search returns.

use qdd_lattice::Dims;
use qdd_machine::{BackendKind, Precision, PrefetchMode};
use serde::Serialize;

/// What the tuner is optimizing *for*: a lattice, its rank layout, the
/// outer-solver shape, and how many cores per node actually participate.
#[derive(Copy, Clone, Debug, Serialize)]
pub struct TuneProblem {
    /// Global lattice extents.
    pub dims: Dims,
    /// Rank grid (volume = node count); `1x1x1x1` for a single host.
    pub layout: Dims,
    /// FGMRES basis size (fixed by memory, not searched).
    pub max_basis: usize,
    /// Deflation space size (fixed alongside the basis).
    pub deflate: usize,
    /// Outer iterations observed (or expected) at the *reference*
    /// operating point `i_schwarz = 16, i_domain = 5` — the anchor of
    /// the iteration-response law.
    pub base_outer: usize,
    /// Cores per node that run domain solves; `None` uses the backend
    /// chip's core count (the co-processor case). The serve path passes
    /// its worker count here.
    pub cores: Option<usize>,
}

impl TuneProblem {
    /// The paper's 48^3x64 strong-scaling workload on `kncs` nodes.
    pub fn paper_48(kncs: usize) -> Option<Self> {
        let lat = qdd_machine::workload::lattice_48();
        let layout = qdd_machine::rank_layout(&lat.dims, kncs)?;
        Some(Self {
            dims: lat.dims,
            layout,
            max_basis: lat.dd.max_basis,
            deflate: lat.dd.deflate,
            base_outer: lat.dd.outer_iterations,
            cores: None,
        })
    }

    /// A single-host problem (the serve path): one rank, `workers`
    /// cores, modest Krylov space.
    pub fn single_node(dims: Dims, workers: usize, base_outer: usize) -> Self {
        Self {
            dims,
            layout: Dims::new(1, 1, 1, 1),
            max_basis: 16,
            deflate: 4,
            base_outer: base_outer.max(1),
            cores: Some(workers.max(1)),
        }
    }

    /// Local (per-rank) lattice extents.
    pub fn local(&self) -> Dims {
        self.dims.grid_over(&self.layout)
    }

    /// Is this a distributed problem (halo traffic exists)?
    pub fn distributed(&self) -> bool {
        self.layout.volume() > 1
    }
}

/// One scored operating point: the tunables plus what the model says
/// they cost. Ordering fields (`predicted_total_s` first, then the
/// canonical key) make ranked plans bitwise reproducible.
#[derive(Copy, Clone, Debug, Serialize)]
pub struct TunedParams {
    pub backend: BackendKind,
    /// Schwarz block geometry.
    pub block: Dims,
    /// Gauge/clover storage precision in the preconditioner.
    pub precision: Precision,
    pub prefetch: PrefetchMode,
    pub i_schwarz: usize,
    pub i_domain: usize,
    /// Outer iterations the response law predicts at this strength.
    pub outer_iterations: usize,
    /// Model-predicted time to solution, seconds, after calibration.
    pub predicted_total_s: f64,
    /// The uncalibrated prediction (equal when calibration is identity).
    pub raw_total_s: f64,
    /// Predicted preconditioner rate, Gflop/s per node.
    pub predicted_m_gflops: f64,
    /// Eq. 7 load average at this geometry.
    pub load: f64,
    /// Whether the Fig. 4 hiding condition `cores <= ndomain/2` holds.
    pub can_hide: bool,
}

impl TunedParams {
    /// Canonical tie-break key: deterministic total order over the
    /// tunables, independent of score.
    pub fn key(&self) -> (usize, [usize; 4], u8, u8, usize, usize) {
        let precision = match self.precision {
            Precision::Single => 0u8,
            Precision::Half => 1,
        };
        let prefetch = match self.prefetch {
            PrefetchMode::None => 0u8,
            PrefetchMode::L1 => 1,
            PrefetchMode::L1L2 => 2,
        };
        (self.block.volume(), self.block.0, precision, prefetch, self.i_schwarz, self.i_domain)
    }

    /// One-line rendering for tables and logs.
    pub fn describe(&self) -> String {
        format!(
            "{}x{}x{}x{} {} {} Is={} Id={} outer={} load={:.0}% {:.3}s",
            self.block.0[0],
            self.block.0[1],
            self.block.0[2],
            self.block.0[3],
            match self.precision {
                Precision::Single => "f32",
                Precision::Half => "f16",
            },
            match self.prefetch {
                PrefetchMode::None => "pf:none",
                PrefetchMode::L1 => "pf:l1",
                PrefetchMode::L1L2 => "pf:l1l2",
            },
            self.i_schwarz,
            self.i_domain,
            self.outer_iterations,
            100.0 * self.load,
            self.predicted_total_s,
        )
    }
}

/// Why a candidate was excluded from the ranked plan.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Rejection {
    /// The paper block (or candidate) does not tile the local lattice an
    /// even number of times.
    Geometry,
    /// `DdParams` failed typed validation.
    Invalid,
    /// Eq. 6 load average below the tuner's floor.
    Load,
    /// Fig. 4 hiding impossible: more cores than `ndomain/2` on a
    /// distributed problem.
    Hiding,
}

/// The search's answer: candidates ranked best-first, the scored
/// hand-set default for comparison, and bookkeeping that makes the run
/// auditable and reproducible.
#[derive(Clone, Debug, Serialize)]
pub struct TunePlan {
    pub backend: BackendKind,
    pub problem: TuneProblem,
    /// Feasible candidates, best (lowest predicted time) first.
    pub ranked: Vec<TunedParams>,
    /// The backend's hand-set default operating point, scored the same
    /// way (`None` when the paper block does not fit the problem).
    pub default_params: Option<TunedParams>,
    pub evaluated: usize,
    pub rejected_load: usize,
    pub rejected_hiding: usize,
    pub rejected_invalid: usize,
    /// Seed of the (order-shuffling) evaluation permutation.
    pub seed: u64,
    /// FNV-1a over every ranked candidate's tunables and score bits:
    /// two runs agree iff their plans are bitwise identical.
    pub fingerprint: u64,
}

impl TunePlan {
    /// The winner, if any candidate was feasible.
    pub fn best(&self) -> Option<&TunedParams> {
        self.ranked.first()
    }

    /// Model-predicted speedup of the winner over the scored default
    /// (>1 means the tuner found a better operating point).
    pub fn speedup_over_default(&self) -> Option<f64> {
        let best = self.best()?;
        let default = self.default_params.as_ref()?;
        Some(default.predicted_total_s / best.predicted_total_s)
    }
}

/// FNV-1a 64-bit, the workspace's deterministic fingerprint hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Extend an FNV-1a state with a u64 (little-endian).
pub fn fnv1a_u64(state: u64, v: u64) -> u64 {
    let mut h = state;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}
