//! The deterministic parameter search.
//!
//! The tuner enumerates block geometry × precision × prefetch mode ×
//! `i_schwarz` × `i_domain` in a canonical order, scores each candidate
//! with the backend's multi-node model under the Eq. 6 load-balance and
//! Fig. 4 (`cores <= ndomain/2`) hiding constraints, and ranks by
//! calibrated predicted time. Evaluation order is shuffled by a seeded
//! permutation — scoring is side-effect free, so the ranked plan is
//! bitwise identical for every seed and worker count; the shuffle (plus
//! the determinism tests) prove it.

use crate::calibrate::Calibration;
use crate::params::{fnv1a_u64, Rejection, TunePlan, TuneProblem, TunedParams};
use qdd_lattice::{load, Dims};
use qdd_machine::workload::DdParams;
use qdd_machine::{paper_block, BackendKind, Precision, PrefetchMode};
use qdd_trace::model::keys;
use qdd_trace::ModelJoin;
use qdd_util::rng::Rng64;

/// The discrete axes the search sweeps. Defaults bracket the paper's
/// hand-tuned point (`Is=16`, `Id=5`, 8x4x4x4 blocks).
#[derive(Clone, Debug)]
pub struct SearchSpace {
    pub i_schwarz: Vec<usize>,
    pub i_domain: Vec<usize>,
    pub precisions: Vec<Precision>,
    /// Block-volume bounds: small blocks drown in boundary work and
    /// barrier overhead, large blocks spill L2 and wreck the balance.
    pub min_block_volume: usize,
    pub max_block_volume: usize,
    /// Minimum block extent per direction. The site-fused even/odd SIMD
    /// layout (Sec. III-C) needs at least a 4-site extent to have an
    /// interior; 2-site slivers are all boundary and the real kernels
    /// cannot run them. The paper never uses an extent below 4.
    pub min_extent: usize,
}

impl Default for SearchSpace {
    fn default() -> Self {
        Self {
            i_schwarz: vec![4, 8, 12, 16, 20, 24],
            i_domain: vec![2, 3, 4, 5, 6, 8],
            precisions: vec![Precision::Single, Precision::Half],
            min_block_volume: 16,
            max_block_volume: 4096,
            min_extent: 4,
        }
    }
}

impl SearchSpace {
    /// Candidate Schwarz blocks for a local lattice: per-direction even
    /// divisors of the local extent, volume within bounds, and tiling
    /// the local volume an *even* number of times so the red/black
    /// coloring exists. Canonically ordered (volume, then extents).
    pub fn blocks(&self, local: &Dims) -> Vec<Dims> {
        let axis_divisors: Vec<Vec<usize>> = (0..4)
            .map(|i| {
                let ext = local.0[i];
                (self.min_extent..=ext).filter(|&d| d % 2 == 0 && ext.is_multiple_of(d)).collect()
            })
            .collect();
        let mut out = Vec::new();
        for &bx in &axis_divisors[0] {
            for &by in &axis_divisors[1] {
                for &bz in &axis_divisors[2] {
                    for &bt in &axis_divisors[3] {
                        let block = Dims::new(bx, by, bz, bt);
                        let vb = block.volume();
                        if vb < self.min_block_volume || vb > self.max_block_volume {
                            continue;
                        }
                        if !local.volume().is_multiple_of(2 * vb) {
                            continue;
                        }
                        out.push(block);
                    }
                }
            }
        }
        out.sort_by_key(|b| (b.volume(), b.0));
        out
    }
}

/// Iteration-response law: how the outer (FGMRES) iteration count reacts
/// to preconditioner strength. Anchored at the reference point
/// `Is=16, Id=5` (the paper's hand-set choice): sweep work
/// `w = Is * Id` relative to the reference scales iterations as
/// `base * (w_ref / w)^alpha` — a weaker preconditioner costs outer
/// iterations, a stronger one saves some, with diminishing returns
/// (`alpha < 1`). This is the model's stand-in for the convergence data
/// a production tuner would measure; the calibration loop replaces its
/// *timing* side with measurements, and `alpha` is deliberately
/// conservative.
#[derive(Copy, Clone, Debug)]
pub struct IterationModel {
    pub base_outer: usize,
    pub ref_work: f64,
    pub alpha: f64,
}

impl IterationModel {
    /// Anchor at the paper's reference strength.
    pub fn anchored(base_outer: usize) -> Self {
        Self { base_outer: base_outer.max(1), ref_work: 16.0 * 5.0, alpha: 0.5 }
    }

    /// Predicted outer iterations at a sweep strength.
    pub fn outer(&self, i_schwarz: usize, i_domain: usize) -> usize {
        let work = (i_schwarz * i_domain) as f64;
        let scaled = self.base_outer as f64 * (self.ref_work / work).powf(self.alpha);
        (scaled.ceil() as usize).clamp(1, 10 * self.base_outer)
    }
}

/// The autotuner: a backend, a search space, an iteration-response law,
/// constraint thresholds, a seed, and (optionally) a calibration learned
/// from measurements.
#[derive(Clone, Debug)]
pub struct Autotuner {
    pub backend: BackendKind,
    pub space: SearchSpace,
    /// Eq. 6 floor: candidates whose load average falls below this idle
    /// too many cores to be worth ranking.
    pub min_load: f64,
    pub seed: u64,
    pub calibration: Calibration,
}

impl Autotuner {
    pub fn new(backend: BackendKind) -> Self {
        Self {
            backend,
            space: SearchSpace::default(),
            min_load: 0.7,
            seed: 0x51ab_90dd,
            calibration: Calibration::identity(),
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_calibration(mut self, calibration: Calibration) -> Self {
        self.calibration = calibration;
        self
    }

    /// Learn a calibration from a measured-vs-predicted join (the
    /// "correct" step of predict → measure → correct). Subsequent
    /// [`tune`](Self::tune) calls rank with it.
    pub fn recalibrate(&mut self, join: &ModelJoin) {
        self.calibration = Calibration::from_join(join);
    }

    /// Score one candidate operating point against the constraints and
    /// the (calibrated) model.
    pub fn score(
        &self,
        problem: &TuneProblem,
        block: &Dims,
        precision: Precision,
        prefetch: PrefetchMode,
        i_schwarz: usize,
        i_domain: usize,
    ) -> Result<TunedParams, Rejection> {
        let local = problem.local();
        if !local.divisible_by(block) || !local.volume().is_multiple_of(2 * block.volume()) {
            return Err(Rejection::Geometry);
        }
        let iteration = IterationModel::anchored(problem.base_outer);
        let dd = DdParams::new(
            problem.max_basis,
            problem.deflate,
            i_schwarz,
            i_domain,
            iteration.outer(i_schwarz, i_domain),
        )
        .map_err(|_| Rejection::Invalid)?;

        let backend = self.backend.instance();
        let mut model = backend.multinode(precision, prefetch);
        if let Some(cores) = problem.cores {
            model.chip.cores = cores.max(1);
        }
        let cores = model.chip.cores;

        let ndom_color = load::ndomain(local.volume(), block.volume());
        let load_avg = load::load_average(ndom_color, cores);
        if load_avg < self.min_load {
            return Err(Rejection::Load);
        }
        // Fig. 4: hiding needs cores <= ndomain/2 (= domains per color).
        // Only binding when there is communication to hide.
        let can_hide = cores <= ndom_color;
        if problem.distributed() && !can_hide {
            return Err(Rejection::Hiding);
        }

        let b = model.dd_solve_with_block(&problem.dims, &problem.layout, &dd, block);
        let cal = &self.calibration;
        let time_a = cal.corrected(keys::DIRAC_APPLY, b.time_a);
        let time_m = cal.corrected(keys::SCHWARZ_SWEEP, b.time_m);
        let time_gs = cal.corrected(keys::GLOBAL_SUMS, b.time_gs);
        let predicted_total_s = time_a + time_m + time_gs + b.time_other;

        Ok(TunedParams {
            backend: self.backend,
            block: *block,
            precision,
            prefetch,
            i_schwarz,
            i_domain,
            outer_iterations: dd.outer_iterations,
            predicted_total_s,
            raw_total_s: b.total_time_s,
            predicted_m_gflops: b.gflops_knc[1],
            load: load_avg,
            can_hide,
        })
    }

    /// Score the backend's hand-set default operating point: the paper
    /// block, the backend's default precision/prefetch, `Is=16, Id=5`.
    pub fn score_default(&self, problem: &TuneProblem) -> Option<TunedParams> {
        let backend = self.backend.instance();
        self.score(
            problem,
            &paper_block(),
            backend.default_precision(),
            backend.default_prefetch(),
            16,
            5,
        )
        .ok()
    }

    /// Run the full search and return the ranked plan.
    ///
    /// Determinism: candidates are enumerated in canonical order, the
    /// *evaluation* order is a seeded Fisher–Yates permutation of that
    /// list (scoring is pure, so order cannot leak into results), and
    /// the final ranking sorts by `(predicted time, canonical key)` with
    /// `f64::total_cmp` — bitwise-identical output for any seed, worker
    /// count, or rerun.
    pub fn tune(&self, problem: &TuneProblem) -> TunePlan {
        let local = problem.local();
        let backend = self.backend.instance();

        let mut candidates: Vec<(Dims, Precision, PrefetchMode, usize, usize)> = Vec::new();
        for block in self.space.blocks(&local) {
            for &precision in &self.space.precisions {
                for &prefetch in backend.prefetch_modes() {
                    for &i_schwarz in &self.space.i_schwarz {
                        for &i_domain in &self.space.i_domain {
                            candidates.push((block, precision, prefetch, i_schwarz, i_domain));
                        }
                    }
                }
            }
        }

        // Seeded evaluation permutation (Fisher–Yates).
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        let mut rng = Rng64::new(self.seed);
        for i in (1..order.len()).rev() {
            order.swap(i, rng.below(i + 1));
        }

        let mut ranked = Vec::new();
        let (mut rejected_load, mut rejected_hiding, mut rejected_invalid) = (0, 0, 0);
        for &i in &order {
            let (block, precision, prefetch, i_schwarz, i_domain) = candidates[i];
            match self.score(problem, &block, precision, prefetch, i_schwarz, i_domain) {
                Ok(p) => ranked.push(p),
                Err(Rejection::Load) => rejected_load += 1,
                Err(Rejection::Hiding) => rejected_hiding += 1,
                Err(Rejection::Invalid) => rejected_invalid += 1,
                Err(Rejection::Geometry) => {}
            }
        }
        ranked.sort_by(|a, b| {
            a.predicted_total_s.total_cmp(&b.predicted_total_s).then_with(|| a.key().cmp(&b.key()))
        });

        let mut fingerprint: u64 = 0xcbf29ce484222325;
        for p in &ranked {
            let (vol, dims, prec, pf, is, id) = p.key();
            for v in [vol as u64, dims[0] as u64, dims[1] as u64, dims[2] as u64, dims[3] as u64] {
                fingerprint = fnv1a_u64(fingerprint, v);
            }
            fingerprint = fnv1a_u64(fingerprint, prec as u64);
            fingerprint = fnv1a_u64(fingerprint, pf as u64);
            fingerprint = fnv1a_u64(fingerprint, is as u64);
            fingerprint = fnv1a_u64(fingerprint, id as u64);
            fingerprint = fnv1a_u64(fingerprint, p.predicted_total_s.to_bits());
        }

        TunePlan {
            backend: self.backend,
            problem: *problem,
            default_params: self.score_default(problem),
            evaluated: candidates.len(),
            rejected_load,
            rejected_hiding,
            rejected_invalid,
            seed: self.seed,
            fingerprint,
            ranked,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_tile_locally_with_even_extents() {
        let space = SearchSpace::default();
        let local = Dims::new(24, 24, 12, 16);
        let blocks = space.blocks(&local);
        assert!(!blocks.is_empty());
        assert!(blocks.contains(&paper_block()));
        for b in &blocks {
            assert!(local.divisible_by(b), "{b}");
            assert!(b.0.iter().all(|&e| e % 2 == 0), "{b}");
            assert!(local.volume().is_multiple_of(2 * b.volume()), "{b}");
            let vb = b.volume();
            assert!((space.min_block_volume..=space.max_block_volume).contains(&vb));
        }
        // Canonical order: non-decreasing volume.
        for w in blocks.windows(2) {
            assert!(w[0].volume() <= w[1].volume());
        }
    }

    #[test]
    fn iteration_law_is_anchored_and_monotone() {
        let law = IterationModel::anchored(198);
        // At the reference point the law returns the anchor.
        assert_eq!(law.outer(16, 5), 198);
        // Weaker preconditioning costs iterations, stronger saves.
        assert!(law.outer(8, 5) > 198);
        assert!(law.outer(24, 5) < 198);
        assert!(law.outer(16, 2) > law.outer(16, 8));
        // Clamped away from zero.
        assert!(law.outer(24, 8) >= 1);
    }

    #[test]
    fn tuner_finds_a_feasible_plan_on_the_paper_workload() {
        let problem = TuneProblem::paper_48(64).unwrap();
        for kind in BackendKind::ALL {
            let plan = Autotuner::new(kind).tune(&problem);
            assert!(plan.best().is_some(), "{kind}: empty plan");
            let default = plan.default_params.expect("paper block fits");
            let best = plan.best().unwrap();
            assert!(
                best.predicted_total_s <= default.predicted_total_s,
                "{kind}: best {} !<= default {}",
                best.predicted_total_s,
                default.predicted_total_s
            );
            // Every ranked candidate respects the constraints.
            for p in &plan.ranked {
                assert!(p.load >= 0.7 - 1e-12);
                assert!(p.can_hide);
            }
            // Ranking is non-decreasing in predicted time.
            for w in plan.ranked.windows(2) {
                assert!(w[0].predicted_total_s <= w[1].predicted_total_s);
            }
        }
    }

    #[test]
    fn seed_changes_evaluation_order_not_the_plan() {
        let problem = TuneProblem::paper_48(64).unwrap();
        let a = Autotuner::new(BackendKind::Knc7110p).with_seed(1).tune(&problem);
        let b = Autotuner::new(BackendKind::Knc7110p).with_seed(0xdead_beef).tune(&problem);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.ranked.len(), b.ranked.len());
        for (x, y) in a.ranked.iter().zip(&b.ranked) {
            assert_eq!(x.key(), y.key());
            assert_eq!(x.predicted_total_s.to_bits(), y.predicted_total_s.to_bits());
        }
    }

    #[test]
    fn calibration_rescales_the_ranking_scores() {
        let problem = TuneProblem::paper_48(64).unwrap();
        let base = Autotuner::new(BackendKind::Knc7110p).tune(&problem);
        let mut join = ModelJoin::new();
        // Pretend the machine runs the sweep 2x slower than predicted.
        join.record(keys::SCHWARZ_SWEEP, 2.0, 1.0);
        let mut tuner = Autotuner::new(BackendKind::Knc7110p);
        tuner.recalibrate(&join);
        let cal = tuner.tune(&problem);
        let b0 = base.best().unwrap();
        let c0 = cal.best().unwrap();
        // Calibrated scores exceed raw scores (the sweep dominates).
        assert!(c0.predicted_total_s > c0.raw_total_s);
        assert!(b0.predicted_total_s == b0.raw_total_s);
    }

    #[test]
    fn single_node_problems_tune_too() {
        // The serve shape: one rank, few workers, small lattice.
        let problem = TuneProblem::single_node(Dims::new(8, 8, 8, 8), 4, 24);
        let plan = Autotuner::new(BackendKind::Knc7110p).tune(&problem);
        let best = plan.best().expect("feasible");
        assert!(best.load >= 0.7);
        // Hiding constraint is vacuous on one rank.
        assert_eq!(plan.rejected_hiding, 0);
    }

    #[test]
    fn unbalanced_candidates_are_rejected_with_reasons() {
        let problem = TuneProblem::paper_48(128).unwrap();
        let tuner = Autotuner::new(BackendKind::Knc7110p);
        // 128 KNCs leave 54 domains per color with the paper block: fewer
        // than 60 cores, so the paper point cannot hide communication
        // there (cores > ndomain/2, Fig. 4).
        assert_eq!(
            tuner
                .score(&problem, &paper_block(), Precision::Half, PrefetchMode::L1L2, 16, 5)
                .unwrap_err(),
            Rejection::Hiding
        );
        let plan = tuner.tune(&problem);
        assert!(plan.rejected_hiding > 0);
        assert!(plan.rejected_load > 0);
        assert!(plan.default_params.is_none());
        // But smaller blocks restore balance, so the plan is not empty.
        assert!(plan.best().is_some());
    }
}
