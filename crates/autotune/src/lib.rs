//! Model-driven parameter autotuning over trait-based machine backends.
//!
//! The paper hand-tunes its solver (8x4x4x4 blocks, half-precision
//! operator storage, L1+L2 software prefetch, `Is=16`, `Id=5`) for one
//! machine — the Stampede KNC. This crate closes the loop the ROADMAP
//! asks for: given any [`qdd_machine::MachineBackend`] (KNC 7110P, or
//! the KNL 7250 in MCDRAM flat/cache mode), the [`Autotuner`] searches
//! block geometry × precision × prefetch mode × `i_schwarz`/`i_domain`,
//! scores every candidate with the backend's Table III composition
//! under the Eq. 6 load-balance and Fig. 4 `cores <= ndomain/2` hiding
//! constraints, and returns a bitwise-reproducible ranked [`TunePlan`].
//!
//! The loop is predict → measure → correct:
//!
//! 1. **predict** — rank candidates from the data-sheet model,
//! 2. **measure** — run a solve with phase timing and join it against
//!    the backend ([`join_against_backend`]), or load a bench JSON that
//!    already carries a `model_join` series,
//! 3. **correct** — [`Calibration`] turns the `model.err.*` ratios into
//!    per-component scale factors and the tuner re-ranks with them.
//!
//! Everything is deterministic: the candidate enumeration is canonical,
//! the seeded evaluation shuffle cannot leak into results (scoring is
//! pure), ranking uses `f64::total_cmp` plus a canonical tie-break, and
//! the plan carries an FNV-1a fingerprint so reruns can prove bitwise
//! identity.

pub mod calibrate;
pub mod params;
pub mod search;

pub use calibrate::{join_against_backend, Calibration};
pub use params::{fnv1a, fnv1a_u64, Rejection, TunePlan, TuneProblem, TunedParams};
pub use search::{Autotuner, IterationModel, SearchSpace};
