//! Predict → measure → correct: turning `model.err.*` ratios into
//! per-component scale factors the search applies before ranking.
//!
//! The machine model prices a solve in the Table III taxonomy
//! (`dirac_apply`, `schwarz_sweep`, `halo_exchange`, `global_sums`). A
//! measured run — live [`SolveStats`] phase timings or a bench JSON with
//! a `model_join` series — yields measured/predicted ratios per key;
//! [`Calibration`] stores them (clamped) and rescales the model's
//! per-component times so the *next* ranking reflects the machine the
//! measurements came from rather than the data-sheet constants.

use qdd_machine::kernel::{dd_method_rate, wilson_clover_bound};
use qdd_machine::{MachineBackend, Precision, PrefetchMode};
use qdd_trace::model::keys;
use qdd_trace::{ModelJoin, Phase};
use qdd_util::stats::{Component, SolveStats};
use std::collections::BTreeMap;

/// Per-component multiplicative corrections (measured / predicted).
/// Identity (all 1.0) means "trust the data-sheet model".
#[derive(Clone, Debug, Default)]
pub struct Calibration {
    scales: BTreeMap<String, f64>,
}

impl Calibration {
    /// Ratios outside this band are clamped: a measured/predicted ratio
    /// of 10^4 means "unmodeled effect", not "scale the model by 10^4".
    pub const CLAMP: (f64, f64) = (1e-2, 1e2);

    pub fn identity() -> Self {
        Self::default()
    }

    pub fn is_identity(&self) -> bool {
        self.scales.is_empty()
    }

    /// The correction for a key (1.0 when unmeasured).
    pub fn scale(&self, key: &str) -> f64 {
        self.scales.get(key).copied().unwrap_or(1.0)
    }

    /// Set one correction explicitly (clamped).
    pub fn set(&mut self, key: &str, ratio: f64) {
        let clamped = ratio.clamp(Self::CLAMP.0, Self::CLAMP.1);
        self.scales.insert(key.to_string(), clamped);
    }

    /// Learn corrections from a measured-vs-predicted join: one scale
    /// per key whose predicted side is meaningful (above the join's
    /// floor). Keys the model prices at ~zero carry no signal about the
    /// model's *rate* constants and are skipped.
    pub fn from_join(join: &ModelJoin) -> Self {
        let mut c = Self::identity();
        for (key, err) in join.entries() {
            if err.predicted_s > ModelJoin::FLOOR_S && err.measured_s > ModelJoin::FLOOR_S {
                c.set(key, err.ratio());
            }
        }
        c
    }

    /// Learn corrections from a bench report JSON (the workspace
    /// schema): finds a `model_join` series whose points carry `phase`,
    /// `measured_s`, `predicted_s` — the shape `BENCH_serve.json` and
    /// `BENCH_telemetry.json` emit — accumulates them into a join and
    /// calibrates from it. Returns `None` when the text does not parse
    /// or carries no such series.
    pub fn from_bench_json(text: &str) -> Option<Self> {
        let root = serde_json::from_str(text).ok()?;
        let series = root.get("series")?.as_array()?;
        let mut join = ModelJoin::new();
        for s in series {
            if s.get("label").and_then(|l| l.as_str()) != Some("model_join") {
                continue;
            }
            for p in s.get("points")?.as_array()? {
                let (Some(phase), Some(measured), Some(predicted)) = (
                    p.get("phase").and_then(|v| v.as_str()),
                    p.get("measured_s").and_then(|v| v.as_f64()),
                    p.get("predicted_s").and_then(|v| v.as_f64()),
                ) else {
                    continue;
                };
                join.record(phase, measured, predicted);
            }
        }
        if join.is_empty() {
            return None;
        }
        Some(Self::from_join(&join))
    }

    /// Apply this calibration to a predicted component time.
    pub fn corrected(&self, key: &str, predicted_s: f64) -> f64 {
        predicted_s * self.scale(key)
    }
}

/// Price a solve's measured phase times against *any* backend's model —
/// the backend-routed generalization of the serve-side
/// `join_against_model` (which hard-coded the KNC chip and network).
///
/// Keys and semantics match `qdd_trace::model::keys`: operator-A flops
/// at the backend's Wilson-Clover issue bound, preconditioner flops at
/// its composite DD rate, received halo bytes through its network, and
/// reduction count times its allreduce latency.
pub fn join_against_backend(
    stats: &SolveStats,
    backend: &dyn MachineBackend,
    precision: Precision,
    prefetch: PrefetchMode,
    i_domain: usize,
    ranks: usize,
) -> ModelJoin {
    let chip = backend.chip();
    let net = backend.network();
    let cores = chip.cores as f64;

    let mut join = ModelJoin::new();
    let (_eff, op_gflops) = wilson_clover_bound(&chip);
    join.record(
        keys::DIRAC_APPLY,
        stats.phase_seconds(Phase::OperatorApply),
        stats.flops(Component::OperatorA) / (op_gflops * cores * 1e9),
    );
    let dd_gflops = dd_method_rate(&chip, precision, prefetch, i_domain.max(1));
    join.record(
        keys::SCHWARZ_SWEEP,
        stats.phase_seconds(Phase::Precondition),
        stats.flops(Component::PreconditionerM) / (dd_gflops * cores * 1e9),
    );
    // Eight directed faces per halo exchange, one exchange per operator
    // application; bytes are what the ledger saw received.
    let messages = stats.operator_applications() as f64 * 8.0;
    join.record(
        keys::HALO_EXCHANGE,
        stats.phase_seconds(Phase::HaloRecv),
        net.transfer_time_s(stats.total_comm_recv_bytes(), messages),
    );
    join.record(
        keys::GLOBAL_SUMS,
        stats.phase_seconds(Phase::GlobalSum),
        stats.global_sums() as f64 * net.allreduce_time_s(ranks),
    );
    join
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdd_machine::BackendKind;

    #[test]
    fn identity_leaves_predictions_alone() {
        let c = Calibration::identity();
        assert!(c.is_identity());
        assert_eq!(c.scale(keys::DIRAC_APPLY), 1.0);
        assert_eq!(c.corrected(keys::SCHWARZ_SWEEP, 2.5), 2.5);
    }

    #[test]
    fn from_join_learns_meaningful_ratios_only() {
        let mut join = ModelJoin::new();
        join.record(keys::DIRAC_APPLY, 3.0, 2.0); // ratio 1.5
        join.record(keys::HALO_EXCHANGE, 0.0, 0.0); // both free: no signal
        join.record(keys::GLOBAL_SUMS, 0.5, 0.0); // unmodeled: no rate signal
        let c = Calibration::from_join(&join);
        assert!((c.scale(keys::DIRAC_APPLY) - 1.5).abs() < 1e-12);
        assert_eq!(c.scale(keys::HALO_EXCHANGE), 1.0);
        assert_eq!(c.scale(keys::GLOBAL_SUMS), 1.0);
        assert!(!c.is_identity());
    }

    #[test]
    fn ratios_are_clamped() {
        let mut c = Calibration::identity();
        c.set(keys::DIRAC_APPLY, 1e9);
        c.set(keys::SCHWARZ_SWEEP, 0.0);
        assert_eq!(c.scale(keys::DIRAC_APPLY), Calibration::CLAMP.1);
        assert_eq!(c.scale(keys::SCHWARZ_SWEEP), Calibration::CLAMP.0);
    }

    #[test]
    fn parses_the_bench_report_schema() {
        let text = r#"{
            "name": "serve",
            "params": {},
            "series": [
                {"label": "latency", "points": [{"p50": 1.0}]},
                {"label": "model_join", "points": [
                    {"phase": "dirac_apply", "measured_s": 4.0, "predicted_s": 2.0, "ratio": 2.0},
                    {"phase": "schwarz_sweep", "measured_s": 1.0, "predicted_s": 2.0, "ratio": 0.5}
                ]}
            ],
            "metadata": {}
        }"#;
        let c = Calibration::from_bench_json(text).expect("parses");
        assert!((c.scale(keys::DIRAC_APPLY) - 2.0).abs() < 1e-12);
        assert!((c.scale(keys::SCHWARZ_SWEEP) - 0.5).abs() < 1e-12);
        assert!(Calibration::from_bench_json("{").is_none());
        assert!(Calibration::from_bench_json(r#"{"series": []}"#).is_none());
    }

    #[test]
    fn backend_join_prices_all_four_phases() {
        let mut stats = SolveStats::new();
        stats.enable_phase_timing();
        stats.add_flops(Component::OperatorA, 1e9);
        stats.add_flops(Component::PreconditionerM, 4e9);
        stats.count_global_sums(10);
        stats.count_operator_application();
        for kind in BackendKind::ALL {
            let b = kind.instance();
            let join =
                join_against_backend(&stats, b, Precision::Single, b.default_prefetch(), 4, 1);
            assert!(join.get(keys::DIRAC_APPLY).unwrap().predicted_s > 0.0, "{kind}");
            assert!(join.get(keys::SCHWARZ_SWEEP).unwrap().predicted_s > 0.0, "{kind}");
            // Nothing crosses a wire at one rank.
            assert_eq!(join.get(keys::HALO_EXCHANGE).unwrap().predicted_s, 0.0);
            assert_eq!(join.get(keys::GLOBAL_SUMS).unwrap().predicted_s, 0.0);
        }
        // The KNL prices compute cheaper than the KNC (faster chip).
        let knc = join_against_backend(
            &stats,
            BackendKind::Knc7110p.instance(),
            Precision::Single,
            PrefetchMode::L1L2,
            4,
            1,
        );
        let knl = join_against_backend(
            &stats,
            BackendKind::KnlFlat.instance(),
            Precision::Single,
            PrefetchMode::None,
            4,
            1,
        );
        assert!(
            knl.get(keys::DIRAC_APPLY).unwrap().predicted_s
                < knc.get(keys::DIRAC_APPLY).unwrap().predicted_s
        );
    }
}
