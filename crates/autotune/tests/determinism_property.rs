//! Property tests: the autotuner is bitwise deterministic.
//!
//! The ranked plan must be a pure function of (backend, problem,
//! search space) — the evaluation-order shuffle seed, the process
//! environment (`QDD_WORKERS`), and rerun count must not move a single
//! bit of the fingerprint or of any ranked candidate. This is the
//! contract that lets `qdd-serve` cache plans by shape and lets the
//! bench gate pin the plan fingerprint across hosts.

use proptest::prelude::*;
use qdd_autotune::{Autotuner, TuneProblem};
use qdd_lattice::Dims;
use qdd_machine::BackendKind;

fn backend(idx: usize) -> BackendKind {
    BackendKind::ALL[idx % BackendKind::ALL.len()]
}

/// Assert two plans are bitwise identical: fingerprint, ranking order,
/// and the full f64 bit pattern of every candidate's predicted times.
fn assert_plans_identical(
    a: &qdd_autotune::TunePlan,
    b: &qdd_autotune::TunePlan,
) -> Result<(), String> {
    prop_assert_eq!(a.fingerprint, b.fingerprint);
    prop_assert_eq!(a.evaluated, b.evaluated);
    prop_assert_eq!(a.ranked.len(), b.ranked.len());
    for (x, y) in a.ranked.iter().zip(&b.ranked) {
        prop_assert_eq!(x.key(), y.key());
        prop_assert_eq!(x.predicted_total_s.to_bits(), y.predicted_total_s.to_bits());
        prop_assert_eq!(x.raw_total_s.to_bits(), y.raw_total_s.to_bits());
        prop_assert_eq!(x.outer_iterations, y.outer_iterations);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Rerunning the same search — with *different* shuffle seeds — must
    /// produce bitwise-identical plans: scoring is pure, so evaluation
    /// order cannot leak into the ranking.
    #[test]
    fn plan_is_bitwise_identical_across_reruns_and_seeds(
        backend_idx in 0usize..3,
        seed_a in 0u64..1_000_000,
        seed_b in 0u64..1_000_000,
        ext_x in 1usize..4,
        ext_t in 1usize..4,
        workers in 1usize..9,
        base_outer in 20usize..300,
    ) {
        let dims = Dims::new(8 * ext_x, 8, 8, 8 * ext_t);
        let problem = TuneProblem::single_node(dims, workers, base_outer);
        let kind = backend(backend_idx);
        let a = Autotuner::new(kind).with_seed(seed_a).tune(&problem);
        let b = Autotuner::new(kind).with_seed(seed_b).tune(&problem);
        assert_plans_identical(&a, &b)?;
    }

    /// The distributed paper problem is just as reproducible, and the
    /// tuned best never prices above the hand-set default.
    #[test]
    fn paper_problem_plan_is_reproducible_and_beats_default(
        backend_idx in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let problem = TuneProblem::paper_48(64).unwrap();
        let kind = backend(backend_idx);
        let a = Autotuner::new(kind).tune(&problem);
        let b = Autotuner::new(kind).with_seed(seed).tune(&problem);
        assert_plans_identical(&a, &b)?;
        let best = a.best().expect("paper problem is feasible");
        let default = a.default_params.expect("paper default is feasible");
        prop_assert!(best.predicted_total_s <= default.predicted_total_s);
    }
}

/// `QDD_WORKERS` steers the *runtime* worker pool; the tuner prices the
/// problem's explicit core/domain counts and must never read the
/// environment. (Plain `#[test]` — env mutation stays in one test so
/// parallel test threads cannot race on it.)
#[test]
fn qdd_workers_env_cannot_leak_into_the_plan() {
    let problem = TuneProblem::paper_48(64).unwrap();
    let local = TuneProblem::single_node(Dims::new(16, 8, 8, 8), 4, 60);
    let saved = std::env::var("QDD_WORKERS").ok();
    let mut prints = Vec::new();
    for setting in [None, Some("1"), Some("7"), Some("61")] {
        match setting {
            Some(v) => std::env::set_var("QDD_WORKERS", v),
            None => std::env::remove_var("QDD_WORKERS"),
        }
        for kind in BackendKind::ALL {
            let dist = Autotuner::new(kind).tune(&problem);
            let near = Autotuner::new(kind).tune(&local);
            prints.push((dist.fingerprint, near.fingerprint));
        }
    }
    match saved {
        Some(v) => std::env::set_var("QDD_WORKERS", v),
        None => std::env::remove_var("QDD_WORKERS"),
    }
    let rounds = prints.chunks(BackendKind::ALL.len()).collect::<Vec<_>>();
    for round in &rounds[1..] {
        assert_eq!(*round, rounds[0], "QDD_WORKERS changed the tuned plan");
    }
}
