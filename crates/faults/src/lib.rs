//! Deterministic fault injection for the simulated multi-node runtime.
//!
//! The paper's communication structure (Sec. III-E, V-VI) was designed for
//! a network where links flake, ranks straggle, and payloads occasionally
//! arrive damaged — QPACE 2 (arXiv:1502.04025) runs the same algorithm on
//! a custom torus where these are day-to-day operational concerns. The
//! comm runtime injects four fault classes at the `send_face` /
//! `recv_face` / `all_sum` boundary, all driven by a [`FaultPlan`]:
//!
//! - **loss** — a face message never arrives; the receiver times out and
//!   the exchange retries (bounded), surfacing
//!   `CommError::Timeout` when the retry budget is exhausted.
//! - **corruption** — seeded bit flips in the face payload; the checksum
//!   carried by every envelope detects them (`CommError::Corrupt`) and the
//!   exchange requests a retransmission.
//! - **delay / stragglers** — a face arrives late; the added latency is
//!   accounted in `CommCounters::fault_delay_us` and the machine model's
//!   multinode cost.
//! - **hiccup** — a rank skips one Schwarz half-sweep exchange entirely;
//!   peers keep their stale halo entries for that exchange.
//!
//! Every decision is a pure hash of `(seed, rank, channel, sequence
//! number, attempt, class)` — never of wall-clock time or thread
//! scheduling — so a fault schedule is bitwise reproducible across runs
//! and across `QDD_WORKERS` settings, and two ranks never have to agree
//! on shared RNG state.

use qdd_lattice::Dir;
use qdd_util::rng::Rng64;

/// The four injected fault classes.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FaultClass {
    /// Message loss: the receive times out.
    Loss,
    /// Payload corruption: seeded bit flips, caught by the checksum.
    Corrupt,
    /// Straggler: the face arrives late by [`FaultPlan::delay_us`].
    Delay,
    /// Rank hiccup: one Schwarz exchange is skipped entirely.
    Hiccup,
}

impl FaultClass {
    /// Domain-separation tag mixed into the decision hash.
    fn tag(self) -> u64 {
        match self {
            FaultClass::Loss => 0x10c5,
            FaultClass::Corrupt => 0xc0de,
            FaultClass::Delay => 0xde1a,
            FaultClass::Hiccup => 0x41cc,
        }
    }
}

/// Per-class injection probabilities, sampled independently per message
/// (and per retry attempt, so a retransmission can fail again).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct FaultRates {
    pub loss: f64,
    pub corrupt: f64,
    pub delay: f64,
    pub hiccup: f64,
}

impl FaultRates {
    pub const NONE: FaultRates = FaultRates { loss: 0.0, corrupt: 0.0, delay: 0.0, hiccup: 0.0 };

    /// True if every class is disabled (the plan is then a no-op).
    pub fn all_zero(&self) -> bool {
        self.loss == 0.0 && self.corrupt == 0.0 && self.delay == 0.0 && self.hiccup == 0.0
    }
}

/// A scheduled one-shot fault: fires on one rank's channel at an exact
/// message sequence number, persisting across `attempts` consecutive
/// delivery attempts (so a retry budget can be exhausted on purpose).
#[derive(Copy, Clone, Debug)]
pub struct FaultEvent {
    pub rank: usize,
    pub class: FaultClass,
    /// Channel the event fires on; `None` matches every direction.
    pub dir: Option<Dir>,
    /// Orientation the event fires on; `None` matches both.
    pub forward: Option<bool>,
    /// Message sequence number (per channel, counted from 0) to hit.
    pub at_seq: u64,
    /// Number of consecutive attempts the fault persists for. `u32::MAX`
    /// makes it permanent (every retry fails too).
    pub attempts: u32,
}

impl FaultEvent {
    fn matches(&self, rank: usize, dir: Dir, forward: bool, seq: u64, attempt: u32) -> bool {
        self.rank == rank
            && self.dir.is_none_or(|d| d == dir)
            && self.forward.is_none_or(|f| f == forward)
            && self.at_seq == seq
            && attempt < self.attempts
    }
}

/// A complete seeded fault schedule: rates + one-shot events + the
/// modeled straggler latency. Cloned into every rank; decisions are pure
/// functions of the plan and the call coordinates.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
    events: Vec<FaultEvent>,
    /// Latency added per delayed message, microseconds (modeled, not
    /// slept: wall-clock sleeps would make traces timing-dependent).
    pub delay_us: f64,
}

/// What the injector decided for one delivery attempt of one message.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RecvFault {
    /// Deliver untouched.
    None,
    /// Pretend the message never arrived (receiver times out).
    Lose,
    /// Flip bits in the payload before delivery.
    Corrupt,
}

impl FaultPlan {
    pub fn new(seed: u64, rates: FaultRates) -> Self {
        Self { seed, rates, events: Vec::new(), delay_us: 250.0 }
    }

    /// A plan that never fires (rates zero, no events).
    pub fn none() -> Self {
        Self::new(0, FaultRates::NONE)
    }

    /// Schedule a one-shot event on top of the rate-driven faults.
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// True if no fault can ever fire: injection short-circuits entirely,
    /// keeping the fault-free hot path bitwise identical to a build
    /// without the fault layer.
    pub fn is_inert(&self) -> bool {
        self.rates.all_zero() && self.events.is_empty()
    }

    /// The same schedule re-seeded for one shard of a sharded service:
    /// rates, events and modeled latency carry over, but every decision
    /// decorrelates completely from every other shard's (the shard index
    /// is mixed into the seed through a full diffusion round). Shard 0's
    /// plan is *not* the base plan — all shards are peers.
    pub fn for_shard(&self, shard: usize) -> FaultPlan {
        FaultPlan {
            seed: shard_seed(self.seed, shard as u64),
            rates: self.rates,
            events: self.events.clone(),
            delay_us: self.delay_us,
        }
    }

    /// Uniform [0, 1) draw for one decision coordinate.
    fn draw(
        &self,
        rank: usize,
        class: FaultClass,
        dir: Dir,
        forward: bool,
        seq: u64,
        attempt: u32,
    ) -> f64 {
        let h = decision_hash(
            self.seed,
            rank as u64,
            class.tag(),
            dir.index() as u64,
            forward as u64,
            seq,
            attempt as u64,
        );
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn event_fires(
        &self,
        rank: usize,
        class: FaultClass,
        dir: Dir,
        forward: bool,
        seq: u64,
        attempt: u32,
    ) -> bool {
        self.events.iter().any(|e| e.class == class && e.matches(rank, dir, forward, seq, attempt))
    }

    /// Decide the fate of delivery attempt `attempt` of message `seq` on
    /// the receiving rank's `(dir, forward)` channel. Loss shadows
    /// corruption when both fire (a lost message cannot also be damaged).
    pub fn recv_fault(
        &self,
        rank: usize,
        dir: Dir,
        forward: bool,
        seq: u64,
        attempt: u32,
    ) -> RecvFault {
        if self.event_fires(rank, FaultClass::Loss, dir, forward, seq, attempt)
            || self.draw(rank, FaultClass::Loss, dir, forward, seq, attempt) < self.rates.loss
        {
            return RecvFault::Lose;
        }
        if self.event_fires(rank, FaultClass::Corrupt, dir, forward, seq, attempt)
            || self.draw(rank, FaultClass::Corrupt, dir, forward, seq, attempt) < self.rates.corrupt
        {
            return RecvFault::Corrupt;
        }
        RecvFault::None
    }

    /// Straggler decision for message `seq` on `(dir, forward)`: `Some`
    /// with the modeled extra latency in microseconds if the face arrives
    /// late. Sampled once per message (not per attempt).
    pub fn delay_fault(&self, rank: usize, dir: Dir, forward: bool, seq: u64) -> Option<f64> {
        if self.event_fires(rank, FaultClass::Delay, dir, forward, seq, 0)
            || self.draw(rank, FaultClass::Delay, dir, forward, seq, 0) < self.rates.delay
        {
            Some(self.delay_us)
        } else {
            None
        }
    }

    /// Straggler decision for a rank's `seq`-th collective reduction.
    /// Only delay is modeled for collectives: the barrier-based all-sum
    /// cannot lose or corrupt a contribution without deadlocking the
    /// world, which mirrors real MPI, where a failed allreduce takes the
    /// whole communicator down rather than one rank.
    pub fn collective_delay(&self, rank: usize, seq: u64) -> Option<f64> {
        let h = decision_hash(self.seed, rank as u64, 0xa115, 0, 0, seq, 0);
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (u < self.rates.delay).then_some(self.delay_us)
    }

    /// Hiccup decision for a rank's `exchange`-th Schwarz half-sweep
    /// exchange: true = skip it entirely (peers keep stale halos).
    pub fn hiccup_fault(&self, rank: usize, exchange: u64) -> bool {
        self.event_fires(rank, FaultClass::Hiccup, Dir::X, false, exchange, 0)
            || self.draw(rank, FaultClass::Hiccup, Dir::X, false, exchange, 0) < self.rates.hiccup
    }

    /// Seeded generator for the bit flips of one corruption decision:
    /// the same message corrupts the same bits every run.
    pub fn corruption_rng(
        &self,
        rank: usize,
        dir: Dir,
        forward: bool,
        seq: u64,
        attempt: u32,
    ) -> Rng64 {
        Rng64::new(decision_hash(
            self.seed,
            rank as u64,
            0xb17f_11b5,
            dir.index() as u64,
            forward as u64,
            seq,
            attempt as u64,
        ))
    }
}

/// Derive the decorrelated fault seed of one shard from a pool seed
/// (one SplitMix64 diffusion round over the shard index).
fn shard_seed(seed: u64, shard: u64) -> u64 {
    let mut h = seed ^ shard.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// The fault environment of a whole shard pool: a base schedule every
/// shard inherits (with a per-shard decorrelated seed) plus targeted
/// per-shard overrides — the "one sick node" scenarios QPACE 2 operates
/// under. Deterministic: `plan_for(shard)` is a pure function of the
/// pool seed, base rates, and overrides.
#[derive(Clone, Debug, Default)]
pub struct ShardFaults {
    seed: u64,
    base: FaultRates,
    overrides: Vec<(usize, FaultRates)>,
}

impl ShardFaults {
    /// Every shard runs `base` rates under its own derived seed.
    pub fn new(seed: u64, base: FaultRates) -> Self {
        Self { seed, base, overrides: Vec::new() }
    }

    /// A perfectly healthy pool (all plans inert).
    pub fn none(seed: u64) -> Self {
        Self::new(seed, FaultRates::NONE)
    }

    /// Override one shard's rates (e.g. a 100% loss plan for a
    /// permanently sick shard). Later overrides win.
    pub fn with_shard(mut self, shard: usize, rates: FaultRates) -> Self {
        self.overrides.push((shard, rates));
        self
    }

    /// The pool seed (`QDD_FAULT_SEED` in the benches).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The effective rates of one shard.
    pub fn rates_for(&self, shard: usize) -> FaultRates {
        self.overrides.iter().rev().find(|(s, _)| *s == shard).map(|(_, r)| *r).unwrap_or(self.base)
    }

    /// The fault plan of one shard's world.
    pub fn plan_for(&self, shard: usize) -> FaultPlan {
        FaultPlan::new(shard_seed(self.seed, shard as u64), self.rates_for(shard))
    }

    /// True if no shard can ever fault.
    pub fn is_inert(&self) -> bool {
        self.base.all_zero() && self.overrides.iter().all(|(_, r)| r.all_zero())
    }
}

/// SplitMix64-style avalanche over the decision coordinates. Every
/// coordinate is mixed through a full diffusion round so neighboring
/// sequence numbers (or ranks) decorrelate completely.
fn decision_hash(
    seed: u64,
    rank: u64,
    tag: u64,
    dir: u64,
    fwd: u64,
    seq: u64,
    attempt: u64,
) -> u64 {
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    for v in [rank, tag, dir, fwd, seq, attempt] {
        h = h.wrapping_add(v).wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(rates: FaultRates) -> FaultPlan {
        FaultPlan::new(42, rates)
    }

    #[test]
    fn decisions_are_deterministic() {
        let p = plan(FaultRates { loss: 0.3, corrupt: 0.3, delay: 0.3, hiccup: 0.3 });
        let q = p.clone();
        for seq in 0..200 {
            for dir in Dir::ALL {
                for fwd in [false, true] {
                    assert_eq!(
                        p.recv_fault(1, dir, fwd, seq, 0),
                        q.recv_fault(1, dir, fwd, seq, 0)
                    );
                    assert_eq!(p.delay_fault(1, dir, fwd, seq), q.delay_fault(1, dir, fwd, seq));
                }
            }
            assert_eq!(p.hiccup_fault(0, seq), q.hiccup_fault(0, seq));
        }
    }

    #[test]
    fn rates_are_respected_statistically() {
        let p = plan(FaultRates { loss: 0.1, corrupt: 0.1, delay: 0.0, hiccup: 0.0 });
        let n = 20_000;
        let mut lost = 0;
        let mut corrupt = 0;
        for seq in 0..n {
            match p.recv_fault(0, Dir::X, true, seq, 0) {
                RecvFault::Lose => lost += 1,
                RecvFault::Corrupt => corrupt += 1,
                RecvFault::None => {}
            }
        }
        let lf = lost as f64 / n as f64;
        // Corruption is shadowed by loss: effective rate (1 - 0.1) * 0.1.
        let cf = corrupt as f64 / n as f64;
        assert!((lf - 0.1).abs() < 0.01, "loss rate {lf}");
        assert!((cf - 0.09).abs() < 0.01, "corrupt rate {cf}");
    }

    #[test]
    fn zero_rates_never_fire() {
        let p = plan(FaultRates::NONE);
        assert!(p.is_inert());
        for seq in 0..1000 {
            assert_eq!(p.recv_fault(3, Dir::T, false, seq, 0), RecvFault::None);
            assert!(p.delay_fault(3, Dir::T, false, seq).is_none());
            assert!(!p.hiccup_fault(3, seq));
        }
    }

    #[test]
    fn ranks_and_channels_decorrelate() {
        // The same sequence number must not fault on every rank at once
        // (that would be a correlated outage, not link noise).
        let p = plan(FaultRates { loss: 0.5, corrupt: 0.0, delay: 0.0, hiccup: 0.0 });
        let mut agree = 0;
        let n = 4096;
        for seq in 0..n {
            let a = p.recv_fault(0, Dir::X, true, seq, 0) == RecvFault::Lose;
            let b = p.recv_fault(1, Dir::X, true, seq, 0) == RecvFault::Lose;
            if a == b {
                agree += 1;
            }
        }
        let frac = agree as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "rank agreement {frac} (want ~0.5 at p=0.5)");
    }

    #[test]
    fn retry_attempts_resample() {
        // At 50% loss, a message lost on attempt 0 must often get through
        // on attempt 1 — per-attempt sampling, not a sticky verdict.
        let p = plan(FaultRates { loss: 0.5, corrupt: 0.0, delay: 0.0, hiccup: 0.0 });
        let mut recovered = 0;
        let mut lost_first = 0;
        for seq in 0..4096 {
            if p.recv_fault(0, Dir::Z, true, seq, 0) == RecvFault::Lose {
                lost_first += 1;
                if p.recv_fault(0, Dir::Z, true, seq, 1) == RecvFault::None {
                    recovered += 1;
                }
            }
        }
        assert!(lost_first > 1500);
        let frac = recovered as f64 / lost_first as f64;
        assert!((frac - 0.5).abs() < 0.1, "retry recovery {frac}");
    }

    #[test]
    fn scheduled_event_fires_exactly_once_and_persists_attempts() {
        let p = plan(FaultRates::NONE).with_event(FaultEvent {
            rank: 2,
            class: FaultClass::Loss,
            dir: Some(Dir::Y),
            forward: Some(true),
            at_seq: 7,
            attempts: 3,
        });
        assert!(!p.is_inert());
        // Fires on the scheduled coordinates, for 3 attempts.
        for attempt in 0..3 {
            assert_eq!(p.recv_fault(2, Dir::Y, true, 7, attempt), RecvFault::Lose);
        }
        assert_eq!(p.recv_fault(2, Dir::Y, true, 7, 3), RecvFault::None);
        // Not on other ranks, channels, or sequence numbers.
        assert_eq!(p.recv_fault(1, Dir::Y, true, 7, 0), RecvFault::None);
        assert_eq!(p.recv_fault(2, Dir::Y, false, 7, 0), RecvFault::None);
        assert_eq!(p.recv_fault(2, Dir::Y, true, 8, 0), RecvFault::None);
    }

    #[test]
    fn corruption_rng_is_stable_per_coordinate() {
        let p = plan(FaultRates { loss: 0.0, corrupt: 1.0, delay: 0.0, hiccup: 0.0 });
        let mut a = p.corruption_rng(0, Dir::X, true, 5, 0);
        let mut b = p.corruption_rng(0, Dir::X, true, 5, 0);
        let mut c = p.corruption_rng(0, Dir::X, true, 6, 0);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn shard_plans_are_deterministic_and_decorrelated() {
        let rates = FaultRates { loss: 0.3, corrupt: 0.2, delay: 0.1, hiccup: 0.05 };
        let p = plan(rates);
        // Same shard, same seed: bitwise-identical decisions.
        let a = p.for_shard(3);
        let b = p.for_shard(3);
        assert_eq!(a.seed(), b.seed());
        // Different shards decorrelate: the decision streams differ
        // somewhere in a modest window (and from the base plan's).
        let c = p.for_shard(4);
        assert_ne!(a.seed(), c.seed());
        let stream = |q: &FaultPlan| {
            (0..200).map(|seq| q.recv_fault(0, Dir::X, true, seq, 0)).collect::<Vec<_>>()
        };
        assert_eq!(stream(&a), stream(&b));
        assert_ne!(stream(&a), stream(&c), "shards 3 and 4 must decorrelate");
        assert_ne!(stream(&a), stream(&p), "shard 3 must decorrelate from the base plan");
        // Rates and events carry over.
        assert_eq!(*a.rates(), rates);
    }

    #[test]
    fn shard_faults_overrides_and_inertness() {
        let base = FaultRates { loss: 0.01, corrupt: 0.0, delay: 0.0, hiccup: 0.0 };
        let sick = FaultRates { loss: 1.0, corrupt: 0.0, delay: 0.0, hiccup: 0.0 };
        let pool = ShardFaults::new(9, base).with_shard(1, sick);
        assert_eq!(pool.rates_for(0), base);
        assert_eq!(pool.rates_for(1), sick);
        assert_eq!(*pool.plan_for(1).rates(), sick);
        // The sick shard's plan loses everything; shard 0's does not.
        let lost = (0..100)
            .filter(|&s| pool.plan_for(1).recv_fault(0, Dir::X, true, s, 0) == RecvFault::Lose)
            .count();
        assert_eq!(lost, 100);
        assert!(!pool.is_inert());
        assert!(ShardFaults::none(9).is_inert());
        // Healthy pools derive per-shard seeds deterministically.
        assert_eq!(ShardFaults::none(9).plan_for(2).seed(), pool.plan_for(2).seed());
    }
}
