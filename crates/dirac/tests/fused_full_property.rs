//! Property tests: the full-lattice fused SIMD operator agrees with the
//! scalar [`WilsonClover::apply`] site-for-site for *any* synthetic gauge
//! configuration, for every supported lane count (xy cross-sections from
//! 2x2 up to 16x16), across periodic and antiperiodic-t boundary wraps,
//! and for sources that isolate the tile-edge / wrap neighbor paths.

use proptest::prelude::*;
use qdd_dirac::clover::build_clover_field;
use qdd_dirac::fused_full::{build_full_operator, SerialRunner};
use qdd_dirac::gamma::GammaBasis;
use qdd_dirac::wilson::{BoundaryPhases, WilsonClover};
use qdd_field::fields::{GaugeField, SpinorField};
use qdd_lattice::Dims;
use qdd_util::rng::Rng64;

fn operator(
    dims: Dims,
    spread: f64,
    mass: f64,
    seed: u64,
    phases: BoundaryPhases,
) -> WilsonClover<f64> {
    let mut rng = Rng64::new(seed);
    let gauge = GaugeField::<f64>::random(dims, &mut rng, spread);
    let basis = GammaBasis::degrand_rossi();
    let clover = build_clover_field(&gauge, 1.5, &basis);
    WilsonClover::new(gauge, clover, mass, phases)
}

/// Apply both operators to `src` and assert per-site agreement to f64
/// rounding (the summation orders differ, so "exact" means a tolerance at
/// the level of accumulated rounding, ~1e-10 of the local amplitude).
fn assert_fused_matches_scalar(op: &WilsonClover<f64>, src: &SpinorField<f64>) {
    let dims = *op.dims();
    let fused = build_full_operator::<f64>(op).expect("even extents admit a fused operator");
    let mut expect = SpinorField::zeros(dims);
    op.apply(&mut expect, src);
    let mut got = SpinorField::zeros(dims);
    fused.apply(&mut got, src, &SerialRunner);
    for s in 0..dims.volume() {
        let d = got.site(s).sub(*expect.site(s));
        assert!(d.norm_sqr() < 1e-20, "site {s} of {dims}: |diff|^2 = {}", d.norm_sqr());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any gauge configuration, both boundary wraps, random source.
    #[test]
    fn fused_full_matches_scalar_any_configuration(
        seed in 0u64..1000,
        spread in 0.1f64..1.0,
        mass in -0.1f64..0.8,
        antiperiodic in 0u8..2,
    ) {
        let dims = Dims::new(4, 4, 4, 4);
        let phases = if antiperiodic == 1 {
            BoundaryPhases::antiperiodic_t()
        } else {
            BoundaryPhases::periodic()
        };
        let op = operator(dims, spread, mass, seed, phases);
        let mut rng = Rng64::new(seed ^ 0x5EED);
        let src = SpinorField::<f64>::random(dims, &mut rng);
        assert_fused_matches_scalar(&op, &src);
    }

    /// Lane-count sweep: every compiled kernel width (2..128 lanes) and
    /// asymmetric z/t extents that stress the whole-tile wrap paths.
    #[test]
    fn fused_full_matches_scalar_every_lane_count(seed in 0u64..500) {
        for dims in [
            Dims::new(2, 2, 2, 4),   // 2 lanes
            Dims::new(4, 2, 2, 4),   // 4 lanes
            Dims::new(4, 4, 2, 6),   // 8 lanes
            Dims::new(8, 4, 4, 2),   // 16 lanes
            Dims::new(8, 8, 2, 4),   // 32 lanes
            Dims::new(16, 8, 2, 2),  // 64 lanes
            Dims::new(16, 16, 2, 2), // 128 lanes
        ] {
            let op = operator(dims, 0.5, 0.2, seed, BoundaryPhases::antiperiodic_t());
            let mut rng = Rng64::new(seed ^ 0xA11CE);
            let src = SpinorField::<f64>::random(dims, &mut rng);
            assert_fused_matches_scalar(&op, &src);
        }
    }

    /// Point sources on tile edges and wrap boundaries: a unit spike at a
    /// corner site exercises the x/y lane-permuted wrap, the backward
    /// neighbors, and the t-boundary phase in isolation, so a sign error
    /// in any single hop cannot cancel against the bulk.
    #[test]
    fn fused_full_matches_scalar_on_boundary_point_sources(
        seed in 0u64..500,
        component in 0usize..12,
    ) {
        let dims = Dims::new(8, 4, 4, 4);
        let op = operator(dims, 0.6, 0.15, seed, BoundaryPhases::antiperiodic_t());
        let idx = op.indexer();
        let one = qdd_util::complex::Complex::new(1.0, 0.0);
        // Corners and edge midpoints of the local lattice: first/last
        // sites in each direction, so every hop from the spike wraps.
        for coord in [
            [0, 0, 0, 0],
            [dims.0[0] - 1, 0, 0, 0],
            [0, dims.0[1] - 1, 0, 0],
            [0, 0, dims.0[2] - 1, 0],
            [0, 0, 0, dims.0[3] - 1],
            [dims.0[0] - 1, dims.0[1] - 1, dims.0[2] - 1, dims.0[3] - 1],
        ] {
            let site = idx.index(&qdd_lattice::Coord(coord));
            let mut src = SpinorField::<f64>::zeros(dims);
            src.site_mut(site).set_component(component, one);
            assert_fused_matches_scalar(&op, &src);
        }
    }
}
