//! Construction of the clover term from the gauge field.
//!
//! The field-strength tensor is approximated by the "clover leaf": the sum
//! of the four plaquettes in the mu-nu plane touching the site,
//! `F_munu = (Q_munu - Q_munu^dagger) / 8` (paper Sec. II-B, Ref. \[6\]).
//! The spin structure `i sigma_munu` is block-diagonal in chirality, so
//! the whole term packs into two Hermitian 6x6 matrices per site.

use crate::gamma::GammaBasis;
use qdd_field::clover::{CloverSite, Herm6};
use qdd_field::fields::{CloverField, GaugeField};
use qdd_field::su3::Su3;
use qdd_lattice::{Coord, Dir, SiteIndexer};
use qdd_util::complex::C64;

/// The clover-leaf sum `Q_munu(x)`: four plaquettes in the (mu, nu) plane.
fn clover_leaves(
    gauge: &GaugeField<f64>,
    idx: &SiteIndexer,
    x: &Coord,
    mu: Dir,
    nu: Dir,
) -> Su3<f64> {
    let dims = idx.dims();
    let step = |c: &Coord, d: Dir, fwd: bool| c.neighbor(dims, d, fwd).0;
    let u = |c: &Coord, d: Dir| gauge.link(idx.index(c), d);

    // Leaf 1: x -> x+mu -> x+mu+nu -> x+nu -> x
    let xpmu = step(x, mu, true);
    let xpnu = step(x, nu, true);
    let l1 = u(x, mu).mul(u(&xpmu, nu)).mul_adj(u(&xpnu, mu)).mul_adj(u(x, nu));

    // Leaf 2: x -> x+nu -> x+nu-mu -> x-mu -> x
    let xmmu = step(x, mu, false);
    let xmmu_pnu = step(&xmmu, nu, true);
    let l2 = u(x, nu).mul_adj(u(&xmmu_pnu, mu)).mul_adj(u(&xmmu, nu)).mul(u(&xmmu, mu));

    // Leaf 3: x -> x-mu -> x-mu-nu -> x-nu -> x
    let xmnu = step(x, nu, false);
    let xmmu_mnu = step(&xmmu, nu, false);
    let l3 =
        u(&xmmu, mu).adjoint().mul_adj(u(&xmmu_mnu, nu)).mul(u(&xmmu_mnu, mu)).mul(u(&xmnu, nu));

    // Leaf 4: x -> x-nu -> x-nu+mu -> x+mu -> x
    let xpmu_mnu = step(&xpmu, nu, false);
    let l4 = u(&xmnu, nu).adjoint().mul(u(&xmnu, mu)).mul(u(&xpmu_mnu, nu)).mul_adj(u(x, mu));

    l1.add(&l2).add(&l3).add(&l4)
}

/// Anti-Hermitian field strength `F_munu = (Q - Q^dagger)/8`.
fn field_strength(
    gauge: &GaugeField<f64>,
    idx: &SiteIndexer,
    x: &Coord,
    mu: Dir,
    nu: Dir,
) -> Su3<f64> {
    let q = clover_leaves(gauge, idx, x, mu, nu);
    let mut f = q.sub(&q.adjoint()).scale(1.0 / 8.0);
    // Traceless (su(3)) projection: remove the U(1) trace part.
    let tr3 = f.trace().scale(1.0 / 3.0);
    for i in 0..3 {
        f.0[i][i] -= tr3;
    }
    f
}

/// Build the clover field `D_cl = csw * sum_{mu<nu} i sigma_munu F_munu`
/// for every site. Construction is done in f64 and can be `cast()` down
/// for the preconditioner.
pub fn build_clover_field(
    gauge: &GaugeField<f64>,
    csw: f64,
    basis: &GammaBasis,
) -> CloverField<f64> {
    let dims = *gauge.dims();
    let idx = SiteIndexer::new(dims);
    CloverField::from_fn(dims, |site| {
        let x = idx.coord(site);
        build_clover_site(gauge, &idx, &x, csw, basis)
    })
}

fn build_clover_site(
    gauge: &GaugeField<f64>,
    idx: &SiteIndexer,
    x: &Coord,
    csw: f64,
    basis: &GammaBasis,
) -> CloverSite<f64> {
    // Accumulate the 12x12 site matrix M[(s,c),(s',c')] in chiral blocks.
    // sigma is chiral-block-diagonal, so only the two 6x6 blocks are
    // touched; we accumulate them directly.
    let mut blocks = [[[C64::ZERO; 6]; 6]; 2];
    for mu in 0..4 {
        for nu in mu + 1..4 {
            let f = field_strength(gauge, idx, x, Dir::from_index(mu), Dir::from_index(nu));
            let sig = &basis.sigma[mu][nu];
            // i * sigma (Hermitian x i x anti-Hermitian F -> Hermitian term)
            for b in 0..2 {
                for si in 0..2 {
                    for sj in 0..2 {
                        let spin = sig[2 * b + si][2 * b + sj].mul_i().scale(csw);
                        if spin.abs() < 1e-15 {
                            continue;
                        }
                        for ci in 0..3 {
                            for cj in 0..3 {
                                blocks[b][3 * si + ci][3 * sj + cj] += spin * f.0[ci][cj];
                            }
                        }
                    }
                }
            }
        }
    }
    CloverSite { block: [Herm6::from_full(&blocks[0]), Herm6::from_full(&blocks[1])] }
}

/// Average plaquette (normalized to 1 for the free field) — the standard
/// gauge-field diagnostic, used to characterize synthetic configurations.
pub fn average_plaquette(gauge: &GaugeField<f64>) -> f64 {
    let dims = *gauge.dims();
    let idx = SiteIndexer::new(dims);
    let mut sum = 0.0;
    let mut count = 0usize;
    for site in 0..dims.volume() {
        let x = idx.coord(site);
        for mu in 0..4 {
            for nu in mu + 1..4 {
                let (dmu, dnu) = (Dir::from_index(mu), Dir::from_index(nu));
                let xpmu = x.neighbor(&dims, dmu, true).0;
                let xpnu = x.neighbor(&dims, dnu, true).0;
                let p = gauge
                    .link(site, dmu)
                    .mul(gauge.link(idx.index(&xpmu), dnu))
                    .mul_adj(gauge.link(idx.index(&xpnu), dmu))
                    .mul_adj(gauge.link(site, dnu));
                sum += p.trace().re / 3.0;
                count += 1;
            }
        }
    }
    sum / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdd_field::spinor::Spinor;
    use qdd_lattice::Dims;
    use qdd_util::rng::Rng64;

    fn dims() -> Dims {
        Dims::new(4, 4, 4, 4)
    }

    #[test]
    fn free_field_clover_vanishes() {
        let g = GaugeField::<f64>::identity(dims());
        let basis = GammaBasis::degrand_rossi();
        let c = build_clover_field(&g, 1.0, &basis);
        for site in 0..dims().volume() {
            for b in 0..2 {
                let blk = &c.site(site).block[b];
                assert!(blk.diag.iter().all(|d| d.abs() < 1e-13));
                assert!(blk.off.iter().all(|z| z.abs() < 1e-13));
            }
        }
    }

    #[test]
    fn free_field_plaquette_is_one() {
        let g = GaugeField::<f64>::identity(dims());
        assert!((average_plaquette(&g) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn rough_field_lowers_plaquette() {
        let mut rng = Rng64::new(1);
        let smooth = GaugeField::<f64>::random(dims(), &mut rng, 0.1);
        let mut rng = Rng64::new(1);
        let rough = GaugeField::<f64>::random(dims(), &mut rng, 1.0);
        let ps = average_plaquette(&smooth);
        let pr = average_plaquette(&rough);
        assert!(ps > 0.9, "smooth plaquette {ps}");
        assert!(pr < ps, "rough {pr} !< smooth {ps}");
    }

    #[test]
    fn clover_scales_linearly_with_csw() {
        let mut rng = Rng64::new(2);
        let g = GaugeField::<f64>::random(dims(), &mut rng, 0.6);
        let basis = GammaBasis::degrand_rossi();
        let c1 = build_clover_field(&g, 1.0, &basis);
        let c2 = build_clover_field(&g, 2.0, &basis);
        let mut rng = Rng64::new(3);
        let s = Spinor::<f64>::random(&mut rng);
        for site in [0, 7, 100] {
            let a = c1.site(site).apply(&s);
            let b = c2.site(site).apply(&s);
            let d = b.sub(a.scale(2.0));
            assert!(d.norm_sqr() < 1e-20);
        }
    }

    #[test]
    fn clover_site_matrix_is_hermitian() {
        // <v, Dcl v> real for random spinors at random sites.
        let mut rng = Rng64::new(4);
        let g = GaugeField::<f64>::random(dims(), &mut rng, 0.8);
        let basis = GammaBasis::degrand_rossi();
        let c = build_clover_field(&g, 1.9, &basis);
        for seed in 0..5 {
            let mut rng = Rng64::new(100 + seed);
            let s = Spinor::<f64>::random(&mut rng);
            let site = (seed as usize * 37) % dims().volume();
            let cs = c.site(site).apply(&s);
            let form = s.dot(cs);
            assert!(form.im.abs() < 1e-10, "imag part {}", form.im);
        }
    }

    #[test]
    fn field_strength_is_antihermitian_traceless() {
        let mut rng = Rng64::new(5);
        let g = GaugeField::<f64>::random(dims(), &mut rng, 0.9);
        let idx = SiteIndexer::new(dims());
        let x = idx.coord(33);
        for mu in 0..3 {
            for nu in mu + 1..4 {
                let f = field_strength(&g, &idx, &x, Dir::from_index(mu), Dir::from_index(nu));
                let sum = f.add(&f.adjoint());
                for i in 0..3 {
                    for j in 0..3 {
                        assert!(sum.0[i][j].abs() < 1e-12);
                    }
                }
                assert!(f.trace().abs() < 1e-12);
            }
        }
    }

    #[test]
    fn clover_antisymmetric_in_mu_nu() {
        // F_numu = -F_munu.
        let mut rng = Rng64::new(6);
        let g = GaugeField::<f64>::random(dims(), &mut rng, 0.7);
        let idx = SiteIndexer::new(dims());
        let x = idx.coord(21);
        let f_xy = field_strength(&g, &idx, &x, Dir::X, Dir::Y);
        let f_yx = field_strength(&g, &idx, &x, Dir::Y, Dir::X);
        let sum = f_xy.add(&f_yx);
        for i in 0..3 {
            for j in 0..3 {
                assert!(sum.0[i][j].abs() < 1e-12);
            }
        }
    }
}
