//! The site-fused SIMD block operator (paper Sec. III-A, Figs. 2-3).
//!
//! This is the paper's data-layout contribution executed literally: the
//! spinors of a domain live in xy-tile SOA form ([`FusedField`]), gauge
//! links and clover blocks in matching per-tile SOA ([`FusedGauge`],
//! [`FusedClover`]), and the Wilson hop runs on whole lanes:
//!
//! - z/t hops move tile-to-tile with no lane shuffling; hops crossing the
//!   domain boundary are dropped wholesale (Dirichlet).
//! - x/y hops permute lanes in-register using the patterns of
//!   [`TileLayout::xy_neighbor`]; lanes whose neighbor lies outside the
//!   domain are masked to zero (the paper's mask_add, Fig. 2) — costing
//!   the documented 2/16 (x) and 4/16 (y) SIMD efficiency.
//!
//! Everything is validated lane-for-lane against the scalar
//! [`SchurOperator`](crate::block::SchurOperator) path.

use crate::gamma::GammaBasis;
use crate::wilson::WilsonClover;
use qdd_field::fused::{FusedField, FusedTile, VReal, VF16};
use qdd_field::spinor::Spinor;
use qdd_lattice::{Coord, Dims, Dir, Domain, LaneSrc, Parity, SiteIndexer, TileLayout};
use qdd_util::complex::{Real, C64};

/// One tile worth of gauge links for one direction: 3x3 complex in
/// re/im-split SOA (`idx = 2*(3*i + j) + {0: re, 1: im}`).
pub type GaugeTile<T, const N: usize> = [VReal<T, N>; 18];

/// Same layout with packed f16 storage (paper Sec. II-A: constants are
/// stored compressed and up-converted on load). Half the bytes of the f32
/// tile, a quarter of the f64 one.
pub type GaugeTileF16<const N: usize> = [VF16<N>; 18];

/// Lane-vector read access to a gauge tile in *compute* precision — the
/// hook that lets the SU(3) kernels stream either native or compressed
/// storage. The native impl is a register copy; the f16 impl fuses the
/// lane-wise up-conversion into the consuming multiply, so the compressed
/// tile is never materialized at full width in memory.
pub trait GaugeVecs<T: Real, const N: usize>: Sync {
    fn vec(&self, k: usize) -> VReal<T, N>;
}

impl<T: Real, const N: usize> GaugeVecs<T, N> for GaugeTile<T, N> {
    #[inline(always)]
    fn vec(&self, k: usize) -> VReal<T, N> {
        self[k]
    }
}

impl<T: Real, const N: usize> GaugeVecs<T, N> for GaugeTileF16<N> {
    #[inline(always)]
    fn vec(&self, k: usize) -> VReal<T, N> {
        self[k].decompress()
    }
}

/// Lane-vector read access to one tile's clover storage (both
/// chiralities), in compute precision. Mirrors [`GaugeVecs`].
pub trait CloverVecs<T: Real, const N: usize>: Sync {
    /// Real diagonal `i` (0..6) of chirality `ch`.
    fn diag(&self, ch: usize, i: usize) -> VReal<T, N>;
    /// Re/im-split off-diagonal component `k` (0..30) of chirality `ch`.
    fn off(&self, ch: usize, k: usize) -> VReal<T, N>;
}

/// Native per-tile clover storage: `(diag[6], off_re_im[30])` per
/// chirality.
pub type CloverTile<T, const N: usize> = [([VReal<T, N>; 6], [VReal<T, N>; 30]); 2];

/// Compressed per-tile clover storage. The 30 off-diagonal vectors pack
/// to f16; the 6 real diagonals stay at compute width because they carry
/// the `(4 + m)` mass shift, which is folded in *after* the clover term
/// was rounded — keeping them native makes the compressed operator
/// express the f16-rounded operator exactly (and the diagonal is the
/// term whose dynamic range f16 handles worst).
pub type CloverTileHalf<T, const N: usize> = [([VReal<T, N>; 6], [VF16<N>; 30]); 2];

impl<T: Real, const N: usize> CloverVecs<T, N> for CloverTile<T, N> {
    #[inline(always)]
    fn diag(&self, ch: usize, i: usize) -> VReal<T, N> {
        self[ch].0[i]
    }

    #[inline(always)]
    fn off(&self, ch: usize, k: usize) -> VReal<T, N> {
        self[ch].1[k]
    }
}

impl<T: Real, const N: usize> CloverVecs<T, N> for CloverTileHalf<T, N> {
    #[inline(always)]
    fn diag(&self, ch: usize, i: usize) -> VReal<T, N> {
        self[ch].0[i]
    }

    #[inline(always)]
    fn off(&self, ch: usize, k: usize) -> VReal<T, N> {
        self[ch].1[k].decompress()
    }
}

/// Apply one tile of the clover + mass diagonal: `dst = A src`, with the
/// constants streamed through [`CloverVecs`] (native or compressed). The
/// block kernel's [`FusedKernel::apply_diag`] and the full-lattice
/// operator's diagonal phase both run this exact FMA sequence, so native
/// storage stays bitwise identical across paths.
#[inline]
pub(crate) fn clover_apply_tile<T: Real, const N: usize, C: CloverVecs<T, N>>(
    clover: &C,
    src: &FusedTile<T, N>,
) -> FusedTile<T, N> {
    use qdd_field::clover::LOWER_PAIRS;
    let mut dst: FusedTile<T, N> = [VReal::ZERO; 24];
    for ch in 0..2 {
        // Diagonal.
        for i in 0..6 {
            let k = 6 * ch + i;
            let d = clover.diag(ch, i);
            dst[2 * k] = src[2 * k].mul(d);
            dst[2 * k + 1] = src[2 * k + 1].mul(d);
        }
        // Off-diagonals (i > j): dst_i += off * src_j;
        // dst_j += conj(off) * src_i.
        for (kk, &(i, j)) in LOWER_PAIRS.iter().enumerate() {
            let o_re = clover.off(ch, 2 * kk);
            let o_im = clover.off(ch, 2 * kk + 1);
            let gi = 6 * ch + i;
            let gj = 6 * ch + j;
            let (sj_re, sj_im) = (src[2 * gj], src[2 * gj + 1]);
            dst[2 * gi] = dst[2 * gi].fma(o_re, sj_re).fms(o_im, sj_im);
            dst[2 * gi + 1] = dst[2 * gi + 1].fma(o_re, sj_im).fma(o_im, sj_re);
            let (si_re, si_im) = (src[2 * gi], src[2 * gi + 1]);
            dst[2 * gj] = dst[2 * gj].fma(o_re, si_re).fma(o_im, si_im);
            dst[2 * gj + 1] = dst[2 * gj + 1].fma(o_re, si_im).fms(o_im, si_re);
        }
    }
    dst
}

/// Per-domain gauge field in fused layout.
pub struct FusedGauge<T: Real, const N: usize> {
    /// `[parity][tile][dir]`.
    data: [Vec<[GaugeTile<T, N>; 4]>; 2],
}

impl<T: Real, const N: usize> FusedGauge<T, N> {
    /// Gather the links of `domain` from the whole-lattice operator.
    pub fn gather(op: &WilsonClover<T>, domain: &Domain) -> Self {
        let layout = TileLayout::new(domain.dims);
        assert_eq!(layout.lanes(), N);
        let tiles = layout.tiles_per_parity();
        let zero = [[VReal::ZERO; 18]; 4];
        let mut data = [vec![zero; tiles], vec![zero; tiles]];
        let lattice_idx = SiteIndexer::new(*op.dims());
        let block_idx = SiteIndexer::new(domain.dims);
        for local in block_idx.iter() {
            let (p, tile, lane) = layout.locate(&local);
            let gsite = lattice_idx.index(&domain.to_lattice(&local));
            for dir in Dir::ALL {
                let u = op.gauge().link(gsite, dir);
                let gt = &mut data[p.index()][tile][dir.index()];
                for i in 0..3 {
                    for j in 0..3 {
                        gt[2 * (3 * i + j)].0[lane] = u.0[i][j].re;
                        gt[2 * (3 * i + j) + 1].0[lane] = u.0[i][j].im;
                    }
                }
            }
        }
        Self { data }
    }

    #[inline]
    pub(crate) fn tile(&self, parity: Parity, tile: usize, dir: Dir) -> &GaugeTile<T, N> {
        &self.data[parity.index()][tile][dir.index()]
    }
}

/// Per-domain clover + mass diagonal in fused layout: for each chirality,
/// 6 real diagonals and 15 complex off-diagonals (re/im split).
pub struct FusedClover<T: Real, const N: usize> {
    /// `[parity][tile][chirality]` -> (diag[6], off_re_im[30]).
    pub(crate) data: [Vec<CloverTile<T, N>>; 2],
}

impl<T: Real, const N: usize> FusedClover<T, N> {
    /// Gather the `(Nd+m) + Dcl` diagonal of `domain`.
    pub fn gather(op: &WilsonClover<T>, domain: &Domain) -> Self {
        let layout = TileLayout::new(domain.dims);
        assert_eq!(layout.lanes(), N);
        let tiles = layout.tiles_per_parity();
        let zero = [([VReal::ZERO; 6], [VReal::ZERO; 30]); 2];
        let mut data = [vec![zero; tiles], vec![zero; tiles]];
        let lattice_idx = SiteIndexer::new(*op.dims());
        let block_idx = SiteIndexer::new(domain.dims);
        for local in block_idx.iter() {
            let (p, tile, lane) = layout.locate(&local);
            let gsite = lattice_idx.index(&domain.to_lattice(&local));
            let site = op.diag().site(gsite);
            for ch in 0..2 {
                let blk = &site.block[ch];
                let (diag, off) = &mut data[p.index()][tile][ch];
                for i in 0..6 {
                    diag[i].0[lane] = blk.diag[i];
                }
                for k in 0..15 {
                    off[2 * k].0[lane] = blk.off[k].re;
                    off[2 * k + 1].0[lane] = blk.off[k].im;
                }
            }
        }
        Self { data }
    }
}

/// Per-domain gauge field with packed f16 tiles: the compressed-storage
/// counterpart of [`FusedGauge`] (paper Sec. II-A). Built by rounding a
/// native field; re-compressing values that are already
/// f16-representable is lossless, so an operator whose links were
/// pre-rounded through f16 yields bitwise-identical applies from either
/// container.
pub struct FusedGaugeF16<const N: usize> {
    /// `[parity][tile][dir]`.
    data: [Vec<[GaugeTileF16<N>; 4]>; 2],
}

impl<const N: usize> FusedGaugeF16<N> {
    /// Compress a gathered native gauge field tile-for-tile.
    pub fn compress<T: Real>(src: &FusedGauge<T, N>) -> Self {
        let data = std::array::from_fn(|p| {
            src.data[p]
                .iter()
                .map(|dirs| {
                    std::array::from_fn(|d| std::array::from_fn(|k| VF16::compress(&dirs[d][k])))
                })
                .collect()
        });
        Self { data }
    }

    #[inline]
    pub(crate) fn tile(&self, parity: Parity, tile: usize, dir: Dir) -> &GaugeTileF16<N> {
        &self.data[parity.index()][tile][dir.index()]
    }
}

/// Compressed counterpart of [`FusedClover`]: f16 off-diagonals, native
/// diagonals (see [`CloverTileHalf`]).
pub struct FusedCloverHalf<T: Real, const N: usize> {
    /// `[parity][tile][chirality]` -> (diag[6], off_re_im[30]).
    pub(crate) data: [Vec<CloverTileHalf<T, N>>; 2],
}

impl<T: Real, const N: usize> FusedCloverHalf<T, N> {
    /// Compress a gathered native clover field tile-for-tile.
    pub fn compress(src: &FusedClover<T, N>) -> Self {
        let data = std::array::from_fn(|p| {
            src.data[p]
                .iter()
                .map(|chs| {
                    std::array::from_fn(|ch| {
                        let (diag, off) = &chs[ch];
                        (*diag, std::array::from_fn(|k| VF16::compress(&off[k])))
                    })
                })
                .collect()
        });
        Self { data }
    }
}

/// Permutation pattern for one (flavor, parity, dir, orientation): source
/// lane table plus the boundary mask (false = neighbor outside block).
#[derive(Clone)]
struct Pattern<const N: usize> {
    table: [usize; N],
    mask: [bool; N],
    /// True if any lane survives (x/y always; z/t handled separately).
    any: bool,
}

/// Precomputed patterns and rules for the fused kernel of one block shape.
pub struct FusedKernel<T: Real, const N: usize> {
    layout: TileLayout,
    basis: GammaBasis,
    /// `[flavor][parity][dir(0..2 = x,y)][fwd]`.
    xy: Vec<Pattern<N>>,
    _marker: std::marker::PhantomData<T>,
}

#[inline]
pub(crate) fn xy_idx(flavor: usize, parity: Parity, dir: usize, fwd: usize) -> usize {
    ((flavor * 2 + parity.index()) * 2 + dir) * 2 + fwd
}

/// Accumulate `dst += coef * src` where `coef` is `+-1` or `+-i`
/// (complex, lane-wise on split re/im vectors).
#[inline(always)]
fn acc_unit<T: Real, const N: usize>(
    dst_re: &mut VReal<T, N>,
    dst_im: &mut VReal<T, N>,
    src_re: VReal<T, N>,
    src_im: VReal<T, N>,
    coef: C64,
) {
    if coef.im == 0.0 {
        if coef.re >= 0.0 {
            *dst_re = dst_re.add(src_re);
            *dst_im = dst_im.add(src_im);
        } else {
            *dst_re = dst_re.sub(src_re);
            *dst_im = dst_im.sub(src_im);
        }
    } else if coef.im > 0.0 {
        // * i: (re, im) -> (-im, re)
        *dst_re = dst_re.sub(src_im);
        *dst_im = dst_im.add(src_re);
    } else {
        // * -i
        *dst_re = dst_re.add(src_im);
        *dst_im = dst_im.sub(src_re);
    }
}

/// `dst += s * src` for a real lane-invariant scalar.
#[inline(always)]
fn acc_scaled<T: Real, const N: usize>(dst: &mut VReal<T, N>, src: VReal<T, N>, s: T) {
    *dst = dst.fma(src, VReal::splat(s));
}

pub(crate) type Half<T, const N: usize> = [[VReal<T, N>; 2]; 6]; // 6 complex (2 spin x 3 color), [re, im]

impl<T: Real, const N: usize> FusedKernel<T, N> {
    pub fn new(block: Dims) -> Self {
        let layout = TileLayout::new(block);
        assert_eq!(layout.lanes(), N, "lane count mismatch");
        let mut xy = Vec::with_capacity(16);
        for flavor in 0..2 {
            for parity in [Parity::Even, Parity::Odd] {
                for dir in [Dir::X, Dir::Y] {
                    for fwd in [false, true] {
                        let pat = layout.xy_neighbor(flavor, parity, dir, fwd);
                        let mut table = [0usize; N];
                        let mut mask = [false; N];
                        for (l, src) in pat.iter().enumerate() {
                            match src {
                                LaneSrc::Internal(s) => {
                                    table[l] = *s;
                                    mask[l] = true;
                                }
                                LaneSrc::Boundary(_) => {
                                    table[l] = l;
                                    mask[l] = false;
                                }
                            }
                        }
                        xy.push(Pattern { table, mask, any: mask.iter().any(|&b| b) });
                    }
                }
            }
        }
        Self { layout, basis: GammaBasis::degrand_rossi(), xy, _marker: std::marker::PhantomData }
    }

    #[inline]
    pub fn layout(&self) -> &TileLayout {
        &self.layout
    }

    /// Fetch a spinor tile with lanes permuted (and masked lanes zeroed).
    #[inline]
    fn permuted_tile(src: &FusedTile<T, N>, pattern: &Pattern<N>) -> FusedTile<T, N> {
        std::array::from_fn(|c| {
            let permuted = src[c].permute(&pattern.table);
            VReal::ZERO.masked_add(&pattern.mask, permuted)
        })
    }

    /// Project `(1 + sign*gamma_mu)` on a (possibly permuted) tile.
    #[inline]
    pub(crate) fn project(&self, dir: Dir, plus: bool, tile: &FusedTile<T, N>) -> Half<T, N> {
        let rule = self.basis.gamma[dir.index()].proj_rule(plus);
        let mut h: Half<T, N> = std::array::from_fn(|_| [VReal::ZERO; 2]);
        for s in 0..2 {
            let (src_spin, coef) = rule[s];
            for c in 0..3 {
                let k = 3 * s + c;
                let base = 3 * src_spin + c;
                let (mut re, mut im) = (tile[2 * k], tile[2 * k + 1]);
                acc_unit(&mut re, &mut im, tile[2 * base], tile[2 * base + 1], coef);
                h[k] = [re, im];
            }
        }
        h
    }

    /// `out = U * h` (color multiply of both spin components). Generic
    /// over the gauge storage: native tiles are read as-is, compressed
    /// tiles up-convert lane-wise on load — the FMA chain is identical.
    #[inline]
    pub(crate) fn su3_mul<G: GaugeVecs<T, N>>(g: &G, h: &Half<T, N>) -> Half<T, N> {
        let mut out: Half<T, N> = std::array::from_fn(|_| [VReal::ZERO; 2]);
        for s in 0..2 {
            for i in 0..3 {
                let (mut acc_re, mut acc_im) = (VReal::ZERO, VReal::ZERO);
                for c in 0..3 {
                    let u_re = g.vec(2 * (3 * i + c));
                    let u_im = g.vec(2 * (3 * i + c) + 1);
                    let h_re = h[3 * s + c][0];
                    let h_im = h[3 * s + c][1];
                    // acc += u * h
                    acc_re = acc_re.fma(u_re, h_re).fms(u_im, h_im);
                    acc_im = acc_im.fma(u_re, h_im).fma(u_im, h_re);
                }
                out[3 * s + i] = [acc_re, acc_im];
            }
        }
        out
    }

    /// `out = U^dag * h`.
    #[inline]
    pub(crate) fn su3_adj_mul<G: GaugeVecs<T, N>>(g: &G, h: &Half<T, N>) -> Half<T, N> {
        let mut out: Half<T, N> = std::array::from_fn(|_| [VReal::ZERO; 2]);
        for s in 0..2 {
            for i in 0..3 {
                let (mut acc_re, mut acc_im) = (VReal::ZERO, VReal::ZERO);
                for c in 0..3 {
                    // conj(U[c][i]) * h[c]
                    let u_re = g.vec(2 * (3 * c + i));
                    let u_im = g.vec(2 * (3 * c + i) + 1);
                    let h_re = h[3 * s + c][0];
                    let h_im = h[3 * s + c][1];
                    acc_re = acc_re.fma(u_re, h_re).fma(u_im, h_im);
                    acc_im = acc_im.fma(u_re, h_im).fms(u_im, h_re);
                }
                out[3 * s + i] = [acc_re, acc_im];
            }
        }
        out
    }

    /// One color row of `U h` (or `U^dag h` when `ADJ`) for spin `s`:
    /// the three-term FMA chain of [`Self::su3_mul`] for a single output
    /// component, returned in registers.
    #[inline(always)]
    fn su3_row<const ADJ: bool, G: GaugeVecs<T, N>>(
        g: &G,
        h: &Half<T, N>,
        s: usize,
        i: usize,
    ) -> (VReal<T, N>, VReal<T, N>) {
        let (mut acc_re, mut acc_im) = (VReal::ZERO, VReal::ZERO);
        for c in 0..3 {
            let (u_re, u_im) = if ADJ {
                (g.vec(2 * (3 * c + i)), g.vec(2 * (3 * c + i) + 1))
            } else {
                (g.vec(2 * (3 * i + c)), g.vec(2 * (3 * i + c) + 1))
            };
            let h_re = h[3 * s + c][0];
            let h_im = h[3 * s + c][1];
            if ADJ {
                acc_re = acc_re.fma(u_re, h_re).fma(u_im, h_im);
                acc_im = acc_im.fma(u_re, h_im).fms(u_im, h_re);
            } else {
                acc_re = acc_re.fma(u_re, h_re).fms(u_im, h_im);
                acc_im = acc_im.fma(u_re, h_im).fma(u_im, h_re);
            }
        }
        (acc_re, acc_im)
    }

    /// Accumulate one reconstructed component pair: the direct row `k`
    /// (scaled by -1/2) and its partner row `kr` (scaled by `coef`, which
    /// already carries the -1/2).
    #[inline(always)]
    fn recon_pair(
        acc: &mut FusedTile<T, N>,
        k: usize,
        kr: usize,
        coef: C64,
        re: VReal<T, N>,
        im: VReal<T, N>,
    ) {
        let m_half = T::from_f64(-0.5);
        acc_scaled(&mut acc[2 * k], re, m_half);
        acc_scaled(&mut acc[2 * k + 1], im, m_half);
        if coef.im == 0.0 {
            acc_scaled(&mut acc[2 * kr], re, T::from_f64(coef.re));
            acc_scaled(&mut acc[2 * kr + 1], im, T::from_f64(coef.re));
        } else {
            acc_scaled(&mut acc[2 * kr], im, T::from_f64(-coef.im));
            acc_scaled(&mut acc[2 * kr + 1], re, T::from_f64(coef.im));
        }
    }

    /// Fused color-multiply + reconstruct: `acc += -1/2 recon(U h)` (or
    /// `U^dag h` when `adj`) without materializing the intermediate
    /// half-spinor — each `U h` component is computed in registers and
    /// consumed by both rows it feeds. Performs the exact FMA sequences of
    /// [`Self::su3_mul`]/[`Self::su3_adj_mul`] followed by
    /// [`Self::reconstruct_acc`], so results are bitwise identical.
    #[inline]
    pub(crate) fn su3_recon_acc<G: GaugeVecs<T, N>>(
        &self,
        dir: Dir,
        plus: bool,
        adj: bool,
        g: &G,
        h: &Half<T, N>,
        acc: &mut FusedTile<T, N>,
    ) {
        let rule = self.basis.gamma[dir.index()].recon_rule(plus);
        // rule maps output rows 2+s to source spin rule[s].0; the two
        // source spins are a permutation of {0, 1}, so iterating the rule
        // covers every `U h` component exactly once.
        for (s_out, &(sp, coef)) in rule.iter().enumerate() {
            let coef = coef.scale(-0.5);
            for i in 0..3 {
                let (re, im) = if adj {
                    Self::su3_row::<true, G>(g, h, sp, i)
                } else {
                    Self::su3_row::<false, G>(g, h, sp, i)
                };
                Self::recon_pair(acc, 3 * sp + i, 3 * (2 + s_out) + i, coef, re, im);
            }
        }
    }

    /// Reconstruct-and-accumulate with the half-spinor read through a lane
    /// permutation (and optional per-lane sign): the backward-hop epilogue
    /// of the full-lattice kernel, where `U^dag h` is computed in source
    /// lane order and permuted on consumption instead of materialized.
    #[inline]
    pub(crate) fn reconstruct_acc_permuted(
        &self,
        dir: Dir,
        plus: bool,
        h: &Half<T, N>,
        table: &[usize; N],
        sign: Option<&VReal<T, N>>,
        acc: &mut FusedTile<T, N>,
    ) {
        let rule = self.basis.gamma[dir.index()].recon_rule(plus);
        for (s_out, &(sp, coef)) in rule.iter().enumerate() {
            let coef = coef.scale(-0.5);
            for i in 0..3 {
                let k = 3 * sp + i;
                let mut re = h[k][0].permute(table);
                let mut im = h[k][1].permute(table);
                if let Some(s) = sign {
                    re = re.mul(*s);
                    im = im.mul(*s);
                }
                Self::recon_pair(acc, k, 3 * (2 + s_out) + i, coef, re, im);
            }
        }
    }

    /// Reconstruct-and-accumulate `acc += -1/2 * recon(h)`.
    #[inline]
    pub(crate) fn reconstruct_acc(
        &self,
        dir: Dir,
        plus: bool,
        h: &Half<T, N>,
        acc: &mut FusedTile<T, N>,
    ) {
        let m_half = T::from_f64(-0.5);
        // Rows 0, 1 directly.
        for k in 0..6 {
            acc_scaled(&mut acc[2 * k], h[k][0], m_half);
            acc_scaled(&mut acc[2 * k + 1], h[k][1], m_half);
        }
        // Rows 2, 3 from the rule.
        let rule = self.basis.gamma[dir.index()].recon_rule(plus);
        for s in 0..2 {
            let (src_spin, coef) = rule[s];
            let coef = coef.scale(-0.5);
            for c in 0..3 {
                let k = 3 * (2 + s) + c;
                let base = 3 * src_spin + c;
                // acc[k] += coef * h[base]; coef is +-1/2 or +-i/2.
                let (re, im) = (h[base][0], h[base][1]);
                if coef.im == 0.0 {
                    acc_scaled(&mut acc[2 * k], re, T::from_f64(coef.re));
                    acc_scaled(&mut acc[2 * k + 1], im, T::from_f64(coef.re));
                } else {
                    acc_scaled(&mut acc[2 * k], im, T::from_f64(-coef.im));
                    acc_scaled(&mut acc[2 * k + 1], re, T::from_f64(coef.im));
                }
            }
        }
    }

    /// The fused block hop: `out = (-1/2 Dw)|_block inp`, mapping the
    /// vector on parity `from` to tiles of parity `to = from.flip()`.
    /// `out` is overwritten.
    pub fn hop(
        &self,
        out: &mut FusedField<T, N>,
        inp: &FusedField<T, N>,
        gauge: &FusedGauge<T, N>,
        from: Parity,
    ) {
        let to = from.flip();
        let block = *self.layout.block();
        let (bz, bt) = (block[Dir::Z], block[Dir::T]);
        for tz in 0..bz {
            for tt in 0..bt {
                let tile = self.layout.tile_of(tz, tt);
                let flavor = self.layout.flavor(tile);
                let mut acc: FusedTile<T, N> = [VReal::ZERO; 24];

                // x and y hops: permutations within the same (z, t) slice.
                for (di, dir) in [Dir::X, Dir::Y].into_iter().enumerate() {
                    for (fi, fwd) in [false, true].into_iter().enumerate() {
                        let pat = &self.xy[xy_idx(flavor, to, di, fi)];
                        if !pat.any {
                            continue;
                        }
                        let src = Self::permuted_tile(inp.tile(from, tile), pat);
                        if fwd {
                            // (1 - gamma) U(x) psi(x+mu)
                            let h = self.project(dir, false, &src);
                            let uh = Self::su3_mul(gauge.tile(to, tile, dir), &h);
                            self.reconstruct_acc(dir, false, &uh, &mut acc);
                        } else {
                            // (1 + gamma) U^dag(x-mu) psi(x-mu): the link
                            // lives at the source site -> permute it too.
                            let g_src: GaugeTile<T, N> = std::array::from_fn(|c| {
                                gauge.tile(from, tile, dir)[c].permute(&pat.table)
                            });
                            let h = self.project(dir, true, &src);
                            let uh = Self::su3_adj_mul(&g_src, &h);
                            self.reconstruct_acc(dir, true, &uh, &mut acc);
                        }
                    }
                }

                // z and t hops: tile-to-tile, no shuffles; drop hops that
                // cross the block boundary.
                for (dir, coord, extent) in [(Dir::Z, tz, bz), (Dir::T, tt, bt)] {
                    // Forward.
                    if coord + 1 < extent {
                        let ntile = match dir {
                            Dir::Z => self.layout.tile_of(tz + 1, tt),
                            _ => self.layout.tile_of(tz, tt + 1),
                        };
                        let src = inp.tile(from, ntile);
                        let h = self.project(dir, false, src);
                        let uh = Self::su3_mul(gauge.tile(to, tile, dir), &h);
                        self.reconstruct_acc(dir, false, &uh, &mut acc);
                    }
                    // Backward.
                    if coord > 0 {
                        let ntile = match dir {
                            Dir::Z => self.layout.tile_of(tz - 1, tt),
                            _ => self.layout.tile_of(tz, tt - 1),
                        };
                        let src = inp.tile(from, ntile);
                        let h = self.project(dir, true, src);
                        let uh = Self::su3_adj_mul(gauge.tile(from, ntile, dir), &h);
                        self.reconstruct_acc(dir, true, &uh, &mut acc);
                    }
                }

                *out.tile_mut(to, tile) = acc;
            }
        }
    }

    /// Apply the fused clover + mass diagonal on one parity (in place on
    /// `out` from `inp`).
    pub fn apply_diag(
        &self,
        out: &mut FusedField<T, N>,
        inp: &FusedField<T, N>,
        clover: &FusedClover<T, N>,
        parity: Parity,
    ) {
        for tile in 0..self.layout.tiles_per_parity() {
            let src = inp.tile(parity, tile);
            *out.tile_mut(parity, tile) =
                clover_apply_tile(&clover.data[parity.index()][tile], src);
        }
    }

    /// The full fused block operator `D = diag + hop` on both parities:
    /// `out = D inp` with Dirichlet block boundary.
    pub fn apply_block(
        &self,
        out: &mut FusedField<T, N>,
        inp: &FusedField<T, N>,
        gauge: &FusedGauge<T, N>,
        clover: &FusedClover<T, N>,
        scratch: &mut FusedField<T, N>,
    ) {
        // Hops write into `out`; diag into scratch; sum.
        self.hop(out, inp, gauge, Parity::Even); // writes odd tiles
        self.hop(out, inp, gauge, Parity::Odd); // writes even tiles
        self.apply_diag(scratch, inp, clover, Parity::Even);
        self.apply_diag(scratch, inp, clover, Parity::Odd);
        for parity in [Parity::Even, Parity::Odd] {
            for tile in 0..self.layout.tiles_per_parity() {
                let d = *scratch.tile(parity, tile);
                let o = out.tile_mut(parity, tile);
                for c in 0..24 {
                    o[c] = o[c].add(d[c]);
                }
            }
        }
    }
}

/// The fused even-odd Schur complement of one domain:
/// `D~ee = Dee - Deo Doo^-1 Doe` entirely on tile vectors.
pub struct FusedSchur<T: Real, const N: usize> {
    kernel: FusedKernel<T, N>,
    gauge: FusedGauge<T, N>,
    /// `(Nd+m) + Dcl` in fused form.
    diag: FusedClover<T, N>,
    /// Its per-site inverse.
    diag_inv: FusedClover<T, N>,
}

impl<T: Real, const N: usize> FusedSchur<T, N> {
    /// Assemble from the whole-lattice operator and a domain. Returns
    /// `None` when a site diagonal is singular.
    pub fn new(op: &WilsonClover<T>, domain: &Domain) -> Option<Self> {
        let kernel = FusedKernel::new(domain.dims);
        let gauge = FusedGauge::gather(op, domain);
        let diag = FusedClover::gather(op, domain);
        // Inverted diagonal: invert per site then gather.
        let layout = TileLayout::new(domain.dims);
        let tiles = layout.tiles_per_parity();
        let zero = [([VReal::ZERO; 6], [VReal::ZERO; 30]); 2];
        let mut data = [vec![zero; tiles], vec![zero; tiles]];
        let lattice_idx = SiteIndexer::new(*op.dims());
        let block_idx = SiteIndexer::new(domain.dims);
        for local in block_idx.iter() {
            let (p, tile, lane) = layout.locate(&local);
            let gsite = lattice_idx.index(&domain.to_lattice(&local));
            let inv = op.diag().site(gsite).invert()?;
            for ch in 0..2 {
                let blk = &inv.block[ch];
                let (diag_v, off) = &mut data[p.index()][tile][ch];
                for i in 0..6 {
                    diag_v[i].0[lane] = blk.diag[i];
                }
                for k in 0..15 {
                    off[2 * k].0[lane] = blk.off[k].re;
                    off[2 * k + 1].0[lane] = blk.off[k].im;
                }
            }
        }
        Some(Self { kernel, gauge, diag, diag_inv: FusedClover { data } })
    }

    #[inline]
    pub fn kernel(&self) -> &FusedKernel<T, N> {
        &self.kernel
    }

    /// `out(even) = D~ee inp(even)`; `s1`, `s2` are scratch fused fields.
    pub fn apply_schur(
        &self,
        out: &mut FusedField<T, N>,
        inp: &FusedField<T, N>,
        s1: &mut FusedField<T, N>,
        s2: &mut FusedField<T, N>,
    ) {
        // s1(odd) = Doe inp(even)
        self.kernel.hop(s1, inp, &self.gauge, Parity::Even);
        // s2(odd) = Doo^-1 s1(odd)
        self.kernel.apply_diag(s2, s1, &self.diag_inv, Parity::Odd);
        // out(even) = -(Deo s2)(even)  [hop writes, then negate+add diag]
        self.kernel.hop(out, s2, &self.gauge, Parity::Odd);
        // s1(even) = Dee inp(even)
        self.kernel.apply_diag(s1, inp, &self.diag, Parity::Even);
        let tiles = self.kernel.layout.tiles_per_parity();
        for tile in 0..tiles {
            let dee = *s1.tile(Parity::Even, tile);
            let o = out.tile_mut(Parity::Even, tile);
            for c in 0..24 {
                o[c] = dee[c].sub(o[c]);
            }
        }
    }
}

/// Gather a block-local checkerboard slice pair (as used by the scalar
/// Schur path) into a fused field. `even` and `odd` are cb-ordered block
/// vectors.
pub fn fused_from_cb<T: Real, const N: usize>(
    block: Dims,
    even: &[Spinor<T>],
    odd: &[Spinor<T>],
) -> FusedField<T, N> {
    let idx = SiteIndexer::new(block);
    let full: Vec<Spinor<T>> = idx
        .iter()
        .map(|c| {
            let (p, cb) = idx.cb_index(&c);
            match p {
                Parity::Even => even[cb],
                Parity::Odd => odd[cb],
            }
        })
        .collect();
    FusedField::gather(&full, block)
}

/// Scatter a fused field back to checkerboard vectors.
pub fn fused_to_cb<T: Real, const N: usize>(
    field: &FusedField<T, N>,
    block: Dims,
) -> (Vec<Spinor<T>>, Vec<Spinor<T>>) {
    let idx = SiteIndexer::new(block);
    let mut full = vec![Spinor::ZERO; block.volume()];
    field.scatter(&mut full);
    let half = block.volume() / 2;
    let mut even = vec![Spinor::ZERO; half];
    let mut odd = vec![Spinor::ZERO; half];
    for c in idx.iter() {
        let (p, cb) = idx.cb_index(&c);
        match p {
            Parity::Even => even[cb] = full[idx.index(&c)],
            Parity::Odd => odd[cb] = full[idx.index(&c)],
        }
    }
    (even, odd)
}

/// Helper for tests/benches: local coordinate round trip.
pub fn coord_roundtrip_check(block: Dims) -> bool {
    let layout = TileLayout::new(block);
    let idx = SiteIndexer::new(block);
    let coords: Vec<Coord> = idx.iter().collect();
    coords.iter().all(|c| {
        let (p, t, l) = layout.locate(c);
        layout.coord(p, t, l) == *c
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{DomainFields, SchurOperator};
    use crate::clover::build_clover_field;
    use crate::wilson::BoundaryPhases;
    use qdd_field::fields::GaugeField;
    use qdd_lattice::DomainGrid;
    use qdd_util::rng::Rng64;

    fn setup(block: Dims) -> (WilsonClover<f64>, DomainGrid) {
        let dims = block.times(&Dims::new(2, 2, 2, 2));
        let mut rng = Rng64::new(71);
        let g = GaugeField::random(dims, &mut rng, 0.7);
        let basis = GammaBasis::degrand_rossi();
        let c = build_clover_field(&g, 1.6, &basis);
        let op = WilsonClover::new(g, c, 0.2, BoundaryPhases::periodic());
        let grid = DomainGrid::new(dims, block);
        (op, grid)
    }

    fn check_fused_matches_scalar<const N: usize>(block: Dims) {
        let (op, grid) = setup(block);
        let fields = DomainFields::new(&op).unwrap();
        for dom_idx in [0, 5, grid.num_domains() - 1] {
            let domain = grid.domain(dom_idx);
            let schur = SchurOperator::new(&op, &fields, domain);
            let n = schur.cb_len();
            let mut rng = Rng64::new(72 + dom_idx as u64);
            let in_e: Vec<Spinor<f64>> = (0..n).map(|_| Spinor::random(&mut rng)).collect();
            let in_o: Vec<Spinor<f64>> = (0..n).map(|_| Spinor::random(&mut rng)).collect();

            // Scalar reference: the full block operator.
            let mut block_in = in_e.clone();
            block_in.extend_from_slice(&in_o);
            let mut expect = vec![Spinor::ZERO; 2 * n];
            schur.apply_block_full(&mut expect, &block_in);

            // Fused path.
            let kernel = FusedKernel::<f64, N>::new(block);
            let gauge = FusedGauge::<f64, N>::gather(&op, &domain);
            let clover = FusedClover::<f64, N>::gather(&op, &domain);
            let inp = fused_from_cb::<f64, N>(block, &in_e, &in_o);
            let mut out = FusedField::<f64, N>::zeros(block);
            let mut scratch = FusedField::<f64, N>::zeros(block);
            kernel.apply_block(&mut out, &inp, &gauge, &clover, &mut scratch);
            let (got_e, got_o) = fused_to_cb::<f64, N>(&out, block);

            for cb in 0..n {
                let de = got_e[cb].sub(expect[cb]);
                assert!(
                    de.norm_sqr() < 1e-20,
                    "block {block} domain {dom_idx} even cb {cb}: {}",
                    de.norm_sqr()
                );
                let do_ = got_o[cb].sub(expect[n + cb]);
                assert!(
                    do_.norm_sqr() < 1e-20,
                    "block {block} domain {dom_idx} odd cb {cb}: {}",
                    do_.norm_sqr()
                );
            }
        }
    }

    #[test]
    fn fused_block_operator_matches_scalar_paper_block() {
        // The paper's 8x4 cross-section: 16 lanes.
        check_fused_matches_scalar::<16>(Dims::new(8, 4, 4, 4));
    }

    #[test]
    fn fused_block_operator_matches_scalar_8_lanes() {
        check_fused_matches_scalar::<8>(Dims::new(4, 4, 2, 2));
    }

    #[test]
    fn fused_hop_only_matches_scalar() {
        let block = Dims::new(4, 4, 2, 2);
        let (op, grid) = setup(block);
        let fields = DomainFields::new(&op).unwrap();
        let domain = grid.domain(3);
        let schur = SchurOperator::new(&op, &fields, domain);
        let n = schur.cb_len();
        let mut rng = Rng64::new(75);
        let in_e: Vec<Spinor<f64>> = (0..n).map(|_| Spinor::random(&mut rng)).collect();
        let zero = vec![Spinor::ZERO; n];
        let mut expect = vec![Spinor::ZERO; n];
        schur.hop(&mut expect, &in_e, Parity::Even); // even -> odd

        let kernel = FusedKernel::<f64, 8>::new(block);
        let gauge = FusedGauge::<f64, 8>::gather(&op, &domain);
        let inp = fused_from_cb::<f64, 8>(block, &in_e, &zero);
        let mut out = FusedField::<f64, 8>::zeros(block);
        kernel.hop(&mut out, &inp, &gauge, Parity::Even);
        let (_, got_o) = fused_to_cb::<f64, 8>(&out, block);
        for cb in 0..n {
            let d = got_o[cb].sub(expect[cb]);
            assert!(d.norm_sqr() < 1e-20, "cb {cb}: {}", d.norm_sqr());
        }
    }

    #[test]
    fn fused_diag_matches_scalar() {
        let block = Dims::new(4, 4, 2, 2);
        let (op, grid) = setup(block);
        let fields = DomainFields::new(&op).unwrap();
        let domain = grid.domain(1);
        let schur = SchurOperator::new(&op, &fields, domain);
        let n = schur.cb_len();
        let mut rng = Rng64::new(76);
        let in_o: Vec<Spinor<f64>> = (0..n).map(|_| Spinor::random(&mut rng)).collect();
        let zero = vec![Spinor::ZERO; n];
        let mut expect = vec![Spinor::ZERO; n];
        schur.apply_diag(&mut expect, &in_o, Parity::Odd);

        let kernel = FusedKernel::<f64, 8>::new(block);
        let clover = FusedClover::<f64, 8>::gather(&op, &domain);
        let inp = fused_from_cb::<f64, 8>(block, &zero, &in_o);
        let mut out = FusedField::<f64, 8>::zeros(block);
        kernel.apply_diag(&mut out, &inp, &clover, Parity::Odd);
        let (_, got_o) = fused_to_cb::<f64, 8>(&out, block);
        for cb in 0..n {
            let d = got_o[cb].sub(expect[cb]);
            assert!(d.norm_sqr() < 1e-22, "cb {cb}: {}", d.norm_sqr());
        }
    }

    #[test]
    fn f32_fused_path_works() {
        let block = Dims::new(8, 4, 4, 4);
        let (op, grid) = setup(block);
        let op32: WilsonClover<f32> = op.cast();
        let domain = grid.domain(0);
        let kernel = FusedKernel::<f32, 16>::new(block);
        let gauge = FusedGauge::<f32, 16>::gather(&op32, &domain);
        let clover = FusedClover::<f32, 16>::gather(&op32, &domain);
        let n = block.volume() / 2;
        let mut rng = Rng64::new(77);
        let in_e: Vec<Spinor<f32>> = (0..n).map(|_| Spinor::random(&mut rng)).collect();
        let in_o: Vec<Spinor<f32>> = (0..n).map(|_| Spinor::random(&mut rng)).collect();
        let inp = fused_from_cb::<f32, 16>(block, &in_e, &in_o);
        let mut out = FusedField::<f32, 16>::zeros(block);
        let mut scratch = FusedField::<f32, 16>::zeros(block);
        kernel.apply_block(&mut out, &inp, &gauge, &clover, &mut scratch);
        // Cross-check against the f64 scalar path at f32 accuracy.
        let fields = DomainFields::new(&op).unwrap();
        let schur = SchurOperator::new(&op, &fields, domain);
        let mut block_in: Vec<Spinor<f64>> = in_e.iter().map(|s| s.cast()).collect();
        block_in.extend(in_o.iter().map(|s| s.cast::<f64>()));
        let mut expect = vec![Spinor::ZERO; 2 * n];
        schur.apply_block_full(&mut expect, &block_in);
        let (got_e, got_o) = fused_to_cb::<f32, 16>(&out, block);
        for cb in 0..n {
            let ge: Spinor<f64> = got_e[cb].cast();
            let d = ge.sub(expect[cb]);
            assert!(d.norm_sqr() < 1e-8, "even cb {cb}: {}", d.norm_sqr());
            let go: Spinor<f64> = got_o[cb].cast();
            let d = go.sub(expect[n + cb]);
            assert!(d.norm_sqr() < 1e-8, "odd cb {cb}: {}", d.norm_sqr());
        }
    }

    #[test]
    fn fused_schur_matches_scalar() {
        let block = Dims::new(8, 4, 4, 4);
        let (op, grid) = setup(block);
        let fields = DomainFields::new(&op).unwrap();
        let domain = grid.domain(2);
        let schur = SchurOperator::new(&op, &fields, domain);
        let n = schur.cb_len();
        let mut rng = Rng64::new(78);
        let in_e: Vec<Spinor<f64>> = (0..n).map(|_| Spinor::random(&mut rng)).collect();
        let zero = vec![Spinor::ZERO; n];
        let mut expect = vec![Spinor::ZERO; n];
        let mut scratch = vec![Spinor::ZERO; 2 * n];
        schur.apply_schur(&mut expect, &in_e, &mut scratch);

        let fused = FusedSchur::<f64, 16>::new(&op, &domain).unwrap();
        let inp = fused_from_cb::<f64, 16>(block, &in_e, &zero);
        let mut out = FusedField::<f64, 16>::zeros(block);
        let mut s1 = FusedField::<f64, 16>::zeros(block);
        let mut s2 = FusedField::<f64, 16>::zeros(block);
        fused.apply_schur(&mut out, &inp, &mut s1, &mut s2);
        let (got_e, _) = fused_to_cb::<f64, 16>(&out, block);
        for cb in 0..n {
            let d = got_e[cb].sub(expect[cb]);
            assert!(d.norm_sqr() < 1e-18, "cb {cb}: {}", d.norm_sqr());
        }
    }

    #[test]
    fn coord_roundtrip_helper() {
        assert!(coord_roundtrip_check(Dims::new(8, 4, 4, 4)));
        assert!(coord_roundtrip_check(Dims::new(4, 4, 2, 2)));
    }
}
