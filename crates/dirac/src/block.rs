//! Domain-restricted operators: the block-diagonal `D` of the Schwarz
//! splitting `A = D + R` and its even-odd Schur complement.
//!
//! `D` couples only sites within one domain (zero Dirichlet boundary:
//! hopping terms crossing the domain surface are masked off, paper Fig. 2).
//! The MR block solver actually inverts the Schur complement
//!
//! ```text
//! D~ee = Dee - Deo Doo^-1 Doe        (paper Eq. (5))
//! ```
//!
//! on the even checkerboard of the domain, which roughly halves the MR
//! iteration count (Sec. II-D). `Doo` is the site-local clover + mass
//! diagonal, whose 6x6 chiral blocks are inverted once per configuration.
//!
//! Block vectors are indexed by the *domain-local checkerboard index*
//! (see [`qdd_lattice::SiteIndexer::cb_index`]). Because domain extents
//! are even, a site's domain-local parity equals its global parity.

use crate::wilson::WilsonClover;
use qdd_field::fields::CloverField;
use qdd_field::spinor::{HalfSpinor, Spinor};
use qdd_lattice::{Coord, Dims, Dir, Domain, Parity, SiteIndexer};
use qdd_util::complex::Real;

/// Shared per-configuration data for all block solves: the inverted
/// site diagonal `((Nd + m) + Dcl)^-1`.
pub struct DomainFields<T: Real> {
    diag_inv: CloverField<T>,
}

impl<T: Real> DomainFields<T> {
    /// Precompute the diagonal inverse. Returns `None` if any site block
    /// is numerically singular (can happen for exceptional gauge
    /// configurations near zero quark mass).
    pub fn new(op: &WilsonClover<T>) -> Option<Self> {
        let dims = *op.dims();
        let mut data = Vec::with_capacity(dims.volume());
        for site in 0..dims.volume() {
            data.push(op.diag().site(site).invert()?);
        }
        Some(Self { diag_inv: CloverField::from_fn(dims, |s| data[s]) })
    }

    #[inline]
    pub fn diag_inv(&self) -> &CloverField<T> {
        &self.diag_inv
    }
}

/// The even-odd-preconditioned block operator for one domain.
pub struct SchurOperator<'a, T: Real> {
    op: &'a WilsonClover<T>,
    fields: &'a DomainFields<T>,
    domain: Domain,
    block_idx: SiteIndexer,
    lattice_idx: SiteIndexer,
}

impl<'a, T: Real> SchurOperator<'a, T> {
    pub fn new(op: &'a WilsonClover<T>, fields: &'a DomainFields<T>, domain: Domain) -> Self {
        let block_idx = SiteIndexer::new(domain.dims);
        let lattice_idx = SiteIndexer::new(*op.dims());
        Self { op, fields, domain, block_idx, lattice_idx }
    }

    #[inline]
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Number of sites per checkerboard half of the block.
    #[inline]
    pub fn cb_len(&self) -> usize {
        self.domain.dims.volume() / 2
    }

    #[inline]
    fn block_dims(&self) -> &Dims {
        self.block_idx.dims()
    }

    /// Global lattice site index of a domain-local coordinate.
    #[inline]
    fn global_index(&self, local: &Coord) -> usize {
        self.lattice_idx.index(&self.domain.to_lattice(local))
    }

    /// The `-1/2 Dw` hopping restricted to the block, mapping the vector on
    /// parity `from` to its opposite-parity image. `inp` and `out` are
    /// checkerboard-indexed block vectors; `out` is overwritten.
    pub fn hop(&self, out: &mut [Spinor<T>], inp: &[Spinor<T>], from: Parity) {
        let to = from.flip();
        let bd = *self.block_dims();
        assert_eq!(out.len(), self.cb_len());
        assert_eq!(inp.len(), self.cb_len());
        let basis = self.op.basis();
        let m_half = T::from_f64(-0.5);
        for (out_cb, o) in out.iter_mut().enumerate() {
            let local = self.block_idx.cb_coord(to, out_cb);
            let gsite = self.global_index(&local);
            let mut acc = Spinor::ZERO;
            for dir in Dir::ALL {
                let gamma = &basis.gamma[dir.index()];
                // Forward hop: neighbor within the block only.
                let (nc, wrapped) = local.neighbor(&bd, dir, true);
                if !wrapped {
                    let (np, ncb) = self.block_idx.cb_index(&nc);
                    debug_assert_eq!(np, from);
                    let h = gamma.project(false, &inp[ncb]);
                    let u = self.op.gauge().link(gsite, dir);
                    let h = HalfSpinor([u.mul_vec(h.0[0]), u.mul_vec(h.0[1])]);
                    gamma.reconstruct_add(
                        false,
                        &HalfSpinor([h.0[0].scale(m_half), h.0[1].scale(m_half)]),
                        &mut acc,
                    );
                }
                // Backward hop.
                let (nc, wrapped) = local.neighbor(&bd, dir, false);
                if !wrapped {
                    let (np, ncb) = self.block_idx.cb_index(&nc);
                    debug_assert_eq!(np, from);
                    let h = gamma.project(true, &inp[ncb]);
                    let u = self.op.gauge().link(self.global_index(&nc), dir);
                    let h = HalfSpinor([u.adj_mul_vec(h.0[0]), u.adj_mul_vec(h.0[1])]);
                    gamma.reconstruct_add(
                        true,
                        &HalfSpinor([h.0[0].scale(m_half), h.0[1].scale(m_half)]),
                        &mut acc,
                    );
                }
            }
            *o = acc;
        }
    }

    /// Apply the site diagonal `(Nd + m) + Dcl` on one parity.
    pub fn apply_diag(&self, out: &mut [Spinor<T>], inp: &[Spinor<T>], parity: Parity) {
        for (cb, o) in out.iter_mut().enumerate() {
            let local = self.block_idx.cb_coord(parity, cb);
            let gsite = self.global_index(&local);
            *o = self.op.diag().site(gsite).apply(&inp[cb]);
        }
    }

    /// Apply the inverted site diagonal on one parity.
    pub fn apply_diag_inv(&self, out: &mut [Spinor<T>], inp: &[Spinor<T>], parity: Parity) {
        for (cb, o) in out.iter_mut().enumerate() {
            let local = self.block_idx.cb_coord(parity, cb);
            let gsite = self.global_index(&local);
            *o = self.fields.diag_inv().site(gsite).apply(&inp[cb]);
        }
    }

    /// The Schur complement `D~ee v = Dee v - Deo Doo^-1 Doe v`.
    /// `scratch_odd` provides the two odd-parity temporaries.
    pub fn apply_schur(
        &self,
        out: &mut [Spinor<T>],
        inp: &[Spinor<T>],
        scratch_odd: &mut [Spinor<T>],
    ) {
        let n = self.cb_len();
        assert_eq!(scratch_odd.len(), 2 * n);
        let (tmp1, tmp2) = scratch_odd.split_at_mut(n);
        // tmp1 = Doe v (odd)
        self.hop(tmp1, inp, Parity::Even);
        // tmp2 = Doo^-1 tmp1
        self.apply_diag_inv(tmp2, tmp1, Parity::Odd);
        // out = Deo tmp2 (even)
        self.hop(out, tmp2, Parity::Odd);
        // out = Dee v - out
        for (cb, o) in out.iter_mut().enumerate() {
            let local = self.block_idx.cb_coord(Parity::Even, cb);
            let gsite = self.global_index(&local);
            let dee = self.op.diag().site(gsite).apply(&inp[cb]);
            *o = dee.sub(*o);
        }
    }

    /// Schur right-hand side `f~e = fe - Deo Doo^-1 fo`.
    pub fn prepare_rhs(
        &self,
        out: &mut [Spinor<T>],
        f_even: &[Spinor<T>],
        f_odd: &[Spinor<T>],
        scratch_odd: &mut [Spinor<T>],
    ) {
        let n = self.cb_len();
        let (tmp1, _) = scratch_odd.split_at_mut(n);
        self.apply_diag_inv(tmp1, f_odd, Parity::Odd);
        let mut hop_even = vec![Spinor::ZERO; n];
        self.hop(&mut hop_even, tmp1, Parity::Odd);
        for cb in 0..n {
            out[cb] = f_even[cb].sub(hop_even[cb]);
        }
    }

    /// Reconstruct the odd half from the even solution:
    /// `uo = Doo^-1 (fo - Doe ue)`.
    pub fn reconstruct_odd(
        &self,
        out_odd: &mut [Spinor<T>],
        u_even: &[Spinor<T>],
        f_odd: &[Spinor<T>],
    ) {
        let n = self.cb_len();
        let mut hop_odd = vec![Spinor::ZERO; n];
        self.hop(&mut hop_odd, u_even, Parity::Even);
        let mut rhs = vec![Spinor::ZERO; n];
        for cb in 0..n {
            rhs[cb] = f_odd[cb].sub(hop_odd[cb]);
        }
        self.apply_diag_inv(out_odd, &rhs, Parity::Odd);
    }

    /// Apply the full block operator `D` (both parities, Dirichlet
    /// boundary) — reference path and non-even-odd solves. Vectors are
    /// `[even; odd]` concatenated checkerboard halves.
    pub fn apply_block_full(&self, out: &mut [Spinor<T>], inp: &[Spinor<T>]) {
        let n = self.cb_len();
        assert_eq!(out.len(), 2 * n);
        assert_eq!(inp.len(), 2 * n);
        let (in_e, in_o) = inp.split_at(n);
        let (out_e, out_o) = out.split_at_mut(n);
        self.hop(out_e, in_o, Parity::Odd);
        for cb in 0..n {
            let local = self.block_idx.cb_coord(Parity::Even, cb);
            let gsite = self.global_index(&local);
            out_e[cb] = self.op.diag().site(gsite).apply(&in_e[cb]).add(out_e[cb]);
        }
        self.hop(out_o, in_e, Parity::Even);
        for cb in 0..n {
            let local = self.block_idx.cb_coord(Parity::Odd, cb);
            let gsite = self.global_index(&local);
            out_o[cb] = self.op.diag().site(gsite).apply(&in_o[cb]).add(out_o[cb]);
        }
    }

    /// Nominal flop count of one Schur application (the paper's per-site
    /// accounting: two half-volume hops + two half-volume clover terms =
    /// the same 1848 flop/site as the full operator).
    pub fn schur_flops(&self) -> f64 {
        crate::wilson::TOTAL_FLOPS_PER_SITE * self.domain.volume() as f64
    }

    /// Gather the block-local checkerboard vectors of one parity from a
    /// whole-lattice field.
    pub fn gather_cb(
        &self,
        field: &qdd_field::fields::SpinorField<T>,
        parity: Parity,
    ) -> Vec<Spinor<T>> {
        self.gather_cb_with(|i| *field.site(i), parity)
    }

    /// Closure-fetching variant of [`Self::gather_cb`].
    pub fn gather_cb_with<F: Fn(usize) -> Spinor<T>>(
        &self,
        fetch: F,
        parity: Parity,
    ) -> Vec<Spinor<T>> {
        (0..self.cb_len())
            .map(|cb| {
                let local = self.block_idx.cb_coord(parity, cb);
                fetch(self.global_index(&local))
            })
            .collect()
    }

    /// Global site indices of the block's checkerboard sites, in cb order.
    pub fn global_cb_indices(&self, parity: Parity) -> Vec<usize> {
        (0..self.cb_len())
            .map(|cb| self.global_index(&self.block_idx.cb_coord(parity, cb)))
            .collect()
    }

    /// Scatter-add a block-local checkerboard vector into a whole-lattice
    /// field: `field |_block += v`.
    pub fn scatter_add_cb(
        &self,
        field: &mut qdd_field::fields::SpinorField<T>,
        v: &[Spinor<T>],
        parity: Parity,
    ) {
        for (cb, s) in v.iter().enumerate() {
            let local = self.block_idx.cb_coord(parity, cb);
            let gsite = self.global_index(&local);
            *field.site_mut(gsite) = field.site(gsite).add(*s);
        }
    }

    /// Closure-storing variant of [`Self::scatter_add_cb`]: calls
    /// `store(global_site, increment)` for every block site.
    pub fn scatter_add_cb_with<F: FnMut(usize, Spinor<T>)>(
        &self,
        mut store: F,
        v: &[Spinor<T>],
        parity: Parity,
    ) {
        for (cb, s) in v.iter().enumerate() {
            let local = self.block_idx.cb_coord(parity, cb);
            store(self.global_index(&local), *s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clover::build_clover_field;
    use crate::gamma::GammaBasis;
    use crate::wilson::BoundaryPhases;
    use qdd_field::fields::{GaugeField, SpinorField};
    use qdd_lattice::{Dims, DomainGrid};
    use qdd_util::rng::Rng64;

    fn setup() -> (WilsonClover<f64>, DomainGrid) {
        let dims = Dims::new(8, 8, 4, 4);
        let mut rng = Rng64::new(31);
        let g = GaugeField::random(dims, &mut rng, 0.6);
        let basis = GammaBasis::degrand_rossi();
        let c = build_clover_field(&g, 1.7, &basis);
        let op = WilsonClover::new(g, c, 0.2, BoundaryPhases::periodic());
        let grid = DomainGrid::new(dims, Dims::new(4, 4, 2, 2));
        (op, grid)
    }

    /// Brute-force block operator: apply A site-by-site but zero out
    /// contributions from outside the domain.
    fn block_apply_reference(
        op: &WilsonClover<f64>,
        domain: &Domain,
        inp_global: &SpinorField<f64>,
    ) -> SpinorField<f64> {
        // Zero the field outside the domain, apply A (periodic), then mask
        // the output to the domain. Hops from outside contribute nothing
        // because the input there is zero. One subtlety: with a domain
        // spanning the full lattice extent in some direction, wrap-around
        // hops would couple the block to itself; the test lattice is
        // chosen so each direction has >= 2 domains.
        let dims = *op.dims();
        let idx = SiteIndexer::new(dims);
        let masked = SpinorField::from_fn(dims, |s| {
            let c = idx.coord(s);
            let inside = (0..4).all(|d| {
                let dd = Dir::from_index(d);
                c[dd] >= domain.origin[dd] && c[dd] < domain.origin[dd] + domain.dims[dd]
            });
            if inside {
                *inp_global.site(s)
            } else {
                Spinor::ZERO
            }
        });
        let mut out = SpinorField::zeros(dims);
        op.apply(&mut out, &masked);
        SpinorField::from_fn(dims, |s| {
            let c = idx.coord(s);
            let inside = (0..4).all(|d| {
                let dd = Dir::from_index(d);
                c[dd] >= domain.origin[dd] && c[dd] < domain.origin[dd] + domain.dims[dd]
            });
            if inside {
                *out.site(s)
            } else {
                Spinor::ZERO
            }
        })
    }

    #[test]
    fn block_operator_matches_masked_global_operator() {
        let (op, grid) = setup();
        let fields = DomainFields::new(&op).unwrap();
        let mut rng = Rng64::new(32);
        let inp = SpinorField::<f64>::random(*op.dims(), &mut rng);
        for dom_idx in [0, 3, grid.num_domains() - 1] {
            let domain = grid.domain(dom_idx);
            let schur = SchurOperator::new(&op, &fields, domain);
            let n = schur.cb_len();
            // Block-local vector from the global field.
            let in_e = schur.gather_cb(&inp, Parity::Even);
            let in_o = schur.gather_cb(&inp, Parity::Odd);
            let mut block_in = in_e.clone();
            block_in.extend_from_slice(&in_o);
            let mut block_out = vec![Spinor::ZERO; 2 * n];
            schur.apply_block_full(&mut block_out, &block_in);

            let reference = block_apply_reference(&op, &domain, &inp);
            // Compare site by site.
            for cb in 0..n {
                for (parity, off) in [(Parity::Even, 0), (Parity::Odd, n)] {
                    let local = SiteIndexer::new(domain.dims).cb_coord(parity, cb);
                    let g = SiteIndexer::new(*op.dims()).index(&domain.to_lattice(&local));
                    let d = block_out[off + cb].sub(*reference.site(g));
                    assert!(
                        d.norm_sqr() < 1e-20,
                        "domain {dom_idx} parity {parity:?} cb {cb}: {}",
                        d.norm_sqr()
                    );
                }
            }
        }
    }

    #[test]
    fn schur_solution_matches_full_block_solution() {
        // If D [ue; uo] = [fe; fo], then D~ee ue = f~e and uo reconstructs.
        let (op, grid) = setup();
        let fields = DomainFields::new(&op).unwrap();
        let domain = grid.domain(5);
        let schur = SchurOperator::new(&op, &fields, domain);
        let n = schur.cb_len();
        let mut rng = Rng64::new(33);
        let u: Vec<Spinor<f64>> = (0..2 * n).map(|_| Spinor::random(&mut rng)).collect();
        let mut f = vec![Spinor::ZERO; 2 * n];
        schur.apply_block_full(&mut f, &u);
        let (u_e, u_o) = u.split_at(n);
        let (f_e, f_o) = f.split_at(n);

        // D~ee u_e must equal f~e.
        let mut scratch = vec![Spinor::ZERO; 2 * n];
        let mut schur_ue = vec![Spinor::ZERO; n];
        schur.apply_schur(&mut schur_ue, u_e, &mut scratch);
        let mut rhs = vec![Spinor::ZERO; n];
        schur.prepare_rhs(&mut rhs, f_e, f_o, &mut scratch);
        for cb in 0..n {
            let d = schur_ue[cb].sub(rhs[cb]);
            assert!(d.norm_sqr() < 1e-18, "cb {cb}: {}", d.norm_sqr());
        }

        // Odd reconstruction from the even solution.
        let mut u_o_rec = vec![Spinor::ZERO; n];
        schur.reconstruct_odd(&mut u_o_rec, u_e, f_o);
        for cb in 0..n {
            let d = u_o_rec[cb].sub(u_o[cb]);
            assert!(d.norm_sqr() < 1e-18, "cb {cb}: {}", d.norm_sqr());
        }
    }

    #[test]
    fn diag_inv_is_inverse() {
        let (op, grid) = setup();
        let fields = DomainFields::new(&op).unwrap();
        let schur = SchurOperator::new(&op, &fields, grid.domain(0));
        let n = schur.cb_len();
        let mut rng = Rng64::new(34);
        let v: Vec<Spinor<f64>> = (0..n).map(|_| Spinor::random(&mut rng)).collect();
        let mut dv = vec![Spinor::ZERO; n];
        schur.apply_diag(&mut dv, &v, Parity::Odd);
        let mut back = vec![Spinor::ZERO; n];
        schur.apply_diag_inv(&mut back, &dv, Parity::Odd);
        for cb in 0..n {
            let d = back[cb].sub(v[cb]);
            assert!(d.norm_sqr() < 1e-18);
        }
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let (op, grid) = setup();
        let fields = DomainFields::new(&op).unwrap();
        let schur = SchurOperator::new(&op, &fields, grid.domain(2));
        let mut rng = Rng64::new(35);
        let base = SpinorField::<f64>::random(*op.dims(), &mut rng);
        let v_e = schur.gather_cb(&base, Parity::Even);
        let mut acc = SpinorField::zeros(*op.dims());
        schur.scatter_add_cb(&mut acc, &v_e, Parity::Even);
        let back = schur.gather_cb(&acc, Parity::Even);
        for (a, b) in back.iter().zip(&v_e) {
            assert!(a.sub(*b).norm_sqr() < 1e-24);
        }
        // Everything outside the domain (or odd within) stayed zero.
        let total: f64 = acc.norm_sqr();
        let gathered: f64 = v_e.iter().map(|s| s.norm_sqr()).sum();
        assert!((total - gathered).abs() < 1e-12 * total.max(1.0));
    }

    #[test]
    fn hop_has_zero_dirichlet_boundary() {
        // A vector supported on a single corner site of the block only
        // spreads to its in-block neighbors.
        let (op, grid) = setup();
        let fields = DomainFields::new(&op).unwrap();
        let schur = SchurOperator::new(&op, &fields, grid.domain(0));
        let n = schur.cb_len();
        let bidx = SiteIndexer::new(grid.domain(0).dims);
        // Corner (0,0,0,0) is even.
        let (p, corner_cb) = bidx.cb_index(&Coord::new(0, 0, 0, 0));
        assert_eq!(p, Parity::Even);
        let mut v = vec![Spinor::<f64>::ZERO; n];
        let mut rng = Rng64::new(36);
        v[corner_cb] = Spinor::random(&mut rng);
        let mut out = vec![Spinor::ZERO; n];
        schur.hop(&mut out, &v, Parity::Even);
        // Non-zero only on the in-block forward neighbors of the corner.
        let mut nonzero = 0;
        for (cb, s) in out.iter().enumerate() {
            if s.norm_sqr() > 1e-20 {
                nonzero += 1;
                let c = bidx.cb_coord(Parity::Odd, cb);
                let dist: usize = c.0.iter().sum();
                assert_eq!(dist, 1, "unexpected spread to {c:?}");
            }
        }
        assert_eq!(nonzero, 4); // +x, +y, +z, +t neighbors only
    }
}
