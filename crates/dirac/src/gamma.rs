//! Dirac spin algebra in the DeGrand-Rossi (chiral) basis.
//!
//! The Wilson hopping term applies `(1 -+ gamma_mu)` before the color
//! multiply. These projectors have rank 2: the lower two spin components
//! of the projected spinor are fixed multiples of the upper two, so only a
//! 12-real-component *half-spinor* needs the SU(3) multiply (paper
//! Sec. II-B). The multiplier is always one of `{+-1, +-i}`, which is what
//! makes the trick cheap.
//!
//! Rather than hard-coding the projection coefficient tables (an endless
//! source of sign bugs), they are *derived* from the gamma matrices at
//! construction and cross-validated against full 4x4 spin-matrix
//! application in the tests.

use qdd_field::spinor::{HalfSpinor, Spinor};
use qdd_field::su3::C3;
use qdd_util::complex::{Complex, Real, C64};

/// A 4x4 complex spin matrix (f64 master precision).
pub type SpinMat = [[C64; 4]; 4];

/// One gamma matrix with its derived projection data.
#[derive(Clone, Debug)]
pub struct Gamma {
    /// The full 4x4 matrix.
    pub mat: SpinMat,
    /// For projection rows s = 0, 1 of `(1 + sign*gamma)`: the source spin
    /// (in {2, 3}) and coefficient for the gamma part, per sign
    /// (`[0]` = minus, `[1]` = plus).
    proj_src: [usize; 2],
    proj_coef: [[C64; 2]; 2],
    /// For reconstruction rows s = 2, 3: the source half-spinor component
    /// (in {0, 1}) and coefficient, per sign.
    recon_src: [usize; 2],
    recon_coef: [[C64; 2]; 2],
}

fn c(re: f64, im: f64) -> C64 {
    Complex::new(re, im)
}

impl Gamma {
    /// Build from a full matrix with the "one entry per row, unit modulus"
    /// structure of the standard bases.
    fn derive(mat: SpinMat) -> Gamma {
        let mut proj_src = [0usize; 2];
        let mut recon_src = [0usize; 2];
        let mut proj_coef = [[C64::ZERO; 2]; 2];
        let mut recon_coef = [[C64::ZERO; 2]; 2];

        for s in 0..2 {
            // Row s of gamma must have exactly one nonzero entry, in
            // columns 2..4.
            let nz: Vec<usize> = (0..4).filter(|&j| mat[s][j].abs() > 1e-14).collect();
            assert_eq!(nz.len(), 1, "gamma row {s} structure unsupported");
            let j = nz[0];
            assert!(j >= 2, "gamma must be block-off-diagonal in the chiral basis");
            proj_src[s] = j;
            for (k, sign) in [(-1.0), 1.0].iter().enumerate() {
                proj_coef[s][k] = mat[s][j].scale(*sign);
            }
        }
        for s in 2..4 {
            let nz: Vec<usize> = (0..4).filter(|&j| mat[s][j].abs() > 1e-14).collect();
            assert_eq!(nz.len(), 1, "gamma row {s} structure unsupported");
            let j = nz[0];
            assert!(j < 2);
            recon_src[s - 2] = j;
            for (k, sign) in [(-1.0), 1.0].iter().enumerate() {
                recon_coef[s - 2][k] = mat[s][j].scale(*sign);
            }
        }
        Gamma { mat, proj_src, proj_coef, recon_src, recon_coef }
    }

    /// Project: upper two spin rows of `(1 + sign*gamma) psi`.
    ///
    /// `sign = false` means `(1 - gamma)` (forward hop), `sign = true`
    /// means `(1 + gamma)` (backward hop).
    #[inline]
    pub fn project<T: Real>(&self, plus: bool, psi: &Spinor<T>) -> HalfSpinor<T> {
        let k = plus as usize;
        let mut h = HalfSpinor::ZERO;
        for s in 0..2 {
            let coef: Complex<T> = self.proj_coef[s][k].cast();
            let src = psi.0[self.proj_src[s]];
            h.0[s] = psi.0[s].add(mul_unit(src, coef));
        }
        h
    }

    /// Reconstruct the full 4-spinor `(1 + sign*gamma) psi` from the
    /// projected half-spinor (after the color multiply).
    #[inline]
    pub fn reconstruct<T: Real>(&self, plus: bool, h: &HalfSpinor<T>) -> Spinor<T> {
        let k = plus as usize;
        let mut out = Spinor::ZERO;
        out.0[0] = h.0[0];
        out.0[1] = h.0[1];
        for s in 0..2 {
            let coef: Complex<T> = self.recon_coef[s][k].cast();
            out.0[2 + s] = mul_unit(h.0[self.recon_src[s]], coef);
        }
        out
    }

    /// Accumulate the reconstruction onto an existing spinor.
    #[inline]
    pub fn reconstruct_add<T: Real>(&self, plus: bool, h: &HalfSpinor<T>, acc: &mut Spinor<T>) {
        let k = plus as usize;
        acc.0[0] = acc.0[0].add(h.0[0]);
        acc.0[1] = acc.0[1].add(h.0[1]);
        for s in 0..2 {
            let coef: Complex<T> = self.recon_coef[s][k].cast();
            acc.0[2 + s] = acc.0[2 + s].add(mul_unit(h.0[self.recon_src[s]], coef));
        }
    }

    /// The projection rule for spin rows 0 and 1 of `(1 + sign*gamma)`:
    /// `h_s = psi_s + coef_s * psi_{src_s}`. Coefficients are unit-modulus
    /// (`+-1` or `+-i`). Used by the site-fused kernels.
    pub fn proj_rule(&self, plus: bool) -> [(usize, C64); 2] {
        let k = plus as usize;
        [(self.proj_src[0], self.proj_coef[0][k]), (self.proj_src[1], self.proj_coef[1][k])]
    }

    /// The reconstruction rule for spin rows 2 and 3:
    /// `psi_{2+s} = coef_s * h_{src_s}`.
    pub fn recon_rule(&self, plus: bool) -> [(usize, C64); 2] {
        let k = plus as usize;
        [(self.recon_src[0], self.recon_coef[0][k]), (self.recon_src[1], self.recon_coef[1][k])]
    }

    /// Apply the full matrix `(1 + sign*gamma)` naively (reference path).
    pub fn apply_projector_full<T: Real>(&self, plus: bool, psi: &Spinor<T>) -> Spinor<T> {
        let sign = if plus { 1.0 } else { -1.0 };
        let mut out = *psi;
        for s in 0..4 {
            for sp in 0..4 {
                let g: Complex<T> = self.mat[s][sp].scale(sign).cast();
                out.0[s] = out.0[s].add(psi.0[sp].cmul(g));
            }
        }
        out
    }
}

/// Multiply a color vector by a unit-modulus complex coefficient, using the
/// cheap paths for `+-1` and `+-i`.
#[inline(always)]
fn mul_unit<T: Real>(v: C3<T>, coef: Complex<T>) -> C3<T> {
    let re = coef.re.to_f64();
    let im = coef.im.to_f64();
    if im == 0.0 {
        if re == 1.0 {
            v
        } else if re == -1.0 {
            v.neg()
        } else {
            v.scale(coef.re)
        }
    } else if re == 0.0 {
        if im == 1.0 {
            v.mul_i()
        } else if im == -1.0 {
            v.mul_neg_i()
        } else {
            v.cmul(coef)
        }
    } else {
        v.cmul(coef)
    }
}

/// The four gamma matrices, gamma5, and the sigma tensor.
#[derive(Clone, Debug)]
pub struct GammaBasis {
    pub gamma: [Gamma; 4],
    /// `gamma5 = gamma_x gamma_y gamma_z gamma_t`, diagonal in this basis.
    pub gamma5: SpinMat,
    /// `sigma[mu][nu] = (i/2) [gamma_mu, gamma_nu]`.
    pub sigma: [[SpinMat; 4]; 4],
}

fn mat_mul(a: &SpinMat, b: &SpinMat) -> SpinMat {
    let mut out = [[C64::ZERO; 4]; 4];
    for i in 0..4 {
        for k in 0..4 {
            let v = a[i][k];
            if v.abs() == 0.0 {
                continue;
            }
            for j in 0..4 {
                out[i][j] = out[i][j].add_mul(v, b[k][j]);
            }
        }
    }
    out
}

fn mat_sub(a: &SpinMat, b: &SpinMat) -> SpinMat {
    let mut out = *a;
    for i in 0..4 {
        for j in 0..4 {
            out[i][j] -= b[i][j];
        }
    }
    out
}

fn mat_scale(a: &SpinMat, s: C64) -> SpinMat {
    let mut out = *a;
    for row in out.iter_mut() {
        for z in row.iter_mut() {
            *z *= s;
        }
    }
    out
}

impl GammaBasis {
    /// The DeGrand-Rossi basis used throughout this crate.
    pub fn degrand_rossi() -> GammaBasis {
        let z = c(0.0, 0.0);
        let i = c(0.0, 1.0);
        let ni = c(0.0, -1.0);
        let o = c(1.0, 0.0);
        let no = c(-1.0, 0.0);

        let gx: SpinMat = [[z, z, z, i], [z, z, i, z], [z, ni, z, z], [ni, z, z, z]];
        let gy: SpinMat = [[z, z, z, no], [z, z, o, z], [z, o, z, z], [no, z, z, z]];
        let gz: SpinMat = [[z, z, i, z], [z, z, z, ni], [ni, z, z, z], [z, i, z, z]];
        let gt: SpinMat = [[z, z, o, z], [z, z, z, o], [o, z, z, z], [z, o, z, z]];

        let gamma = [Gamma::derive(gx), Gamma::derive(gy), Gamma::derive(gz), Gamma::derive(gt)];

        let gamma5 =
            mat_mul(&mat_mul(&gamma[0].mat, &gamma[1].mat), &mat_mul(&gamma[2].mat, &gamma[3].mat));

        let mut sigma = [[[[C64::ZERO; 4]; 4]; 4]; 4];
        for mu in 0..4 {
            for nu in 0..4 {
                let comm = mat_sub(
                    &mat_mul(&gamma[mu].mat, &gamma[nu].mat),
                    &mat_mul(&gamma[nu].mat, &gamma[mu].mat),
                );
                sigma[mu][nu] = mat_scale(&comm, c(0.0, 0.5));
            }
        }
        GammaBasis { gamma, gamma5, sigma }
    }

    /// Apply `gamma5` to a spinor (diagonal +-1 in the chiral basis).
    pub fn apply_gamma5<T: Real>(&self, psi: &Spinor<T>) -> Spinor<T> {
        let mut out = Spinor::ZERO;
        for s in 0..4 {
            let d: Complex<T> = self.gamma5[s][s].cast();
            out.0[s] = psi.0[s].cmul(d);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdd_util::rng::Rng64;

    fn basis() -> GammaBasis {
        GammaBasis::degrand_rossi()
    }

    fn mat_identity() -> SpinMat {
        let mut m = [[C64::ZERO; 4]; 4];
        for i in 0..4 {
            m[i][i] = C64::ONE;
        }
        m
    }

    fn mat_max_diff(a: &SpinMat, b: &SpinMat) -> f64 {
        let mut e = 0.0f64;
        for i in 0..4 {
            for j in 0..4 {
                e = e.max((a[i][j] - b[i][j]).abs());
            }
        }
        e
    }

    #[test]
    fn clifford_algebra() {
        let b = basis();
        for mu in 0..4 {
            for nu in 0..4 {
                let anti = {
                    let ab = mat_mul(&b.gamma[mu].mat, &b.gamma[nu].mat);
                    let ba = mat_mul(&b.gamma[nu].mat, &b.gamma[mu].mat);
                    let mut s = ab;
                    for i in 0..4 {
                        for j in 0..4 {
                            s[i][j] += ba[i][j];
                        }
                    }
                    s
                };
                let expect = if mu == nu {
                    mat_scale(&mat_identity(), c(2.0, 0.0))
                } else {
                    [[C64::ZERO; 4]; 4]
                };
                assert!(mat_max_diff(&anti, &expect) < 1e-14, "mu={mu} nu={nu}");
            }
        }
    }

    #[test]
    fn gammas_are_hermitian() {
        let b = basis();
        for g in &b.gamma {
            for i in 0..4 {
                for j in 0..4 {
                    assert!((g.mat[i][j] - g.mat[j][i].conj()).abs() < 1e-15);
                }
            }
        }
    }

    #[test]
    fn gamma5_is_diagonal_chiral() {
        let b = basis();
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert!(b.gamma5[i][j].abs() < 1e-14);
                } else {
                    assert!((b.gamma5[i][j].abs() - 1.0).abs() < 1e-14);
                    assert!(b.gamma5[i][j].im.abs() < 1e-14);
                }
            }
        }
        // Chirality: upper block and lower block have opposite signs.
        assert!((b.gamma5[0][0] - b.gamma5[1][1]).abs() < 1e-14);
        assert!((b.gamma5[2][2] - b.gamma5[3][3]).abs() < 1e-14);
        assert!((b.gamma5[0][0] + b.gamma5[2][2]).abs() < 1e-14);
    }

    #[test]
    fn gamma5_anticommutes_with_gammas() {
        let b = basis();
        for mu in 0..4 {
            let g5g = mat_mul(&b.gamma5, &b.gamma[mu].mat);
            let gg5 = mat_mul(&b.gamma[mu].mat, &b.gamma5);
            let mut sum = g5g;
            for i in 0..4 {
                for j in 0..4 {
                    sum[i][j] += gg5[i][j];
                }
            }
            assert!(mat_max_diff(&sum, &[[C64::ZERO; 4]; 4]) < 1e-14, "mu={mu}");
        }
    }

    #[test]
    fn sigma_is_hermitian_and_chiral_block_diagonal() {
        let b = basis();
        for mu in 0..4 {
            for nu in 0..4 {
                let s = &b.sigma[mu][nu];
                for i in 0..4 {
                    for j in 0..4 {
                        assert!((s[i][j] - s[j][i].conj()).abs() < 1e-14);
                    }
                }
                // sigma commutes with gamma5 -> no mixing between the
                // (0,1) and (2,3) chirality blocks.
                for i in 0..2 {
                    for j in 2..4 {
                        assert!(s[i][j].abs() < 1e-14, "mu={mu} nu={nu}");
                        assert!(s[j][i].abs() < 1e-14);
                    }
                }
            }
        }
    }

    #[test]
    fn projection_matches_full_matrix() {
        let b = basis();
        let mut rng = Rng64::new(42);
        for _ in 0..20 {
            let psi = Spinor::<f64>::random(&mut rng);
            for mu in 0..4 {
                for plus in [false, true] {
                    let full = b.gamma[mu].apply_projector_full(plus, &psi);
                    let h = b.gamma[mu].project(plus, &psi);
                    let rec = b.gamma[mu].reconstruct(plus, &h);
                    let d = full.sub(rec);
                    assert!(d.norm_sqr() < 1e-24, "mu={mu} plus={plus} err={}", d.norm_sqr());
                }
            }
        }
    }

    #[test]
    fn projector_is_projection_times_two() {
        // P^2 = 2P for P = 1 +- gamma.
        let b = basis();
        let mut rng = Rng64::new(43);
        let psi = Spinor::<f64>::random(&mut rng);
        for mu in 0..4 {
            for plus in [false, true] {
                let once = b.gamma[mu].apply_projector_full(plus, &psi);
                let twice = b.gamma[mu].apply_projector_full(plus, &once);
                let d = twice.sub(once.scale(2.0));
                assert!(d.norm_sqr() < 1e-22);
            }
        }
    }

    #[test]
    fn plus_and_minus_projectors_sum_to_identity() {
        let b = basis();
        let mut rng = Rng64::new(44);
        let psi = Spinor::<f64>::random(&mut rng);
        for mu in 0..4 {
            let plus = b.gamma[mu].apply_projector_full(true, &psi);
            let minus = b.gamma[mu].apply_projector_full(false, &psi);
            let d = plus.add(minus).sub(psi.scale(2.0));
            assert!(d.norm_sqr() < 1e-22);
        }
    }

    #[test]
    fn reconstruct_add_accumulates() {
        let b = basis();
        let mut rng = Rng64::new(45);
        let psi = Spinor::<f64>::random(&mut rng);
        let h = b.gamma[2].project(true, &psi);
        let mut acc = psi;
        b.gamma[2].reconstruct_add(true, &h, &mut acc);
        let expect = psi.add(b.gamma[2].reconstruct(true, &h));
        assert!(acc.sub(expect).norm_sqr() < 1e-24);
    }

    #[test]
    fn gamma5_application() {
        let b = basis();
        let mut rng = Rng64::new(46);
        let psi = Spinor::<f64>::random(&mut rng);
        let g5psi = b.apply_gamma5(&psi);
        let back = b.apply_gamma5(&g5psi);
        assert!(back.sub(psi).norm_sqr() < 1e-24); // gamma5^2 = 1
    }
}
