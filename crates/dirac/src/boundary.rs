//! Spin-projected halo packing (what crosses rank boundaries).
//!
//! Only half-spinors travel (paper Fig. 3). For the *forward* hop of a
//! receiving site, the sender projects its backward-face spinors with
//! `(1 - gamma_mu)`; the receiver applies its own link. For the *backward*
//! hop, the link belongs to the sender, so the sender ships the fully
//! prepared `U^dag_mu (1 + gamma_mu) psi`. Global-boundary fermion phases
//! are applied at pack time (the receiver cannot know whether the message
//! wrapped).

use crate::wilson::WilsonClover;
use qdd_field::fields::SpinorField;
use qdd_field::halo::{face_index, FaceBuffer, HaloData};
use qdd_field::spinor::HalfSpinor;
use qdd_lattice::{Dir, SiteIndexer};
use qdd_util::complex::Real;

/// Pack the face a *forward* neighbor needs for its sites' forward hops:
/// our backward face (coord = 0 in `dir`), projected with `(1 - gamma)`.
///
/// `sign` is the fermion boundary phase to fold in (`1.0` when the message
/// does not cross the global boundary).
pub fn pack_for_forward_hop<T: Real>(
    op: &WilsonClover<T>,
    inp: &SpinorField<T>,
    dir: Dir,
    sign: f64,
) -> FaceBuffer<T> {
    let dims = *op.dims();
    let idx = SiteIndexer::new(dims);
    let gamma = &op.basis().gamma[dir.index()];
    let mut buf = FaceBuffer::zeros(dims.face_area(dir));
    let s = T::from_f64(sign);
    for c in idx.iter().filter(|c| c[dir] == 0) {
        let h = gamma.project(false, inp.site(idx.index(&c)));
        buf.data[face_index(&dims, dir, &c)] = h.scale(s);
    }
    buf
}

/// Pack the face a *backward* neighbor needs for its sites' backward hops:
/// our forward face (coord = L-1), projected with `(1 + gamma)` and
/// multiplied by the adjoint link (which lives on our side).
pub fn pack_for_backward_hop<T: Real>(
    op: &WilsonClover<T>,
    inp: &SpinorField<T>,
    dir: Dir,
    sign: f64,
) -> FaceBuffer<T> {
    let dims = *op.dims();
    let idx = SiteIndexer::new(dims);
    let gamma = &op.basis().gamma[dir.index()];
    let mut buf = FaceBuffer::zeros(dims.face_area(dir));
    let s = T::from_f64(sign);
    for c in idx.iter().filter(|c| c[dir] == dims[dir] - 1) {
        let site = idx.index(&c);
        let h = gamma.project(true, inp.site(site));
        let u = op.gauge().link(site, dir);
        let h = HalfSpinor([u.adj_mul_vec(h.0[0]), u.adj_mul_vec(h.0[1])]).scale(s);
        buf.data[face_index(&dims, dir, &c)] = h;
    }
    buf
}

/// Pack only the listed backward-face sites for a forward hop, reading
/// the input through `fetch` (the distributed Schwarz sweep reads the
/// shared iterate through a raw pointer). Output order follows `sites`.
///
/// This is the masked-pack primitive: callers with a color- (or half-)
/// masked face pass the precomputed site list and pay exactly one
/// projection per shipped half-spinor — no full-face buffer, no filter
/// pass. Values are bitwise identical to
/// [`pack_for_forward_hop`]-then-filter.
pub fn pack_sites_for_forward_hop_with<T: Real, F: Fn(usize) -> qdd_field::spinor::Spinor<T>>(
    op: &WilsonClover<T>,
    fetch: F,
    dir: Dir,
    sign: f64,
    sites: &[usize],
) -> Vec<HalfSpinor<T>> {
    let gamma = &op.basis().gamma[dir.index()];
    let s = T::from_f64(sign);
    sites.iter().map(|&site| gamma.project(false, &fetch(site)).scale(s)).collect()
}

/// [`pack_sites_for_forward_hop_with`] reading a field directly.
pub fn pack_sites_for_forward_hop<T: Real>(
    op: &WilsonClover<T>,
    inp: &SpinorField<T>,
    dir: Dir,
    sign: f64,
    sites: &[usize],
) -> Vec<HalfSpinor<T>> {
    pack_sites_for_forward_hop_with(op, |i| *inp.site(i), dir, sign, sites)
}

/// Pack only the listed forward-face sites for a backward hop (link
/// applied on our side), reading the input through `fetch`. Output order
/// follows `sites`. Bitwise identical to
/// [`pack_for_backward_hop`]-then-filter.
pub fn pack_sites_for_backward_hop_with<T: Real, F: Fn(usize) -> qdd_field::spinor::Spinor<T>>(
    op: &WilsonClover<T>,
    fetch: F,
    dir: Dir,
    sign: f64,
    sites: &[usize],
) -> Vec<HalfSpinor<T>> {
    let gamma = &op.basis().gamma[dir.index()];
    let s = T::from_f64(sign);
    sites
        .iter()
        .map(|&site| {
            let h = gamma.project(true, &fetch(site));
            let u = op.gauge().link(site, dir);
            HalfSpinor([u.adj_mul_vec(h.0[0]), u.adj_mul_vec(h.0[1])]).scale(s)
        })
        .collect()
}

/// [`pack_sites_for_backward_hop_with`] reading a field directly.
pub fn pack_sites_for_backward_hop<T: Real>(
    op: &WilsonClover<T>,
    inp: &SpinorField<T>,
    dir: Dir,
    sign: f64,
    sites: &[usize],
) -> Vec<HalfSpinor<T>> {
    pack_sites_for_backward_hop_with(op, |i| *inp.site(i), dir, sign, sites)
}

/// Build the halo of a single periodic rank from its own field (the
/// single-node case, and the reference for multi-rank tests). Hops through
/// any face wrap the global lattice, so every face carries the phase.
pub fn self_halo<T: Real>(op: &WilsonClover<T>, inp: &SpinorField<T>) -> HaloData<T> {
    let dims = *op.dims();
    let mut halo = HaloData::zeros(dims);
    for dir in Dir::ALL {
        let sign = op.phases().of(dir);
        // Our forward-face sites hop forward into the neighbor's backward
        // face — which, on a single rank, is our own backward face.
        *halo.face_mut(dir, true) = pack_for_forward_hop(op, inp, dir, sign);
        *halo.face_mut(dir, false) = pack_for_backward_hop(op, inp, dir, sign);
    }
    halo
}

/// Bytes sent per full halo exchange by one rank with this operator
/// (both orientations of every split direction).
pub fn halo_bytes_per_exchange<T: Real>(op: &WilsonClover<T>, split: [bool; 4]) -> usize {
    let dims = *op.dims();
    let per_site = HalfSpinor::<T>::REALS * std::mem::size_of::<T>();
    Dir::ALL.iter().filter(|d| split[d.index()]).map(|&d| 2 * dims.face_area(d) * per_site).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clover::build_clover_field;
    use crate::gamma::GammaBasis;
    use crate::wilson::BoundaryPhases;
    use qdd_field::fields::GaugeField;
    use qdd_lattice::Dims;
    use qdd_util::rng::Rng64;

    fn op(phases: BoundaryPhases) -> WilsonClover<f64> {
        let dims = Dims::new(4, 4, 4, 4);
        let mut rng = Rng64::new(77);
        let g = GaugeField::random(dims, &mut rng, 0.8);
        let basis = GammaBasis::degrand_rossi();
        let c = build_clover_field(&g, 1.5, &basis);
        WilsonClover::new(g, c, 0.1, phases)
    }

    #[test]
    fn self_halo_reproduces_periodic_apply_antiperiodic() {
        // The phase handling must agree between the direct apply (receiver
        // side) and the packed halo (sender side).
        let op = op(BoundaryPhases::antiperiodic_t());
        let dims = *op.dims();
        let mut rng = Rng64::new(78);
        let inp = SpinorField::<f64>::random(dims, &mut rng);
        let halo = self_halo(&op, &inp);
        let mut direct = SpinorField::zeros(dims);
        op.apply(&mut direct, &inp);
        let mut via_halo = SpinorField::zeros(dims);
        op.apply_with_halo(&mut via_halo, &inp, &halo);
        via_halo.sub_assign(&direct);
        assert!(via_halo.norm() < 1e-11 * direct.norm());
    }

    #[test]
    fn face_buffers_have_face_volume() {
        let op = op(BoundaryPhases::periodic());
        let mut rng = Rng64::new(79);
        let inp = SpinorField::<f64>::random(*op.dims(), &mut rng);
        for dir in Dir::ALL {
            let fwd = pack_for_forward_hop(&op, &inp, dir, 1.0);
            let bwd = pack_for_backward_hop(&op, &inp, dir, 1.0);
            assert_eq!(fwd.len(), op.dims().face_area(dir));
            assert_eq!(bwd.len(), op.dims().face_area(dir));
        }
    }

    #[test]
    fn sign_scales_buffers() {
        let op = op(BoundaryPhases::periodic());
        let mut rng = Rng64::new(80);
        let inp = SpinorField::<f64>::random(*op.dims(), &mut rng);
        let plus = pack_for_forward_hop(&op, &inp, Dir::T, 1.0);
        let minus = pack_for_forward_hop(&op, &inp, Dir::T, -1.0);
        for (a, b) in plus.data.iter().zip(&minus.data) {
            let sum = a.add(*b);
            assert!(sum.0[0].norm_sqr() + sum.0[1].norm_sqr() < 1e-24);
        }
    }

    #[test]
    fn masked_pack_matches_full_pack_filter_bitwise() {
        use qdd_field::halo::face_index;
        use qdd_lattice::SiteIndexer;
        let op = op(BoundaryPhases::antiperiodic_t());
        let dims = *op.dims();
        let idx = SiteIndexer::new(dims);
        let mut rng = Rng64::new(81);
        let inp = SpinorField::<f64>::random(dims, &mut rng);
        for dir in Dir::ALL {
            for (fixed, backward_face) in [(0usize, true), (dims[dir] - 1, false)] {
                // Every other face position, in face-index order — the
                // shape of a color mask.
                let mut pairs: Vec<(usize, usize)> = idx
                    .iter()
                    .filter(|c| c[dir] == fixed)
                    .map(|c| (face_index(&dims, dir, &c), idx.index(&c)))
                    .filter(|(k, _)| k % 2 == 0)
                    .collect();
                pairs.sort_unstable();
                let positions: Vec<usize> = pairs.iter().map(|p| p.0).collect();
                let sites: Vec<usize> = pairs.iter().map(|p| p.1).collect();
                let sign = -1.0;
                let (full, masked) = if backward_face {
                    (
                        pack_for_forward_hop(&op, &inp, dir, sign),
                        pack_sites_for_forward_hop(&op, &inp, dir, sign, &sites),
                    )
                } else {
                    (
                        pack_for_backward_hop(&op, &inp, dir, sign),
                        pack_sites_for_backward_hop(&op, &inp, dir, sign, &sites),
                    )
                };
                assert_eq!(masked.len(), positions.len());
                for (h, &k) in masked.iter().zip(&positions) {
                    for v in 0..2 {
                        for c in 0..3 {
                            assert_eq!(h.0[v].0[c].re, full.data[k].0[v].0[c].re);
                            assert_eq!(h.0[v].0[c].im, full.data[k].0[v].0[c].im);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn halo_byte_accounting() {
        let op = op(BoundaryPhases::periodic());
        // 4x4x4x4, split in z and t only: 2 * 64 * 96 bytes each dir (f64).
        let bytes = halo_bytes_per_exchange(&op, [false, false, true, true]);
        assert_eq!(bytes, 2 * (2 * 64 * 12 * 8));
    }
}
