//! The site-fused SIMD operator extended from Dirichlet domain interiors
//! (paper Sec. III-A, [`crate::fused`]) to the **full local lattice** with
//! wrapping boundaries and boundary phases, so the outer Krylov matvec
//! runs the same lane kernel as the Schwarz blocks.
//!
//! Key observations that make the full-lattice kernel mask-free:
//!
//! - An x/y hop that wraps lands on an `Internal` lane of the wrapped
//!   coordinate: the coordinate delta is odd either way, so the parity
//!   flip is identical and the permutation table simply encodes the
//!   wrapped source lane. No lanes are lost — unlike the Dirichlet block
//!   kernel's 2/16 (x) and 4/16 (y) masked lanes, the full-lattice hop
//!   runs at 100% SIMD efficiency. A per-lane sign vector is only needed
//!   when the boundary phase of that direction is not `+1`.
//! - A z/t hop that wraps lands on a whole tile: with even extents the
//!   wrapped tile's flavor equals the unwrapped neighbor relation (for
//!   even `bz`, `(0 + t) % 2 == (bz + t) % 2`), so lanes line up with
//!   zero shuffles and the boundary phase is a whole-tile scalar
//!   (anti-periodic time is `-1` on the wrapping hop only).
//!
//! Both require every lattice extent to be even; [`build_full_operator`]
//! returns `None` otherwise and callers keep the scalar path.

use crate::fused::{xy_idx, FusedClover, FusedGauge, FusedKernel, Half};
use crate::wilson::WilsonClover;
use qdd_field::fields::SpinorField;
use qdd_field::fused::{FusedField, FusedTile, VReal};
use qdd_field::spinor::Spinor;
use qdd_lattice::{Coord, Dims, Dir, Domain, DomainColor, Parity, SiteIndexer, TileLayout};
use qdd_util::complex::{Complex, Real};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a kernel spreads its tiles over workers. Implemented by the solver
/// layer's persistent worker pool; [`SerialRunner`] is the trivial
/// single-worker fallback. Implementations must invoke `job(w)` exactly
/// once for every `w in 0..workers()` and return only when all calls have
/// finished (fork/join semantics).
pub trait ParallelRunner: Sync {
    fn workers(&self) -> usize;
    fn run(&self, job: &(dyn Fn(usize) + Sync));
}

/// Runs every job inline on the calling thread.
pub struct SerialRunner;

impl ParallelRunner for SerialRunner {
    fn workers(&self) -> usize {
        1
    }

    fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        job(0);
    }
}

/// The lane-count-erased interface of the full-lattice fused operator:
/// `out = A inp` over the whole local lattice, threaded over tiles by a
/// [`ParallelRunner`]. The result is bitwise independent of the worker
/// count (tiles write disjoint sites and each tile's accumulation order
/// is fixed).
pub trait FullOperator<T: Real>: Send + Sync {
    fn dims(&self) -> Dims;
    /// SIMD lanes per tile (`nx * ny / 2`).
    fn lanes(&self) -> usize;
    fn apply(&self, out: &mut SpinorField<T>, inp: &SpinorField<T>, runner: &dyn ParallelRunner);
}

/// Build the fused full-lattice operator for `op`, dispatching on the
/// xy-cross-section lane count. Returns `None` when an extent is odd or
/// the lane count has no compiled kernel; callers then keep the scalar
/// [`WilsonClover::apply`] path.
pub fn build_full_operator<T: Real>(op: &WilsonClover<T>) -> Option<Box<dyn FullOperator<T>>> {
    let dims = *op.dims();
    if dims.0.iter().any(|&e| e % 2 != 0) {
        return None;
    }
    let lanes = dims.0[0] * dims.0[1] / 2;
    Some(match lanes {
        2 => Box::new(FusedFullOperator::<T, 2>::new(op)),
        4 => Box::new(FusedFullOperator::<T, 4>::new(op)),
        8 => Box::new(FusedFullOperator::<T, 8>::new(op)),
        16 => Box::new(FusedFullOperator::<T, 16>::new(op)),
        32 => Box::new(FusedFullOperator::<T, 32>::new(op)),
        64 => Box::new(FusedFullOperator::<T, 64>::new(op)),
        128 => Box::new(FusedFullOperator::<T, 128>::new(op)),
        _ => return None,
    })
}

/// Lane permutation for one (flavor, dest-parity, x/y dir, orientation)
/// on the full lattice: every lane is internal; `sign` carries per-lane
/// boundary phases and is only present when the phase is not `+1`.
struct WrapPattern<T: Real, const N: usize> {
    table: [usize; N],
    sign: Option<VReal<T, N>>,
}

/// A raw window onto the output sites / scratch tiles that workers write
/// disjointly (each tile owns its sites). Private sibling of the solver
/// layer's shared-slice helpers; the tile partition guarantees
/// disjointness.
struct SharedMut<V> {
    ptr: *mut V,
    len: usize,
}

unsafe impl<V: Send> Send for SharedMut<V> {}
unsafe impl<V: Send> Sync for SharedMut<V> {}

impl<V> SharedMut<V> {
    fn new(data: &mut [V]) -> Self {
        Self { ptr: data.as_mut_ptr(), len: data.len() }
    }

    /// # Safety
    /// `idx` in bounds and owned by the calling worker for the job.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    unsafe fn get_mut(&self, idx: usize) -> &mut V {
        debug_assert!(idx < self.len);
        unsafe { &mut *self.ptr.add(idx) }
    }
}

/// The contiguous range of tiles worker `w` of `workers` owns.
#[inline]
fn tile_range(n: usize, workers: usize, w: usize) -> std::ops::Range<usize> {
    let rounds = if n == 0 { 0 } else { n.div_ceil(workers) };
    (w * rounds).min(n)..((w + 1) * rounds).min(n)
}

/// Sense-reversing barrier separating the gather and compute phases
/// *inside* one pool job, so an apply costs a single dispatch instead of
/// two. Yields while waiting — workers may be oversubscribed on few cores.
struct JobBarrier {
    arrived: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
}

impl JobBarrier {
    fn new(total: usize) -> Self {
        Self { arrived: AtomicUsize::new(0), generation: AtomicUsize::new(0), total }
    }

    fn wait(&self) {
        if self.total == 1 {
            return;
        }
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.store(gen + 1, Ordering::Release);
        } else {
            while self.generation.load(Ordering::Acquire) == gen {
                std::thread::yield_now();
            }
        }
    }
}

/// The fused Wilson-Clover operator over the full local lattice for one
/// compiled lane count `N`.
pub struct FusedFullOperator<T: Real, const N: usize> {
    dims: Dims,
    layout: TileLayout,
    kernel: FusedKernel<T, N>,
    gauge: FusedGauge<T, N>,
    clover: FusedClover<T, N>,
    /// `[flavor][dest parity][dir(x,y)][fwd]` wrap-aware lane tables.
    xy: Vec<WrapPattern<T, N>>,
    /// Whole-tile boundary phase applied to wrapping z/t hops, if not +1.
    zt_phase: [Option<T>; 4],
    /// `[parity][tile * N + lane] -> lattice site`, precomputed so
    /// gather/scatter never pays per-site coordinate arithmetic.
    site_map: [Vec<u32>; 2],
    /// Gathered input in fused layout, reused across applications.
    scratch: Mutex<FusedField<T, N>>,
}

impl<T: Real, const N: usize> FusedFullOperator<T, N> {
    pub fn new(op: &WilsonClover<T>) -> Self {
        let dims = *op.dims();
        assert!(dims.0.iter().all(|&e| e % 2 == 0), "full fused operator needs even extents");
        let layout = TileLayout::new(dims);
        assert_eq!(layout.lanes(), N, "lane count mismatch");
        // Gauge/clover gathers and the kernel treat the whole lattice as
        // one block at the origin.
        let whole = Domain {
            index: 0,
            grid_coord: Coord([0; 4]),
            origin: Coord([0; 4]),
            dims,
            color: DomainColor::Black,
        };
        let kernel = FusedKernel::new(dims);
        let gauge = FusedGauge::gather(op, &whole);
        let clover = FusedClover::gather(op, &whole);

        let (nx, ny) = (dims[Dir::X], dims[Dir::Y]);
        let mut xy = Vec::with_capacity(16);
        for flavor in 0..2 {
            for to in [Parity::Even, Parity::Odd] {
                for dir in [Dir::X, Dir::Y] {
                    for fwd in [false, true] {
                        let phase = op.phases().of(dir);
                        let mut table = [0usize; N];
                        let mut sign = [1.0f64; N];
                        let mut any_wrap = false;
                        for (l, entry) in table.iter_mut().enumerate() {
                            let (x, y) = layout.lane_site(flavor, to, l);
                            let (c, extent) = match dir {
                                Dir::X => (x, nx),
                                _ => (y, ny),
                            };
                            let (nc, wrapped) = if fwd {
                                if c + 1 == extent {
                                    (0, true)
                                } else {
                                    (c + 1, false)
                                }
                            } else if c == 0 {
                                (extent - 1, true)
                            } else {
                                (c - 1, false)
                            };
                            let (sx, sy) = match dir {
                                Dir::X => (nc, y),
                                _ => (x, nc),
                            };
                            let (p2, src) = layout.site_lane(flavor, sx, sy);
                            debug_assert_eq!(p2, to.flip(), "xy wrap must flip parity");
                            *entry = src;
                            if wrapped {
                                any_wrap = true;
                                sign[l] = phase;
                            }
                        }
                        let sign = (any_wrap && phase != 1.0)
                            .then(|| VReal::from_fn(|l| T::from_f64(sign[l])));
                        xy.push(WrapPattern { table, sign });
                    }
                }
            }
        }

        let zt_phase = [Dir::X, Dir::Y, Dir::Z, Dir::T].map(|d| {
            let p = op.phases().of(d);
            (p != 1.0).then(|| T::from_f64(p))
        });

        let idx = SiteIndexer::new(dims);
        let tiles = layout.tiles_per_parity();
        let mut site_map = [vec![0u32; tiles * N], vec![0u32; tiles * N]];
        for p in [Parity::Even, Parity::Odd] {
            for tile in 0..tiles {
                for lane in 0..N {
                    let c = layout.coord(p, tile, lane);
                    site_map[p.index()][tile * N + lane] = idx.index(&c) as u32;
                }
            }
        }

        let scratch = Mutex::new(FusedField::zeros(dims));
        Self { dims, layout, kernel, gauge, clover, xy, zt_phase, site_map, scratch }
    }

    /// Gather the AOS input sites of one tile into fused layout: one
    /// sequential pass over the tile's sites (the map is stride-2 in x, so
    /// reads stay in consecutive cache lines), transposing each site's 24
    /// reals into the component vectors. `site_map` entries are lattice
    /// sites by construction, so the unchecked reads are in bounds.
    #[inline]
    fn gather_tile(&self, src: &[Spinor<T>], dst: &mut FusedTile<T, N>, p: Parity, tile: usize) {
        let map = &self.site_map[p.index()][tile * N..(tile + 1) * N];
        debug_assert!(map.iter().all(|&s| (s as usize) < src.len()));
        for (l, &site) in map.iter().enumerate() {
            let s = unsafe { src.get_unchecked(site as usize) };
            for k in 0..12 {
                let z = s.component(k);
                dst[2 * k].0[l] = z.re;
                dst[2 * k + 1].0[l] = z.im;
            }
        }
    }

    /// Scatter one computed tile back to the AOS output sites.
    ///
    /// # Safety
    /// The tile must be owned by the calling worker (tiles partition the
    /// site set, so the per-tile partition guarantees this).
    #[inline]
    unsafe fn scatter_tile(
        &self,
        acc: &FusedTile<T, N>,
        out: &SharedMut<Spinor<T>>,
        p: Parity,
        tile: usize,
    ) {
        let map = &self.site_map[p.index()][tile * N..(tile + 1) * N];
        for (l, &site) in map.iter().enumerate() {
            let s = unsafe { out.get_mut(site as usize) };
            for k in 0..12 {
                s.set_component(k, Complex::new(acc[2 * k].0[l], acc[2 * k + 1].0[l]));
            }
        }
    }

    /// The clover + mass diagonal of one tile (per-tile sibling of
    /// [`FusedKernel::apply_diag`]).
    fn diag_tile(&self, src: &FusedTile<T, N>, p: Parity, tile: usize) -> FusedTile<T, N> {
        use qdd_field::clover::LOWER_PAIRS;
        let mut dst: FusedTile<T, N> = [VReal::ZERO; 24];
        for ch in 0..2 {
            let (diag, off) = &self.clover.data[p.index()][tile][ch];
            for i in 0..6 {
                let k = 6 * ch + i;
                dst[2 * k] = src[2 * k].mul(diag[i]);
                dst[2 * k + 1] = src[2 * k + 1].mul(diag[i]);
            }
            for (kk, &(i, j)) in LOWER_PAIRS.iter().enumerate() {
                let o_re = off[2 * kk];
                let o_im = off[2 * kk + 1];
                let gi = 6 * ch + i;
                let gj = 6 * ch + j;
                let (sj_re, sj_im) = (src[2 * gj], src[2 * gj + 1]);
                dst[2 * gi] = dst[2 * gi].fma(o_re, sj_re).fms(o_im, sj_im);
                dst[2 * gi + 1] = dst[2 * gi + 1].fma(o_re, sj_im).fma(o_im, sj_re);
                let (si_re, si_im) = (src[2 * gi], src[2 * gi + 1]);
                dst[2 * gj] = dst[2 * gj].fma(o_re, si_re).fma(o_im, si_im);
                dst[2 * gj + 1] = dst[2 * gj + 1].fma(o_re, si_im).fms(o_im, si_re);
            }
        }
        dst
    }

    /// One output tile of `A inp = (diag - 1/2 Dw) inp` with wrapping
    /// boundaries: diagonal plus all eight hops, in a fixed order.
    fn compute_tile(&self, inp: &FusedField<T, N>, tile: usize, to: Parity) -> FusedTile<T, N> {
        let from = to.flip();
        let flavor = self.layout.flavor(tile);
        let (tz, tt) = self.layout.tile_coords(tile);
        let (bz, bt) = (self.dims[Dir::Z], self.dims[Dir::T]);

        let mut acc = self.diag_tile(inp.tile(to, tile), to, tile);

        // x/y hops: in-register lane permutations within the same tile,
        // wrap included in the table — no masks, all lanes live. The
        // permutation is lane-wise-linear-commuting, so it runs *after*
        // the spin projection (12 vectors instead of 24) and, for the
        // backward hop, after the color multiply too — the link lives at
        // the source site, so projecting and multiplying in source lane
        // order then permuting the half-spinor result avoids permuting
        // the 18-vector gauge tile altogether.
        for (di, dir) in [Dir::X, Dir::Y].into_iter().enumerate() {
            for (fi, fwd) in [false, true].into_iter().enumerate() {
                let pat = &self.xy[xy_idx(flavor, to, di, fi)];
                if fwd {
                    // (1 - gamma) U(x) psi(x+mu)
                    let h = self.kernel.project(dir, false, inp.tile(from, tile));
                    let hp = permute_half(&h, &pat.table, pat.sign.as_ref());
                    self.kernel.su3_recon_acc(
                        dir,
                        false,
                        false,
                        self.gauge.tile(to, tile, dir),
                        &hp,
                        &mut acc,
                    );
                } else {
                    // (1 + gamma) U^dag(x-mu) psi(x-mu), in source order;
                    // the permutation (and boundary sign) is applied as
                    // `U^dag h` is consumed by the reconstruction.
                    let h = self.kernel.project(dir, true, inp.tile(from, tile));
                    let uh = FusedKernel::su3_adj_mul(self.gauge.tile(from, tile, dir), &h);
                    self.kernel.reconstruct_acc_permuted(
                        dir,
                        true,
                        &uh,
                        &pat.table,
                        pat.sign.as_ref(),
                        &mut acc,
                    );
                }
            }
        }

        // z/t hops: tile-to-tile with no shuffles; a wrapping hop picks
        // the opposite-edge tile and scales by the boundary phase.
        for (dir, coord, extent) in [(Dir::Z, tz, bz), (Dir::T, tt, bt)] {
            let phase = self.zt_phase[dir.index()];
            // Forward.
            let (nc, wrapped) = if coord + 1 == extent { (0, true) } else { (coord + 1, false) };
            let ntile = match dir {
                Dir::Z => self.layout.tile_of(nc, tt),
                _ => self.layout.tile_of(tz, nc),
            };
            let mut h = self.kernel.project(dir, false, inp.tile(from, ntile));
            if wrapped {
                if let Some(p) = phase {
                    scale_half(&mut h, p);
                }
            }
            self.kernel.su3_recon_acc(
                dir,
                false,
                false,
                self.gauge.tile(to, tile, dir),
                &h,
                &mut acc,
            );
            // Backward.
            let (pc, wrapped) = if coord == 0 { (extent - 1, true) } else { (coord - 1, false) };
            let ptile = match dir {
                Dir::Z => self.layout.tile_of(pc, tt),
                _ => self.layout.tile_of(tz, pc),
            };
            let mut h = self.kernel.project(dir, true, inp.tile(from, ptile));
            if wrapped {
                if let Some(p) = phase {
                    scale_half(&mut h, p);
                }
            }
            self.kernel.su3_recon_acc(
                dir,
                true,
                true,
                self.gauge.tile(from, ptile, dir),
                &h,
                &mut acc,
            );
        }

        acc
    }
}

/// Permute a half-spinor into destination lane order, applying per-lane
/// boundary phases when present. Spin projection and the color multiply
/// are lane-wise, so permuting their 12-vector result is equivalent to
/// (and cheaper than) permuting the 24-vector source tile.
#[inline]
fn permute_half<T: Real, const N: usize>(
    h: &Half<T, N>,
    table: &[usize; N],
    sign: Option<&VReal<T, N>>,
) -> Half<T, N> {
    let mut out: Half<T, N> =
        std::array::from_fn(|k| [h[k][0].permute(table), h[k][1].permute(table)]);
    if let Some(s) = sign {
        for c in &mut out {
            c[0] = c[0].mul(*s);
            c[1] = c[1].mul(*s);
        }
    }
    out
}

#[inline]
fn scale_half<T: Real, const N: usize>(h: &mut Half<T, N>, s: T) {
    for c in h.iter_mut() {
        c[0] = c[0].scale(s);
        c[1] = c[1].scale(s);
    }
}

impl<T: Real, const N: usize> FullOperator<T> for FusedFullOperator<T, N> {
    fn dims(&self) -> Dims {
        self.dims
    }

    fn lanes(&self) -> usize {
        N
    }

    fn apply(&self, out: &mut SpinorField<T>, inp: &SpinorField<T>, runner: &dyn ParallelRunner) {
        assert_eq!(*inp.dims(), self.dims, "input geometry mismatch");
        assert_eq!(*out.dims(), self.dims, "output geometry mismatch");
        let tiles = self.layout.tiles_per_parity();
        let workers = runner.workers().max(1);
        let mut guard = self.scratch.lock().unwrap();

        // One dispatch, two phases separated by an internal barrier:
        // gather the AOS input into fused layout (disjoint tile writes),
        // then compute each output tile (diag + 8 hops, fixed order) and
        // scatter straight to the AOS output — tiles own disjoint sites,
        // so the result is bitwise independent of the worker count.
        //
        // The scratch field is written through raw tile pointers before
        // the barrier and only read (through the same pointers) after it,
        // so the phases never alias a write with a read.
        struct ScratchPtr<T: Real, const N: usize>(*mut FusedField<T, N>);
        unsafe impl<T: Real, const N: usize> Send for ScratchPtr<T, N> {}
        unsafe impl<T: Real, const N: usize> Sync for ScratchPtr<T, N> {}
        impl<T: Real, const N: usize> ScratchPtr<T, N> {
            /// # Safety
            /// No write to the field may be concurrent with the returned
            /// borrow (here: all writes happen before the phase barrier).
            #[inline]
            unsafe fn get(&self) -> &FusedField<T, N> {
                unsafe { &*self.0 }
            }
        }
        let scratch = ScratchPtr::<T, N>(&mut *guard);
        let (even, odd) = unsafe { (*scratch.0).parity_slices_mut() };
        let se = SharedMut::new(even);
        let so = SharedMut::new(odd);
        let src = inp.as_slice();
        let shared_out = SharedMut::new(out.as_mut_slice());
        let barrier = JobBarrier::new(workers);
        runner.run(&|w| {
            for tile in tile_range(tiles, workers, w) {
                self.gather_tile(src, unsafe { se.get_mut(tile) }, Parity::Even, tile);
                self.gather_tile(src, unsafe { so.get_mut(tile) }, Parity::Odd, tile);
            }
            barrier.wait();
            let fused: &FusedField<T, N> = unsafe { scratch.get() };
            for tile in tile_range(tiles, workers, w) {
                for p in [Parity::Even, Parity::Odd] {
                    let acc = self.compute_tile(fused, tile, p);
                    unsafe { self.scatter_tile(&acc, &shared_out, p, tile) };
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clover::build_clover_field;
    use crate::gamma::GammaBasis;
    use crate::wilson::BoundaryPhases;
    use qdd_field::fields::GaugeField;
    use qdd_util::rng::Rng64;

    fn operator(dims: Dims, phases: BoundaryPhases, seed: u64) -> WilsonClover<f64> {
        let mut rng = Rng64::new(seed);
        let g = GaugeField::random(dims, &mut rng, 0.7);
        let basis = GammaBasis::degrand_rossi();
        let c = build_clover_field(&g, 1.6, &basis);
        WilsonClover::new(g, c, 0.2, phases)
    }

    fn check_matches_scalar(dims: Dims, phases: BoundaryPhases, seed: u64) {
        let op = operator(dims, phases, seed);
        let fused = build_full_operator(&op).expect("even extents must build");
        assert_eq!(fused.lanes(), dims.0[0] * dims.0[1] / 2);
        let mut rng = Rng64::new(seed ^ 0x5eed);
        let inp = SpinorField::<f64>::random(dims, &mut rng);
        let mut expect = SpinorField::zeros(dims);
        op.apply(&mut expect, &inp);
        let mut got = SpinorField::zeros(dims);
        fused.apply(&mut got, &inp, &SerialRunner);
        for site in 0..inp.len() {
            let d = got.site(site).sub(*expect.site(site));
            assert!(d.norm_sqr() < 1e-20, "dims {dims} seed {seed} site {site}: {}", d.norm_sqr());
        }
    }

    #[test]
    fn full_fused_matches_scalar_periodic() {
        for (dims, seed) in [
            (Dims::new(4, 4, 4, 4), 11),
            (Dims::new(8, 4, 4, 4), 12),
            (Dims::new(4, 4, 2, 6), 13),
            (Dims::new(2, 2, 2, 2), 14),
        ] {
            check_matches_scalar(dims, BoundaryPhases::periodic(), seed);
        }
    }

    #[test]
    fn full_fused_matches_scalar_antiperiodic_t() {
        // The t-wrap hop carries the -1 phase; short t extents make every
        // tile touch the wrap.
        for (dims, seed) in
            [(Dims::new(4, 4, 4, 4), 21), (Dims::new(4, 4, 2, 2), 22), (Dims::new(8, 4, 2, 6), 23)]
        {
            check_matches_scalar(dims, BoundaryPhases::antiperiodic_t(), seed);
        }
    }

    #[test]
    fn full_fused_matches_scalar_many_gauge_fields() {
        // Property sweep: random gauge fields on the paper-shaped lattice
        // exercise odd/even tile edges in every direction.
        for seed in 31..39 {
            check_matches_scalar(Dims::new(8, 4, 4, 4), BoundaryPhases::antiperiodic_t(), seed);
        }
    }

    #[test]
    fn odd_extent_returns_none() {
        for dims in [Dims::new(3, 4, 4, 4), Dims::new(4, 4, 3, 4), Dims::new(4, 4, 4, 5)] {
            let op = operator(Dims::new(4, 4, 4, 4), BoundaryPhases::periodic(), 41);
            // Build a small op of the odd geometry directly; WilsonClover
            // itself has no evenness requirement.
            let mut rng = Rng64::new(42);
            let g = GaugeField::random(dims, &mut rng, 0.5);
            let basis = GammaBasis::degrand_rossi();
            let c = build_clover_field(&g, 1.6, &basis);
            let odd_op = WilsonClover::new(g, c, 0.2, BoundaryPhases::periodic());
            assert!(build_full_operator(&odd_op).is_none(), "dims {dims} must fall back");
            drop(op);
        }
    }

    #[test]
    fn f32_full_fused_matches_scalar_at_f32_accuracy() {
        let dims = Dims::new(4, 4, 4, 4);
        let op = operator(dims, BoundaryPhases::antiperiodic_t(), 51);
        let op32: WilsonClover<f32> = op.cast();
        let fused = build_full_operator(&op32).unwrap();
        let mut rng = Rng64::new(52);
        let inp32 = SpinorField::<f32>::random(dims, &mut rng);
        let mut expect = SpinorField::zeros(dims);
        op32.apply(&mut expect, &inp32);
        let mut got = SpinorField::zeros(dims);
        fused.apply(&mut got, &inp32, &SerialRunner);
        for site in 0..inp32.len() {
            let d = got.site(site).sub(*expect.site(site));
            assert!(d.norm_sqr() < 1e-8, "site {site}: {}", d.norm_sqr());
        }
    }
}
