//! The site-fused SIMD operator extended from Dirichlet domain interiors
//! (paper Sec. III-A, [`crate::fused`]) to the **full local lattice** with
//! wrapping boundaries and boundary phases, so the outer Krylov matvec
//! runs the same lane kernel as the Schwarz blocks.
//!
//! Key observations that make the full-lattice kernel mask-free:
//!
//! - An x/y hop that wraps lands on an `Internal` lane of the wrapped
//!   coordinate: the coordinate delta is odd either way, so the parity
//!   flip is identical and the permutation table simply encodes the
//!   wrapped source lane. No lanes are lost — unlike the Dirichlet block
//!   kernel's 2/16 (x) and 4/16 (y) masked lanes, the full-lattice hop
//!   runs at 100% SIMD efficiency. A per-lane sign vector is only needed
//!   when the boundary phase of that direction is not `+1`.
//! - A z/t hop that wraps lands on a whole tile: with even extents the
//!   wrapped tile's flavor equals the unwrapped neighbor relation (for
//!   even `bz`, `(0 + t) % 2 == (bz + t) % 2`), so lanes line up with
//!   zero shuffles and the boundary phase is a whole-tile scalar
//!   (anti-periodic time is `-1` on the wrapping hop only).
//!
//! Both require every lattice extent to be even; [`build_full_operator`]
//! returns `None` otherwise and callers keep the scalar path.

use crate::fused::{
    clover_apply_tile, xy_idx, CloverTile, CloverTileHalf, CloverVecs, FusedClover,
    FusedCloverHalf, FusedGauge, FusedGaugeF16, FusedKernel, GaugeTile, GaugeTileF16, GaugeVecs,
    Half,
};
use crate::wilson::WilsonClover;
use qdd_field::fields::SpinorField;
use qdd_field::fused::{FusedField, FusedTile, VReal};
use qdd_field::spinor::Spinor;
use qdd_lattice::{Coord, Dims, Dir, Domain, DomainColor, Parity, SiteIndexer, TileLayout};
use qdd_util::complex::{Complex, Real};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Storage precision of the streamed gauge/clover constants (paper
/// Sec. II-A): `Native` keeps them at the compute type `T`, `Half` packs
/// them as f16 and up-converts lane-wise inside the SU(3) multiply, so
/// the hot loop streams half (f32) or a quarter (f64) of the constant
/// bytes. Compute precision is unaffected either way — every FMA runs on
/// `T` vectors in the identical order.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum StoragePrecision {
    #[default]
    Native,
    Half,
}

/// Software prefetch depth for the compute phase, mirroring the machine
/// model's `PrefetchMode` (KNC has no useful hardware prefetcher, so the
/// paper's kernels prefetch in software; on chips with `hw_prefetch`
/// this should stay `None`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum SwPrefetch {
    /// Rely on the hardware prefetcher.
    #[default]
    None,
    /// Prefetch the next tile's gauge/clover constants into L1.
    L1,
    /// Additionally stage the next tile's input spinors into L2.
    L1L2,
}

/// Execution tuning for the full-lattice fused operator. Every knob is
/// bitwise-neutral: storage only changes *where* constants live (an
/// operator whose constants are already f16-representable produces
/// identical results from either container), and blocking/prefetch only
/// reorder independent tiles.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FusedTuning {
    pub storage: StoragePrecision,
    pub prefetch: SwPrefetch,
    /// Per-core L2 working-set budget driving the z-block traversal;
    /// `None` keeps the flat z-then-t order.
    pub l2_bytes: Option<usize>,
}

impl Default for FusedTuning {
    fn default() -> Self {
        Self { storage: StoragePrecision::Native, prefetch: SwPrefetch::None, l2_bytes: None }
    }
}

/// How a kernel spreads its tiles over workers. Implemented by the solver
/// layer's persistent worker pool; [`SerialRunner`] is the trivial
/// single-worker fallback. Implementations must invoke `job(w)` exactly
/// once for every `w in 0..workers()` and return only when all calls have
/// finished (fork/join semantics).
pub trait ParallelRunner: Sync {
    fn workers(&self) -> usize;
    fn run(&self, job: &(dyn Fn(usize) + Sync));
}

/// Runs every job inline on the calling thread.
pub struct SerialRunner;

impl ParallelRunner for SerialRunner {
    fn workers(&self) -> usize {
        1
    }

    fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        job(0);
    }
}

/// The lane-count-erased interface of the full-lattice fused operator:
/// `out = A inp` over the whole local lattice, threaded over tiles by a
/// [`ParallelRunner`]. The result is bitwise independent of the worker
/// count (tiles write disjoint sites and each tile's accumulation order
/// is fixed).
pub trait FullOperator<T: Real>: Send + Sync {
    fn dims(&self) -> Dims;
    /// SIMD lanes per tile (`nx * ny / 2`).
    fn lanes(&self) -> usize;
    /// The execution tuning this operator was built with.
    fn tuning(&self) -> FusedTuning;
    /// Partition the (z, t) tile grid into tiles whose every hop stays
    /// on the local lattice (*interior*) and tiles touching a
    /// rank-boundary face in a split direction (*boundary*). `None`
    /// when the split cannot be expressed at tile granularity — tiles
    /// span the full x-y cross-section, so any x/y split intersects
    /// every tile and the caller must keep a site-granular schedule.
    fn split_tiles(&self, split: [bool; 4]) -> Option<SplitTiles> {
        let _ = split;
        None
    }
    /// Apply the operator to the listed tiles only, leaving every other
    /// output site untouched. Callers obtain a valid tile list from
    /// [`split_tiles`](Self::split_tiles); implementations that return
    /// `Some` there must override this.
    fn apply_tiles(
        &self,
        out: &mut SpinorField<T>,
        inp: &SpinorField<T>,
        runner: &dyn ParallelRunner,
        tiles: &[u32],
    ) {
        let _ = (out, inp, runner, tiles);
        unimplemented!("tile-subset apply not supported by this operator (split_tiles was None)")
    }
    /// Bytes one `apply` streams from/to memory per lattice site:
    /// gauge + clover constants at their storage width plus the AOS
    /// input read and output write at the compute width. The fused
    /// scratch tile is written and re-read per tile inside the cache
    /// working set, so it is not counted as DRAM traffic.
    fn streamed_bytes_per_site(&self) -> usize;
    fn apply(&self, out: &mut SpinorField<T>, inp: &SpinorField<T>, runner: &dyn ParallelRunner);
}

/// A tile-granular interior/boundary partition of the (z, t) tile grid
/// for a rank split, from [`FullOperator::split_tiles`]. Interior tiles
/// never read a halo face in a split direction, so they can compute
/// while the exchange is still in flight; boundary tiles (equivalently
/// `boundary_sites`, site-granular) must wait for the drained halo.
#[derive(Clone, Debug, Default)]
pub struct SplitTiles {
    /// Tiles with no hop crossing a split-direction rank boundary, in
    /// the operator's traversal order.
    pub interior: Vec<u32>,
    /// Tiles touching a split-direction rank boundary, in traversal
    /// order. `interior` and `boundary` together cover every tile
    /// exactly once.
    pub boundary: Vec<u32>,
    /// Lattice sites of the boundary tiles (both parities), ascending —
    /// the site set a halo-dependent scalar pass must cover.
    pub boundary_sites: Vec<usize>,
}

/// Build the fused full-lattice operator for `op`, dispatching on the
/// xy-cross-section lane count. Returns `None` when an extent is odd or
/// the lane count has no compiled kernel; callers then keep the scalar
/// [`WilsonClover::apply`] path.
pub fn build_full_operator<T: Real>(op: &WilsonClover<T>) -> Option<Box<dyn FullOperator<T>>> {
    build_full_operator_tuned(op, FusedTuning::default())
}

/// [`build_full_operator`] with explicit execution tuning (compressed
/// constant storage, software prefetch, L2 traversal blocking).
pub fn build_full_operator_tuned<T: Real>(
    op: &WilsonClover<T>,
    tuning: FusedTuning,
) -> Option<Box<dyn FullOperator<T>>> {
    let dims = *op.dims();
    if dims.0.iter().any(|&e| e % 2 != 0) {
        return None;
    }
    let lanes = dims.0[0] * dims.0[1] / 2;
    Some(match lanes {
        2 => Box::new(FusedFullOperator::<T, 2>::with_tuning(op, tuning)),
        4 => Box::new(FusedFullOperator::<T, 4>::with_tuning(op, tuning)),
        8 => Box::new(FusedFullOperator::<T, 8>::with_tuning(op, tuning)),
        16 => Box::new(FusedFullOperator::<T, 16>::with_tuning(op, tuning)),
        32 => Box::new(FusedFullOperator::<T, 32>::with_tuning(op, tuning)),
        64 => Box::new(FusedFullOperator::<T, 64>::with_tuning(op, tuning)),
        128 => Box::new(FusedFullOperator::<T, 128>::with_tuning(op, tuning)),
        _ => return None,
    })
}

/// Lane permutation for one (flavor, dest-parity, x/y dir, orientation)
/// on the full lattice: every lane is internal; `sign` carries per-lane
/// boundary phases and is only present when the phase is not `+1`.
struct WrapPattern<T: Real, const N: usize> {
    table: [usize; N],
    sign: Option<VReal<T, N>>,
}

/// A raw window onto the output sites / scratch tiles that workers write
/// disjointly (each tile owns its sites). Private sibling of the solver
/// layer's shared-slice helpers; the tile partition guarantees
/// disjointness.
struct SharedMut<V> {
    ptr: *mut V,
    len: usize,
}

unsafe impl<V: Send> Send for SharedMut<V> {}
unsafe impl<V: Send> Sync for SharedMut<V> {}

impl<V> SharedMut<V> {
    fn new(data: &mut [V]) -> Self {
        Self { ptr: data.as_mut_ptr(), len: data.len() }
    }

    /// # Safety
    /// `idx` in bounds and owned by the calling worker for the job.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    unsafe fn get_mut(&self, idx: usize) -> &mut V {
        debug_assert!(idx < self.len);
        unsafe { &mut *self.ptr.add(idx) }
    }
}

/// The contiguous range of tiles worker `w` of `workers` owns.
#[inline]
fn tile_range(n: usize, workers: usize, w: usize) -> std::ops::Range<usize> {
    let rounds = if n == 0 { 0 } else { n.div_ceil(workers) };
    (w * rounds).min(n)..((w + 1) * rounds).min(n)
}

/// Sense-reversing barrier separating the gather and compute phases
/// *inside* one pool job, so an apply costs a single dispatch instead of
/// two. Yields while waiting — workers may be oversubscribed on few cores.
struct JobBarrier {
    arrived: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
}

impl JobBarrier {
    fn new(total: usize) -> Self {
        Self { arrived: AtomicUsize::new(0), generation: AtomicUsize::new(0), total }
    }

    fn wait(&self) {
        if self.total == 1 {
            return;
        }
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.store(gen + 1, Ordering::Release);
        } else {
            while self.generation.load(Ordering::Acquire) == gen {
                std::thread::yield_now();
            }
        }
    }
}

/// Uniform lane-vector access to the streamed constants, whatever their
/// storage width: `compute_tile` is generic over this, so the native and
/// compressed paths share one (monomorphized) kernel body with the f16
/// up-conversion fused into the loads.
trait ConstStore<T: Real, const N: usize>: Sync {
    type G: GaugeVecs<T, N>;
    type C: CloverVecs<T, N>;
    fn gauge(&self, p: Parity, tile: usize, dir: Dir) -> &Self::G;
    fn clover(&self, p: Parity, tile: usize) -> &Self::C;
}

struct NativeConsts<T: Real, const N: usize> {
    gauge: FusedGauge<T, N>,
    clover: FusedClover<T, N>,
}

struct HalfConsts<T: Real, const N: usize> {
    gauge: FusedGaugeF16<N>,
    clover: FusedCloverHalf<T, N>,
}

impl<T: Real, const N: usize> ConstStore<T, N> for NativeConsts<T, N> {
    type G = GaugeTile<T, N>;
    type C = CloverTile<T, N>;

    #[inline(always)]
    fn gauge(&self, p: Parity, tile: usize, dir: Dir) -> &GaugeTile<T, N> {
        self.gauge.tile(p, tile, dir)
    }

    #[inline(always)]
    fn clover(&self, p: Parity, tile: usize) -> &CloverTile<T, N> {
        &self.clover.data[p.index()][tile]
    }
}

impl<T: Real, const N: usize> ConstStore<T, N> for HalfConsts<T, N> {
    type G = GaugeTileF16<N>;
    type C = CloverTileHalf<T, N>;

    #[inline(always)]
    fn gauge(&self, p: Parity, tile: usize, dir: Dir) -> &GaugeTileF16<N> {
        self.gauge.tile(p, tile, dir)
    }

    #[inline(always)]
    fn clover(&self, p: Parity, tile: usize) -> &CloverTileHalf<T, N> {
        &self.clover.data[p.index()][tile]
    }
}

/// The operator's constants in their selected storage width.
enum Storage<T: Real, const N: usize> {
    Native(NativeConsts<T, N>),
    Half(HalfConsts<T, N>),
}

/// The fused Wilson-Clover operator over the full local lattice for one
/// compiled lane count `N`.
pub struct FusedFullOperator<T: Real, const N: usize> {
    dims: Dims,
    layout: TileLayout,
    kernel: FusedKernel<T, N>,
    consts: Storage<T, N>,
    tuning: FusedTuning,
    /// Tile traversal order shared by every worker (each takes a
    /// contiguous chunk): flat z-then-t, or z-blocked to keep a block's
    /// constants + spinors inside the configured L2 budget. Tiles own
    /// disjoint sites, so any order is bitwise-equivalent.
    order: Vec<u32>,
    /// `[flavor][dest parity][dir(x,y)][fwd]` wrap-aware lane tables.
    xy: Vec<WrapPattern<T, N>>,
    /// Whole-tile boundary phase applied to wrapping z/t hops, if not +1.
    zt_phase: [Option<T>; 4],
    /// `[parity][tile * N + lane] -> lattice site`, precomputed so
    /// gather/scatter never pays per-site coordinate arithmetic.
    site_map: [Vec<u32>; 2],
    /// Gathered input in fused layout, reused across applications.
    scratch: Mutex<FusedField<T, N>>,
}

/// Per-parity-tile constant bytes at the given storage width.
fn const_tile_bytes<T: Real, const N: usize>(storage: StoragePrecision) -> usize {
    match storage {
        StoragePrecision::Native => {
            4 * std::mem::size_of::<GaugeTile<T, N>>() + std::mem::size_of::<CloverTile<T, N>>()
        }
        StoragePrecision::Half => {
            4 * std::mem::size_of::<GaugeTileF16<N>>() + std::mem::size_of::<CloverTileHalf<T, N>>()
        }
    }
}

/// Build the z-blocked tile traversal. The t hop reaches tile `(z, t±1)`,
/// which in the flat z-fastest order is a whole z-extent away — too far
/// for L2 reuse on large lattices. Restricting z to blocks of `zb` and
/// sweeping t inside each block shrinks that reach to `zb` tiles, so one
/// t row of constants + input tiles (both parities, times two adjacent
/// rows for the reuse window) fits the budget.
fn blocked_order(
    layout: &TileLayout,
    dims: Dims,
    tuning: &FusedTuning,
    per_tile: usize,
) -> Vec<u32> {
    let (bz, bt) = (dims[Dir::Z], dims[Dir::T]);
    let zb = match tuning.l2_bytes {
        Some(l2) => (l2 / (2 * per_tile).max(1)).clamp(1, bz),
        None => bz,
    };
    let mut order = Vec::with_capacity(bz * bt);
    let mut z0 = 0;
    while z0 < bz {
        let zend = (z0 + zb).min(bz);
        for t in 0..bt {
            for z in z0..zend {
                order.push(layout.tile_of(z, t) as u32);
            }
        }
        z0 = zend;
    }
    order
}

impl<T: Real, const N: usize> FusedFullOperator<T, N> {
    pub fn new(op: &WilsonClover<T>) -> Self {
        Self::with_tuning(op, FusedTuning::default())
    }

    pub fn with_tuning(op: &WilsonClover<T>, tuning: FusedTuning) -> Self {
        let dims = *op.dims();
        assert!(dims.0.iter().all(|&e| e % 2 == 0), "full fused operator needs even extents");
        let layout = TileLayout::new(dims);
        assert_eq!(layout.lanes(), N, "lane count mismatch");
        // Gauge/clover gathers and the kernel treat the whole lattice as
        // one block at the origin.
        let whole = Domain {
            index: 0,
            grid_coord: Coord([0; 4]),
            origin: Coord([0; 4]),
            dims,
            color: DomainColor::Black,
        };
        let kernel = FusedKernel::new(dims);
        let gauge = FusedGauge::gather(op, &whole);
        let clover = FusedClover::gather(op, &whole);
        let consts = match tuning.storage {
            StoragePrecision::Native => Storage::Native(NativeConsts { gauge, clover }),
            StoragePrecision::Half => Storage::Half(HalfConsts {
                gauge: FusedGaugeF16::compress(&gauge),
                clover: FusedCloverHalf::compress(&clover),
            }),
        };

        let (nx, ny) = (dims[Dir::X], dims[Dir::Y]);
        let mut xy = Vec::with_capacity(16);
        for flavor in 0..2 {
            for to in [Parity::Even, Parity::Odd] {
                for dir in [Dir::X, Dir::Y] {
                    for fwd in [false, true] {
                        let phase = op.phases().of(dir);
                        let mut table = [0usize; N];
                        let mut sign = [1.0f64; N];
                        let mut any_wrap = false;
                        for (l, entry) in table.iter_mut().enumerate() {
                            let (x, y) = layout.lane_site(flavor, to, l);
                            let (c, extent) = match dir {
                                Dir::X => (x, nx),
                                _ => (y, ny),
                            };
                            let (nc, wrapped) = if fwd {
                                if c + 1 == extent {
                                    (0, true)
                                } else {
                                    (c + 1, false)
                                }
                            } else if c == 0 {
                                (extent - 1, true)
                            } else {
                                (c - 1, false)
                            };
                            let (sx, sy) = match dir {
                                Dir::X => (nc, y),
                                _ => (x, nc),
                            };
                            let (p2, src) = layout.site_lane(flavor, sx, sy);
                            debug_assert_eq!(p2, to.flip(), "xy wrap must flip parity");
                            *entry = src;
                            if wrapped {
                                any_wrap = true;
                                sign[l] = phase;
                            }
                        }
                        let sign = (any_wrap && phase != 1.0)
                            .then(|| VReal::from_fn(|l| T::from_f64(sign[l])));
                        xy.push(WrapPattern { table, sign });
                    }
                }
            }
        }

        let zt_phase = [Dir::X, Dir::Y, Dir::Z, Dir::T].map(|d| {
            let p = op.phases().of(d);
            (p != 1.0).then(|| T::from_f64(p))
        });

        let idx = SiteIndexer::new(dims);
        let tiles = layout.tiles_per_parity();
        let mut site_map = [vec![0u32; tiles * N], vec![0u32; tiles * N]];
        for p in [Parity::Even, Parity::Odd] {
            for tile in 0..tiles {
                for lane in 0..N {
                    let c = layout.coord(p, tile, lane);
                    site_map[p.index()][tile * N + lane] = idx.index(&c) as u32;
                }
            }
        }

        // Blocking budget: both parities of constants + gathered input
        // spinors per (z, t) tile index.
        let per_tile =
            2 * (const_tile_bytes::<T, N>(tuning.storage) + std::mem::size_of::<FusedTile<T, N>>());
        let order = blocked_order(&layout, dims, &tuning, per_tile);
        debug_assert_eq!(order.len(), tiles);

        let scratch = Mutex::new(FusedField::zeros(dims));
        Self { dims, layout, kernel, consts, tuning, order, xy, zt_phase, site_map, scratch }
    }

    /// Gather the AOS input sites of one tile into fused layout: one
    /// sequential pass over the tile's sites (the map is stride-2 in x, so
    /// reads stay in consecutive cache lines), transposing each site's 24
    /// reals into the component vectors. `site_map` entries are lattice
    /// sites by construction, so the unchecked reads are in bounds.
    #[inline]
    fn gather_tile(&self, src: &[Spinor<T>], dst: &mut FusedTile<T, N>, p: Parity, tile: usize) {
        let map = &self.site_map[p.index()][tile * N..(tile + 1) * N];
        debug_assert!(map.iter().all(|&s| (s as usize) < src.len()));
        for (l, &site) in map.iter().enumerate() {
            let s = unsafe { src.get_unchecked(site as usize) };
            for k in 0..12 {
                let z = s.component(k);
                dst[2 * k].0[l] = z.re;
                dst[2 * k + 1].0[l] = z.im;
            }
        }
    }

    /// Scatter one computed tile back to the AOS output sites.
    ///
    /// # Safety
    /// The tile must be owned by the calling worker (tiles partition the
    /// site set, so the per-tile partition guarantees this).
    #[inline]
    unsafe fn scatter_tile(
        &self,
        acc: &FusedTile<T, N>,
        out: &SharedMut<Spinor<T>>,
        p: Parity,
        tile: usize,
    ) {
        let map = &self.site_map[p.index()][tile * N..(tile + 1) * N];
        for (l, &site) in map.iter().enumerate() {
            let s = unsafe { out.get_mut(site as usize) };
            for k in 0..12 {
                s.set_component(k, Complex::new(acc[2 * k].0[l], acc[2 * k + 1].0[l]));
            }
        }
    }

    /// One output tile of `A inp = (diag - 1/2 Dw) inp` with wrapping
    /// boundaries: diagonal plus all eight hops, in a fixed order.
    /// Generic over the constant storage; the native instantiation is
    /// the exact pre-compression kernel.
    fn compute_tile<S: ConstStore<T, N>>(
        &self,
        consts: &S,
        inp: &FusedField<T, N>,
        tile: usize,
        to: Parity,
    ) -> FusedTile<T, N> {
        let from = to.flip();
        let flavor = self.layout.flavor(tile);
        let (tz, tt) = self.layout.tile_coords(tile);
        let (bz, bt) = (self.dims[Dir::Z], self.dims[Dir::T]);

        let mut acc = clover_apply_tile(consts.clover(to, tile), inp.tile(to, tile));

        // x/y hops: in-register lane permutations within the same tile,
        // wrap included in the table — no masks, all lanes live. The
        // permutation is lane-wise-linear-commuting, so it runs *after*
        // the spin projection (12 vectors instead of 24) and, for the
        // backward hop, after the color multiply too — the link lives at
        // the source site, so projecting and multiplying in source lane
        // order then permuting the half-spinor result avoids permuting
        // the 18-vector gauge tile altogether.
        for (di, dir) in [Dir::X, Dir::Y].into_iter().enumerate() {
            for (fi, fwd) in [false, true].into_iter().enumerate() {
                let pat = &self.xy[xy_idx(flavor, to, di, fi)];
                if fwd {
                    // (1 - gamma) U(x) psi(x+mu)
                    let h = self.kernel.project(dir, false, inp.tile(from, tile));
                    let hp = permute_half(&h, &pat.table, pat.sign.as_ref());
                    self.kernel.su3_recon_acc(
                        dir,
                        false,
                        false,
                        consts.gauge(to, tile, dir),
                        &hp,
                        &mut acc,
                    );
                } else {
                    // (1 + gamma) U^dag(x-mu) psi(x-mu), in source order;
                    // the permutation (and boundary sign) is applied as
                    // `U^dag h` is consumed by the reconstruction.
                    let h = self.kernel.project(dir, true, inp.tile(from, tile));
                    let uh = FusedKernel::su3_adj_mul(consts.gauge(from, tile, dir), &h);
                    self.kernel.reconstruct_acc_permuted(
                        dir,
                        true,
                        &uh,
                        &pat.table,
                        pat.sign.as_ref(),
                        &mut acc,
                    );
                }
            }
        }

        // z/t hops: tile-to-tile with no shuffles; a wrapping hop picks
        // the opposite-edge tile and scales by the boundary phase.
        for (dir, coord, extent) in [(Dir::Z, tz, bz), (Dir::T, tt, bt)] {
            let phase = self.zt_phase[dir.index()];
            // Forward.
            let (nc, wrapped) = if coord + 1 == extent { (0, true) } else { (coord + 1, false) };
            let ntile = match dir {
                Dir::Z => self.layout.tile_of(nc, tt),
                _ => self.layout.tile_of(tz, nc),
            };
            let mut h = self.kernel.project(dir, false, inp.tile(from, ntile));
            if wrapped {
                if let Some(p) = phase {
                    scale_half(&mut h, p);
                }
            }
            self.kernel.su3_recon_acc(dir, false, false, consts.gauge(to, tile, dir), &h, &mut acc);
            // Backward.
            let (pc, wrapped) = if coord == 0 { (extent - 1, true) } else { (coord - 1, false) };
            let ptile = match dir {
                Dir::Z => self.layout.tile_of(pc, tt),
                _ => self.layout.tile_of(tz, pc),
            };
            let mut h = self.kernel.project(dir, true, inp.tile(from, ptile));
            if wrapped {
                if let Some(p) = phase {
                    scale_half(&mut h, p);
                }
            }
            self.kernel.su3_recon_acc(
                dir,
                true,
                true,
                consts.gauge(from, ptile, dir),
                &h,
                &mut acc,
            );
        }

        acc
    }

    /// Issue prefetches for the constants (and, in `L1L2` mode, the
    /// gathered input spinors) of the tile the worker will compute next.
    #[inline]
    fn prefetch_tile<S: ConstStore<T, N>>(
        &self,
        consts: &S,
        inp: &FusedField<T, N>,
        tile: usize,
        mode: SwPrefetch,
    ) {
        for p in [Parity::Even, Parity::Odd] {
            for dir in Dir::ALL {
                prefetch_lines(consts.gauge(p, tile, dir), true);
            }
            prefetch_lines(consts.clover(p, tile), true);
            if mode == SwPrefetch::L1L2 {
                prefetch_lines(inp.tile(p, tile), false);
            }
        }
    }

    /// Compute + scatter the worker's chunk of the traversal order,
    /// software-prefetching one tile ahead when configured.
    ///
    /// # Safety
    /// The chunk's tiles must be owned by the calling worker (the
    /// traversal order is a permutation of all tiles and workers take
    /// disjoint chunks, so the per-tile site sets are disjoint).
    unsafe fn compute_chunk<S: ConstStore<T, N>>(
        &self,
        consts: &S,
        fused: &FusedField<T, N>,
        chunk: &[u32],
        out: &SharedMut<Spinor<T>>,
    ) {
        let pf = self.tuning.prefetch;
        for (i, &tile) in chunk.iter().enumerate() {
            if pf != SwPrefetch::None {
                if let Some(&next) = chunk.get(i + 1) {
                    self.prefetch_tile(consts, fused, next as usize, pf);
                }
            }
            for p in [Parity::Even, Parity::Odd] {
                let acc = self.compute_tile(consts, fused, tile as usize, p);
                unsafe { self.scatter_tile(&acc, out, p, tile as usize) };
            }
        }
    }
}

/// Touch every cache line of `*v` with a prefetch hint: `to_l1` uses T0
/// (all levels), otherwise T1 (L2 and up). Compiles to nothing off
/// x86_64. Prefetches are architecturally side-effect-free, so this
/// never changes results — only residency.
#[inline(always)]
fn prefetch_lines<V>(v: &V, to_l1: bool) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0, _MM_HINT_T1};
        let p = (v as *const V).cast::<i8>();
        let n = std::mem::size_of::<V>();
        let mut off = 0usize;
        while off < n {
            if to_l1 {
                _mm_prefetch::<_MM_HINT_T0>(p.add(off));
            } else {
                _mm_prefetch::<_MM_HINT_T1>(p.add(off));
            }
            off += 64;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (v, to_l1);
    }
}

/// Permute a half-spinor into destination lane order, applying per-lane
/// boundary phases when present. Spin projection and the color multiply
/// are lane-wise, so permuting their 12-vector result is equivalent to
/// (and cheaper than) permuting the 24-vector source tile.
#[inline]
fn permute_half<T: Real, const N: usize>(
    h: &Half<T, N>,
    table: &[usize; N],
    sign: Option<&VReal<T, N>>,
) -> Half<T, N> {
    let mut out: Half<T, N> =
        std::array::from_fn(|k| [h[k][0].permute(table), h[k][1].permute(table)]);
    if let Some(s) = sign {
        for c in &mut out {
            c[0] = c[0].mul(*s);
            c[1] = c[1].mul(*s);
        }
    }
    out
}

#[inline]
fn scale_half<T: Real, const N: usize>(h: &mut Half<T, N>, s: T) {
    for c in h.iter_mut() {
        c[0] = c[0].scale(s);
        c[1] = c[1].scale(s);
    }
}

impl<T: Real, const N: usize> FullOperator<T> for FusedFullOperator<T, N> {
    fn dims(&self) -> Dims {
        self.dims
    }

    fn lanes(&self) -> usize {
        N
    }

    fn tuning(&self) -> FusedTuning {
        self.tuning
    }

    fn streamed_bytes_per_site(&self) -> usize {
        let consts_per_site = const_tile_bytes::<T, N>(self.tuning.storage) / N;
        let spinors_per_site = 2 * std::mem::size_of::<Spinor<T>>();
        // `const_tile_bytes` is per parity-tile; a parity-tile holds `N`
        // sites and both parities are streamed once per apply, so the
        // per-site constant cost is exactly `consts_per_site` (the
        // parity factor cancels against half the sites living on each).
        consts_per_site + spinors_per_site
    }

    fn apply(&self, out: &mut SpinorField<T>, inp: &SpinorField<T>, runner: &dyn ParallelRunner) {
        self.apply_selected(out, inp, runner, &self.order);
    }

    fn split_tiles(&self, split: [bool; 4]) -> Option<SplitTiles> {
        // Tiles span the full x-y cross-section: an x/y split cuts
        // through every tile, so only z/t splits partition cleanly.
        if split[0] || split[1] {
            return None;
        }
        let (bz, bt) = (self.dims[Dir::Z], self.dims[Dir::T]);
        let is_boundary = |tile: u32| {
            let (tz, tt) = self.layout.tile_coords(tile as usize);
            (split[2] && (tz == 0 || tz == bz - 1)) || (split[3] && (tt == 0 || tt == bt - 1))
        };
        // Preserve the operator's traversal order within each class so
        // a staged apply keeps the L2-blocked locality of the full one.
        let mut parts = SplitTiles::default();
        for &tile in &self.order {
            if is_boundary(tile) {
                parts.boundary.push(tile);
            } else {
                parts.interior.push(tile);
            }
        }
        for &tile in &parts.boundary {
            for p in [Parity::Even, Parity::Odd] {
                let map = &self.site_map[p.index()][tile as usize * N..(tile as usize + 1) * N];
                parts.boundary_sites.extend(map.iter().map(|&s| s as usize));
            }
        }
        parts.boundary_sites.sort_unstable();
        Some(parts)
    }

    fn apply_tiles(
        &self,
        out: &mut SpinorField<T>,
        inp: &SpinorField<T>,
        runner: &dyn ParallelRunner,
        tiles: &[u32],
    ) {
        self.apply_selected(out, inp, runner, tiles);
    }
}

impl<T: Real, const N: usize> FusedFullOperator<T, N> {
    /// `apply` restricted to `select`ed tiles: gather covers the whole
    /// lattice (a selected tile's z/t hops read *neighbor* tiles from
    /// the fused scratch), compute and scatter touch only the selected
    /// tiles' sites. The full apply is `select = &self.order`.
    fn apply_selected(
        &self,
        out: &mut SpinorField<T>,
        inp: &SpinorField<T>,
        runner: &dyn ParallelRunner,
        select: &[u32],
    ) {
        assert_eq!(*inp.dims(), self.dims, "input geometry mismatch");
        assert_eq!(*out.dims(), self.dims, "output geometry mismatch");
        let tiles = self.layout.tiles_per_parity();
        debug_assert!(select.iter().all(|&t| (t as usize) < tiles), "tile out of range");
        let workers = runner.workers().max(1);
        let mut guard = self.scratch.lock().unwrap();

        // One dispatch, two phases separated by an internal barrier:
        // gather the AOS input into fused layout (disjoint tile writes),
        // then compute each selected output tile (diag + 8 hops, fixed
        // order) and scatter straight to the AOS output — tiles own
        // disjoint sites, so the result is bitwise independent of the
        // worker count.
        //
        // The scratch field is written through raw tile pointers before
        // the barrier and only read (through the same pointers) after it,
        // so the phases never alias a write with a read.
        struct ScratchPtr<T: Real, const N: usize>(*mut FusedField<T, N>);
        unsafe impl<T: Real, const N: usize> Send for ScratchPtr<T, N> {}
        unsafe impl<T: Real, const N: usize> Sync for ScratchPtr<T, N> {}
        impl<T: Real, const N: usize> ScratchPtr<T, N> {
            /// # Safety
            /// No write to the field may be concurrent with the returned
            /// borrow (here: all writes happen before the phase barrier).
            #[inline]
            unsafe fn get(&self) -> &FusedField<T, N> {
                unsafe { &*self.0 }
            }
        }
        let scratch = ScratchPtr::<T, N>(&mut *guard);
        let (even, odd) = unsafe { (*scratch.0).parity_slices_mut() };
        let se = SharedMut::new(even);
        let so = SharedMut::new(odd);
        let src = inp.as_slice();
        let shared_out = SharedMut::new(out.as_mut_slice());
        let barrier = JobBarrier::new(workers);
        runner.run(&|w| {
            for tile in tile_range(tiles, workers, w) {
                self.gather_tile(src, unsafe { se.get_mut(tile) }, Parity::Even, tile);
                self.gather_tile(src, unsafe { so.get_mut(tile) }, Parity::Odd, tile);
            }
            barrier.wait();
            let fused: &FusedField<T, N> = unsafe { scratch.get() };
            let chunk = &select[tile_range(select.len(), workers, w)];
            // One storage dispatch per worker job; the chunk loop runs a
            // fully monomorphized kernel either way.
            match &self.consts {
                Storage::Native(c) => unsafe {
                    self.compute_chunk(c, fused, chunk, &shared_out);
                },
                Storage::Half(c) => unsafe {
                    self.compute_chunk(c, fused, chunk, &shared_out);
                },
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clover::build_clover_field;
    use crate::gamma::GammaBasis;
    use crate::wilson::BoundaryPhases;
    use qdd_field::fields::GaugeField;
    use qdd_util::rng::Rng64;

    fn operator(dims: Dims, phases: BoundaryPhases, seed: u64) -> WilsonClover<f64> {
        let mut rng = Rng64::new(seed);
        let g = GaugeField::random(dims, &mut rng, 0.7);
        let basis = GammaBasis::degrand_rossi();
        let c = build_clover_field(&g, 1.6, &basis);
        WilsonClover::new(g, c, 0.2, phases)
    }

    fn check_matches_scalar(dims: Dims, phases: BoundaryPhases, seed: u64) {
        let op = operator(dims, phases, seed);
        let fused = build_full_operator(&op).expect("even extents must build");
        assert_eq!(fused.lanes(), dims.0[0] * dims.0[1] / 2);
        let mut rng = Rng64::new(seed ^ 0x5eed);
        let inp = SpinorField::<f64>::random(dims, &mut rng);
        let mut expect = SpinorField::zeros(dims);
        op.apply(&mut expect, &inp);
        let mut got = SpinorField::zeros(dims);
        fused.apply(&mut got, &inp, &SerialRunner);
        for site in 0..inp.len() {
            let d = got.site(site).sub(*expect.site(site));
            assert!(d.norm_sqr() < 1e-20, "dims {dims} seed {seed} site {site}: {}", d.norm_sqr());
        }
    }

    #[test]
    fn full_fused_matches_scalar_periodic() {
        for (dims, seed) in [
            (Dims::new(4, 4, 4, 4), 11),
            (Dims::new(8, 4, 4, 4), 12),
            (Dims::new(4, 4, 2, 6), 13),
            (Dims::new(2, 2, 2, 2), 14),
        ] {
            check_matches_scalar(dims, BoundaryPhases::periodic(), seed);
        }
    }

    #[test]
    fn full_fused_matches_scalar_antiperiodic_t() {
        // The t-wrap hop carries the -1 phase; short t extents make every
        // tile touch the wrap.
        for (dims, seed) in
            [(Dims::new(4, 4, 4, 4), 21), (Dims::new(4, 4, 2, 2), 22), (Dims::new(8, 4, 2, 6), 23)]
        {
            check_matches_scalar(dims, BoundaryPhases::antiperiodic_t(), seed);
        }
    }

    #[test]
    fn full_fused_matches_scalar_many_gauge_fields() {
        // Property sweep: random gauge fields on the paper-shaped lattice
        // exercise odd/even tile edges in every direction.
        for seed in 31..39 {
            check_matches_scalar(Dims::new(8, 4, 4, 4), BoundaryPhases::antiperiodic_t(), seed);
        }
    }

    #[test]
    fn odd_extent_returns_none() {
        for dims in [Dims::new(3, 4, 4, 4), Dims::new(4, 4, 3, 4), Dims::new(4, 4, 4, 5)] {
            let op = operator(Dims::new(4, 4, 4, 4), BoundaryPhases::periodic(), 41);
            // Build a small op of the odd geometry directly; WilsonClover
            // itself has no evenness requirement.
            let mut rng = Rng64::new(42);
            let g = GaugeField::random(dims, &mut rng, 0.5);
            let basis = GammaBasis::degrand_rossi();
            let c = build_clover_field(&g, 1.6, &basis);
            let odd_op = WilsonClover::new(g, c, 0.2, BoundaryPhases::periodic());
            assert!(build_full_operator(&odd_op).is_none(), "dims {dims} must fall back");
            drop(op);
        }
    }

    /// Scoped-thread runner for worker-count sweeps inside this crate
    /// (the solver layer's persistent pool lives above qdd-dirac).
    struct TestPool(usize);

    impl ParallelRunner for TestPool {
        fn workers(&self) -> usize {
            self.0
        }

        fn run(&self, job: &(dyn Fn(usize) + Sync)) {
            std::thread::scope(|s| {
                for w in 0..self.0 {
                    s.spawn(move || job(w));
                }
            });
        }
    }

    fn assert_bitwise_eq<T: Real>(a: &SpinorField<T>, b: &SpinorField<T>, what: &str) {
        for site in 0..a.len() {
            for k in 0..12 {
                let (x, y) = (a.site(site).component(k), b.site(site).component(k));
                assert!(
                    x.re == y.re && x.im == y.im,
                    "{what}: site {site} component {k}: {:?} vs {:?}",
                    x,
                    y
                );
            }
        }
    }

    /// The compatibility contract the solver layer relies on: for an
    /// operator whose constants were already rounded through f16
    /// (`Precision::HalfCompressed` pre-rounds exactly like this),
    /// genuine f16 storage is lossless — re-compressing
    /// f16-representable values is exact and the FMA order is shared —
    /// so Native and Half applies agree bitwise.
    #[test]
    fn half_storage_of_prerounded_op_is_bitwise_native() {
        use qdd_field::fields::{CloverFieldF16, GaugeFieldF16};
        let dims = Dims::new(8, 4, 4, 4);
        let op = operator(dims, BoundaryPhases::antiperiodic_t(), 61);
        let g16 = GaugeFieldF16::compress(&op.gauge().cast()).decompress();
        let c16 = CloverFieldF16::compress(&op.clover().cast()).decompress();
        let op32 = WilsonClover::<f32>::new(g16, c16, op.mass() as f32, *op.phases());

        let native = build_full_operator(&op32).unwrap();
        let half = build_full_operator_tuned(
            &op32,
            FusedTuning {
                storage: StoragePrecision::Half,
                prefetch: SwPrefetch::L1,
                l2_bytes: Some(1 << 15),
            },
        )
        .unwrap();
        assert_eq!(half.streamed_bytes_per_site(), 504);
        assert_eq!(native.streamed_bytes_per_site(), 768);

        let mut rng = Rng64::new(62);
        let inp = SpinorField::<f32>::random(dims, &mut rng);
        let mut a = SpinorField::zeros(dims);
        let mut b = SpinorField::zeros(dims);
        native.apply(&mut a, &inp, &SerialRunner);
        half.apply(&mut b, &inp, &SerialRunner);
        assert_bitwise_eq(&a, &b, "native vs half storage of pre-rounded op");
    }

    /// f16-storage apply against the *unrounded* scalar f64 apply: the
    /// only perturbation is the constants' round to f16 (relative error
    /// <= 2^-12 per entry), so with O(1) gauge/clover entries and the
    /// diag + 8-hop sum the normwise relative error stays far below
    /// ~100 * 2^-12; assert an order-of-magnitude slack of 1e-2.
    #[test]
    fn half_storage_matches_scalar_f64_within_f16_bound() {
        let dims = Dims::new(8, 4, 4, 4);
        let op = operator(dims, BoundaryPhases::antiperiodic_t(), 63);
        let half = build_full_operator_tuned(
            &op,
            FusedTuning {
                storage: StoragePrecision::Half,
                prefetch: SwPrefetch::None,
                l2_bytes: None,
            },
        )
        .unwrap();
        let mut rng = Rng64::new(64);
        let inp = SpinorField::<f64>::random(dims, &mut rng);
        let mut expect = SpinorField::zeros(dims);
        op.apply(&mut expect, &inp);
        let mut got = SpinorField::zeros(dims);
        half.apply(&mut got, &inp, &SerialRunner);
        let (mut err2, mut ref2) = (0.0f64, 0.0f64);
        for site in 0..inp.len() {
            err2 += got.site(site).sub(*expect.site(site)).norm_sqr();
            ref2 += expect.site(site).norm_sqr();
        }
        let rel = (err2 / ref2).sqrt();
        assert!(rel < 1e-2, "normwise relative error {rel}");
        assert!(rel > 1e-8, "f16 storage must actually round (got {rel})");
    }

    /// Blocking + prefetch + compressed storage must be bitwise
    /// worker-count-independent and identical to the untuned traversal:
    /// tiles own disjoint sites and each tile's accumulation order is
    /// fixed, so order and residency hints cannot change results.
    #[test]
    fn tuned_paths_are_bitwise_worker_and_order_independent() {
        let dims = Dims::new(4, 4, 8, 6);
        let op = operator(dims, BoundaryPhases::antiperiodic_t(), 65);
        let plain = build_full_operator(&op).unwrap();
        let tuned = build_full_operator_tuned(
            &op,
            FusedTuning {
                storage: StoragePrecision::Native,
                prefetch: SwPrefetch::L1L2,
                // Tiny budget: forces zb = 1, the most reordered walk.
                l2_bytes: Some(1),
            },
        )
        .unwrap();
        let half = build_full_operator_tuned(
            &op,
            FusedTuning {
                storage: StoragePrecision::Half,
                prefetch: SwPrefetch::L1,
                l2_bytes: Some(1 << 14),
            },
        )
        .unwrap();

        let mut rng = Rng64::new(66);
        let inp = SpinorField::<f64>::random(dims, &mut rng);
        let mut reference = SpinorField::zeros(dims);
        plain.apply(&mut reference, &inp, &SerialRunner);
        let mut blocked = SpinorField::zeros(dims);
        tuned.apply(&mut blocked, &inp, &SerialRunner);
        assert_bitwise_eq(&reference, &blocked, "blocked+prefetch vs flat traversal");

        let mut half_ref = SpinorField::zeros(dims);
        half.apply(&mut half_ref, &inp, &SerialRunner);
        for workers in [2, 4] {
            let mut got = SpinorField::zeros(dims);
            half.apply(&mut got, &inp, &TestPool(workers));
            assert_bitwise_eq(&half_ref, &got, "half-storage worker sweep");
            let mut got_native = SpinorField::zeros(dims);
            tuned.apply(&mut got_native, &inp, &TestPool(workers));
            assert_bitwise_eq(&reference, &got_native, "blocked worker sweep");
        }
    }

    /// Pin the streamed-bytes accounting: the compression ratio vs the
    /// plateaued f64 path is what the memory-wall PR promises.
    #[test]
    fn streamed_bytes_per_site_pinned() {
        let dims = Dims::new(8, 4, 4, 4);
        let op = operator(dims, BoundaryPhases::periodic(), 67);
        let op32: WilsonClover<f32> = op.cast();
        let f64_native = build_full_operator(&op).unwrap();
        let f32_native = build_full_operator(&op32).unwrap();
        let f32_half = build_full_operator_tuned(
            &op32,
            FusedTuning {
                storage: StoragePrecision::Half,
                prefetch: SwPrefetch::None,
                l2_bytes: None,
            },
        )
        .unwrap();
        assert_eq!(f64_native.streamed_bytes_per_site(), 1536);
        assert_eq!(f32_native.streamed_bytes_per_site(), 768);
        assert_eq!(f32_half.streamed_bytes_per_site(), 504);
        let ratio =
            f64_native.streamed_bytes_per_site() as f64 / f32_half.streamed_bytes_per_site() as f64;
        assert!(ratio >= 1.8, "compression ratio {ratio}");
    }

    /// The blocked traversal is a permutation of all tiles for any
    /// budget, and degenerates to the identity without one.
    #[test]
    fn blocked_order_is_a_permutation() {
        let dims = Dims::new(4, 4, 10, 6);
        let layout = TileLayout::new(dims);
        let tiles = layout.tiles_per_parity();
        let flat = blocked_order(&layout, dims, &FusedTuning::default(), 1024);
        assert_eq!(flat, (0..tiles as u32).collect::<Vec<_>>());
        for l2 in [1usize, 4096, 1 << 20] {
            let tuning = FusedTuning {
                storage: StoragePrecision::Native,
                prefetch: SwPrefetch::None,
                l2_bytes: Some(l2),
            };
            let order = blocked_order(&layout, dims, &tuning, 1024);
            let mut seen = vec![false; tiles];
            for &t in &order {
                assert!(!std::mem::replace(&mut seen[t as usize], true), "tile {t} repeated");
            }
            assert!(seen.iter().all(|&s| s), "l2 {l2}: not all tiles covered");
        }
    }

    #[test]
    fn f32_full_fused_matches_scalar_at_f32_accuracy() {
        let dims = Dims::new(4, 4, 4, 4);
        let op = operator(dims, BoundaryPhases::antiperiodic_t(), 51);
        let op32: WilsonClover<f32> = op.cast();
        let fused = build_full_operator(&op32).unwrap();
        let mut rng = Rng64::new(52);
        let inp32 = SpinorField::<f32>::random(dims, &mut rng);
        let mut expect = SpinorField::zeros(dims);
        op32.apply(&mut expect, &inp32);
        let mut got = SpinorField::zeros(dims);
        fused.apply(&mut got, &inp32, &SerialRunner);
        for site in 0..inp32.len() {
            let d = got.site(site).sub(*expect.site(site));
            assert!(d.norm_sqr() < 1e-8, "site {site}: {}", d.norm_sqr());
        }
    }
}
