//! The Wilson-Clover operator `A = (Nd + m) - 1/2 Dw + Dcl`.
//!
//! This is the reference (scalar, AOS) implementation used by the outer
//! solver and as ground truth for the fused SIMD kernels. Hopping terms
//! work in projected half-spinor form: project (12 components), SU(3)
//! multiply, reconstruct — 1344 flop/site for `Dw` plus 504 flop/site for
//! the clover + mass diagonal (paper Sec. II-B).

use crate::gamma::GammaBasis;
use qdd_field::fields::{CloverField, GaugeField, SpinorField};
use qdd_field::halo::HaloData;
use qdd_field::spinor::{HalfSpinor, Spinor};
use qdd_lattice::{Dims, Dir, SiteIndexer};
use qdd_util::complex::Real;

/// Flop count of the hopping term per site (8 directions x 168 flops).
pub const DW_FLOPS_PER_SITE: f64 = 1344.0;
/// Flop count of the clover + diagonal term per site.
pub const CLOVER_FLOPS_PER_SITE: f64 = 504.0;
/// Total flop count of one operator application per site.
pub const TOTAL_FLOPS_PER_SITE: f64 = 1848.0;

/// Fermion boundary phases: the sign picked up by a hopping term that
/// wraps around the global lattice in each direction. Standard QCD choice:
/// antiperiodic in t, periodic in space.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct BoundaryPhases {
    pub sign: [f64; 4],
}

impl BoundaryPhases {
    pub fn periodic() -> Self {
        Self { sign: [1.0; 4] }
    }

    pub fn antiperiodic_t() -> Self {
        Self { sign: [1.0, 1.0, 1.0, -1.0] }
    }

    #[inline]
    pub fn of(&self, dir: Dir) -> f64 {
        self.sign[dir.index()]
    }
}

impl Default for BoundaryPhases {
    fn default() -> Self {
        Self::antiperiodic_t()
    }
}

/// The assembled Wilson-Clover operator over one local lattice.
pub struct WilsonClover<T: Real> {
    dims: Dims,
    mass: T,
    gauge: GaugeField<T>,
    /// Precomputed `(Nd + m) + Dcl` per site (the full local diagonal).
    diag: CloverField<T>,
    /// Raw clover term, kept for the even-odd machinery.
    clover: CloverField<T>,
    basis: GammaBasis,
    indexer: SiteIndexer,
    phases: BoundaryPhases,
}

impl<T: Real> WilsonClover<T> {
    /// Assemble the operator. `clover` must be the bare `Dcl` (as built by
    /// [`crate::clover::build_clover_field`]); the `(Nd + m)` diagonal is
    /// added here.
    pub fn new(
        gauge: GaugeField<T>,
        clover: CloverField<T>,
        mass: T,
        phases: BoundaryPhases,
    ) -> Self {
        let dims = *gauge.dims();
        assert_eq!(dims, *clover.dims(), "gauge and clover lattice mismatch");
        let shift = T::from_f64(4.0) + mass;
        let diag = CloverField::from_fn(dims, |s| clover.site(s).add_diag(shift));
        Self {
            dims,
            mass,
            gauge,
            diag,
            clover,
            basis: GammaBasis::degrand_rossi(),
            indexer: SiteIndexer::new(dims),
            phases,
        }
    }

    #[inline]
    pub fn dims(&self) -> &Dims {
        &self.dims
    }

    #[inline]
    pub fn mass(&self) -> T {
        self.mass
    }

    #[inline]
    pub fn gauge(&self) -> &GaugeField<T> {
        &self.gauge
    }

    #[inline]
    pub fn clover(&self) -> &CloverField<T> {
        &self.clover
    }

    /// The `(Nd + m) + Dcl` site diagonal.
    #[inline]
    pub fn diag(&self) -> &CloverField<T> {
        &self.diag
    }

    #[inline]
    pub fn basis(&self) -> &GammaBasis {
        &self.basis
    }

    #[inline]
    pub fn phases(&self) -> &BoundaryPhases {
        &self.phases
    }

    #[inline]
    pub fn indexer(&self) -> &SiteIndexer {
        &self.indexer
    }

    /// Total flops for one application on this local volume.
    pub fn apply_flops(&self) -> f64 {
        TOTAL_FLOPS_PER_SITE * self.dims.volume() as f64
    }

    /// Cast the whole operator to another precision (e.g. f64 -> f32 for
    /// the preconditioner).
    pub fn cast<U: Real>(&self) -> WilsonClover<U> {
        WilsonClover {
            dims: self.dims,
            mass: U::from_f64(self.mass.to_f64()),
            gauge: self.gauge.cast(),
            diag: self.diag.cast(),
            clover: self.clover.cast(),
            basis: self.basis.clone(),
            indexer: self.indexer.clone(),
            phases: self.phases,
        }
    }

    /// Forward hopping contribution `-1/2 (1 - gamma_mu) U_mu(x) psi(x+mu)`
    /// for site `x`, given the neighbor spinor and the wrap flag (for
    /// boundary phases).
    #[inline]
    fn hop_accumulate_fwd(
        &self,
        acc: &mut Spinor<T>,
        x_idx: usize,
        dir: Dir,
        neighbor: &Spinor<T>,
        wrapped: bool,
    ) {
        let gamma = &self.basis.gamma[dir.index()];
        let mut h = gamma.project(false, neighbor);
        if wrapped {
            let s = T::from_f64(self.phases.of(dir));
            h = h.scale(s);
        }
        let u = self.gauge.link(x_idx, dir);
        let h = HalfSpinor([u.mul_vec(h.0[0]), u.mul_vec(h.0[1])]);
        let m_half = T::from_f64(-0.5);
        gamma.reconstruct_add(
            false,
            &HalfSpinor([h.0[0].scale(m_half), h.0[1].scale(m_half)]),
            acc,
        );
    }

    /// Backward hop where the link of the backward neighbor is applied.
    #[inline]
    fn hop_accumulate_bwd(
        &self,
        acc: &mut Spinor<T>,
        nbr_idx: usize,
        dir: Dir,
        neighbor: &Spinor<T>,
        wrapped: bool,
    ) {
        let gamma = &self.basis.gamma[dir.index()];
        let mut h = gamma.project(true, neighbor);
        if wrapped {
            let s = T::from_f64(self.phases.of(dir));
            h = h.scale(s);
        }
        let u = self.gauge.link(nbr_idx, dir);
        let h = HalfSpinor([u.adj_mul_vec(h.0[0]), u.adj_mul_vec(h.0[1])]);
        let m_half = T::from_f64(-0.5);
        gamma.reconstruct_add(true, &HalfSpinor([h.0[0].scale(m_half), h.0[1].scale(m_half)]), acc);
    }

    /// Accumulate a pre-packed halo half-spinor.
    ///
    /// For forward hops the halo carries the projected neighbor spinor (the
    /// local link still gets applied here); for backward hops it carries
    /// the fully prepared `U^dag (1+gamma) psi` (the link lives on the
    /// sending rank). Boundary phases are applied by the packer.
    #[inline]
    fn hop_accumulate_halo(
        &self,
        acc: &mut Spinor<T>,
        x_idx: usize,
        dir: Dir,
        forward: bool,
        h: &HalfSpinor<T>,
    ) {
        let gamma = &self.basis.gamma[dir.index()];
        let h = if forward {
            let u = self.gauge.link(x_idx, dir);
            HalfSpinor([u.mul_vec(h.0[0]), u.mul_vec(h.0[1])])
        } else {
            *h
        };
        let m_half = T::from_f64(-0.5);
        gamma.reconstruct_add(
            !forward,
            &HalfSpinor([h.0[0].scale(m_half), h.0[1].scale(m_half)]),
            acc,
        );
    }

    /// `(A psi)(x)` for a single site, with periodic wrap-around (and
    /// boundary phases). This is the building block the Schwarz method
    /// uses to form block-local residuals.
    #[inline]
    pub fn apply_site(&self, site: usize, inp: &SpinorField<T>) -> Spinor<T> {
        self.apply_site_with(site, |i| *inp.site(i))
    }

    /// Like [`Self::apply_site`] but fetching input spinors through a
    /// closure. The thread-parallel Schwarz sweep uses this to read a
    /// shared field through a raw pointer (its writes are provably
    /// disjoint from these reads; see `qdd-core::pool`).
    #[inline]
    pub fn apply_site_with<F: Fn(usize) -> Spinor<T>>(&self, site: usize, fetch: F) -> Spinor<T> {
        let idx = &self.indexer;
        let x = idx.coord(site);
        // Diagonal: (4 + m) + Dcl.
        let center = fetch(site);
        let mut acc = self.diag.site(site).apply(&center);
        for dir in Dir::ALL {
            let (fwd_idx, fwd_wrap) = idx.neighbor_index(&x, dir, true);
            self.hop_accumulate_fwd(&mut acc, site, dir, &fetch(fwd_idx), fwd_wrap);
            let (bwd_idx, bwd_wrap) = idx.neighbor_index(&x, dir, false);
            self.hop_accumulate_bwd(&mut acc, bwd_idx, dir, &fetch(bwd_idx), bwd_wrap);
        }
        acc
    }

    /// `(A psi)(x)` for a single site where boundary-crossing hops read
    /// from the halo.
    #[inline]
    pub fn apply_site_with_halo(
        &self,
        site: usize,
        inp: &SpinorField<T>,
        halo: &HaloData<T>,
    ) -> Spinor<T> {
        let idx = &self.indexer;
        let x = idx.coord(site);
        let mut acc = self.diag.site(site).apply(inp.site(site));
        for dir in Dir::ALL {
            let (fwd_idx, fwd_wrap) = idx.neighbor_index(&x, dir, true);
            if fwd_wrap {
                self.hop_accumulate_halo(&mut acc, site, dir, true, halo.at(dir, true, &x));
            } else {
                self.hop_accumulate_fwd(&mut acc, site, dir, inp.site(fwd_idx), false);
            }
            let (bwd_idx, bwd_wrap) = idx.neighbor_index(&x, dir, false);
            if bwd_wrap {
                self.hop_accumulate_halo(&mut acc, site, dir, false, halo.at(dir, false, &x));
            } else {
                self.hop_accumulate_bwd(&mut acc, bwd_idx, dir, inp.site(bwd_idx), false);
            }
        }
        acc
    }

    /// Like [`Self::apply_site_with_halo`] but fetching local spinors
    /// through a closure (the distributed Schwarz sweep reads the shared
    /// iterate through a raw pointer and rank-boundary data from the halo).
    #[inline]
    pub fn apply_site_with_halo_fetch<F: Fn(usize) -> Spinor<T>>(
        &self,
        site: usize,
        fetch: F,
        halo: &HaloData<T>,
    ) -> Spinor<T> {
        let idx = &self.indexer;
        let x = idx.coord(site);
        let center = fetch(site);
        let mut acc = self.diag.site(site).apply(&center);
        for dir in Dir::ALL {
            let (fwd_idx, fwd_wrap) = idx.neighbor_index(&x, dir, true);
            if fwd_wrap {
                self.hop_accumulate_halo(&mut acc, site, dir, true, halo.at(dir, true, &x));
            } else {
                self.hop_accumulate_fwd(&mut acc, site, dir, &fetch(fwd_idx), false);
            }
            let (bwd_idx, bwd_wrap) = idx.neighbor_index(&x, dir, false);
            if bwd_wrap {
                self.hop_accumulate_halo(&mut acc, site, dir, false, halo.at(dir, false, &x));
            } else {
                self.hop_accumulate_bwd(&mut acc, bwd_idx, dir, &fetch(bwd_idx), false);
            }
        }
        acc
    }

    /// Like [`Self::apply_site_with_halo_fetch`] but aware of which
    /// directions actually cross a rank boundary: wrap-around hops in
    /// *unsplit* directions read the local field directly (the periodic
    /// single-rank code path, boundary phase applied here), so the halo is
    /// only consulted — and only needs to be filled — for split
    /// directions. This is what lets the exchange skip self-loop channels
    /// entirely.
    ///
    /// Bitwise identical to routing every wrap through a self-packed halo:
    /// the packer folds the boundary phase in before the link multiply
    /// while this path scales after projection, and the two orders agree
    /// exactly because fermion boundary phases are ±1 (negation commutes
    /// bitwise with the link multiply).
    #[inline]
    pub fn apply_site_with_halo_fetch_split<F: Fn(usize) -> Spinor<T>>(
        &self,
        site: usize,
        fetch: F,
        halo: &HaloData<T>,
        split: [bool; 4],
    ) -> Spinor<T> {
        let idx = &self.indexer;
        let x = idx.coord(site);
        let center = fetch(site);
        let mut acc = self.diag.site(site).apply(&center);
        for dir in Dir::ALL {
            let (fwd_idx, fwd_wrap) = idx.neighbor_index(&x, dir, true);
            if fwd_wrap && split[dir.index()] {
                self.hop_accumulate_halo(&mut acc, site, dir, true, halo.at(dir, true, &x));
            } else {
                self.hop_accumulate_fwd(&mut acc, site, dir, &fetch(fwd_idx), fwd_wrap);
            }
            let (bwd_idx, bwd_wrap) = idx.neighbor_index(&x, dir, false);
            if bwd_wrap && split[dir.index()] {
                self.hop_accumulate_halo(&mut acc, site, dir, false, halo.at(dir, false, &x));
            } else {
                self.hop_accumulate_bwd(&mut acc, bwd_idx, dir, &fetch(bwd_idx), bwd_wrap);
            }
        }
        acc
    }

    /// Apply the full operator on a single rank (periodic wrap-around with
    /// boundary phases).
    pub fn apply(&self, out: &mut SpinorField<T>, inp: &SpinorField<T>) {
        assert_eq!(*inp.dims(), self.dims);
        assert_eq!(*out.dims(), self.dims);
        for site in 0..self.dims.volume() {
            *out.site_mut(site) = self.apply_site(site, inp);
        }
    }

    /// Apply with externally provided halo data: hops that cross the local
    /// lattice boundary read from `halo` instead of wrapping around.
    /// This is the multi-node form — `qdd-comm` fills the halo.
    pub fn apply_with_halo(
        &self,
        out: &mut SpinorField<T>,
        inp: &SpinorField<T>,
        halo: &HaloData<T>,
    ) {
        assert_eq!(*inp.dims(), self.dims);
        for site in 0..self.dims.volume() {
            *out.site_mut(site) = self.apply_site_with_halo(site, inp, halo);
        }
    }

    /// Apply with halo data for the *split* directions only: hops that
    /// cross the local boundary in an unsplit direction wrap around
    /// locally (phase applied here), so the exchange never has to fill —
    /// or even allocate meaningfully — those halo faces. See
    /// [`Self::apply_site_with_halo_fetch_split`] for the bitwise
    /// equivalence argument.
    pub fn apply_with_halo_split(
        &self,
        out: &mut SpinorField<T>,
        inp: &SpinorField<T>,
        halo: &HaloData<T>,
        split: [bool; 4],
    ) {
        assert_eq!(*inp.dims(), self.dims);
        for site in 0..self.dims.volume() {
            *out.site_mut(site) =
                self.apply_site_with_halo_fetch_split(site, |i| *inp.site(i), halo, split);
        }
    }

    /// Compute the residual `r = f - A u` in one pass.
    pub fn residual(&self, r: &mut SpinorField<T>, f: &SpinorField<T>, u: &SpinorField<T>) {
        self.apply(r, u);
        for site in 0..self.dims.volume() {
            *r.site_mut(site) = f.site(site).sub(*r.site(site));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clover::build_clover_field;
    use qdd_util::complex::Complex;
    use qdd_util::rng::Rng64;

    fn dims() -> Dims {
        Dims::new(4, 4, 4, 4)
    }

    fn free_op(mass: f64, phases: BoundaryPhases) -> WilsonClover<f64> {
        let g = GaugeField::identity(dims());
        let basis = GammaBasis::degrand_rossi();
        let c = build_clover_field(&g, 1.0, &basis);
        WilsonClover::new(g, c, mass, phases)
    }

    fn random_op(seed: u64, mass: f64, spread: f64) -> WilsonClover<f64> {
        let mut rng = Rng64::new(seed);
        let g = GaugeField::random(dims(), &mut rng, spread);
        let basis = GammaBasis::degrand_rossi();
        let c = build_clover_field(&g, 1.9, &basis);
        WilsonClover::new(g, c, mass, BoundaryPhases::periodic())
    }

    #[test]
    fn constant_field_is_free_eigenvector() {
        // For U = 1, periodic BCs, constant psi: A psi = m psi.
        let op = free_op(0.3, BoundaryPhases::periodic());
        let mut rng = Rng64::new(1);
        let s0 = Spinor::random(&mut rng);
        let inp = SpinorField::from_fn(dims(), |_| s0);
        let mut out = SpinorField::zeros(dims());
        op.apply(&mut out, &inp);
        for site in 0..dims().volume() {
            let d = out.site(site).sub(s0.scale(0.3));
            assert!(d.norm_sqr() < 1e-20, "site {site}: {}", d.norm_sqr());
        }
    }

    #[test]
    fn split_aware_halo_apply_matches_periodic_apply_bitwise() {
        // With nothing split, every wrap hop takes the direct local path:
        // the result must be the plain periodic apply, bit for bit. With
        // everything split (halo from self_halo), it must match too —
        // the ±1-phase commutation argument of the split-aware path.
        for phases in [BoundaryPhases::periodic(), BoundaryPhases::antiperiodic_t()] {
            let op = {
                let mut rng = Rng64::new(91);
                let g = GaugeField::random(dims(), &mut rng, 0.8);
                let basis = GammaBasis::degrand_rossi();
                let c = build_clover_field(&g, 1.4, &basis);
                WilsonClover::new(g, c, 0.15, phases)
            };
            let mut rng = Rng64::new(92);
            let inp = SpinorField::<f64>::random(dims(), &mut rng);
            let mut direct = SpinorField::zeros(dims());
            op.apply(&mut direct, &inp);

            let empty = qdd_field::halo::HaloData::zeros(dims());
            let mut none_split = SpinorField::zeros(dims());
            op.apply_with_halo_split(&mut none_split, &inp, &empty, [false; 4]);
            assert_eq!(none_split.as_slice(), direct.as_slice(), "unsplit path diverged");

            let halo = crate::boundary::self_halo(&op, &inp);
            let mut all_split = SpinorField::zeros(dims());
            op.apply_with_halo_split(&mut all_split, &inp, &halo, [true; 4]);
            assert_eq!(all_split.as_slice(), direct.as_slice(), "split path diverged");

            // Mixed: split in x and t only, halo faces for y/z left zero
            // and never read.
            let mut mixed = SpinorField::zeros(dims());
            let mut partial = qdd_field::halo::HaloData::zeros(dims());
            for dir in [Dir::X, Dir::T] {
                for fwd in [false, true] {
                    *partial.face_mut(dir, fwd) = halo.face(dir, fwd).clone();
                }
            }
            op.apply_with_halo_split(&mut mixed, &inp, &partial, [true, false, false, true]);
            assert_eq!(mixed.as_slice(), direct.as_slice(), "mixed path diverged");
        }
    }

    #[test]
    fn operator_is_linear() {
        let op = random_op(2, 0.1, 0.8);
        let mut rng = Rng64::new(3);
        let a = SpinorField::<f64>::random(dims(), &mut rng);
        let b = SpinorField::<f64>::random(dims(), &mut rng);
        let alpha = Complex::new(0.7, -0.2);
        // A(a + alpha b)
        let mut combo = a.clone();
        combo.axpy(alpha, &b);
        let mut lhs = SpinorField::zeros(dims());
        op.apply(&mut lhs, &combo);
        // A a + alpha A b
        let mut aa = SpinorField::zeros(dims());
        op.apply(&mut aa, &a);
        let mut ab = SpinorField::zeros(dims());
        op.apply(&mut ab, &b);
        aa.axpy(alpha, &ab);
        lhs.sub_assign(&aa);
        assert!(lhs.norm() < 1e-10 * aa.norm().max(1.0));
    }

    #[test]
    fn gamma5_hermiticity() {
        // gamma5 A gamma5 = A^dagger  <=>  <x, g5 A g5 y> = <A x, y>.
        let op = random_op(4, 0.2, 0.9);
        let basis = GammaBasis::degrand_rossi();
        let mut rng = Rng64::new(5);
        let x = SpinorField::<f64>::random(dims(), &mut rng);
        let y = SpinorField::<f64>::random(dims(), &mut rng);

        let g5y = SpinorField::from_fn(dims(), |s| basis.apply_gamma5(y.site(s)));
        let mut ag5y = SpinorField::zeros(dims());
        op.apply(&mut ag5y, &g5y);
        let g5ag5y = SpinorField::from_fn(dims(), |s| basis.apply_gamma5(ag5y.site(s)));

        let mut ax = SpinorField::zeros(dims());
        op.apply(&mut ax, &x);

        let lhs = x.dot(&g5ag5y);
        let rhs = ax.dot(&y);
        assert!((lhs - rhs).abs() < 1e-9 * rhs.abs().max(1.0), "lhs={lhs:?} rhs={rhs:?}");
    }

    #[test]
    fn antiperiodic_t_changes_only_wrapping_terms() {
        let op_p = free_op(0.0, BoundaryPhases::periodic());
        let op_a = free_op(0.0, BoundaryPhases::antiperiodic_t());
        let mut rng = Rng64::new(6);
        let inp = SpinorField::<f64>::random(dims(), &mut rng);
        let mut out_p = SpinorField::zeros(dims());
        let mut out_a = SpinorField::zeros(dims());
        op_p.apply(&mut out_p, &inp);
        op_a.apply(&mut out_a, &inp);
        let idx = SiteIndexer::new(dims());
        let lt = dims()[Dir::T];
        for site in 0..dims().volume() {
            let c = idx.coord(site);
            let differs = out_p.site(site).sub(*out_a.site(site)).norm_sqr() > 1e-20;
            let on_t_edge = c[Dir::T] == 0 || c[Dir::T] == lt - 1;
            assert_eq!(differs, on_t_edge, "site {c:?}");
        }
    }

    #[test]
    fn apply_with_self_halo_matches_apply() {
        // Fill the halo from the field itself (periodic) and check equality.
        let op = random_op(7, 0.15, 0.7);
        let mut rng = Rng64::new(8);
        let inp = SpinorField::<f64>::random(dims(), &mut rng);
        let halo = crate::boundary::self_halo(&op, &inp);
        let mut out_direct = SpinorField::zeros(dims());
        op.apply(&mut out_direct, &inp);
        let mut out_halo = SpinorField::zeros(dims());
        op.apply_with_halo(&mut out_halo, &inp, &halo);
        out_halo.sub_assign(&out_direct);
        assert!(out_halo.norm() < 1e-11 * out_direct.norm());
    }

    #[test]
    fn flop_constants() {
        assert_eq!(DW_FLOPS_PER_SITE + CLOVER_FLOPS_PER_SITE, TOTAL_FLOPS_PER_SITE);
        let op = free_op(0.0, BoundaryPhases::periodic());
        assert_eq!(op.apply_flops(), 1848.0 * 256.0);
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let op = random_op(9, 0.25, 0.5);
        let mut rng = Rng64::new(10);
        let u = SpinorField::<f64>::random(dims(), &mut rng);
        let mut f = SpinorField::zeros(dims());
        op.apply(&mut f, &u);
        let mut r = SpinorField::zeros(dims());
        op.residual(&mut r, &f, &u);
        assert!(r.norm() < 1e-12 * f.norm());
    }

    #[test]
    fn cast_preserves_operator_to_f32_accuracy() {
        let op = random_op(11, 0.2, 0.6);
        let op32: WilsonClover<f32> = op.cast();
        let mut rng = Rng64::new(12);
        let inp = SpinorField::<f64>::random(dims(), &mut rng);
        let inp32: SpinorField<f32> = inp.cast();
        let mut out = SpinorField::zeros(dims());
        op.apply(&mut out, &inp);
        let mut out32 = SpinorField::<f32>::zeros(dims());
        op32.apply(&mut out32, &inp32);
        let back: SpinorField<f64> = out32.cast();
        let mut d = out.clone();
        d.sub_assign(&back);
        assert!(d.norm() < 1e-4 * out.norm(), "rel err {}", d.norm() / out.norm());
    }
}
