//! The Wilson-Clover Dirac operator and its domain-restricted forms.
//!
//! This crate implements the sparse matrix the whole paper is about
//! (Sec. II-B):
//!
//! ```text
//! A = (Nd + m) - 1/2 Dw + Dcl
//! ```
//!
//! with the Wilson nearest-neighbor hopping term `Dw` (a 9-point stencil
//! in 4-D with 24 internal degrees of freedom), the clover improvement
//! term `Dcl` built from the gauge field, and everything the
//! domain-decomposition solver needs on top:
//!
//! - [`gamma`]: the Dirac spin algebra (DeGrand-Rossi basis), spin
//!   projection to half-spinors and reconstruction — the 1344-flop/site
//!   hopping kernel works entirely in projected form.
//! - [`clover`]: construction of the clover field strength from
//!   clover-leaf plaquettes.
//! - [`wilson`]: the full operator on a local lattice, with halo inputs
//!   for the multi-node case.
//! - [`block`]: the domain-restricted operator `D` (zero Dirichlet
//!   boundary) and the even-odd Schur complement `D̃ee` (paper Eq. (5))
//!   used by the MR block solver.
//! - [`boundary`]: spin-projected halo packing (what actually crosses
//!   domain and rank boundaries, Fig. 3).
//! - [`fused`]: the site-fused SIMD implementation of the block operator
//!   using the xy-tile layout of Sec. III-A.

pub mod block;
pub mod boundary;
pub mod clover;
pub mod fused;
pub mod fused_full;
pub mod gamma;
pub mod wilson;

pub use block::{DomainFields, SchurOperator};
pub use clover::build_clover_field;
pub use fused::{FusedClover, FusedGauge, FusedKernel, FusedSchur};
pub use fused_full::{build_full_operator, FullOperator, ParallelRunner, SerialRunner, SplitTiles};
pub use gamma::{Gamma, GammaBasis};
pub use wilson::{BoundaryPhases, WilsonClover, DW_FLOPS_PER_SITE, TOTAL_FLOPS_PER_SITE};
