//! 4-D lattice geometry for the domain-decomposition solver.
//!
//! Everything positional lives here: global site indexing with periodic
//! boundaries, even/odd checkerboarding (paper Sec. II-D), decomposition of
//! the volume into Schwarz domains with a two-coloring for the
//! multiplicative method (Sec. III-D), the xy-tile site-fused SIMD layout
//! (Sec. III-A, Figs. 2–3), the load-balance formulas Eqs. (6)–(7), and the
//! uniform / non-uniform multi-node partitionings of Sec. IV-C.

pub mod dims;
pub mod domain;
pub mod load;
pub mod partition;
pub mod site;
pub mod tile;

pub use dims::{Coord, Dims, Dir, DirIndexError};
pub use domain::{Domain, DomainColor, DomainGrid};
pub use load::{core_assignment, load_average, ndomain};
pub use partition::{HaloSpec, NonUniformSplit, RankGrid};
pub use site::{Parity, SiteIndexer};
pub use tile::{LaneSrc, TileLayout};
