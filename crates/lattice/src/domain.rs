//! Decomposition of the (local) lattice volume into Schwarz domains.
//!
//! The space-time volume is split into hyper-rectangular blocks (default
//! 8x4x4x4, chosen in the paper so one domain's working set fits a KNC
//! core's 512 kB L2, Sec. III-B). The multiplicative Schwarz method
//! processes the domains in two half-sweeps over a red/black coloring of
//! the *domain grid* (Sec. III-D), so the grid coloring lives here too.

use crate::dims::{Coord, Dims, Dir};
use crate::site::SiteIndexer;

/// Two-coloring of the domain grid for multiplicative Schwarz.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum DomainColor {
    Black = 0,
    White = 1,
}

impl DomainColor {
    pub const ALL: [DomainColor; 2] = [DomainColor::Black, DomainColor::White];

    #[inline]
    pub fn flip(self) -> DomainColor {
        match self {
            DomainColor::Black => DomainColor::White,
            DomainColor::White => DomainColor::Black,
        }
    }
}

/// One Schwarz domain: a block of sites within the local lattice.
#[derive(Copy, Clone, Debug)]
pub struct Domain {
    /// Index of this domain in the grid (lexicographic).
    pub index: usize,
    /// Position in the domain grid.
    pub grid_coord: Coord,
    /// Coordinate of the first (lowest-corner) site in the local lattice.
    pub origin: Coord,
    /// Block extents.
    pub dims: Dims,
    /// Red/black color in the domain grid.
    pub color: DomainColor,
}

impl Domain {
    /// Volume of the domain in sites.
    #[inline]
    pub fn volume(&self) -> usize {
        self.dims.volume()
    }

    /// Convert a local (in-domain) coordinate to a local-lattice coordinate.
    #[inline]
    pub fn to_lattice(&self, local: &Coord) -> Coord {
        Coord([
            self.origin.0[0] + local.0[0],
            self.origin.0[1] + local.0[1],
            self.origin.0[2] + local.0[2],
            self.origin.0[3] + local.0[3],
        ])
    }
}

/// The full decomposition of a lattice into a grid of equal blocks.
#[derive(Clone, Debug)]
pub struct DomainGrid {
    lattice: Dims,
    block: Dims,
    grid: Dims,
    grid_indexer: SiteIndexer,
}

impl DomainGrid {
    /// Decompose `lattice` into blocks of size `block`.
    ///
    /// Panics if the block does not tile the lattice. Blocks must have even
    /// extent in every direction so the in-domain even/odd checkerboard has
    /// equal halves and so that domain corners all carry the same site
    /// parity pattern.
    pub fn new(lattice: Dims, block: Dims) -> Self {
        assert!(lattice.divisible_by(&block), "block {block} does not tile lattice {lattice}");
        assert!(
            block.0.iter().all(|&b| b % 2 == 0),
            "block extents must be even for checkerboarding, got {block}"
        );
        let grid = lattice.grid_over(&block);
        Self { lattice, block, grid, grid_indexer: SiteIndexer::new(grid) }
    }

    /// The paper's default 8x4x4x4 block.
    pub fn with_default_block(lattice: Dims) -> Self {
        Self::new(lattice, Dims::new(8, 4, 4, 4))
    }

    #[inline]
    pub fn lattice(&self) -> &Dims {
        &self.lattice
    }

    #[inline]
    pub fn block(&self) -> &Dims {
        &self.block
    }

    /// Number of domains per direction.
    #[inline]
    pub fn grid(&self) -> &Dims {
        &self.grid
    }

    /// Total number of domains.
    #[inline]
    pub fn num_domains(&self) -> usize {
        self.grid.volume()
    }

    /// Color of the domain at a grid coordinate.
    #[inline]
    pub fn color_of(&self, grid_coord: &Coord) -> DomainColor {
        if grid_coord.parity_sum().is_multiple_of(2) {
            DomainColor::Black
        } else {
            DomainColor::White
        }
    }

    /// The domain with the given lexicographic grid index.
    pub fn domain(&self, index: usize) -> Domain {
        let grid_coord = self.grid_indexer.coord(index);
        let origin = Coord([
            grid_coord.0[0] * self.block.0[0],
            grid_coord.0[1] * self.block.0[1],
            grid_coord.0[2] * self.block.0[2],
            grid_coord.0[3] * self.block.0[3],
        ]);
        Domain { index, grid_coord, origin, dims: self.block, color: self.color_of(&grid_coord) }
    }

    /// Iterate over all domains in grid order.
    pub fn domains(&self) -> impl Iterator<Item = Domain> + '_ {
        (0..self.num_domains()).map(move |i| self.domain(i))
    }

    /// Indices of all domains of one color.
    pub fn domains_of_color(&self, color: DomainColor) -> Vec<usize> {
        self.domains().filter(|d| d.color == color).map(|d| d.index).collect()
    }

    /// Which domain a lattice site belongs to, and its in-domain coordinate.
    pub fn locate(&self, site: &Coord) -> (usize, Coord) {
        let gc = Coord([
            site.0[0] / self.block.0[0],
            site.0[1] / self.block.0[1],
            site.0[2] / self.block.0[2],
            site.0[3] / self.block.0[3],
        ]);
        let local = Coord([
            site.0[0] % self.block.0[0],
            site.0[1] % self.block.0[1],
            site.0[2] % self.block.0[2],
            site.0[3] % self.block.0[3],
        ]);
        (self.grid_indexer.index(&gc), local)
    }

    /// Neighboring domain in direction `dir` (periodic in the local
    /// lattice); also reports whether the domain-grid boundary wrapped,
    /// which in the multi-node setting means the neighbor lives on another
    /// rank.
    pub fn neighbor(&self, index: usize, dir: Dir, forward: bool) -> (usize, bool) {
        let gc = self.grid_indexer.coord(index);
        let (ngc, wrapped) = gc.neighbor(&self.grid, dir, forward);
        (self.grid_indexer.index(&ngc), wrapped)
    }

    /// Local coordinates of the sites on a face of a block.
    ///
    /// `forward == true` gives the face at `coord[dir] == extent-1` (whose
    /// hopping terms in +dir cross the domain boundary).
    pub fn face_sites(&self, dir: Dir, forward: bool) -> Vec<Coord> {
        let fixed = if forward { self.block[dir] - 1 } else { 0 };
        let idx = SiteIndexer::new(self.block);
        idx.iter().filter(|c| c[dir] == fixed).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_4x() -> DomainGrid {
        DomainGrid::new(Dims::new(16, 8, 8, 8), Dims::new(8, 4, 4, 4))
    }

    #[test]
    fn counts_and_shapes() {
        let g = grid_4x();
        assert_eq!(g.num_domains(), 2 * 2 * 2 * 2);
        assert_eq!(*g.grid(), Dims::new(2, 2, 2, 2));
        for d in g.domains() {
            assert_eq!(d.volume(), 512);
        }
    }

    #[test]
    fn coloring_is_checkerboard() {
        let g = grid_4x();
        let black = g.domains_of_color(DomainColor::Black);
        let white = g.domains_of_color(DomainColor::White);
        assert_eq!(black.len(), 8);
        assert_eq!(white.len(), 8);
        // Neighbors always have opposite colors.
        for d in g.domains() {
            for dir in Dir::ALL {
                let (n, _) = g.neighbor(d.index, dir, true);
                assert_eq!(g.domain(n).color, d.color.flip());
            }
        }
    }

    #[test]
    fn locate_inverts_to_lattice() {
        let g = grid_4x();
        let site = Coord::new(9, 5, 2, 7);
        let (idx, local) = g.locate(&site);
        let d = g.domain(idx);
        assert_eq!(d.to_lattice(&local), site);
        assert_eq!(d.grid_coord, Coord::new(1, 1, 0, 1));
    }

    #[test]
    fn every_site_in_exactly_one_domain() {
        let g = DomainGrid::new(Dims::new(8, 8, 4, 4), Dims::new(4, 4, 2, 2));
        let lat = SiteIndexer::new(*g.lattice());
        let mut counts = vec![0usize; g.num_domains()];
        for c in lat.iter() {
            let (idx, local) = g.locate(&c);
            counts[idx] += 1;
            assert!(local.0.iter().zip(&g.block().0).all(|(a, b)| a < b));
        }
        for c in counts {
            assert_eq!(c, g.block().volume());
        }
    }

    #[test]
    fn face_site_counts() {
        let g = grid_4x();
        assert_eq!(g.face_sites(Dir::X, true).len(), 4 * 4 * 4);
        assert_eq!(g.face_sites(Dir::T, false).len(), 8 * 4 * 4);
        for c in g.face_sites(Dir::Y, true) {
            assert_eq!(c[Dir::Y], 3);
        }
    }

    #[test]
    fn neighbor_wrap_detection() {
        let g = grid_4x();
        // Domain at grid (1, ...) moving +x wraps to grid (0, ...).
        let d = g.domains().find(|d| d.grid_coord == Coord::new(1, 0, 0, 0)).unwrap();
        let (n, wrapped) = g.neighbor(d.index, Dir::X, true);
        assert!(wrapped);
        assert_eq!(g.domain(n).grid_coord, Coord::new(0, 0, 0, 0));
        let (_, wrapped) = g.neighbor(d.index, Dir::X, false);
        assert!(!wrapped);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_block_rejected() {
        DomainGrid::new(Dims::new(9, 4, 4, 4), Dims::new(3, 4, 4, 4));
    }
}
