//! Multi-node partitioning of the global lattice.
//!
//! The global volume is distributed over a hyper-rectangular grid of ranks
//! (one rank per KNC in the paper). Besides the uniform split done by
//! QDP++ in the paper's runs, Sec. IV-C2 introduces a *non-uniform*
//! partitioning (e.g. splitting Lt = 128 as 4x28 + 16) that raises the
//! average load in the strong-scaling limit from 53 % to 85 %; both are
//! implemented here.

use crate::dims::{Coord, Dims, Dir};
use crate::load::{load_average, ndomain};
use crate::site::SiteIndexer;

/// A uniform decomposition of the global lattice onto a grid of ranks.
#[derive(Clone, Debug)]
pub struct RankGrid {
    global: Dims,
    grid: Dims,
    local: Dims,
    indexer: SiteIndexer,
}

impl RankGrid {
    pub fn new(global: Dims, grid: Dims) -> Self {
        assert!(
            global.divisible_by(&grid),
            "rank grid {grid} does not divide global lattice {global}"
        );
        let local = global.grid_over(&grid);
        Self { global, grid, local, indexer: SiteIndexer::new(grid) }
    }

    #[inline]
    pub fn global(&self) -> &Dims {
        &self.global
    }

    #[inline]
    pub fn grid(&self) -> &Dims {
        &self.grid
    }

    /// Local lattice extents per rank.
    #[inline]
    pub fn local(&self) -> &Dims {
        &self.local
    }

    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.grid.volume()
    }

    #[inline]
    pub fn rank_coord(&self, rank: usize) -> Coord {
        self.indexer.coord(rank)
    }

    #[inline]
    pub fn rank_index(&self, c: &Coord) -> usize {
        self.indexer.index(c)
    }

    /// Neighboring rank in a direction (periodic).
    pub fn neighbor_rank(&self, rank: usize, dir: Dir, forward: bool) -> usize {
        let c = self.rank_coord(rank);
        let (nc, _) = c.neighbor(&self.grid, dir, forward);
        self.rank_index(&nc)
    }

    /// True if the rank grid has more than one rank in `dir` (i.e. halos in
    /// that direction actually cross the network).
    #[inline]
    pub fn is_split(&self, dir: Dir) -> bool {
        self.grid[dir] > 1
    }

    /// Which rank owns a global site, and the site's local coordinate.
    pub fn locate(&self, site: &Coord) -> (usize, Coord) {
        let rc = Coord([
            site.0[0] / self.local.0[0],
            site.0[1] / self.local.0[1],
            site.0[2] / self.local.0[2],
            site.0[3] / self.local.0[3],
        ]);
        let local = Coord([
            site.0[0] % self.local.0[0],
            site.0[1] % self.local.0[1],
            site.0[2] % self.local.0[2],
            site.0[3] % self.local.0[3],
        ]);
        (self.rank_index(&rc), local)
    }

    /// Halo description for this partitioning.
    pub fn halo(&self, bytes_per_site: usize) -> HaloSpec {
        HaloSpec::new(self.local, self.grid, bytes_per_site)
    }
}

/// Sizes of the halo (boundary surface) messages of one rank.
#[derive(Clone, Debug)]
pub struct HaloSpec {
    /// Sites on one face, per direction (0 if the direction is not split).
    pub face_sites: [usize; 4],
    /// Bytes in one face message, per direction.
    pub face_bytes: [usize; 4],
    /// Bytes per boundary site carried in a halo message.
    pub bytes_per_site: usize,
}

impl HaloSpec {
    pub fn new(local: Dims, rank_grid: Dims, bytes_per_site: usize) -> Self {
        let mut face_sites = [0usize; 4];
        let mut face_bytes = [0usize; 4];
        for dir in Dir::ALL {
            if rank_grid[dir] > 1 {
                face_sites[dir.index()] = local.face_area(dir);
                face_bytes[dir.index()] = face_sites[dir.index()] * bytes_per_site;
            }
        }
        Self { face_sites, face_bytes, bytes_per_site }
    }

    /// Total bytes sent by one rank in one halo exchange (both forward and
    /// backward faces of every split direction).
    pub fn bytes_per_exchange(&self) -> usize {
        2 * self.face_bytes.iter().sum::<usize>()
    }

    /// Number of messages per exchange (two per split direction).
    pub fn messages_per_exchange(&self) -> usize {
        2 * self.face_bytes.iter().filter(|&&b| b > 0).count()
    }
}

/// A non-uniform split of one direction (paper Sec. IV-C2): the extent is
/// divided into contiguous segments of possibly different sizes, one per
/// rank-slice in that direction.
#[derive(Clone, Debug)]
pub struct NonUniformSplit {
    pub dir: Dir,
    /// Per-slice extents; must sum to the global extent in `dir`.
    pub extents: Vec<usize>,
}

impl NonUniformSplit {
    pub fn new(dir: Dir, extents: Vec<usize>) -> Self {
        assert!(!extents.is_empty());
        assert!(extents.iter().all(|&e| e > 0));
        Self { dir, extents }
    }

    /// The paper's 64^3x128 example: t = 128 split over 5 slices as
    /// 4 x 28 + 16.
    pub fn paper_example() -> Self {
        Self::new(Dir::T, vec![28, 28, 28, 28, 16])
    }

    pub fn total_extent(&self) -> usize {
        self.extents.iter().sum()
    }

    /// Local dims of slice `i`, given the extents of the other directions.
    pub fn local_dims(&self, base_local: &Dims, i: usize) -> Dims {
        let mut d = *base_local;
        d[self.dir] = self.extents[i];
        d
    }

    /// Average load over all slices, Eq. (7) applied per slice and weighted
    /// by slice count (each slice has the same number of KNCs).
    pub fn average_load(&self, base_local: &Dims, domain_volume: usize, ncore: usize) -> f64 {
        let total: f64 = self
            .extents
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let local = self.local_dims(base_local, i);
                let n = ndomain(local.volume(), domain_volume);
                load_average(n, ncore)
            })
            .sum();
        total / self.extents.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_partition_shapes() {
        // 48^3x64 on 64 KNCs laid out 2x2x4x4 -> local 24x24x12x16.
        let rg = RankGrid::new(Dims::new(48, 48, 48, 64), Dims::new(2, 2, 4, 4));
        assert_eq!(rg.num_ranks(), 64);
        assert_eq!(*rg.local(), Dims::new(24, 24, 12, 16));
    }

    #[test]
    fn locate_and_neighbors_consistent() {
        let rg = RankGrid::new(Dims::new(8, 8, 8, 8), Dims::new(2, 2, 2, 2));
        let (rank, local) = rg.locate(&Coord::new(5, 2, 7, 1));
        assert_eq!(rg.rank_coord(rank), Coord::new(1, 0, 1, 0));
        assert_eq!(local, Coord::new(1, 2, 3, 1));
        // Round-trip every rank coordinate.
        for r in 0..rg.num_ranks() {
            assert_eq!(rg.rank_index(&rg.rank_coord(r)), r);
        }
        // Forward-then-backward neighbor is identity.
        for r in 0..rg.num_ranks() {
            for dir in Dir::ALL {
                let f = rg.neighbor_rank(r, dir, true);
                assert_eq!(rg.neighbor_rank(f, dir, false), r);
            }
        }
    }

    #[test]
    fn halo_sizes() {
        let rg = RankGrid::new(Dims::new(16, 16, 16, 32), Dims::new(1, 1, 2, 4));
        // Half-spinor in single precision: 12 reals = 48 bytes/site (the
        // bytes-per-site is a free parameter here; 48 matches f32).
        let halo = rg.halo(48);
        assert_eq!(halo.face_sites[Dir::X.index()], 0); // not split
        assert_eq!(halo.face_sites[Dir::Z.index()], 16 * 16 * 8);
        assert_eq!(halo.face_sites[Dir::T.index()], 16 * 16 * 8);
        assert_eq!(halo.messages_per_exchange(), 4);
        assert_eq!(halo.bytes_per_exchange(), 2 * (16 * 16 * 8 * 48) * 2);
    }

    #[test]
    fn non_uniform_paper_example_load() {
        // 64^3x128 on 640 KNCs: 4x4x8 in x,y,z and the 4x28+16 split in t.
        // Base local volume 16x16x8 in x,y,z.
        let split = NonUniformSplit::paper_example();
        assert_eq!(split.total_extent(), 128);
        let base = Dims::new(16, 16, 8, 0); // t filled per slice
                                            // Slice loads: t=28 -> ndomain = 16*16*8*28/1024 = 56 -> load 56/60;
                                            // t=16 -> 32 -> load 32/60.
        let avg = split.average_load(&base, 512, 60);
        let expect = (4.0 * (56.0 / 60.0) + 32.0 / 60.0) / 5.0;
        assert!((avg - expect).abs() < 1e-12);
        // The paper quotes 85 %: (4*56+32)/(5*60) = 0.8533 — same number.
        assert!((avg - (4.0 * 56.0 + 32.0) / 300.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_vs_nonuniform_load_improvement() {
        // Uniform 1024-KNC split: t sliced into 8x16 -> ndomain=32, 53 %.
        let uniform_load = load_average(32, 60);
        assert!((uniform_load - 32.0 / 60.0).abs() < 1e-12);
        let split = NonUniformSplit::paper_example();
        let avg = split.average_load(&Dims::new(16, 16, 8, 0), 512, 60);
        assert!(avg > uniform_load + 0.3, "uniform={uniform_load} non={avg}");
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn indivisible_rank_grid_rejected() {
        RankGrid::new(Dims::new(10, 8, 8, 8), Dims::new(4, 1, 1, 1));
    }
}
