//! Lattice dimensions, coordinates, and directions.

use serde::Serialize;
use std::fmt;
use std::ops::{Index, IndexMut};

/// The four space-time directions. Order is `x, y, z, t` as in the paper
/// (site fusing happens in x and y; communication patterns are described
/// per-direction in Sec. III-E).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize)]
pub enum Dir {
    X = 0,
    Y = 1,
    Z = 2,
    T = 3,
}

impl Dir {
    pub const ALL: [Dir; 4] = [Dir::X, Dir::Y, Dir::Z, Dir::T];

    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    pub fn from_index(i: usize) -> Dir {
        Dir::try_from_index(i).unwrap_or_else(|| panic!("direction index {i} out of range"))
    }

    /// Checked counterpart of [`Dir::from_index`]: `None` for `i >= 4`.
    /// Prefer this wherever the index comes from data rather than from a
    /// `0..4` loop — e.g. at the communication boundary, where a corrupt
    /// message must degrade into an error instead of aborting the rank.
    pub fn try_from_index(i: usize) -> Option<Dir> {
        match i {
            0 => Some(Dir::X),
            1 => Some(Dir::Y),
            2 => Some(Dir::Z),
            3 => Some(Dir::T),
            _ => None,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Dir::X => "x",
            Dir::Y => "y",
            Dir::Z => "z",
            Dir::T => "t",
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl TryFrom<usize> for Dir {
    type Error = DirIndexError;

    fn try_from(i: usize) -> Result<Dir, DirIndexError> {
        Dir::try_from_index(i).ok_or(DirIndexError(i))
    }
}

/// A direction index outside `0..4`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct DirIndexError(pub usize);

impl fmt::Display for DirIndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "direction index {} out of range (expected 0..4)", self.0)
    }
}

impl std::error::Error for DirIndexError {}

/// Lattice extents `(Lx, Ly, Lz, Lt)`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize)]
pub struct Dims(pub [usize; 4]);

impl Dims {
    pub fn new(x: usize, y: usize, z: usize, t: usize) -> Self {
        Dims([x, y, z, t])
    }

    /// Total number of sites `V = Lx Ly Lz Lt`.
    #[inline]
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// True if every extent of `block` divides the corresponding extent.
    pub fn divisible_by(&self, block: &Dims) -> bool {
        self.0.iter().zip(&block.0).all(|(l, b)| *b > 0 && l % b == 0)
    }

    /// Component-wise quotient (panics if not divisible).
    pub fn grid_over(&self, block: &Dims) -> Dims {
        assert!(self.divisible_by(block), "lattice {self:?} not divisible by block {block:?}");
        Dims([
            self.0[0] / block.0[0],
            self.0[1] / block.0[1],
            self.0[2] / block.0[2],
            self.0[3] / block.0[3],
        ])
    }

    /// Component-wise product.
    pub fn times(&self, other: &Dims) -> Dims {
        Dims([
            self.0[0] * other.0[0],
            self.0[1] * other.0[1],
            self.0[2] * other.0[2],
            self.0[3] * other.0[3],
        ])
    }

    /// Area of the boundary surface orthogonal to `dir` (number of sites on
    /// one face): `V / L_dir`.
    #[inline]
    pub fn face_area(&self, dir: Dir) -> usize {
        self.volume() / self.0[dir.index()]
    }
}

impl Index<Dir> for Dims {
    type Output = usize;
    #[inline]
    fn index(&self, d: Dir) -> &usize {
        &self.0[d.index()]
    }
}

impl IndexMut<Dir> for Dims {
    #[inline]
    fn index_mut(&mut self, d: Dir) -> &mut usize {
        &mut self.0[d.index()]
    }
}

impl fmt::Display for Dims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// A site coordinate `(x, y, z, t)`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize)]
pub struct Coord(pub [usize; 4]);

impl Coord {
    pub fn new(x: usize, y: usize, z: usize, t: usize) -> Self {
        Coord([x, y, z, t])
    }

    /// Coordinate parity: even if `x+y+z+t` is even.
    #[inline]
    pub fn parity_sum(&self) -> usize {
        self.0.iter().sum::<usize>()
    }

    /// Neighbor in direction `dir`, periodic. `forward` selects +μ vs −μ.
    /// Returns the wrapped coordinate and whether the boundary was crossed
    /// (needed for antiperiodic fermion boundary conditions in t).
    #[inline]
    pub fn neighbor(&self, dims: &Dims, dir: Dir, forward: bool) -> (Coord, bool) {
        let mut c = *self;
        let i = dir.index();
        let l = dims.0[i];
        let wrapped;
        if forward {
            if c.0[i] + 1 == l {
                c.0[i] = 0;
                wrapped = true;
            } else {
                c.0[i] += 1;
                wrapped = false;
            }
        } else if c.0[i] == 0 {
            c.0[i] = l - 1;
            wrapped = true;
        } else {
            c.0[i] -= 1;
            wrapped = false;
        }
        (c, wrapped)
    }
}

impl Index<Dir> for Coord {
    type Output = usize;
    #[inline]
    fn index(&self, d: Dir) -> &usize {
        &self.0[d.index()]
    }
}

impl IndexMut<Dir> for Coord {
    #[inline]
    fn index_mut(&mut self, d: Dir) -> &mut usize {
        &mut self.0[d.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_faces() {
        let d = Dims::new(8, 4, 4, 16);
        assert_eq!(d.volume(), 2048);
        assert_eq!(d.face_area(Dir::X), 256);
        assert_eq!(d.face_area(Dir::T), 128);
    }

    #[test]
    fn divisibility_and_grid() {
        let lat = Dims::new(16, 8, 8, 32);
        let block = Dims::new(8, 4, 4, 4);
        assert!(lat.divisible_by(&block));
        let grid = lat.grid_over(&block);
        assert_eq!(grid, Dims::new(2, 2, 2, 8));
        assert_eq!(grid.times(&block), lat);
        assert!(!lat.divisible_by(&Dims::new(5, 4, 4, 4)));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn grid_over_panics_on_indivisible() {
        Dims::new(10, 4, 4, 4).grid_over(&Dims::new(8, 4, 4, 4));
    }

    #[test]
    fn neighbor_wraps_periodically() {
        let d = Dims::new(4, 4, 4, 4);
        let c = Coord::new(3, 0, 2, 1);
        let (fwd, wrapped) = c.neighbor(&d, Dir::X, true);
        assert_eq!(fwd, Coord::new(0, 0, 2, 1));
        assert!(wrapped);
        let (bwd, wrapped) = c.neighbor(&d, Dir::Y, false);
        assert_eq!(bwd, Coord::new(3, 3, 2, 1));
        assert!(wrapped);
        let (fwd, wrapped) = c.neighbor(&d, Dir::Z, true);
        assert_eq!(fwd, Coord::new(3, 0, 3, 1));
        assert!(!wrapped);
    }

    #[test]
    fn neighbor_forward_backward_inverse() {
        let d = Dims::new(4, 6, 2, 8);
        for dir in Dir::ALL {
            let c = Coord::new(1, 5, 1, 0);
            let (f, _) = c.neighbor(&d, dir, true);
            let (back, _) = f.neighbor(&d, dir, false);
            assert_eq!(back, c);
        }
    }

    #[test]
    fn dir_roundtrip() {
        for d in Dir::ALL {
            assert_eq!(Dir::from_index(d.index()), d);
        }
    }

    #[test]
    fn dir_try_from_index_checked() {
        for d in Dir::ALL {
            assert_eq!(Dir::try_from_index(d.index()), Some(d));
            assert_eq!(Dir::try_from(d.index()), Ok(d));
        }
        assert_eq!(Dir::try_from_index(4), None);
        assert_eq!(Dir::try_from(7), Err(DirIndexError(7)));
        assert!(DirIndexError(7).to_string().contains("7"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dir_from_index_panics_out_of_range() {
        let _ = Dir::from_index(4);
    }
}
