//! Global site indexing and even/odd checkerboarding.
//!
//! Sites are stored lexicographically with x fastest:
//! `idx = x + Lx*(y + Ly*(z + Lz*t))`. The even-odd preconditioning of the
//! block solves (paper Eq. (5)) additionally needs a *checkerboard index*:
//! the position of a site within its own parity class.

use crate::dims::{Coord, Dims, Dir};

/// Site parity for the red/black (even/odd) checkerboard.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Parity {
    Even = 0,
    Odd = 1,
}

impl Parity {
    #[inline]
    pub fn of(c: &Coord) -> Parity {
        if c.parity_sum().is_multiple_of(2) {
            Parity::Even
        } else {
            Parity::Odd
        }
    }

    #[inline]
    pub fn flip(self) -> Parity {
        match self {
            Parity::Even => Parity::Odd,
            Parity::Odd => Parity::Even,
        }
    }

    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Bijective maps between coordinates, lexicographic indices, and
/// checkerboard indices for a fixed lattice size.
#[derive(Clone, Debug)]
pub struct SiteIndexer {
    dims: Dims,
}

impl SiteIndexer {
    pub fn new(dims: Dims) -> Self {
        assert!(dims.volume() > 0, "empty lattice");
        Self { dims }
    }

    #[inline]
    pub fn dims(&self) -> &Dims {
        &self.dims
    }

    #[inline]
    pub fn volume(&self) -> usize {
        self.dims.volume()
    }

    /// Lexicographic index of a coordinate (x fastest).
    #[inline]
    pub fn index(&self, c: &Coord) -> usize {
        let [lx, ly, lz, _] = self.dims.0;
        debug_assert!(
            c.0.iter().zip(&self.dims.0).all(|(a, l)| a < l),
            "coordinate {c:?} outside {:?}",
            self.dims
        );
        c.0[0] + lx * (c.0[1] + ly * (c.0[2] + lz * c.0[3]))
    }

    /// Inverse of [`Self::index`].
    #[inline]
    pub fn coord(&self, mut idx: usize) -> Coord {
        let [lx, ly, lz, _] = self.dims.0;
        let x = idx % lx;
        idx /= lx;
        let y = idx % ly;
        idx /= ly;
        let z = idx % lz;
        idx /= lz;
        Coord([x, y, z, idx])
    }

    /// Checkerboard index: position of the site within its parity class,
    /// counted in lexicographic order. Both classes have `V/2` sites when
    /// any extent is even (required).
    #[inline]
    pub fn cb_index(&self, c: &Coord) -> (Parity, usize) {
        // Count lexicographically-smaller sites of the same parity. With Lx
        // even, each x-row of fixed (y,z,t) contains Lx/2 sites of each
        // parity, which makes the count a simple halved lexicographic index.
        let [lx, ly, lz, _] = self.dims.0;
        debug_assert!(lx % 2 == 0, "checkerboarding requires even Lx");
        let p = Parity::of(c);
        let row = c.0[1] + ly * (c.0[2] + lz * c.0[3]);
        let within_row = c.0[0] / 2;
        (p, row * (lx / 2) + within_row)
    }

    /// Inverse of [`Self::cb_index`].
    pub fn cb_coord(&self, p: Parity, cb_idx: usize) -> Coord {
        let [lx, ly, lz, _] = self.dims.0;
        let half = lx / 2;
        let row = cb_idx / half;
        let within = cb_idx % half;
        let y = row % ly;
        let rest = row / ly;
        let z = rest % lz;
        let t = rest / lz;
        // The x offset parity depends on the row parity and the target parity.
        let row_parity = (y + z + t) % 2;
        let x0 = if (row_parity == 0) == (p == Parity::Even) { 0 } else { 1 };
        Coord([2 * within + x0, y, z, t])
    }

    /// Number of sites of each parity (`V/2` for even extents).
    pub fn cb_volume(&self) -> usize {
        self.volume() / 2
    }

    /// Iterate over all coordinates in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        (0..self.volume()).map(move |i| self.coord(i))
    }

    /// Lexicographic index of the periodic neighbor; also reports boundary
    /// wrap (for antiperiodic temporal boundary conditions).
    #[inline]
    pub fn neighbor_index(&self, c: &Coord, dir: Dir, forward: bool) -> (usize, bool) {
        let (nc, wrapped) = c.neighbor(&self.dims, dir, forward);
        (self.index(&nc), wrapped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_coord_roundtrip() {
        let s = SiteIndexer::new(Dims::new(4, 6, 2, 8));
        for i in 0..s.volume() {
            let c = s.coord(i);
            assert_eq!(s.index(&c), i);
        }
    }

    #[test]
    fn x_is_fastest() {
        let s = SiteIndexer::new(Dims::new(4, 4, 4, 4));
        assert_eq!(s.index(&Coord::new(1, 0, 0, 0)), 1);
        assert_eq!(s.index(&Coord::new(0, 1, 0, 0)), 4);
        assert_eq!(s.index(&Coord::new(0, 0, 1, 0)), 16);
        assert_eq!(s.index(&Coord::new(0, 0, 0, 1)), 64);
    }

    #[test]
    fn cb_index_roundtrip_and_balance() {
        let s = SiteIndexer::new(Dims::new(4, 4, 2, 6));
        let mut even_seen = vec![false; s.cb_volume()];
        let mut odd_seen = vec![false; s.cb_volume()];
        for c in s.iter() {
            let (p, i) = s.cb_index(&c);
            assert_eq!(p, Parity::of(&c));
            match p {
                Parity::Even => {
                    assert!(!even_seen[i], "duplicate even cb index {i}");
                    even_seen[i] = true;
                }
                Parity::Odd => {
                    assert!(!odd_seen[i], "duplicate odd cb index {i}");
                    odd_seen[i] = true;
                }
            }
            assert_eq!(s.cb_coord(p, i), c);
        }
        assert!(even_seen.iter().all(|&b| b));
        assert!(odd_seen.iter().all(|&b| b));
    }

    #[test]
    fn neighbors_flip_parity() {
        let s = SiteIndexer::new(Dims::new(4, 4, 4, 4));
        for c in s.iter() {
            for dir in Dir::ALL {
                for fwd in [true, false] {
                    let (nc, _) = c.neighbor(s.dims(), dir, fwd);
                    assert_eq!(Parity::of(&nc), Parity::of(&c).flip());
                }
            }
        }
    }

    #[test]
    fn parity_flip() {
        assert_eq!(Parity::Even.flip(), Parity::Odd);
        assert_eq!(Parity::Odd.flip(), Parity::Even);
        assert_eq!(Parity::of(&Coord::new(0, 0, 0, 0)), Parity::Even);
        assert_eq!(Parity::of(&Coord::new(1, 0, 0, 0)), Parity::Odd);
        assert_eq!(Parity::of(&Coord::new(1, 1, 0, 0)), Parity::Even);
    }

    #[test]
    fn neighbor_index_wrap_flag() {
        let s = SiteIndexer::new(Dims::new(4, 4, 4, 4));
        let c = Coord::new(0, 0, 0, 3);
        let (idx, wrapped) = s.neighbor_index(&c, Dir::T, true);
        assert!(wrapped);
        assert_eq!(idx, s.index(&Coord::new(0, 0, 0, 0)));
        let (_, wrapped) = s.neighbor_index(&c, Dir::T, false);
        assert!(!wrapped);
    }
}
