//! Load-balance accounting for domain-to-core assignment.
//!
//! Implements the paper's Eqs. (6)–(7): with multiplicative Schwarz the
//! domains split into two colors processed in alternating half-sweeps, so
//! the number of *concurrently processable* domains is half the total, and
//! the average load on `Ncore` cores follows from round-robin assignment.
//! The worked example in Sec. III-D (256 domains on 60 cores → 85 % load)
//! is reproduced in the tests.

use crate::dims::Dims;

/// Eq. (6): number of domains processable in parallel for a local volume
/// `v` and domain volume `v_domain`, accounting for the factor 1/2 from the
/// two-color (black/white) sweep of the multiplicative Schwarz method.
pub fn ndomain(local_volume: usize, domain_volume: usize) -> usize {
    assert!(domain_volume > 0);
    assert!(
        local_volume.is_multiple_of(2 * domain_volume),
        "volume {local_volume} not an even multiple of domain volume {domain_volume}"
    );
    local_volume / (2 * domain_volume)
}

/// Convenience form of [`ndomain`] from lattice shapes.
pub fn ndomain_dims(local: &Dims, block: &Dims) -> usize {
    ndomain(local.volume(), block.volume())
}

/// Eq. (7): average load when `n` domains are processed round-robin by
/// `ncore` cores: `n / (ncore * ceil(n / ncore))`.
pub fn load_average(n_domains: usize, ncore: usize) -> f64 {
    assert!(ncore > 0);
    if n_domains == 0 {
        return 0.0;
    }
    let rounds = n_domains.div_ceil(ncore);
    n_domains as f64 / (ncore * rounds) as f64
}

/// Round-robin assignment of `n` domains to `ncore` cores: returns for each
/// core the list of domain slots it processes. Matches the paper's
/// Sec. III-D example (51 cores with 5 domains, 1 core with 1, 8 idle for
/// 256 domains on 60 cores).
pub fn core_assignment(n_domains: usize, ncore: usize) -> Vec<Vec<usize>> {
    let rounds = if n_domains == 0 { 0 } else { n_domains.div_ceil(ncore) };
    let mut cores = vec![Vec::new(); ncore];
    for (i, core) in cores.iter_mut().enumerate() {
        let lo = (i * rounds).min(n_domains);
        let hi = ((i + 1) * rounds).min(n_domains);
        core.extend(lo..hi);
    }
    cores
}

/// Parallel-time in units of one domain-solve: the maximum number of
/// domains any core processes (the straggler determines the sweep time).
pub fn sweep_rounds(n_domains: usize, ncore: usize) -> usize {
    n_domains.div_ceil(ncore)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::Dims;

    #[test]
    fn eq6_matches_fig5_volumes() {
        // Fig. 5 caption: 16x8x20x24 -> ndomain=60, 32x32x20x24 -> 480,
        // 48x12x12x16 -> 108, all with the 8x4^3 block.
        let block = Dims::new(8, 4, 4, 4);
        assert_eq!(ndomain_dims(&Dims::new(16, 8, 20, 24), &block), 60);
        assert_eq!(ndomain_dims(&Dims::new(32, 32, 20, 24), &block), 480);
        assert_eq!(ndomain_dims(&Dims::new(48, 12, 12, 16), &block), 108);
    }

    #[test]
    fn eq7_matches_sec3d_example() {
        // 256 domains on 60 cores: load = 256/(5*60) = 0.8533...
        let load = load_average(256, 60);
        assert!((load - 256.0 / 300.0).abs() < 1e-15);
        // Perfect load when divisible.
        assert_eq!(load_average(60, 60), 1.0);
        assert_eq!(load_average(120, 60), 1.0);
        // Single domain on many cores.
        assert!((load_average(1, 60) - 1.0 / 60.0).abs() < 1e-15);
    }

    #[test]
    fn table3_loads() {
        // 48^3x64 on 24 KNCs: local volume 48*48*48*64/24; the paper
        // reports ndomain=288 and load 96 %.
        let v = 48 * 48 * 48 * 64 / 24;
        let n = ndomain(v, 512);
        assert_eq!(n, 288);
        assert!((load_average(n, 60) - 0.96).abs() < 1e-12);
        // 64^3x128 on 512 KNCs: ndomain=64, load 53 %.
        let v = 64 * 64 * 64 * 128 / 512;
        let n = ndomain(v, 512);
        assert_eq!(n, 64);
        let load = load_average(n, 60);
        assert!((load - 64.0 / 120.0).abs() < 1e-12, "load={load}");
    }

    #[test]
    fn assignment_matches_paper_example() {
        let cores = core_assignment(256, 60);
        let with5 = cores.iter().filter(|c| c.len() == 5).count();
        let with1 = cores.iter().filter(|c| c.len() == 1).count();
        let idle = cores.iter().filter(|c| c.is_empty()).count();
        assert_eq!((with5, with1, idle), (51, 1, 8));
        assert_eq!(sweep_rounds(256, 60), 5);
    }

    #[test]
    fn assignment_covers_all_domains_once() {
        let cores = core_assignment(97, 13);
        let mut seen = [false; 97];
        for c in &cores {
            for &d in c {
                assert!(!seen[d]);
                seen[d] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn load_consistent_with_rounds() {
        for n in [1, 59, 60, 61, 100, 256, 480] {
            for ncore in [1, 7, 60] {
                let load = load_average(n, ncore);
                let rounds = sweep_rounds(n, ncore);
                let expect = n as f64 / (ncore * rounds) as f64;
                assert!((load - expect).abs() < 1e-15);
                assert!(load > 0.0 && load <= 1.0);
            }
        }
    }
}
