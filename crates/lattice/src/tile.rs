//! The xy-tile site-fused SIMD layout (paper Sec. III-A, Figs. 2 and 3).
//!
//! Within a domain, SIMD lanes are filled from several sites at once
//! ("site fusing"). Fusing happens in the x and y directions: all sites of
//! one parity in the xy cross-section at fixed (z, t) form one *tile* whose
//! sites occupy the lanes of a vector register. With the paper's 8x4 cross
//! section this gives 16 lanes — exactly one single-precision KNC register.
//!
//! Hopping terms in z and t map tile-to-tile with no lane shuffling.
//! Hopping in x and y needs in-register permutations, and lanes whose
//! neighbor lies outside the domain are either *masked* (block-restricted
//! operator, Fig. 2) or *blended in* from an AOS-packed boundary buffer
//! (full operator, Fig. 3). This module computes those permutation and
//! boundary patterns; the kernels in `qdd-dirac` consume them.
//!
//! A subtlety the paper does not spell out: the map lane → (x, y) depends
//! on the parity of z+t (called the tile *flavor* here), because site
//! parity is (x+y+z+t) mod 2. All patterns are therefore indexed by flavor.

use crate::dims::{Coord, Dims, Dir};
use crate::site::Parity;

/// Where a lane's x/y-neighbor comes from.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LaneSrc {
    /// Lane `l` of the opposite-parity tile at the same (z, t).
    Internal(usize),
    /// Slot `k` of the packed face buffer of the neighboring domain
    /// (ordered by increasing y for x-faces, increasing x for y-faces;
    /// slot = y/2 resp. x/2).
    Boundary(usize),
}

/// Site-fused tile layout for one domain shape.
#[derive(Clone, Debug)]
pub struct TileLayout {
    block: Dims,
    half_x: usize,
    lanes: usize,
}

impl TileLayout {
    pub fn new(block: Dims) -> Self {
        let [bx, by, _, _] = block.0;
        assert!(bx % 2 == 0 && by >= 1, "tile layout needs even x extent");
        let lanes = bx * by / 2;
        assert!(lanes >= 1);
        Self { block, half_x: bx / 2, lanes }
    }

    #[inline]
    pub fn block(&self) -> &Dims {
        &self.block
    }

    /// Number of SIMD lanes = sites of one parity in the xy cross-section
    /// (16 for the paper's 8x4).
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of tiles per parity = bz * bt.
    #[inline]
    pub fn tiles_per_parity(&self) -> usize {
        self.block.0[2] * self.block.0[3]
    }

    /// Tile index for a (z, t) slice.
    #[inline]
    pub fn tile_of(&self, z: usize, t: usize) -> usize {
        z + self.block.0[2] * t
    }

    /// Inverse of [`Self::tile_of`].
    #[inline]
    pub fn tile_coords(&self, tile: usize) -> (usize, usize) {
        (tile % self.block.0[2], tile / self.block.0[2])
    }

    /// Flavor of a tile: parity of z + t.
    #[inline]
    pub fn flavor(&self, tile: usize) -> usize {
        let (z, t) = self.tile_coords(tile);
        (z + t) % 2
    }

    /// The (x, y) of a lane in a tile of the given flavor and site parity.
    #[inline]
    pub fn lane_site(&self, flavor: usize, parity: Parity, lane: usize) -> (usize, usize) {
        debug_assert!(lane < self.lanes);
        let y = lane / self.half_x;
        let k = lane % self.half_x;
        let x0 = (y + flavor + parity.index()) % 2;
        (2 * k + x0, y)
    }

    /// The (parity, lane) of an (x, y) position for the given flavor.
    #[inline]
    pub fn site_lane(&self, flavor: usize, x: usize, y: usize) -> (Parity, usize) {
        debug_assert!(x < self.block.0[0] && y < self.block.0[1]);
        let parity = if (x + y + flavor).is_multiple_of(2) { Parity::Even } else { Parity::Odd };
        (parity, x / 2 + self.half_x * y)
    }

    /// Full location of a local in-domain coordinate: (parity, tile, lane).
    #[inline]
    pub fn locate(&self, c: &Coord) -> (Parity, usize, usize) {
        let tile = self.tile_of(c.0[2], c.0[3]);
        let flavor = self.flavor(tile);
        let (p, lane) = self.site_lane(flavor, c.0[0], c.0[1]);
        (p, tile, lane)
    }

    /// Inverse of [`Self::locate`].
    pub fn coord(&self, parity: Parity, tile: usize, lane: usize) -> Coord {
        let (z, t) = self.tile_coords(tile);
        let flavor = (z + t) % 2;
        let (x, y) = self.lane_site(flavor, parity, lane);
        Coord([x, y, z, t])
    }

    /// The x/y-neighbor pattern: for every lane of a (flavor, parity) tile,
    /// where its neighbor in direction `dir` (`forward` = +μ) resides. The
    /// neighbor always has opposite site parity and sits in the tile at the
    /// same (z, t).
    pub fn xy_neighbor(
        &self,
        flavor: usize,
        parity: Parity,
        dir: Dir,
        forward: bool,
    ) -> Vec<LaneSrc> {
        assert!(matches!(dir, Dir::X | Dir::Y), "xy_neighbor is only for fused directions");
        let [bx, by, _, _] = self.block.0;
        (0..self.lanes)
            .map(|lane| {
                let (x, y) = self.lane_site(flavor, parity, lane);
                let (nx, ny, crossed) = match (dir, forward) {
                    (Dir::X, true) => {
                        if x + 1 == bx {
                            (0, y, true)
                        } else {
                            (x + 1, y, false)
                        }
                    }
                    (Dir::X, false) => {
                        if x == 0 {
                            (bx - 1, y, true)
                        } else {
                            (x - 1, y, false)
                        }
                    }
                    (Dir::Y, true) => {
                        if y + 1 == by {
                            (x, 0, true)
                        } else {
                            (x, y + 1, false)
                        }
                    }
                    (Dir::Y, false) => {
                        if y == 0 {
                            (x, by - 1, true)
                        } else {
                            (x, y - 1, false)
                        }
                    }
                    _ => unreachable!(),
                };
                if crossed {
                    // Slot in the neighboring domain's face buffer: the
                    // neighbor site is (nx, ny) on the opposite face.
                    let slot = match dir {
                        Dir::X => ny / 2,
                        Dir::Y => nx / 2,
                        _ => unreachable!(),
                    };
                    LaneSrc::Boundary(slot)
                } else {
                    let (np, nlane) = self.site_lane(flavor, nx, ny);
                    debug_assert_eq!(np, parity.flip());
                    LaneSrc::Internal(nlane)
                }
            })
            .collect()
    }

    /// Number of boundary slots on an x- or y-face per (z, t) slice and
    /// parity: by/2 for x-faces, bx/2 for y-faces.
    pub fn face_slots(&self, dir: Dir) -> usize {
        match dir {
            Dir::X => self.block.0[1] / 2,
            Dir::Y => self.block.0[0] / 2,
            _ => panic!("face_slots is only defined for fused directions"),
        }
    }

    /// SIMD efficiency of the masked x/y hop: fraction of lanes whose
    /// neighbor is internal. The paper quotes 14/16 for x and 12/16 for y
    /// with the 8x4 cross-section.
    pub fn mask_efficiency(&self, dir: Dir) -> f64 {
        let boundary = self.face_slots(dir);
        1.0 - boundary as f64 / self.lanes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::SiteIndexer;

    fn paper_layout() -> TileLayout {
        TileLayout::new(Dims::new(8, 4, 4, 4))
    }

    #[test]
    fn paper_tile_has_16_lanes() {
        let l = paper_layout();
        assert_eq!(l.lanes(), 16);
        assert_eq!(l.tiles_per_parity(), 16);
    }

    #[test]
    fn locate_roundtrip_all_sites() {
        for block in [Dims::new(8, 4, 4, 4), Dims::new(4, 4, 2, 2), Dims::new(6, 2, 2, 4)] {
            let l = TileLayout::new(block);
            let idx = SiteIndexer::new(block);
            let mut seen = vec![false; block.volume()];
            for c in idx.iter() {
                let (p, tile, lane) = l.locate(&c);
                assert_eq!(p, Parity::of(&c));
                let flat = (p.index() * l.tiles_per_parity() + tile) * l.lanes() + lane;
                assert!(!seen[flat], "collision at {c:?}");
                seen[flat] = true;
                assert_eq!(l.coord(p, tile, lane), c);
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn xy_neighbor_matches_bruteforce() {
        let block = Dims::new(8, 4, 4, 4);
        let l = TileLayout::new(block);
        for flavor in 0..2 {
            for parity in [Parity::Even, Parity::Odd] {
                for dir in [Dir::X, Dir::Y] {
                    for forward in [true, false] {
                        let pat = l.xy_neighbor(flavor, parity, dir, forward);
                        for (lane, src) in pat.iter().enumerate() {
                            let (x, y) = l.lane_site(flavor, parity, lane);
                            // Brute-force neighbor within the cross-section.
                            let (bx, by) = (block.0[0] as isize, block.0[1] as isize);
                            let (mut nx, mut ny) = (x as isize, y as isize);
                            match dir {
                                Dir::X => nx += if forward { 1 } else { -1 },
                                Dir::Y => ny += if forward { 1 } else { -1 },
                                _ => unreachable!(),
                            }
                            let crossed = nx < 0 || nx >= bx || ny < 0 || ny >= by;
                            match src {
                                LaneSrc::Internal(nl) => {
                                    assert!(!crossed);
                                    let (np, expect) =
                                        l.site_lane(flavor, nx as usize, ny as usize);
                                    assert_eq!(np, parity.flip());
                                    assert_eq!(*nl, expect);
                                }
                                LaneSrc::Boundary(slot) => {
                                    assert!(crossed);
                                    let wrapped = match dir {
                                        Dir::X => (ny as usize) / 2,
                                        Dir::Y => (nx.rem_euclid(bx) as usize) / 2,
                                        _ => unreachable!(),
                                    };
                                    let expect = match dir {
                                        Dir::X => wrapped,
                                        Dir::Y => x / 2,
                                        _ => unreachable!(),
                                    };
                                    let _ = wrapped;
                                    assert_eq!(*slot, expect, "lane {lane} {dir} fwd={forward}");
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn boundary_lane_counts_match_paper() {
        // Paper Sec. III-A: x hops waste 2/16 lanes, y hops 4/16.
        let l = paper_layout();
        for flavor in 0..2 {
            for parity in [Parity::Even, Parity::Odd] {
                let x_pat = l.xy_neighbor(flavor, parity, Dir::X, true);
                let nb = x_pat.iter().filter(|s| matches!(s, LaneSrc::Boundary(_))).count();
                assert_eq!(nb, 2);
                let y_pat = l.xy_neighbor(flavor, parity, Dir::Y, true);
                let nb = y_pat.iter().filter(|s| matches!(s, LaneSrc::Boundary(_))).count();
                assert_eq!(nb, 4);
            }
        }
        assert!((l.mask_efficiency(Dir::X) - 14.0 / 16.0).abs() < 1e-15);
        assert!((l.mask_efficiency(Dir::Y) - 12.0 / 16.0).abs() < 1e-15);
    }

    #[test]
    fn boundary_slots_cover_face_exactly_once() {
        let l = paper_layout();
        for flavor in 0..2 {
            for parity in [Parity::Even, Parity::Odd] {
                for (dir, fwd) in [(Dir::X, true), (Dir::X, false), (Dir::Y, true), (Dir::Y, false)]
                {
                    let pat = l.xy_neighbor(flavor, parity, dir, fwd);
                    let mut slots: Vec<usize> = pat
                        .iter()
                        .filter_map(|s| match s {
                            LaneSrc::Boundary(k) => Some(*k),
                            _ => None,
                        })
                        .collect();
                    slots.sort_unstable();
                    let expect: Vec<usize> = (0..l.face_slots(dir)).collect();
                    assert_eq!(slots, expect, "{dir} fwd={fwd} flavor={flavor}");
                }
            }
        }
    }

    #[test]
    fn internal_lanes_are_a_partial_permutation() {
        // No two lanes may read the same internal source lane.
        let l = paper_layout();
        for flavor in 0..2 {
            for parity in [Parity::Even, Parity::Odd] {
                for (dir, fwd) in [(Dir::X, true), (Dir::X, false), (Dir::Y, true), (Dir::Y, false)]
                {
                    let pat = l.xy_neighbor(flavor, parity, dir, fwd);
                    let mut seen = vec![false; l.lanes()];
                    for s in &pat {
                        if let LaneSrc::Internal(k) = s {
                            assert!(!seen[*k]);
                            seen[*k] = true;
                        }
                    }
                }
            }
        }
    }
}
