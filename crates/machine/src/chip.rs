//! Chip specification: the KNC of Sec. II-A.

use serde::Serialize;

/// Parameters of a many-core co-processor.
#[derive(Copy, Clone, Debug, Serialize)]
pub struct ChipSpec {
    /// Usable cores (the paper stays off the 61st, where Linux runs).
    pub cores: usize,
    /// Clock in GHz.
    pub freq_ghz: f64,
    /// Single-precision SIMD lanes (16 on KNC).
    pub simd_f32: usize,
    /// L1 data cache per core, kB.
    pub l1_kb: f64,
    /// L2 cache partition per core, kB.
    pub l2_per_core_kb: f64,
    /// Streaming memory bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// Cycles lost on an L1 miss that hits L2 (in-order core, no OoO to
    /// hide it).
    pub l1_miss_penalty_cycles: f64,
    /// Additional cycles lost on an L2 miss (beyond bandwidth).
    pub l2_miss_penalty_cycles: f64,
}

impl ChipSpec {
    /// The Stampede KNC (7110P @ 1.1 GHz, 60 usable cores).
    pub fn knc_7110p() -> Self {
        Self {
            cores: 60,
            freq_ghz: 1.1,
            simd_f32: 16,
            l1_kb: 32.0,
            l2_per_core_kb: 512.0,
            mem_bw_gbs: 150.0,
            l1_miss_penalty_cycles: 24.0,
            l2_miss_penalty_cycles: 250.0,
        }
    }

    /// Peak single-precision Gflop/s of the whole chip (FMA).
    pub fn peak_sp_gflops(&self) -> f64 {
        self.cores as f64 * self.freq_ghz * self.simd_f32 as f64 * 2.0
    }

    /// Peak single-precision Gflop/s of one core.
    pub fn peak_sp_gflops_per_core(&self) -> f64 {
        self.freq_ghz * self.simd_f32 as f64 * 2.0
    }

    /// Peak double-precision Gflop/s of the whole chip.
    pub fn peak_dp_gflops(&self) -> f64 {
        self.peak_sp_gflops() / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knc_peaks_match_paper() {
        // Sec. II-A: "up to around 1 or 2 Tflop/s in double- and
        // single-precision".
        let chip = ChipSpec::knc_7110p();
        let sp = chip.peak_sp_gflops();
        let dp = chip.peak_dp_gflops();
        assert!((2000.0..2300.0).contains(&sp), "sp peak {sp}");
        assert!((1000.0..1150.0).contains(&dp), "dp peak {dp}");
        // Per-core single precision peak ~35 Gflop/s.
        assert!((chip.peak_sp_gflops_per_core() - 35.2).abs() < 1e-9);
    }
}
